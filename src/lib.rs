//! # adya — Generalized Isolation Level Definitions, executable
//!
//! A comprehensive Rust reproduction of Atul Adya, Barbara Liskov and
//! Patrick O'Neil, **"Generalized Isolation Level Definitions"**
//! (IEEE ICDE 2000): the multi-version history model, the Direct
//! Serialization Graph, the phenomena G0/G1/G2 (and the thesis
//! extensions G-single, G-SI, G-cursor), the portable isolation levels
//! PL-1 … PL-3 (plus PL-2+, PL-SI, PL-CS), mixed-level analysis
//! (Definition 9) — together with everything needed to *exercise* the
//! theory: a preventative-definitions baseline (P0–P3), a
//! multi-scheme transactional engine (2PL per Figure 1 row,
//! Kung–Robinson OCC, an SGT certifier, MVCC snapshot isolation), and
//! workload/history generators.
//!
//! This crate is a facade: it re-exports the workspace members under
//! stable module names.
//!
//! ```
//! use adya::core::{classify, IsolationLevel};
//! use adya::history::parse_history;
//!
//! // H2' of the paper: rejected by lock-flavoured definitions (P2),
//! // admitted — and serializable — under the generalized ones.
//! let h = parse_history(
//!     "r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) r2(yinit,5) w1(y,9) c2 c1",
//! ).unwrap();
//! assert!(classify(&h).satisfies(IsolationLevel::PL3));
//! ```

#![warn(missing_docs)]

/// The history model (§4): events, versions, version orders,
/// predicates, builder and parser.
pub use adya_history as history;

/// The generalized definitions (§4.4–§5): conflicts, DSG/SSG/MSG,
/// phenomena, levels, classification, mixing, and the paper's named
/// histories.
pub use adya_core as core;

/// The preventative baseline (Berenson et al.): P0–P3 and the Figure 1
/// locking levels.
pub use adya_prevent as prevent;

/// The transactional engine substrate: 2PL / OCC / SGT / MVCC behind
/// one trait, recording checkable histories.
pub use adya_engine as engine;

/// Workload programs, the deterministic driver, generators and the
/// random-history sampler.
pub use adya_workloads as workloads;

/// Generic serialization-graph machinery (SCC, witness cycles, DOT).
pub use adya_graph as graph;

/// The streaming checker: per-transaction verdicts at commit time with
/// incremental cycle detection and bounded-memory GC.
pub use adya_online as online;

/// Violation forensics: minimal witnesses, explain narratives,
/// cycle-scoped DOT and Chrome-trace timeline export.
pub use adya_forensics as forensics;

/// The checker service: durable multi-tenant sessions over sockets
/// with kill-and-restart recovery and graceful shutdown.
pub use adya_serve as serve;

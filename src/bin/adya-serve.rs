//! `adya-serve` — the durable, multi-tenant checker service.
//!
//! Hosts many concurrent online-checker sessions over TCP (and
//! optionally a unix socket), each with a segmented durable event log
//! and periodic snapshots under `--data`, so killing the process and
//! restarting it on the same directory resumes every session with a
//! byte-identical verdict stream. The obs plane (`/metrics`,
//! `/health`) is served on the same port.
//!
//! Protocol (NDJSON, one frame or event line per line):
//!
//! ```text
//! → {"op": "hello", "session": "sess-a"}          create a session
//! ← {"ok": "hello", "session": "sess-a", ...}
//! → b1 w1(x,1) c1                    event tokens (adya-check notation)
//! ← {"txn": 1, "committed": true, ...}     one verdict per commit
//!                                          (aborts produce no reply)
//! → {"op": "resume", "session": "sess-a", "verdicts": 3}   re-attach
//! ← {"ok": "resume", "events": N, "verdicts": T, "replay": M} + M lines
//! → {"op": "close"}                  finish: final verdict + closing
//! ```
//!
//! With `--trace-propagate`, a client may add `"trace": "on"` to
//! `hello`/`resume`; each verdict of a sampled commit then arrives
//! prefixed with its latency-provenance id — `{"trace": "t<16 hex>",
//! ...canonical verdict...}` — while the durable log, replay window
//! and final verdict stay canonical. Replication append frames carry
//! the same ids in a `trace` field so follower stamps join the
//! leader's trace; each node serves its stamp segment under `/trace`
//! (merge with `adya-check trace-merge`). Unknown frame fields are
//! ignored, so traced and untraced peers interoperate.
//!
//! SIGTERM/ctrl-c drains gracefully: connections get a
//! `{"closing": "shutdown"}` frame, every session parks with a final
//! snapshot, sockets close, exit 0.

use std::process::ExitCode;
use std::time::Duration;

use adya::serve::{shutdown, FsyncPolicy, ServeConfig, Server};
use adya_faults::TapCrashConfig;

const USAGE: &str = "usage: adya-serve --data DIR [--listen ADDR] [--unix PATH]
                  [--rotate-events N] [--snapshot-every N]
                  [--gc-interval N] [--no-gc] [--provenance]
                  [--batch N] [--idle-timeout-ms N] [--crash-at-event N]
                  [--fsync always|interval|never]
                  [--replicate-to ADDR[,ADDR...]] [--follower]
                  [--advertise ADDR] [--repl-lag-max N]
                  [--trace-propagate] [--trace-sample N] [--node NAME]

  --data DIR        session store root (one subdirectory per session)
  --listen ADDR     TCP listen address (default 127.0.0.1:0; the bound
                    address is printed to stderr)
  --unix PATH       also listen on a unix socket at PATH
  --rotate-events N start a new log segment every N events (default 4096)
  --snapshot-every N snapshot + compact every N events (default 1024)
  --gc-interval N   checker watermark-GC interval (default 64)
  --no-gc           disable watermark GC (unbounded checker memory)
  --provenance      record cycle provenance in verdicts
  --batch N         largest event batch logged ahead and applied through
                    the checker's batched ingest path in one go
                    (default 128; 1 = per-event application)
  --idle-timeout-ms N detach a connection (parking its session) after N
                    milliseconds without read progress (default 60000)
  --crash-at-event N abort the process at the N-th non-commit event
                    after it is logged but before it is applied
                    (crash-recovery testing only)
  --fsync POLICY    when appends reach stable storage: always (every
                    append), interval (at each snapshot; default), or
                    never (no explicit syncs)
  --replicate-to A  lead a replica set: stream every durable log byte
                    to the follower adya-serve at each ADDR
  --follower        start as a follower: apply replication streams,
                    refuse client frames with not_leader until promoted
                    (operator {\"op\": \"promote\"} frame, or client
                    failover promotes automatically)
  --advertise ADDR  client-facing address handed to followers for
                    not_leader redirects (default: the bound address)
  --repl-lag-max N  /health turns 503 when the worst acknowledged
                    follower lag exceeds N records (default: never)
  --trace-propagate stamp sampled events with per-stage latency
                    provenance (tap through replicated ack), carry
                    their trace ids on replication frames, serve the
                    node's segment under /trace, and annotate verdict
                    lines for clients that send \"trace\": \"on\"
  --trace-sample N  provenance sampling cadence, 1-in-N events by
                    durable record number (default 32)
  --node NAME       this node's name in trace lanes and /metrics
                    labels (default node0)
";

struct Args {
    data: String,
    listen: String,
    unix: Option<String>,
    cfg: ServeConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut data = None;
    let mut listen = "127.0.0.1:0".to_string();
    let mut unix = None;
    let mut cfg = ServeConfig::new("");
    let mut it = std::env::args().skip(1);
    let need = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--data" => data = Some(need(&mut it, "--data")?),
            "--listen" => listen = need(&mut it, "--listen")?,
            "--unix" => unix = Some(need(&mut it, "--unix")?),
            "--rotate-events" => {
                cfg.session.log.rotate_events = parse_u64(&need(&mut it, "--rotate-events")?)?
            }
            "--snapshot-every" => {
                cfg.session.log.snapshot_every = parse_u64(&need(&mut it, "--snapshot-every")?)?
            }
            "--gc-interval" => {
                cfg.session.gc.interval = parse_u64(&need(&mut it, "--gc-interval")?)?
            }
            "--no-gc" => cfg.session.gc.enabled = false,
            "--provenance" => cfg.session.provenance = true,
            "--batch" => {
                cfg.session.pipeline.max_batch = parse_u64(&need(&mut it, "--batch")?)? as usize
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout =
                    Duration::from_millis(parse_u64(&need(&mut it, "--idle-timeout-ms")?)?)
            }
            "--crash-at-event" => {
                cfg.tap = TapCrashConfig {
                    crash_at: Some(parse_u64(&need(&mut it, "--crash-at-event")?)?),
                    crash_every: None,
                }
            }
            "--fsync" => cfg.session.log.fsync = FsyncPolicy::parse(&need(&mut it, "--fsync")?)?,
            "--replicate-to" => {
                cfg.repl.followers = need(&mut it, "--replicate-to")?
                    .split(',')
                    .filter(|a| !a.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--follower" => cfg.repl.follower = true,
            "--advertise" => cfg.repl.advertise = Some(need(&mut it, "--advertise")?),
            "--repl-lag-max" => {
                cfg.repl.lag_max = Some(parse_u64(&need(&mut it, "--repl-lag-max")?)?)
            }
            "--trace-propagate" => cfg.trace_propagate = true,
            "--trace-sample" => cfg.trace_sample = parse_u64(&need(&mut it, "--trace-sample")?)?,
            "--node" => cfg.node = need(&mut it, "--node")?,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if cfg.session.log.rotate_events == 0 || cfg.session.log.snapshot_every == 0 {
        return Err("--rotate-events/--snapshot-every must be at least 1".into());
    }
    if cfg.idle_timeout.is_zero() {
        return Err("--idle-timeout-ms must be at least 1".into());
    }
    if cfg.repl.follower && !cfg.repl.followers.is_empty() {
        return Err("--follower and --replicate-to are mutually exclusive".into());
    }
    if cfg.trace_sample == 0 {
        return Err("--trace-sample must be at least 1".into());
    }
    let data = data.ok_or("--data is required")?;
    cfg.data_dir = data.clone().into();
    Ok(Args {
        data,
        listen,
        unix,
        cfg,
    })
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("adya-serve: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    shutdown::install();
    let role = if args.cfg.repl.follower {
        "follower (awaiting promotion)".to_string()
    } else if args.cfg.repl.followers.is_empty() {
        "standalone".to_string()
    } else {
        format!("leader of {} follower(s)", args.cfg.repl.followers.len())
    };
    let (trace_propagate, trace_sample, node) = (
        args.cfg.trace_propagate,
        args.cfg.trace_sample,
        args.cfg.node.clone(),
    );
    let mut server = match Server::bind(
        &args.listen,
        args.unix.as_ref().map(std::path::Path::new),
        args.cfg,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("adya-serve: cannot bind {}: {e}", args.listen);
            return ExitCode::from(2);
        }
    };
    eprintln!("adya-serve: listening on {}", server.local_addr());
    if let Some(p) = &args.unix {
        eprintln!("adya-serve: listening on unix:{p}");
    }
    eprintln!("adya-serve: sessions under {}", args.data);
    eprintln!("adya-serve: role: {role}");
    if trace_propagate {
        eprintln!("adya-serve: trace propagation on (node {node}, 1-in-{trace_sample})");
    }

    while !shutdown::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("adya-serve: shutdown requested, draining");
    server.shutdown();
    eprintln!("adya-serve: all sessions parked, bye");
    ExitCode::SUCCESS
}

//! `adya-check` — analyze a transaction history from the command line.
//!
//! Reads a history in the paper's textual notation (from a file or
//! stdin) and prints the full analysis: detected phenomena with
//! witnesses, per-level verdicts, the mixed-level verdict, and
//! optionally the DSG as Graphviz DOT.
//!
//! ```sh
//! echo "w1(x,2) w2(x,5) w2(y,5) c2 w1(y,8) c1 [x1 << x2, y2 << y1]" \
//!   | cargo run --bin adya-check
//!
//! cargo run --bin adya-check -- --dot history.txt
//! cargo run --bin adya-check -- --level PL-3 history.txt   # exit 1 on violation
//! cargo run --bin adya-check -- explain history.txt        # forensic narrative
//! cargo run --bin adya-check -- --trace-out t.json history.txt  # Perfetto timeline
//! ```
//!
//! Notation: `w1(x,5)` write, `r2(x1)` read of T1's version,
//! `rc2(x1)` cursor read, `b1`/`c1`/`a1` begin/commit/abort,
//! `#pred(P,lo,hi)` + `rp1(P: x0,y2)` predicate reads, trailing
//! `[x1 << x2]` version orders. Lines starting with `#` (other than
//! `#pred`) are comments.

use std::fmt::Write as _;
use std::io::{BufRead as _, Read as _, Write as _};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use adya::core::{analyze, Analysis, IsolationLevel};
use adya::engine::RingProducer;
use adya::history::parse_history_completed;
use adya::online::{
    CheckerMonitor, EventLogReader, EventPipeline, HealthPolicy, LogError, OnlineChecker,
    PipelineConfig, StreamParser, Verdict,
};
use adya_obs::{trace::Stage, ObsServer, Response, TracePlane};

/// Where and how `--metrics` output is rendered.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MetricsMode {
    Off,
    /// The original human-readable block (`--metrics`).
    Text,
    /// Prometheus text exposition (`--metrics prom`).
    Prom,
}

struct Args {
    path: Option<String>,
    explain: bool,
    dot: bool,
    json: bool,
    metrics: MetricsMode,
    stream: bool,
    trace_out: Option<String>,
    level: Option<IsolationLevel>,
    /// `--obs-listen ADDR`: serve /metrics, /health, /trace while
    /// streaming.
    obs_listen: Option<String>,
    /// `/health` staleness threshold (ms without an applied event).
    obs_stale_ms: u64,
    /// `/health` ingest-lag threshold (ms from arrival to applied).
    obs_lag_ms: u64,
    /// Tap-side fault injection: sleep this long before applying each
    /// event, inflating ingest lag (exercises the /health semantics).
    delay_event_ms: u64,
    /// `--pipeline-threads N`: stream mode runs the staged ingest
    /// pipeline over N event rings, with the checker on a dedicated
    /// application thread. 0 = classic in-thread sequential ingest.
    pipeline_threads: usize,
    /// `--trace-propagate`: stamp sampled events with per-stage
    /// latency provenance (tap → ring → seq → apply → verdict); the
    /// `/trace` route then embeds the segment for `trace-merge`.
    trace_propagate: bool,
}

/// Minimal JSON string escaping (the only dynamic content is names and
/// witness strings).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the analysis as a JSON object (hand-rolled: the sanctioned
/// dependency set has no serializer, and the shape is small).
fn to_json(
    history: &adya::history::History,
    a: &Analysis,
    metrics: Option<&adya_obs::Snapshot>,
) -> String {
    let mut s = String::from("{\n");
    let _ = writeln!(s, "  \"transactions\": {},", history.txns().count());
    let _ = writeln!(s, "  \"committed\": {},", history.committed_txns().count());
    s.push_str("  \"phenomena\": [");
    for (i, p) in a.phenomena.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"kind\": \"{}\", \"witness\": \"{}\"}}",
            p.kind(),
            esc(&p.to_string())
        );
    }
    s.push_str("],\n  \"levels\": {");
    for (i, c) in a.levels.checks.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{}\": {}", c.level, c.ok());
    }
    s.push_str("},\n");
    let _ = writeln!(
        s,
        "  \"strongest_ansi\": {},",
        a.levels
            .strongest_ansi()
            .map(|l| format!("\"{l}\""))
            .unwrap_or_else(|| "null".to_string())
    );
    match metrics {
        None => {
            let _ = writeln!(s, "  \"mixing_correct\": {}", a.mixing.is_correct());
        }
        Some(snap) => {
            let _ = writeln!(s, "  \"mixing_correct\": {},", a.mixing.is_correct());
            // Re-indent the snapshot's standalone rendering to sit as
            // a field of the top-level object.
            let rendered = snap.to_json();
            let mut lines = rendered.lines();
            let _ = write!(s, "  \"metrics\": {}", lines.next().unwrap_or("{}"));
            for l in lines {
                let _ = write!(s, "\n  {l}");
            }
            s.push('\n');
        }
    }
    s.push('}');
    s
}

/// Renders the metrics snapshot as a human-readable block for the
/// text report.
fn metrics_text(snap: &adya_obs::Snapshot) -> String {
    let mut s = String::from("metrics:\n");
    for (name, v) in &snap.counters {
        let _ = writeln!(s, "  {name} = {v}");
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(s, "  {name} = {v}");
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(
            s,
            "  {name}: count={} sum={} min={} p50={} p90={} p99={} max={}",
            h.count, h.sum, h.min, h.p50, h.p90, h.p99, h.max
        );
    }
    s.pop();
    s
}

fn parse_level(s: &str) -> Option<IsolationLevel> {
    IsolationLevel::ALL
        .iter()
        .copied()
        .find(|l| l.to_string().eq_ignore_ascii_case(s))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: None,
        explain: false,
        dot: false,
        json: false,
        metrics: MetricsMode::Off,
        stream: false,
        trace_out: None,
        level: None,
        obs_listen: None,
        obs_stale_ms: 5_000,
        obs_lag_ms: 1_000,
        delay_event_ms: 0,
        pipeline_threads: 0,
        trace_propagate: false,
    };
    let parse_ms = |flag: &str, v: Option<String>| -> Result<u64, String> {
        let v = v.ok_or_else(|| format!("{flag} needs a millisecond value"))?;
        v.parse()
            .map_err(|_| format!("{flag}: not a millisecond count: {v:?}"))
    };
    let mut it = std::env::args().skip(1).peekable();
    let mut first_positional = true;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dot" => args.dot = true,
            "--json" => args.json = true,
            "--metrics" => {
                // Optional value: `--metrics prom` selects Prometheus
                // exposition; bare `--metrics` keeps the text block.
                args.metrics = match it.peek().map(String::as_str) {
                    Some("prom") => {
                        it.next();
                        MetricsMode::Prom
                    }
                    Some("text") => {
                        it.next();
                        MetricsMode::Text
                    }
                    _ => MetricsMode::Text,
                };
            }
            "--stream" => args.stream = true,
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a file path")?;
                args.trace_out = Some(v);
            }
            "--level" => {
                let v = it.next().ok_or("--level needs a value (e.g. PL-3)")?;
                args.level = Some(parse_level(&v).ok_or_else(|| format!("unknown level {v:?}"))?);
            }
            "--obs-listen" => {
                let v = it
                    .next()
                    .ok_or("--obs-listen needs an address (e.g. 127.0.0.1:0)")?;
                args.obs_listen = Some(v);
            }
            "--pipeline-threads" => {
                let v = it.next().ok_or("--pipeline-threads needs a ring count")?;
                args.pipeline_threads = v
                    .parse()
                    .map_err(|_| format!("--pipeline-threads: not a count: {v:?}"))?;
            }
            "--trace-propagate" => args.trace_propagate = true,
            "--obs-stale-ms" => args.obs_stale_ms = parse_ms("--obs-stale-ms", it.next())?,
            "--obs-lag-ms" => args.obs_lag_ms = parse_ms("--obs-lag-ms", it.next())?,
            "--delay-event-ms" => args.delay_event_ms = parse_ms("--delay-event-ms", it.next())?,
            "--help" | "-h" => {
                return Err(USAGE.to_string());
            }
            "explain" if first_positional => {
                args.explain = true;
                first_positional = false;
            }
            p if !p.starts_with('-') => {
                args.path = Some(p.to_string());
                first_positional = false;
            }
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

const USAGE: &str = "usage: adya-check [explain] [--dot] [--json] [--metrics [prom]] [--stream]
                  [--pipeline-threads N] [--trace-out FILE] [--level PL-3]
                  [--obs-listen ADDR] [--obs-stale-ms MS] [--obs-lag-ms MS]
                  [--delay-event-ms MS] [--trace-propagate] [FILE]
       adya-check trace-merge FILE... [--out FILE]
Reads a history (paper notation) from FILE or stdin and analyzes it.
  explain        forensic mode: shrink the history to a minimal
                 sub-history per detected phenomenon and print a
                 narrative citing the operations behind every cycle
                 edge (with --dot, also a cycle-scoped DOT per witness)
  --dot          also print the DSG as Graphviz DOT; with --stream,
                 emit a cycle-scoped DOT to stderr for each verdict
                 that fires a new phenomenon (stdout stays NDJSON)
  --json         machine-readable output instead of the text report
  --metrics      append checker metrics (phase timings, graph stats);
                 `--metrics prom` renders them as Prometheus text
                 exposition instead of the human-readable block
  --trace-out F  write the history as Chrome trace-event JSON (open in
                 Perfetto / chrome://tracing). With --stream, writes
                 rotating trace segments F.0..F.3 of checker spans over
                 a bounded ring instead (memory stays bounded on
                 unbounded streams)
  --stream       incremental mode: ingest events one at a time and emit
                 one NDJSON verdict line per commit plus a final line;
                 binary event logs (ADYALOG magic) are auto-detected.
                 A torn tail — text cut mid-token on the last line, or
                 a binary log whose final record is incomplete — emits
                 a {\"error\":\"truncated_input\",...} record plus the
                 verdict of the intact prefix, and exits 3; damage
                 before the end is corruption and exits 2. Predicate
                 reads and explicit version orders are not supported,
                 and --level is restricted to the ANSI chain
  --pipeline-threads N
                 stream only: run the staged ingest pipeline — this
                 thread parses and stamps events into N bounded rings
                 while a dedicated application thread drains them in
                 sequence order and applies batches; the verdict
                 stream is byte-identical to the sequential path.
                 Incompatible with --obs-listen, --trace-out and
                 --delay-event-ms (per-event hooks are sequential)
  --level LEVEL  exit non-zero unless the history satisfies LEVEL
                 (PL-1, PL-2, PL-CS, PL-MAV, PL-2+, PL-2.99, PL-SI, PL-3)
  --obs-listen A stream only: serve a live obs endpoint on address A
                 (e.g. 127.0.0.1:9464; port 0 picks one — the bound
                 address is printed to stderr). Routes: /metrics
                 (Prometheus text), /health (JSON SLIs; HTTP 503 when
                 degraded), /trace (Chrome trace of recent spans)
  --obs-stale-ms /health degrades after this many ms without an
                 applied event (default 5000)
  --obs-lag-ms   /health degrades when ingest lag (event arrival to
                 applied) exceeds this many ms (default 1000)
  --delay-event-ms
                 fault injection: sleep this long before applying each
                 event — induces ingest lag the obs plane must report
  --trace-propagate
                 stream only: stamp sampled events with per-stage
                 latency provenance; /trace then embeds this node's
                 segment under \"provenance\" for trace-merge
  trace-merge    join /trace captures from several nodes into one
                 cross-node Chrome/Perfetto timeline: each verdict's
                 provenance renders as one flow across per-node lanes
                 (clock offsets estimated from replication stamps)";

/// Exit code for a cleanly detected torn tail (distinct from level
/// violations = 1 and hard errors = 2).
const EXIT_TRUNCATED: u8 = 3;

/// Emits the metrics snapshot to stderr in the selected rendering
/// (stream modes keep stdout pure NDJSON).
fn emit_metrics_stderr(mode: MetricsMode) {
    match mode {
        MetricsMode::Off => {}
        MetricsMode::Text => eprintln!("{}", metrics_text(&adya_obs::global().snapshot())),
        MetricsMode::Prom => eprint!("{}", adya_obs::global().snapshot().to_prometheus()),
    }
}

/// Emits one complete DOT document to stderr as a single buffered
/// write under the stderr lock, then flushes. `eprint!` wrote the
/// graph through the unbuffered stderr handle a fragment at a time,
/// so under redirection a concurrent NDJSON line (or another thread's
/// diagnostics) could land mid-graph; one `write_all` + flush means
/// the document is never torn.
fn emit_dot_stderr(d: &str) {
    let stderr = std::io::stderr();
    let mut h = stderr.lock();
    let _ = h.write_all(d.as_bytes());
    let _ = h.flush();
}

/// Telemetry sampling period used by the stream obs plane: every Nth
/// event gets full span attribution. 32 keeps E17's measured ingest
/// overhead inside the 10% budget that provenance (E16) was held to.
const TELEMETRY_SAMPLE_EVERY: u32 = 32;

/// Trace segments kept by the streaming `--trace-out` ring.
const TRACE_SEGMENTS: u64 = 4;

/// Events between trace segment rotations. The global span ring holds
/// 4096 spans; at 1-in-32 sampling this rotates well before overwrite.
const TRACE_ROTATE_EVENTS: u64 = 8192;

/// Streaming `--trace-out`: rotating Chrome-trace segments over the
/// bounded global span ring. Long-running streams get `FILE.0` ..
/// `FILE.3`, newest overwriting oldest — bounded memory AND bounded
/// disk, instead of buffering the whole run like batch mode.
struct TraceRing {
    base: String,
    segment: u64,
    last_rotate_events: u64,
}

impl TraceRing {
    fn new(base: String) -> TraceRing {
        TraceRing {
            base,
            segment: 0,
            last_rotate_events: 0,
        }
    }

    fn maybe_rotate(&mut self, events: u64) {
        if events.saturating_sub(self.last_rotate_events) >= TRACE_ROTATE_EVENTS {
            self.last_rotate_events = events;
            self.rotate(false);
        }
    }

    /// Drains the span ring into the next segment file. Mid-stream
    /// rotations skip an empty ring; the final rotation (`force`)
    /// always writes, so `--trace-out F` yields at least `F.0` even
    /// on streams too short to sample a span.
    fn rotate(&mut self, force: bool) {
        let reg = adya_obs::global();
        let records = reg.span_records();
        if records.is_empty() && !force {
            return;
        }
        let path = format!("{}.{}", self.base, self.segment % TRACE_SEGMENTS);
        let body = adya_obs::chrome_trace(&records, reg.spans_dropped());
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("adya-check: cannot write {path}: {e}");
        }
        reg.reset_spans();
        self.segment += 1;
    }
}

/// The live obs plane for one `--stream` run: checker monitor, HTTP
/// endpoint, fault-injection delay, and the trace segment ring —
/// each present only when the corresponding flag asked for it.
struct StreamObs {
    monitor: Option<Arc<CheckerMonitor>>,
    server: Option<ObsServer>,
    delay: Option<Duration>,
    trace: Option<TraceRing>,
}

impl StreamObs {
    /// Builds the plane from the flags and arms the checker's sampled
    /// telemetry when any of it is on. `plane` is the latency-
    /// provenance plane (`--trace-propagate`), embedded in `/trace`
    /// responses so `trace-merge` can pick the segment up.
    fn start(
        args: &Args,
        checker: &mut OnlineChecker,
        plane: Option<Arc<TracePlane>>,
    ) -> Result<StreamObs, String> {
        let mut obs = StreamObs {
            monitor: None,
            server: None,
            delay: (args.delay_event_ms > 0).then(|| Duration::from_millis(args.delay_event_ms)),
            trace: args.trace_out.clone().map(TraceRing::new),
        };
        if args.obs_listen.is_some() || obs.trace.is_some() {
            checker.set_telemetry_sampling(TELEMETRY_SAMPLE_EVERY);
        }
        if let Some(addr) = &args.obs_listen {
            let monitor = Arc::new(CheckerMonitor::new(HealthPolicy {
                stale_ms: args.obs_stale_ms,
                lag_ms: args.obs_lag_ms,
            }));
            let handler_monitor = Arc::clone(&monitor);
            let handler_plane = plane.clone();
            let server = ObsServer::bind(
                addr,
                Arc::new(move |path: &str| match path {
                    "/metrics" => Response::ok(
                        "text/plain; version=0.0.4; charset=utf-8",
                        adya_obs::global().snapshot().to_prometheus(),
                    ),
                    "/health" => {
                        let body = handler_monitor.health_json();
                        let status = if handler_monitor.judge().is_ok() {
                            200
                        } else {
                            503
                        };
                        Response {
                            status,
                            content_type: "application/json",
                            body: body.into_bytes(),
                        }
                    }
                    "/trace" => {
                        let reg = adya_obs::global();
                        let chrome =
                            adya_obs::chrome_trace(&reg.span_records(), reg.spans_dropped());
                        Response::json(match &handler_plane {
                            Some(p) => adya_obs::attach_provenance(&chrome, &p.segment_json()),
                            None => chrome,
                        })
                    }
                    _ => Response::status(404, "routes: /metrics /health /trace\n"),
                }),
            )
            .map_err(|e| format!("cannot bind obs endpoint {addr}: {e}"))?;
            eprintln!(
                "adya-check: obs endpoint listening on {}",
                server.local_addr()
            );
            obs.monitor = Some(monitor);
            obs.server = Some(server);
        }
        Ok(obs)
    }

    /// Marks one event's arrival and applies the injected tap delay.
    /// The timestamp (present when the monitor samples this event)
    /// anchors the ingest-lag SLI, so the delay shows up as lag on
    /// the next sampled `/health` render — and the first event is
    /// always sampled.
    fn event_arrived(&self) -> Option<Instant> {
        let arrived = self.monitor.as_ref().and_then(|m| m.arrival());
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
        arrived
    }

    /// Records one applied event (and its verdict, when the event was
    /// a commit) into the monitor, and rotates the trace ring.
    fn event_applied(
        &mut self,
        checker: &OnlineChecker,
        arrived: Option<Instant>,
        v: Option<&Verdict>,
    ) {
        if let Some(m) = &self.monitor {
            m.observe_event(checker, arrived);
            if let Some(v) = v {
                m.observe_verdict(v);
            }
        }
        if let Some(tr) = &mut self.trace {
            tr.maybe_rotate(checker.events());
        }
    }

    /// Final verdict: last monitor update, final trace segment.
    fn finish(&mut self, v: &Verdict) {
        if let Some(m) = &self.monitor {
            m.observe_verdict(v);
        }
        if let Some(tr) = &mut self.trace {
            tr.rotate(true);
        }
    }
}

/// Cycle-scoped DOT for one violating stream verdict, built from the
/// verdict's cycle provenance. `None` when the verdict fired nothing
/// new or carries no cycle (provenance off, or a non-cycle phenomenon
/// such as G1a/G1b).
fn stream_cycle_dot(v: &Verdict) -> Option<String> {
    let cycle = v.cycle.as_ref()?;
    if cycle.is_empty() || v.new_fired.is_empty() {
        return None;
    }
    let name: String = v
        .new_fired
        .iter()
        .map(|k| k.to_string())
        .collect::<Vec<_>>()
        .join("_")
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut s = format!("digraph {name} {{\n  rankdir=LR;\n  node [shape=circle];\n");
    let mut nodes: Vec<adya::history::TxnId> = Vec::new();
    for e in cycle {
        for t in [e.from, e.to] {
            if !nodes.contains(&t) {
                nodes.push(t);
            }
        }
    }
    for n in &nodes {
        let _ = writeln!(s, "  \"{n}\";");
    }
    for e in cycle {
        let kind = if e.anti { "rw" } else { "ww/wr" };
        let label = if e.via.is_empty() {
            kind.to_string()
        } else {
            format!("{kind}\\n{}", esc(&e.via))
        };
        let _ = writeln!(s, "  \"{}\" -> \"{}\" [label=\"{label}\"];", e.from, e.to);
    }
    s.push_str("}\n");
    Some(s)
}

/// Where `--stream` events go: the classic in-thread checker, or the
/// staged ingest pipeline (`--pipeline-threads N`) with the checker on
/// a dedicated application thread while this thread only parses and
/// stamps dense sequence numbers into the rings.
enum StreamSink {
    Sequential {
        checker: Box<OnlineChecker>,
        obs: StreamObs,
        emitted: u64,
        dot: bool,
        /// Latency-provenance plane (`--trace-propagate`) plus the
        /// dense event sequence its sampling keys off.
        plane: Option<Arc<TracePlane>>,
        seq: u64,
    },
    Pipelined {
        producers: Vec<RingProducer>,
        next: u64,
        handle: std::thread::JoinHandle<(OnlineChecker, u64)>,
        /// Producer-side stamping (`tap`/`ring`); the pipeline's
        /// application thread stamps `seq`/`apply`/`verdict`.
        plane: Option<Arc<TracePlane>>,
    },
}

/// Trace-id scope for `adya-check --stream` provenance.
const STREAM_TRACE_SCOPE: &str = "stream";

impl StreamSink {
    fn start(args: &Args) -> Result<StreamSink, String> {
        let plane = args
            .trace_propagate
            .then(|| Arc::new(TracePlane::new("check", "leader")));
        if args.pipeline_threads == 0 {
            let mut checker = OnlineChecker::new();
            // This tool exists to explain violations, so it pays for
            // the per-edge provenance the library leaves off by
            // default.
            checker.set_provenance(true);
            let obs = StreamObs::start(args, &mut checker, plane.clone())?;
            return Ok(StreamSink::Sequential {
                checker: Box::new(checker),
                obs,
                emitted: 0,
                dot: args.dot,
                plane,
                seq: 0,
            });
        }
        let cfg = PipelineConfig {
            rings: args.pipeline_threads,
            ..PipelineConfig::default()
        };
        let (producers, mut pipe) = EventPipeline::manual(cfg);
        if let Some(p) = &plane {
            pipe.set_trace(Arc::clone(p), STREAM_TRACE_SCOPE);
        }
        let dot = args.dot;
        let handle = std::thread::Builder::new()
            .name("adya-check-apply".into())
            .spawn(move || {
                let mut checker = OnlineChecker::new();
                checker.set_provenance(true); // see above
                let mut emitted = 0u64;
                pipe.run(&mut checker, |v| {
                    emitted += 1;
                    println!("{}", v.to_json());
                    if dot {
                        if let Some(d) = stream_cycle_dot(&v) {
                            emit_dot_stderr(&d);
                        }
                    }
                });
                (checker, emitted)
            })
            .map_err(|e| format!("cannot spawn application thread: {e}"))?;
        Ok(StreamSink::Pipelined {
            producers,
            next: 0,
            handle,
            plane,
        })
    }

    /// Feeds one parsed event; sequential mode also prints any commit
    /// verdict (pipelined mode prints from the application thread).
    fn feed(&mut self, ev: adya::history::Event) {
        match self {
            StreamSink::Sequential {
                checker,
                obs,
                emitted,
                dot,
                plane,
                seq,
            } => {
                // In-thread ingest plays every pre-apply stage itself:
                // arrival (`tap`), line buffer (`ring`), sequencing.
                let tid = plane.as_ref().and_then(|p| {
                    let s = *seq;
                    *seq += 1;
                    p.sampled(s).then(|| {
                        let id = adya_obs::trace_id(STREAM_TRACE_SCOPE, s);
                        p.stamp(id, Stage::Tap);
                        p.stamp(id, Stage::Ring);
                        p.stamp(id, Stage::Seq);
                        id
                    })
                });
                let arrived = obs.event_arrived();
                let v = checker.ingest(&ev);
                if let (Some(p), Some(id)) = (plane.as_ref(), tid) {
                    p.stamp(id, Stage::Apply);
                    if v.is_some() {
                        p.stamp(id, Stage::Verdict);
                    }
                }
                obs.event_applied(checker, arrived, v.as_ref());
                if let Some(v) = v {
                    *emitted += 1;
                    println!("{}", v.to_json());
                    if *dot {
                        if let Some(d) = stream_cycle_dot(&v) {
                            emit_dot_stderr(&d);
                        }
                    }
                }
            }
            StreamSink::Pipelined {
                producers,
                next,
                plane,
                ..
            } => {
                if let Some(p) = plane {
                    if p.sampled(*next) {
                        let id = adya_obs::trace_id(STREAM_TRACE_SCOPE, *next);
                        p.stamp(id, Stage::Tap);
                        p.stamp(id, Stage::Ring);
                    }
                }
                producers[(*next as usize) % producers.len()].push(*next, ev);
                *next += 1;
            }
        }
    }

    /// Ends the stream and reclaims the checker — in pipelined mode by
    /// closing the rings (dropping the producers) and joining the
    /// application thread, which first drains and prints everything
    /// still buffered. Returns the checker, the number of verdicts
    /// emitted so far, and the obs plane when one was armed.
    fn close(self) -> (OnlineChecker, u64, Option<StreamObs>) {
        match self {
            StreamSink::Sequential {
                checker,
                obs,
                emitted,
                ..
            } => (*checker, emitted, Some(obs)),
            StreamSink::Pipelined {
                producers, handle, ..
            } => {
                drop(producers);
                let (checker, emitted) = handle
                    .join()
                    .expect("pipeline application thread must not panic");
                (checker, emitted, None)
            }
        }
    }
}

/// Emits the `truncated_input` NDJSON record, the final verdict of the
/// intact prefix, and optional metrics; the caller exits 3.
fn finish_truncated(
    mut checker: OnlineChecker,
    detail: &str,
    at_field: &str,
    at: usize,
    metrics: MetricsMode,
) -> ExitCode {
    println!(
        "{{\"error\": \"truncated_input\", \"{at_field}\": {at}, \"detail\": \"{}\"}}",
        esc(detail)
    );
    println!("{}", checker.finish().to_json());
    emit_metrics_stderr(metrics);
    ExitCode::from(EXIT_TRUNCATED)
}

/// `--stream` over a binary event log (detected via [`LOG_MAGIC`]):
/// a torn final record is reported as `truncated_input` (exit 3), an
/// earlier damaged record as corruption (exit 2).
///
/// [`LOG_MAGIC`]: adya::online::LOG_MAGIC
fn run_stream_binary(args: &Args, buf: &[u8]) -> ExitCode {
    let mut log = match EventLogReader::open(buf) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("adya-check: {e}");
            return ExitCode::from(2);
        }
    };
    let mut sink = match StreamSink::start(args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("adya-check: {e}");
            return ExitCode::from(2);
        }
    };
    let mut was_shutdown = false;
    while let Some(item) = log.next() {
        if adya_serve::shutdown::requested() {
            // SIGTERM/ctrl-c: stop ingesting, emit the closing frame,
            // then fall through to the ordinary final verdict so the
            // stream ends the same way an EOF would.
            was_shutdown = true;
            break;
        }
        match item {
            Ok(ev) => sink.feed(ev),
            Err(LogError::TornTail { good_len, detail }) => {
                let (checker, _, _) = sink.close();
                return finish_truncated(checker, &detail, "good_len", good_len, args.metrics);
            }
            Err(e) => {
                eprintln!("adya-check: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let (mut checker, emitted, mut obs) = sink.close();
    if was_shutdown {
        println!(
            "{}",
            adya_serve::proto::closing_frame("shutdown", None, checker.events(), emitted)
        );
    }
    let fin = checker.finish();
    if let Some(obs) = &mut obs {
        obs.finish(&fin);
    }
    println!("{}", fin.to_json());
    emit_metrics_stderr(args.metrics);
    if let Some(level) = args.level {
        if !fin.satisfies(level) {
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

/// `--stream`: feed the input token-by-token through the incremental
/// checker, emitting one NDJSON verdict per commit and a final summary
/// line (`"final": true`). Metrics go to stderr so stdout stays pure
/// NDJSON. Binary event logs are detected by their magic and handed to
/// [`run_stream_binary`]; a malformed token with nothing but
/// whitespace/comments after it is treated as a torn tail (the input
/// was cut mid-write), reported as a `truncated_input` record with
/// exit 3 rather than a hard parse error.
fn run_stream(args: &Args) -> ExitCode {
    // Streaming runs can be long-lived sidecars; SIGTERM/ctrl-c must
    // end them with a closing frame and a final verdict, not mid-line.
    adya_serve::shutdown::install();
    if args.pipeline_threads > 0
        && (args.obs_listen.is_some() || args.delay_event_ms > 0 || args.trace_out.is_some())
    {
        eprintln!(
            "adya-check: --obs-listen, --trace-out and --delay-event-ms hook each event \
             in-thread; drop --pipeline-threads to use them"
        );
        return ExitCode::from(2);
    }
    if let Some(level) = args.level {
        let ansi = [
            IsolationLevel::PL1,
            IsolationLevel::PL2,
            IsolationLevel::PL299,
            IsolationLevel::PL3,
        ];
        if !ansi.contains(&level) {
            eprintln!("adya-check: --stream verdicts cover the ANSI chain only (PL-1, PL-2, PL-2.99, PL-3), not {level}");
            return ExitCode::from(2);
        }
    }
    let mut raw: Box<dyn std::io::Read> = match &args.path {
        Some(p) => match std::fs::File::open(p) {
            Ok(f) => Box::new(f),
            Err(e) => {
                eprintln!("adya-check: cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        },
        None => Box::new(std::io::stdin()),
    };
    // Peek the first 8 bytes to auto-detect a binary event log.
    let mut header = [0u8; 8];
    let mut got = 0;
    while got < header.len() {
        match raw.read(&mut header[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) => {
                eprintln!("adya-check: read error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if EventLogReader::sniff(&header[..got]) {
        let mut buf = header[..got].to_vec();
        if let Err(e) = raw.read_to_end(&mut buf) {
            eprintln!("adya-check: read error: {e}");
            return ExitCode::from(2);
        }
        return run_stream_binary(args, &buf);
    }
    let reader = std::io::BufReader::new(std::io::Read::chain(
        std::io::Cursor::new(header[..got].to_vec()),
        raw,
    ));

    let mut parser = StreamParser::new();
    let mut sink = match StreamSink::start(args) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("adya-check: {e}");
            return ExitCode::from(2);
        }
    };

    // (line number, parse error, were there tokens after it)
    let mut damage: Option<(usize, String, bool)> = None;
    let mut was_shutdown = false;
    let mut lines = reader.lines().enumerate();
    'ingest: for (ix, line) in lines.by_ref() {
        if adya_serve::shutdown::requested() {
            was_shutdown = true;
            break 'ingest;
        }
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("adya-check: read error on line {}: {e}", ix + 1);
                return ExitCode::from(2);
            }
        };
        let t = line.trim_start();
        // Comment lines; `#pred(` is deliberately NOT exempted here —
        // it reaches the parser, which explains why it is unsupported.
        if t.starts_with('#') && !t.starts_with("#pred(") {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        for (ti, tok) in toks.iter().enumerate() {
            let ev = match parser.parse_token(tok) {
                Ok(e) => e,
                Err(e) => {
                    damage = Some((ix + 1, e.to_string(), ti + 1 < toks.len()));
                    break 'ingest;
                }
            };
            sink.feed(ev);
        }
    }
    if let Some((line_no, msg, mid_line)) = damage {
        // A bad token is a torn tail only when nothing meaningful
        // follows it; otherwise the input is corrupt, not truncated.
        let more_input = mid_line
            || lines.any(|(_, l)| {
                l.map(|l| {
                    let t = l.trim_start();
                    !t.is_empty() && (!t.starts_with('#') || t.starts_with("#pred("))
                })
                .unwrap_or(false)
            });
        if more_input {
            eprintln!("adya-check: line {line_no}: {msg}");
            return ExitCode::from(2);
        }
        let (checker, _, _) = sink.close();
        return finish_truncated(checker, &msg, "line", line_no, args.metrics);
    }
    let (mut checker, emitted, mut obs) = sink.close();
    if was_shutdown {
        println!(
            "{}",
            adya_serve::proto::closing_frame("shutdown", None, checker.events(), emitted)
        );
    }
    let fin = checker.finish();
    if let Some(obs) = &mut obs {
        obs.finish(&fin);
    }
    println!("{}", fin.to_json());
    emit_metrics_stderr(args.metrics);
    if let Some(level) = args.level {
        if !fin.satisfies(level) {
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

/// `explain` mode: shrink the history to a minimal sub-history per
/// detected phenomenon and print a narrative citing the operations
/// behind every cycle edge. With `--dot`, a cycle-scoped DOT per
/// witness follows its narrative; `--trace-out` is honored. Always
/// exits 0 on a well-formed history — forensics is a report, not a
/// level check.
fn run_explain(history: &adya::history::History, args: &Args) -> ExitCode {
    let witnesses = adya::forensics::extract_all(history);
    if witnesses.is_empty() {
        println!("no phenomena detected");
    }
    for (i, w) in witnesses.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print!("{}", adya::forensics::narrative(w));
        if args.dot {
            print!("{}", adya::forensics::cycle_dot(w, &w.kind.to_string()));
        }
    }
    if let Some(path) = &args.trace_out {
        let a = analyze(history);
        if let Err(e) = std::fs::write(path, adya::forensics::trace_json(history, Some(&a))) {
            eprintln!("adya-check: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

/// `adya-check trace-merge A.json B.json [--out F]`: joins `/trace`
/// captures from several nodes into one cross-node Chrome/Perfetto
/// timeline. Each input is either a bare trace segment or a full
/// `/trace` response with the segment embedded under `"provenance"`.
fn run_trace_merge() -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(2);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(v) => out = Some(v),
                None => {
                    eprintln!("adya-check: --out needs a file path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: adya-check trace-merge FILE... [--out FILE]");
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => {
                eprintln!("adya-check: unknown trace-merge flag {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    if files.is_empty() {
        eprintln!("usage: adya-check trace-merge FILE... [--out FILE]");
        return ExitCode::from(2);
    }
    let mut segments = Vec::with_capacity(files.len());
    for f in &files {
        let raw = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("adya-check: cannot read {f}: {e}");
                return ExitCode::from(2);
            }
        };
        match adya_obs::parse_segment(&raw) {
            Ok(seg) => segments.push(seg),
            Err(e) => {
                eprintln!("adya-check: {f}: {e} (was the node running with --trace-propagate?)");
                return ExitCode::from(2);
            }
        }
    }
    let merged = adya_obs::merge_segments(&segments);
    match out {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, &merged) {
                eprintln!("adya-check: cannot write {p}: {e}");
                return ExitCode::from(2);
            }
            eprintln!("adya-check: merged {} segment(s) into {p}", segments.len());
        }
        None => println!("{merged}"),
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    // `trace-merge` is a standalone subcommand with its own flags.
    if std::env::args().nth(1).as_deref() == Some("trace-merge") {
        return run_trace_merge();
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if !args.stream
        && (args.obs_listen.is_some() || args.delay_event_ms > 0 || args.trace_propagate)
    {
        eprintln!("adya-check: --obs-listen, --delay-event-ms and --trace-propagate need --stream");
        return ExitCode::from(2);
    }
    if args.stream {
        if args.explain {
            eprintln!("adya-check: explain needs the complete history (drop --stream)");
            return ExitCode::from(2);
        }
        return run_stream(&args);
    }
    let raw = match &args.path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("adya-check: cannot read {p}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut s = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut s) {
                eprintln!("adya-check: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
            s
        }
    };
    // Strip comment lines (but keep #pred directives).
    let text: String = raw
        .lines()
        .filter(|l| {
            let t = l.trim_start();
            !t.starts_with('#') || t.starts_with("#pred(")
        })
        .collect::<Vec<_>>()
        .join(" ");

    let history = match parse_history_completed(&text) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("adya-check: invalid history: {e}");
            return ExitCode::from(2);
        }
    };

    if args.explain {
        return run_explain(&history, &args);
    }

    let a = analyze(&history);
    if let Some(path) = &args.trace_out {
        if let Err(e) = std::fs::write(path, adya::forensics::trace_json(&history, Some(&a))) {
            eprintln!("adya-check: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    let metrics = (args.metrics == MetricsMode::Text).then(|| adya_obs::global().snapshot());
    if args.json {
        println!("{}", to_json(&history, &a, metrics.as_ref()));
        if args.metrics == MetricsMode::Prom {
            // Prometheus exposition is not JSON; keep stdout valid and
            // expose the metrics on stderr.
            eprint!("{}", adya_obs::global().snapshot().to_prometheus());
        }
    } else {
        println!("history: {history}");
        println!(
            "transactions: {} ({} committed)\n",
            history.txns().count(),
            history.committed_txns().count()
        );
        println!("{a}");
        if let Some(snap) = &metrics {
            println!("\n{}", metrics_text(snap));
        }
        if args.metrics == MetricsMode::Prom {
            print!("\n{}", adya_obs::global().snapshot().to_prometheus());
        }
        if args.dot {
            println!("\n{}", a.dsg.to_dot("history"));
        }
    }
    if let Some(level) = args.level {
        let ok = a.levels.satisfies(level);
        if !args.json {
            println!("\n{level}: {}", if ok { "SATISFIED" } else { "VIOLATED" });
        }
        if !ok {
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}

//! The drivers' shared retry discipline.
//!
//! Both drivers used to carry their own inline restart loops; under a
//! fault plane (`adya-faults`) those loops become the system's actual
//! recovery path, so they are factored into one explicit, metered
//! policy. A [`RetryPolicy`] bounds how hard a session fights for its
//! transaction: a restart budget, an optional per-transaction
//! operation deadline, and — for the threaded driver — bounded
//! exponential backoff with seeded jitter between `Blocked` retries.
//!
//! One deliberate asymmetry: a program's *own* `abort` step is
//! terminal and never reaches the policy — the drivers resolve it
//! directly. Every `Aborted(reason)` surfaced by an *operation* is
//! treated as restartable, including `Requested`: with an external
//! fault plane a transaction can be aborted out from under a thread
//! mid-operation, and the bookkeeping reason the engine attaches to
//! that race must not be confused with the program's intent.

use adya_engine::AbortReason;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bounds on a session's retry behaviour.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total transaction attempts per program (first try included).
    pub max_attempts: usize,
    /// Backoff spins (yields) after the first `Blocked` retry of an
    /// operation; doubles per consecutive retry.
    pub backoff_base: u32,
    /// Ceiling on the exponential backoff.
    pub backoff_cap: u32,
    /// Fraction of the backoff drawn as seeded jitter (`0.0` = fixed
    /// schedule, `1.0` = up to double).
    pub jitter: f64,
    /// Operations one program may issue across all its attempts
    /// before the session gives up; `None` = unbounded.
    pub deadline_ops: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 25,
            backoff_base: 4,
            backoff_cap: 256,
            jitter: 0.5,
            deadline_ops: None,
        }
    }
}

/// Why a session stopped retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GiveUpCause {
    /// The restart budget ran out.
    Attempts,
    /// The per-transaction operation deadline ran out.
    Deadline,
}

impl RetryPolicy {
    /// Per-program retry state; `seed` feeds the jitter RNG so equal
    /// seeds replay equal backoff schedules.
    pub fn session(&self, seed: u64) -> RetrySession {
        RetrySession {
            policy: *self,
            rng: StdRng::seed_from_u64(seed),
            attempts: 1,
            ops: 0,
            streak: 0,
        }
    }
}

/// One program's retry state: attempt count, op deadline, and the
/// blocked-retry backoff streak.
#[derive(Debug)]
pub struct RetrySession {
    policy: RetryPolicy,
    rng: StdRng,
    attempts: usize,
    ops: u64,
    streak: u32,
}

impl RetrySession {
    /// Accounts one operation against the deadline. `false` means the
    /// deadline is exhausted and the session must give up.
    pub fn admit_op(&mut self) -> bool {
        self.ops += 1;
        match self.policy.deadline_ops {
            Some(d) if self.ops > d => {
                adya_obs::counter!("retry.deadline_giveups").inc();
                false
            }
            _ => true,
        }
    }

    /// Yields to spin before retrying a `Blocked` operation:
    /// exponential in the consecutive-block streak, capped, with
    /// seeded jitter.
    pub fn backoff_spins(&mut self) -> u32 {
        let exp = self.streak.min(16);
        self.streak += 1;
        let base = self
            .policy
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.policy.backoff_cap);
        let jitter_max = ((base as f64) * self.policy.jitter) as u32;
        let spins = if jitter_max > 0 {
            base + self.rng.gen_range(0..=jitter_max)
        } else {
            base
        };
        adya_obs::histogram!("retry.backoff_spins").record(spins as u64);
        spins
    }

    /// An operation went through (or the attempt restarted): the
    /// consecutive-block streak is over.
    pub fn clear_backoff(&mut self) {
        self.streak = 0;
    }

    /// An attempt died with `reason`. `Ok(())` means begin a fresh
    /// attempt; `Err` says why the session is done instead.
    pub fn should_restart(&mut self, reason: &AbortReason) -> Result<(), GiveUpCause> {
        self.streak = 0;
        if self.attempts >= self.policy.max_attempts {
            adya_obs::counter!("retry.giveups").inc();
            adya_obs::global().event(
                "retry.giveup",
                vec![
                    ("reason".into(), adya_obs::Field::from(reason.to_string())),
                    (
                        "attempts".into(),
                        adya_obs::Field::from(self.attempts as u64),
                    ),
                ],
            );
            return Err(GiveUpCause::Attempts);
        }
        self.attempts += 1;
        adya_obs::counter!("retry.restarts").inc();
        Ok(())
    }

    /// Attempts begun so far (≥ 1).
    pub fn attempts(&self) -> usize {
        self.attempts
    }

    /// Operations accounted so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_budget_is_total_attempts() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..Default::default()
        };
        let mut s = p.session(0);
        assert!(s.should_restart(&AbortReason::DeadlockVictim).is_ok());
        assert!(s.should_restart(&AbortReason::DeadlockVictim).is_ok());
        assert_eq!(
            s.should_restart(&AbortReason::DeadlockVictim),
            Err(GiveUpCause::Attempts)
        );
        assert_eq!(s.attempts(), 3);
    }

    #[test]
    fn deadline_counts_ops_across_attempts() {
        let p = RetryPolicy {
            deadline_ops: Some(5),
            ..Default::default()
        };
        let mut s = p.session(0);
        for _ in 0..5 {
            assert!(s.admit_op());
        }
        s.should_restart(&AbortReason::DeadlockVictim).unwrap();
        assert!(!s.admit_op(), "deadline spans restarts");
    }

    #[test]
    fn backoff_grows_is_capped_and_replays_per_seed() {
        let p = RetryPolicy {
            backoff_base: 4,
            backoff_cap: 64,
            jitter: 0.5,
            ..Default::default()
        };
        let mut a = p.session(7);
        let mut b = p.session(7);
        let sa: Vec<u32> = (0..10).map(|_| a.backoff_spins()).collect();
        let sb: Vec<u32> = (0..10).map(|_| b.backoff_spins()).collect();
        assert_eq!(sa, sb, "jitter must replay from the seed");
        assert!(sa.windows(2).take(4).all(|w| w[1] >= w[0] || w[1] >= 64));
        // cap + max jitter
        assert!(sa.iter().all(|&s| (4..=96).contains(&s)), "{sa:?}");
        a.clear_backoff();
        let after = a.backoff_spins();
        assert!((4..=6).contains(&after), "streak resets: {after}");
    }
}

//! Direct random-history sampling (no engine in the loop).
//!
//! Permissiveness experiments (E11) and the checker's property tests
//! need histories drawn from a *neutral* distribution — not the output
//! of any particular concurrency control, which would bias the sample
//! toward its own admissible set. This generator emits well-formed
//! histories with tunable "dirtiness": probability of reading
//! uncommitted tips, abort rates, and (optionally) version orders that
//! deviate from commit order, as multi-version systems produce.

use adya_history::{History, HistoryBuilder, ObjectId, TxnId, Value, VersionId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for the random-history sampler.
#[derive(Debug, Clone)]
pub struct HistGenConfig {
    /// Number of transactions.
    pub txns: usize,
    /// Number of (preloaded) objects.
    pub objects: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Probability an operation is a write.
    pub write_prob: f64,
    /// Probability a read observes the *latest version regardless of
    /// commit status* (dirty) instead of the latest committed one.
    pub dirty_read_prob: f64,
    /// Probability a transaction aborts.
    pub abort_prob: f64,
    /// Probability that an object's committed version order is a
    /// random permutation instead of commit order (multi-version
    /// flavour). Leave at 0 to model single-version systems.
    pub shuffle_order_prob: f64,
    /// Concurrency window: at most this many transactions are live at
    /// once; the next one starts only when a slot frees up (how a
    /// connection-pooled system behaves, and what a bounded-memory
    /// streaming checker can exploit). `0` means unbounded — every
    /// transaction is live from the start.
    pub max_concurrent: usize,
}

impl Default for HistGenConfig {
    fn default() -> Self {
        HistGenConfig {
            txns: 6,
            objects: 4,
            ops_per_txn: 4,
            write_prob: 0.5,
            dirty_read_prob: 0.3,
            abort_prob: 0.15,
            shuffle_order_prob: 0.0,
            max_concurrent: 0,
        }
    }
}

/// Tracks the live version bookkeeping during generation.
///
/// Mirrors an in-place store: when a transaction aborts, its versions
/// are undone and disappear from the chain — so a "dirty" read can
/// only ever observe versions of live (uncommitted) or committed
/// transactions, exactly as in any implementation the preventative
/// definitions reason about. (Reading a version *before* its writer
/// aborts is still possible, which is what G1a is for.)
struct ObjState {
    id: ObjectId,
    /// Live versions in install order: (writer, seq).
    versions: Vec<(TxnId, u32)>,
}

/// Digit-free object names: "oa", "ob", …, "oaa".
fn obj_name(mut i: usize) -> String {
    let mut suffix = String::new();
    loop {
        suffix.insert(0, (b'a' + (i % 26) as u8) as char);
        i /= 26;
        if i == 0 {
            break;
        }
        i -= 1;
    }
    format!("o{suffix}")
}

/// Samples one random well-formed history.
pub fn random_history(cfg: &HistGenConfig, seed: u64) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HistoryBuilder::new();

    let mut objs: Vec<ObjState> = (0..cfg.objects)
        .map(|i| ObjState {
            // Letter-suffixed names: the textual notation reserves
            // trailing digits for version references, and round-trip
            // tests need expressible names.
            id: b.preloaded_object(obj_name(i), Value::Int(0)),
            versions: Vec::new(),
        })
        .collect();

    struct Sess {
        txn: TxnId,
        remaining: usize,
        /// Objects this txn wrote (its reads must observe own writes).
        wrote: Vec<usize>,
    }
    let mut sessions: Vec<Sess> = (0..cfg.txns)
        .map(|i| Sess {
            txn: TxnId(i as u32),
            remaining: cfg.ops_per_txn,
            wrote: Vec::new(),
        })
        .collect();
    // Decide fates up front so the generator can commit writers before
    // the histories end.
    let fates: Vec<bool> = (0..cfg.txns)
        .map(|_| !rng.gen_bool(cfg.abort_prob))
        .collect();
    let mut committed: Vec<bool> = vec![false; cfg.txns];

    let window = if cfg.max_concurrent == 0 {
        cfg.txns
    } else {
        cfg.max_concurrent
    };
    let mut active: Vec<usize> = (0..cfg.txns.min(window)).collect();
    let mut next_admit = active.len();
    while !active.is_empty() {
        let pick = rng.gen_range(0..active.len());
        let six = active[pick];
        let done = {
            let s = &mut sessions[six];
            if s.remaining == 0 {
                true
            } else {
                s.remaining -= 1;
                let oix = rng.gen_range(0..objs.len());
                let obj = &mut objs[oix];
                if rng.gen_bool(cfg.write_prob) {
                    let vid = b.write(s.txn, obj.id, Value::Int(rng.gen_range(0..100)));
                    obj.versions.push((s.txn, vid.seq));
                    if !s.wrote.contains(&oix) {
                        s.wrote.push(oix);
                    }
                } else {
                    // Choose the version to read.
                    let vid = if s.wrote.contains(&oix) {
                        // Must read own latest write.
                        let (_, seq) = *obj
                            .versions
                            .iter()
                            .rev()
                            .find(|(t, _)| *t == s.txn)
                            .expect("wrote it");
                        VersionId::new(s.txn, seq)
                    } else if rng.gen_bool(cfg.dirty_read_prob) {
                        match obj.versions.last() {
                            Some(&(t, seq)) => VersionId::new(t, seq),
                            None => VersionId::INIT,
                        }
                    } else {
                        match obj
                            .versions
                            .iter()
                            .rev()
                            .find(|(t, _)| committed[t.0 as usize])
                        {
                            Some(&(t, seq)) => VersionId::new(t, seq),
                            None => VersionId::INIT,
                        }
                    };
                    b.read_version(s.txn, obj.id, vid);
                }
                false
            }
        };
        if done {
            let s = &sessions[six];
            if fates[six] {
                b.commit(s.txn);
                committed[six] = true;
            } else {
                b.abort(s.txn);
                // In-place undo: the aborted writer's versions vanish.
                for obj in &mut objs {
                    obj.versions.retain(|(t, _)| *t != s.txn);
                }
            }
            active.remove(pick);
            if next_admit < cfg.txns {
                active.push(next_admit);
                next_admit += 1;
            }
        }
    }

    // Optional multi-version shuffle of committed orders.
    if cfg.shuffle_order_prob > 0.0 {
        for obj in &objs {
            if !rng.gen_bool(cfg.shuffle_order_prob) {
                continue;
            }
            // Final committed versions of this object.
            let mut finals: Vec<VersionId> = Vec::new();
            for &(t, seq) in &obj.versions {
                if committed[t.0 as usize] {
                    match finals.iter_mut().find(|v| v.txn == t) {
                        Some(v) => {
                            if seq > v.seq {
                                v.seq = seq;
                            }
                        }
                        None => finals.push(VersionId::new(t, seq)),
                    }
                }
            }
            if finals.len() >= 2 {
                for i in (1..finals.len()).rev() {
                    let j = rng.gen_range(0..=i);
                    finals.swap(i, j);
                }
                b.version_order(obj.id, &finals);
            }
        }
    }

    b.build()
        .expect("generator must produce well-formed histories")
}

/// Samples `n` histories with consecutive seeds.
pub fn random_histories(cfg: &HistGenConfig, base_seed: u64, n: usize) -> Vec<History> {
    (0..n)
        .map(|i| random_history(cfg, base_seed + i as u64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_core::{classify, IsolationLevel};
    use adya_prevent::{check_locking, LockingLevel};

    #[test]
    fn generates_valid_histories_across_seeds() {
        let cfg = HistGenConfig::default();
        for seed in 0..50 {
            let h = random_history(&cfg, seed);
            assert!(!h.is_empty());
        }
    }

    #[test]
    fn dirtiness_zero_keeps_histories_clean_of_g1a() {
        let cfg = HistGenConfig {
            dirty_read_prob: 0.0,
            ..Default::default()
        };
        for seed in 0..30 {
            let h = random_history(&cfg, seed);
            let r = classify(&h);
            // Reads of committed versions only: G1a impossible. (G1b
            // too: committed final versions only.)
            let pl2_violations: Vec<_> = r
                .checks
                .iter()
                .filter(|c| c.level == IsolationLevel::PL2)
                .flat_map(|c| c.violations.iter())
                .collect();
            for v in pl2_violations {
                assert!(
                    !matches!(
                        v.kind(),
                        adya_core::PhenomenonKind::G1a | adya_core::PhenomenonKind::G1b
                    ),
                    "seed {seed}: {v}"
                );
            }
        }
    }

    #[test]
    fn preventative_admission_implies_generalized_admission() {
        // The paper's containment claim, sampled: a commit-order
        // history admitted by the preventative level is admitted by
        // the corresponding generalized level.
        let cfg = HistGenConfig {
            shuffle_order_prob: 0.0,
            dirty_read_prob: 0.4,
            ..Default::default()
        };
        let pairs = [
            (LockingLevel::ReadUncommitted, IsolationLevel::PL1),
            (LockingLevel::ReadCommitted, IsolationLevel::PL2),
            (LockingLevel::RepeatableRead, IsolationLevel::PL299),
            (LockingLevel::Serializable, IsolationLevel::PL3),
        ];
        for seed in 0..60 {
            let h = random_history(&cfg, seed);
            let g = classify(&h);
            for (pl, gl) in pairs {
                if check_locking(&h, pl).ok() {
                    assert!(
                        g.satisfies(gl),
                        "seed {seed}: {pl} admits but {gl} rejects\n{h}\n{g}"
                    );
                }
            }
        }
    }

    #[test]
    fn generalized_is_strictly_more_permissive_somewhere() {
        // There must exist sampled histories admitted by PL-3 yet
        // rejected by preventative SERIALIZABLE (H1'-like).
        let cfg = HistGenConfig {
            dirty_read_prob: 0.5,
            abort_prob: 0.0,
            ..Default::default()
        };
        let mut gap = 0;
        for seed in 0..200 {
            let h = random_history(&cfg, seed);
            if classify(&h).satisfies(IsolationLevel::PL3)
                && !check_locking(&h, LockingLevel::Serializable).ok()
            {
                gap += 1;
            }
        }
        assert!(gap > 0, "no permissiveness gap found in 200 samples");
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let cfg = HistGenConfig::default();
        let a = random_history(&cfg, 9).to_string();
        let b = random_history(&cfg, 9).to_string();
        assert_eq!(a, b);
    }
}

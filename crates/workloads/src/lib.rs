//! Workloads, drivers and random-history generation for the
//! reproduction experiments.
//!
//! Three layers:
//!
//! * [`Program`] — a small deterministic transaction language
//!   (register machine over integer rows) that drivers can interleave
//!   step by step;
//! * [`run_deterministic`] — a seeded driver that interleaves many
//!   programs against any [`adya_engine::Engine`], handling blocking,
//!   deadlock victims and restarts under an explicit [`RetryPolicy`]
//!   (bounded restarts, seeded backoff jitter, per-transaction
//!   operation deadlines), and reporting [`RunStats`];
//! * generators — the paper-motivated workloads (bank transfers with
//!   the `x + y = 10`-style invariant of §3, the employee/Sales
//!   phantom scenario of §5.4, hotspot counters, zipfian mixes) plus a
//!   [`histgen`] module that samples random *histories* directly for
//!   permissiveness experiments and property tests.
//!
//! Plus one transport piece: [`ServeClient`], a crash-resumable TCP
//! client for the `adya-serve` session protocol, reusing the same
//! [`RetryPolicy`] backoff machinery for reconnects.

#![warn(missing_docs)]

mod client;
mod concurrent;
mod driver;
mod generators;
pub mod histgen;
mod live;
mod program;
mod retry;
mod zipf;

pub use client::{ClientError, ServeClient};
pub use concurrent::{run_concurrent, ConcurrentConfig};
pub use driver::{run_deterministic, DriverConfig, RunStats, SessionOutcome};
pub use generators::{
    bank_workload, hotspot_workload, mixed_workload, phantom_workload, BankConfig, HotspotConfig,
    MixedConfig, PhantomConfig,
};
pub use live::{run_concurrent_live, LiveConfig, LiveReport};
pub use program::{Expr, PredSpec, Program, Step};
pub use retry::{GiveUpCause, RetryPolicy, RetrySession};
pub use zipf::Zipf;

//! Workload generators: the paper's motivating scenarios as program
//! sets.

use adya_engine::{Engine, Key, TableId, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::program::{Expr, PredSpec, Program, Step};
use crate::zipf::Zipf;

/// Bank workload: transfers between accounts plus auditors reading
/// pairs — the multi-object invariant (`x + y = const`) of §3.
#[derive(Debug, Clone)]
pub struct BankConfig {
    /// Number of accounts.
    pub accounts: u64,
    /// Initial balance per account.
    pub initial_balance: i64,
    /// Number of transfer transactions.
    pub transfers: usize,
    /// Number of audit transactions.
    pub audits: usize,
    /// RNG seed for key selection.
    pub seed: u64,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            accounts: 8,
            initial_balance: 100,
            transfers: 24,
            audits: 8,
            seed: 1,
        }
    }
}

/// Seeds the accounts table and returns the transfer/audit programs.
pub fn bank_workload(engine: &dyn Engine, cfg: &BankConfig) -> (TableId, Vec<Program>) {
    let table = engine.catalog().table("acct");
    let tx = engine.begin();
    for k in 0..cfg.accounts {
        engine
            .write(tx, table, Key(k), Value::Int(cfg.initial_balance))
            .expect("seeding cannot block on an empty engine");
    }
    engine.commit(tx).expect("seed commit");

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut programs = Vec::with_capacity(cfg.transfers + cfg.audits);
    for _ in 0..cfg.transfers {
        let a = rng.gen_range(0..cfg.accounts);
        let mut b = rng.gen_range(0..cfg.accounts);
        if b == a {
            b = (b + 1) % cfg.accounts;
        }
        let amount: i64 = rng.gen_range(1..=10);
        programs.push(Program::new(
            "transfer",
            vec![
                Step::Read {
                    table,
                    key: Key(a),
                    reg: 0,
                },
                Step::Read {
                    table,
                    key: Key(b),
                    reg: 1,
                },
                Step::Write {
                    table,
                    key: Key(a),
                    value: Expr::reg_plus(0, -amount),
                },
                Step::Write {
                    table,
                    key: Key(b),
                    value: Expr::reg_plus(1, amount),
                },
            ],
        ));
    }
    for _ in 0..cfg.audits {
        let a = rng.gen_range(0..cfg.accounts);
        let mut b = rng.gen_range(0..cfg.accounts);
        if b == a {
            b = (b + 1) % cfg.accounts;
        }
        programs.push(Program::new(
            "audit",
            vec![
                Step::Read {
                    table,
                    key: Key(a),
                    reg: 0,
                },
                Step::Read {
                    table,
                    key: Key(b),
                    reg: 1,
                },
            ],
        ));
    }
    programs.shuffle_seeded(&mut rng);
    (table, programs)
}

/// Phantom workload: the employee/Sales scenario of §5.4 — auditors
/// compare a predicate sum against a maintained total while hirers
/// insert new matching rows and update the total.
#[derive(Debug, Clone)]
pub struct PhantomConfig {
    /// Initial number of employees (all "in Sales": value = salary).
    pub initial_employees: u64,
    /// Salary per employee.
    pub salary: i64,
    /// Number of hire transactions (insert + update total).
    pub hires: usize,
    /// Number of audit transactions (predicate sum + total read).
    pub audits: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PhantomConfig {
    fn default() -> Self {
        PhantomConfig {
            initial_employees: 4,
            salary: 10,
            hires: 8,
            audits: 8,
            seed: 2,
        }
    }
}

/// Seeds the employee and totals tables and returns hire/audit
/// programs. Keys for new hires start above the initial population.
pub fn phantom_workload(
    engine: &dyn Engine,
    cfg: &PhantomConfig,
) -> (TableId, TableId, Vec<Program>) {
    let emp = engine.catalog().table("emp");
    let sums = engine.catalog().table("sums");
    let tx = engine.begin();
    for k in 0..cfg.initial_employees {
        engine
            .write(tx, emp, Key(k), Value::Int(cfg.salary))
            .expect("seed");
    }
    engine
        .write(
            tx,
            sums,
            Key(0),
            Value::Int(cfg.salary * cfg.initial_employees as i64),
        )
        .expect("seed");
    engine.commit(tx).expect("seed commit");

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut programs = Vec::new();
    for i in 0..cfg.hires {
        let new_key = cfg.initial_employees + i as u64;
        programs.push(Program::new(
            "hire",
            vec![
                Step::Read {
                    table: sums,
                    key: Key(0),
                    reg: 0,
                },
                Step::Write {
                    table: emp,
                    key: Key(new_key),
                    value: Expr::Const(cfg.salary),
                },
                Step::Write {
                    table: sums,
                    key: Key(0),
                    value: Expr::reg_plus(0, cfg.salary),
                },
            ],
        ));
    }
    for _ in 0..cfg.audits {
        programs.push(Program::new(
            "audit",
            vec![
                Step::Select {
                    table: emp,
                    pred: PredSpec::IntRange {
                        lo: 1,
                        hi: i64::MAX,
                    },
                    count_reg: Some(0),
                    sum_reg: Some(1),
                },
                Step::Read {
                    table: sums,
                    key: Key(0),
                    reg: 2,
                },
            ],
        ));
    }
    programs.shuffle_seeded(&mut rng);
    (emp, sums, programs)
}

/// Hotspot workload: increments concentrated on a few keys — the
/// high-traffic scenario of §3 where reading uncommitted data is
/// attractive.
#[derive(Debug, Clone)]
pub struct HotspotConfig {
    /// Total keys.
    pub keys: u64,
    /// Number of increment transactions.
    pub txns: usize,
    /// Zipf skew (0 = uniform).
    pub theta: f64,
    /// Extra reads per transaction.
    pub reads_per_txn: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HotspotConfig {
    fn default() -> Self {
        HotspotConfig {
            keys: 16,
            txns: 32,
            theta: 1.0,
            reads_per_txn: 2,
            seed: 3,
        }
    }
}

/// Seeds the counters and returns increment programs.
pub fn hotspot_workload(engine: &dyn Engine, cfg: &HotspotConfig) -> (TableId, Vec<Program>) {
    let table = engine.catalog().table("counter");
    let tx = engine.begin();
    for k in 0..cfg.keys {
        engine
            .write(tx, table, Key(k), Value::Int(0))
            .expect("seed");
    }
    engine.commit(tx).expect("seed commit");

    let zipf = Zipf::new(cfg.keys as usize, cfg.theta);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut programs = Vec::with_capacity(cfg.txns);
    for _ in 0..cfg.txns {
        let mut steps = Vec::new();
        for r in 0..cfg.reads_per_txn {
            let k = zipf.sample(&mut rng) as u64;
            steps.push(Step::Read {
                table,
                key: Key(k),
                reg: r + 1,
            });
        }
        let hot = zipf.sample(&mut rng) as u64;
        steps.push(Step::Read {
            table,
            key: Key(hot),
            reg: 0,
        });
        steps.push(Step::Write {
            table,
            key: Key(hot),
            value: Expr::reg_plus(0, 1),
        });
        programs.push(Program::new("increment", steps));
    }
    (table, programs)
}

/// General random mix with tunable contention.
#[derive(Debug, Clone)]
pub struct MixedConfig {
    /// Total keys.
    pub keys: u64,
    /// Number of transactions.
    pub txns: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Probability that an operation writes.
    pub write_ratio: f64,
    /// Probability that a transaction voluntarily aborts at the end
    /// (failure injection).
    pub abort_prob: f64,
    /// Probability that a write operation is a delete instead
    /// (exercises dead versions and row re-incarnation).
    pub delete_prob: f64,
    /// Zipf skew of key choice.
    pub theta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MixedConfig {
    fn default() -> Self {
        MixedConfig {
            keys: 32,
            txns: 40,
            ops_per_txn: 4,
            write_ratio: 0.5,
            abort_prob: 0.0,
            delete_prob: 0.0,
            theta: 0.6,
            seed: 4,
        }
    }
}

/// Seeds the table and returns random read/write programs.
pub fn mixed_workload(engine: &dyn Engine, cfg: &MixedConfig) -> (TableId, Vec<Program>) {
    let table = engine.catalog().table("data");
    let tx = engine.begin();
    for k in 0..cfg.keys {
        engine
            .write(tx, table, Key(k), Value::Int(k as i64))
            .expect("seed");
    }
    engine.commit(tx).expect("seed commit");

    let zipf = Zipf::new(cfg.keys as usize, cfg.theta);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut programs = Vec::with_capacity(cfg.txns);
    for _ in 0..cfg.txns {
        let mut steps = Vec::new();
        for op in 0..cfg.ops_per_txn {
            let k = zipf.sample(&mut rng) as u64;
            if rng.gen_bool(cfg.write_ratio) {
                if cfg.delete_prob > 0.0 && rng.gen_bool(cfg.delete_prob) {
                    steps.push(Step::Delete { table, key: Key(k) });
                    continue;
                }
                steps.push(Step::Read {
                    table,
                    key: Key(k),
                    reg: op,
                });
                steps.push(Step::Write {
                    table,
                    key: Key(k),
                    value: Expr::reg_plus(op, 1),
                });
            } else {
                steps.push(Step::Read {
                    table,
                    key: Key(k),
                    reg: op,
                });
            }
        }
        if cfg.abort_prob > 0.0 && rng.gen_bool(cfg.abort_prob) {
            steps.push(Step::Abort);
        }
        programs.push(Program::new("mixed", steps));
    }
    (table, programs)
}

/// Seeded Fisher–Yates shuffle, so generated workloads are
/// reproducible without pulling in `rand`'s slice extensions.
trait ShuffleSeeded {
    fn shuffle_seeded(&mut self, rng: &mut StdRng);
}

impl<T> ShuffleSeeded for Vec<T> {
    fn shuffle_seeded(&mut self, rng: &mut StdRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_deterministic, DriverConfig};
    use adya_core::{classify, IsolationLevel};
    use adya_engine::{LockConfig, LockingEngine, MvccEngine, MvccMode, SgtEngine};

    #[test]
    fn bank_workload_preserves_total_under_serializable_2pl() {
        let e = LockingEngine::new(LockConfig::serializable());
        let (table, programs) = bank_workload(&e, &BankConfig::default());
        let stats = run_deterministic(&e, programs, &DriverConfig::default());
        assert!(stats.committed > 0);
        let tx = e.begin();
        let total: i64 = (0..8)
            .map(|k| {
                e.read(tx, table, Key(k))
                    .unwrap()
                    .and_then(|v| v.as_int())
                    .unwrap_or(0)
            })
            .sum();
        e.commit(tx).unwrap();
        assert_eq!(total, 800);
    }

    #[test]
    fn phantom_workload_history_valid_on_sgt() {
        let e = SgtEngine::new(adya_engine::CertifyLevel::PL3);
        let (_, _, programs) = phantom_workload(&e, &PhantomConfig::default());
        let stats = run_deterministic(&e, programs, &DriverConfig::default());
        assert!(stats.committed > 0);
        let h = e.finalize();
        let r = classify(&h);
        assert!(r.satisfies(IsolationLevel::PL3), "{r}");
    }

    #[test]
    fn hotspot_on_si_commits_and_history_checks() {
        let e = MvccEngine::new(MvccMode::SnapshotIsolation);
        let (_, programs) = hotspot_workload(&e, &HotspotConfig::default());
        let stats = run_deterministic(&e, programs, &DriverConfig::default());
        assert!(stats.committed > 0);
        let h = e.finalize();
        assert!(classify(&h).satisfies(IsolationLevel::PLSI));
    }

    #[test]
    fn mixed_workload_with_aborts_still_validates() {
        let e = LockingEngine::new(LockConfig::read_committed());
        let cfg = MixedConfig {
            abort_prob: 0.3,
            ..Default::default()
        };
        let (_, programs) = mixed_workload(&e, &cfg);
        let stats = run_deterministic(&e, programs, &DriverConfig::default());
        assert!(stats.committed > 0);
        let h = e.finalize();
        // Locking read committed guarantees PL-2.
        assert!(classify(&h).satisfies(IsolationLevel::PL2));
    }

    #[test]
    fn generators_are_deterministic() {
        let gen = || {
            let e = LockingEngine::new(LockConfig::serializable());
            let (_, p) = bank_workload(&e, &BankConfig::default());
            p.iter().map(|x| x.steps.len()).collect::<Vec<_>>()
        };
        assert_eq!(gen(), gen());
    }
}

//! Live-checked concurrent runs: the threaded driver with the ingest
//! pipeline riding along.
//!
//! [`run_concurrent`](crate::run_concurrent) proves the engines are
//! thread-safe; this driver additionally streams every recorded event
//! through the staged ingest pipeline
//! ([`adya_online::EventPipeline`]) into an [`OnlineChecker`] on a
//! dedicated application thread, so the commit verdict stream is
//! produced *while* the workload runs — workload threads only ever pay
//! a ring push on the checker's behalf, never the checker's graph
//! maintenance.

use adya_engine::Engine;
use adya_history::History;
use adya_online::{EventPipeline, OnlineChecker, PipelineConfig, PipelineStats, Verdict};
use crossbeam::thread;

use crate::concurrent::{run_concurrent, ConcurrentConfig};
use crate::driver::RunStats;
use crate::program::Program;

/// Knobs for a live-checked concurrent run.
#[derive(Debug, Clone, Default)]
pub struct LiveConfig {
    /// The threaded driver's knobs.
    pub concurrent: ConcurrentConfig,
    /// The ingest pipeline's shape.
    pub pipeline: PipelineConfig,
}

/// Everything a live-checked run produces.
pub struct LiveReport {
    /// Driver aggregates (commits, ops, blocks, …).
    pub stats: RunStats,
    /// Per-commit verdicts, in commit order.
    pub verdicts: Vec<Verdict>,
    /// The checker's closing verdict over the whole stream.
    pub verdict: Verdict,
    /// Pipeline throughput counters.
    pub pipeline: PipelineStats,
    /// The finalized history (the run consumes the engine's recorder).
    pub history: History,
}

/// Runs `programs` against `engine` from `cfg.concurrent.threads` OS
/// threads with the ingest pipeline attached, finalizes the engine,
/// and returns the live verdicts alongside the history.
///
/// The verdict stream is byte-identical to sequentially ingesting the
/// same recorded events — the pipeline only moves *where* the checker
/// runs, not what it sees.
pub fn run_concurrent_live(
    engine: &dyn Engine,
    programs: &[Program],
    cfg: &LiveConfig,
) -> LiveReport {
    let pipe = EventPipeline::attach(engine, cfg.pipeline);
    let closer = pipe.closer();
    thread::scope(|scope| {
        let checker_thread = scope.spawn(move |_| {
            let mut checker = OnlineChecker::new();
            let mut verdicts = Vec::new();
            let pstats = pipe.run(&mut checker, |v| verdicts.push(v));
            (checker, verdicts, pstats)
        });
        let stats = run_concurrent(engine, programs, &cfg.concurrent);
        // All workload threads joined: nothing records events anymore,
        // so closing here lets the sequencer drain and return.
        let history = engine.finalize();
        closer.close();
        let (mut checker, verdicts, pipeline) = checker_thread
            .join()
            .expect("pipeline application thread must not panic");
        LiveReport {
            stats,
            verdict: checker.finish(),
            verdicts,
            pipeline,
            history,
        }
    })
    .expect("live driver threads must not panic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{bank_workload, mixed_workload, BankConfig, MixedConfig};
    use adya_core::{classify, IsolationLevel};
    use adya_engine::{LockConfig, LockingEngine, MvccEngine, MvccMode};

    #[test]
    fn live_pipelined_bank_run_is_pl3_and_counts_match() {
        let e = LockingEngine::new(LockConfig::serializable());
        let (_, programs) = bank_workload(
            &e,
            &BankConfig {
                accounts: 6,
                initial_balance: 100,
                transfers: 30,
                audits: 8,
                seed: 5,
            },
        );
        let report = run_concurrent_live(
            &e,
            &programs,
            &LiveConfig {
                pipeline: PipelineConfig {
                    rings: 2,
                    ring_capacity: 8, // tiny: force backpressure
                    max_batch: 16,
                },
                ..Default::default()
            },
        );
        assert!(report.stats.committed > 0);
        assert_eq!(report.verdicts.len(), report.stats.committed);
        assert_eq!(report.verdict.committed as usize, report.stats.committed);
        // Every event the driver recorded went through the pipeline.
        assert!(report.pipeline.events > 0 && report.pipeline.batches > 0);
        assert_eq!(
            report.verdict.strongest_ansi,
            Some(IsolationLevel::PL3),
            "fired: {:?}",
            report.verdict.fired
        );
        assert!(classify(&report.history).satisfies(IsolationLevel::PL3));
    }

    #[test]
    fn live_pipelined_verdicts_match_sequential_replay() {
        // Run pipelined with a *plain* tap capturing the identical
        // stream; a fresh checker fed that stream sequentially must
        // produce byte-identical verdicts.
        use std::sync::{Arc, Mutex};
        let e = MvccEngine::new(MvccMode::ReadCommitted);
        let (_, programs) = mixed_workload(
            &e,
            &MixedConfig {
                keys: 6,
                txns: 30,
                ops_per_txn: 4,
                write_ratio: 0.5,
                abort_prob: 0.1,
                delete_prob: 0.1,
                theta: 0.8,
                seed: 11,
            },
        );
        // Install the capture tap *after* workload setup, at the same
        // stream position where run_concurrent_live attaches the
        // pipeline — both observers then see the identical suffix.
        let captured = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&captured);
        e.set_event_tap(Arc::new(move |ev| sink.lock().unwrap().push(ev.clone())));
        let report = run_concurrent_live(&e, &programs, &LiveConfig::default());
        let mut seq = OnlineChecker::new();
        let mut want = Vec::new();
        for ev in captured.lock().unwrap().iter() {
            if let Some(v) = seq.ingest(ev) {
                want.push(v.to_json());
            }
        }
        let got: Vec<String> = report.verdicts.iter().map(|v| v.to_json()).collect();
        assert_eq!(got, want);
        assert_eq!(report.verdict.to_json(), seq.finish().to_json());
    }
}

//! A std-only TCP client for the `adya-serve` session protocol, with
//! crash-resumable streaming.
//!
//! The client keeps the two ledgers the resume contract is built on:
//! every event token it has ever sent (in order) and every verdict
//! line it has ever received. After the server dies — mid-stream,
//! mid-verdict, whenever — [`ServeClient::resume`] reconnects under
//! the [`RetryPolicy`] backoff schedule, tells the server how many
//! verdicts it holds, appends the replayed tail, and re-sends exactly
//! the suffix of tokens the server never made durable. The resulting
//! verdict ledger is byte-identical to an uninterrupted run, which is
//! the property the `serve_soak` bench and the serve integration tests
//! assert.
//!
//! Tokens go one per line, so the server's durable record count maps
//! 1:1 onto an index into the token ledger — the resume ack's
//! `events` field says precisely where re-sending starts.
//!
//! Failover: the address may be a comma-separated endpoint list
//! (leader first, then followers). A `not_leader` refusal adopts the
//! frame's `leader` hint; a transport error rotates to the next
//! endpoint. When every endpoint has refused with `not_leader` twice —
//! the leader is dead and no follower has been promoted — the client
//! promotes the follower it is connected to and resumes there. A
//! promoted follower that lost acknowledged-but-unreplicated verdicts
//! answers `verdicts_ahead` with its durable count; the client
//! truncates its verdict ledger to that count and re-sends the token
//! suffix, and checker determinism regenerates the lost verdicts
//! byte-identically.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::retry::RetryPolicy;

/// A connected (or resumable) session against an `adya-serve` replica
/// set (one or more endpoints).
#[derive(Debug)]
pub struct ServeClient {
    /// Known endpoints; grows when a `not_leader` hint names a new one.
    endpoints: Vec<String>,
    /// Index of the endpoint currently (or last) connected.
    current: usize,
    session: String,
    conn: Option<(TcpStream, BufReader<TcpStream>)>,
    /// Every event token ever sent, in order (one server record each).
    tokens: Vec<String>,
    /// Every verdict line ever received, in order.
    verdicts: Vec<String>,
    /// Consecutive `not_leader` refusals since the last success; at
    /// two full laps of the endpoint list the client promotes.
    promote_streak: usize,
    /// `truncated_input` notices surfaced by resumes, oldest first.
    pub truncated_notices: Vec<String>,
    /// Ask the server for trace-annotated verdict lines (`"trace":
    /// "on"` in hello/resume). The annotation is stripped before
    /// ledgering — the ledger stays byte-identical either way — and
    /// each annotated verdict contributes a `(trace id, rtt)` sample.
    trace: bool,
    /// Client-observed round trips for trace-annotated commits:
    /// `(trace id, nanoseconds from token send to verdict receipt)`.
    rtts: Vec<(u64, u64)>,
}

/// A client-side protocol failure (transport errors come as
/// [`ClientError::Io`], server `error` frames as
/// [`ClientError::Server`]).
#[derive(Debug)]
pub enum ClientError {
    /// Socket/transport trouble.
    Io(io::Error),
    /// The server answered with a structured error frame: `(code,
    /// full line)`.
    Server(String, String),
    /// The server's reply was missing a required field.
    Protocol(String),
    /// Reconnect attempts exhausted under the retry policy.
    GaveUp,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve client i/o: {e}"),
            ClientError::Server(code, line) => write!(f, "server error {code}: {line}"),
            ClientError::Protocol(detail) => write!(f, "malformed server reply: {detail}"),
            ClientError::GaveUp => write!(f, "reconnect attempts exhausted"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// `true` for the tokens that make the server emit one verdict line.
/// Only commits (`c<N>`) do: aborts feed the checker but produce no
/// verdict, so waiting for a line after `a<N>` would stall the stream.
fn is_commit_token(tok: &str) -> bool {
    tok.strip_prefix('c')
        .is_some_and(|rest| !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()))
}

/// Extracts `"key": <uint>` from a flat NDJSON frame.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "<value>"` from a flat NDJSON frame (no unescape —
/// callers only match known machine codes).
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

impl ServeClient {
    /// Connects and opens a brand-new session. `addr` may be a comma-
    /// separated endpoint list; a `not_leader` refusal follows the
    /// redirect (or rotates) until an endpoint accepts.
    pub fn hello(addr: &str, session: &str) -> Result<ServeClient, ClientError> {
        ServeClient::hello_traced(addr, session, false)
    }

    /// Like [`hello`](ServeClient::hello), optionally opting into
    /// trace-annotated verdict lines for latency provenance. Requires
    /// a server running with `--trace-propagate` to have any effect;
    /// the verdict ledger is byte-identical either way.
    pub fn hello_traced(
        addr: &str,
        session: &str,
        trace: bool,
    ) -> Result<ServeClient, ClientError> {
        let endpoints: Vec<String> = addr
            .split(',')
            .filter(|a| !a.is_empty())
            .map(str::to_string)
            .collect();
        if endpoints.is_empty() {
            return Err(ClientError::Protocol("empty endpoint list".into()));
        }
        let mut client = ServeClient {
            endpoints,
            current: 0,
            session: session.to_string(),
            conn: None,
            tokens: Vec::new(),
            verdicts: Vec::new(),
            promote_streak: 0,
            truncated_notices: Vec::new(),
            trace,
            rtts: Vec::new(),
        };
        let opt_in = if trace { ", \"trace\": \"on\"" } else { "" };
        let mut redirects = 0;
        loop {
            client.connect()?;
            client.send_frame(&format!(
                "{{\"op\": \"hello\", \"session\": \"{session}\"{opt_in}}}"
            ))?;
            let ack = client.read_line()?;
            if str_field(&ack, "ok") == Some("hello") {
                return Ok(client);
            }
            if str_field(&ack, "error") == Some("not_leader") && redirects <= client.endpoints.len()
            {
                redirects += 1;
                client.adopt_leader_hint(&ack);
                continue;
            }
            return Err(server_error(ack));
        }
    }

    fn connect(&mut self) -> io::Result<()> {
        let stream = TcpStream::connect(&self.endpoints[self.current])?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        self.conn = Some((stream, reader));
        Ok(())
    }

    /// Moves `current` to the frame's `leader` hint (learning new
    /// endpoints on the fly), or to the next endpoint when the refusing
    /// node does not know where the leader is.
    fn adopt_leader_hint(&mut self, line: &str) {
        match str_field(line, "leader") {
            Some(hint) => match self.endpoints.iter().position(|e| e == hint) {
                Some(i) => self.current = i,
                None => {
                    self.endpoints.push(hint.to_string());
                    self.current = self.endpoints.len() - 1;
                }
            },
            None => self.rotate(),
        }
    }

    fn rotate(&mut self) {
        self.current = (self.current + 1) % self.endpoints.len();
    }

    fn conn_mut(&mut self) -> io::Result<&mut (TcpStream, BufReader<TcpStream>)> {
        self.conn
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "not connected"))
    }

    fn send_frame(&mut self, frame: &str) -> io::Result<()> {
        let (stream, _) = self.conn_mut()?;
        stream.write_all(frame.as_bytes())?;
        stream.write_all(b"\n")
    }

    fn read_line(&mut self) -> io::Result<String> {
        let (_, reader) = self.conn_mut()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// The verdict ledger so far (commit verdict lines, in order;
    /// aborts emit none).
    pub fn verdicts(&self) -> &[String] {
        &self.verdicts
    }

    /// Event tokens sent so far.
    pub fn tokens_sent(&self) -> usize {
        self.tokens.len()
    }

    /// Client-observed `(trace id, rtt ns)` samples for annotated
    /// commit verdicts — the outermost bracket around the server's
    /// per-stage provenance. Empty unless the client opted in *and*
    /// the server propagates traces.
    pub fn trace_rtts(&self) -> &[(u64, u64)] {
        &self.rtts
    }

    /// Streams one event token; when it is a commit the verdict line
    /// is read and appended to the ledger (aborts produce no server
    /// response). An [`Err`] leaves the ledgers consistent for a later
    /// [`resume`].
    ///
    /// [`resume`]: ServeClient::resume
    pub fn send_token(&mut self, tok: &str) -> Result<(), ClientError> {
        self.tokens.push(tok.to_string());
        self.push_token_to_wire(tok.to_string())
    }

    fn push_token_to_wire(&mut self, tok: String) -> Result<(), ClientError> {
        let is_commit = is_commit_token(&tok);
        let sent_at = (self.trace && is_commit).then(Instant::now);
        self.send_frame(&tok)?;
        if is_commit {
            let mut line = self.read_line()?;
            if line.starts_with("{\"error\"") {
                return Err(server_error(line));
            }
            if self.trace {
                // Mechanically strip the wire-only annotation so the
                // ledger keeps the canonical verdict bytes.
                let (tid, canonical) = strip_trace(&line);
                if let (Some(id), Some(t0)) = (tid, sent_at) {
                    self.rtts.push((id, t0.elapsed().as_nanos() as u64));
                }
                line = canonical;
            }
            self.verdicts.push(line);
        }
        Ok(())
    }

    /// Reconnects and resumes after a server death or dropped
    /// connection, retrying under `policy` (seeded jitter, exponential
    /// backoff). `session_busy` is retried too: the previous owner of
    /// the session may still be detaching (or the server may be
    /// recovering it for another connection), and the server's idle
    /// deadline guarantees a vanished owner eventually releases it.
    ///
    /// Failover rides the same loop: transport errors rotate the
    /// endpoint, `not_leader` refusals follow the redirect hint, and
    /// two full laps of refusals promote the follower this client is
    /// connected to. On success the verdict ledger has absorbed the
    /// server's replay and every token the server lost has been
    /// re-sent.
    pub fn resume(&mut self, policy: &RetryPolicy, seed: u64) -> Result<(), ClientError> {
        let mut retry = policy.session(seed);
        loop {
            match self.try_resume() {
                Ok(()) => {
                    self.promote_streak = 0;
                    return Ok(());
                }
                Err(ClientError::Io(_)) => {
                    adya_obs::counter!("serve_client.reconnect_failures").inc();
                    self.rotate();
                }
                Err(ClientError::Server(code, _)) if code == "session_busy" => {
                    adya_obs::counter!("serve_client.busy_retries").inc();
                }
                Err(ClientError::Server(code, line)) if code == "not_leader" => {
                    adya_obs::counter!("serve_client.not_leader").inc();
                    self.promote_streak += 1;
                    if self.promote_streak >= 2 * self.endpoints.len() {
                        // Every endpoint refused twice with no leader
                        // among them: the leader is dead and nobody
                        // was promoted. Promote the follower on the
                        // other end of this still-open connection.
                        if self.promote().is_ok() {
                            self.promote_streak = 0;
                            continue;
                        }
                    } else {
                        self.adopt_leader_hint(&line);
                    }
                }
                Err(ClientError::Server(code, line)) if code == "verdicts_ahead" => {
                    // A promoted follower that lost our acknowledged
                    // tail: roll the ledger back to what it holds and
                    // regenerate the rest by re-sending tokens —
                    // checker determinism makes the regenerated lines
                    // byte-identical.
                    let durable = u64_field(&line, "durable").ok_or_else(|| {
                        ClientError::Protocol(format!("verdicts_ahead missing durable: {line}"))
                    })? as usize;
                    adya_obs::counter!("serve_client.verdict_rollbacks").inc();
                    self.verdicts.truncate(durable);
                }
                Err(e) => return Err(e),
            }
            if !retry.admit_op() {
                return Err(ClientError::GaveUp);
            }
            for _ in 0..retry.backoff_spins() {
                std::thread::yield_now();
            }
            // A spin of yields is too fast for a process restart or an
            // idle-deadline release; stretch the tail with a real
            // sleep.
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Promotes the node on the other end of the open connection.
    fn promote(&mut self) -> Result<(), ClientError> {
        self.send_frame("{\"op\": \"promote\"}")?;
        let ack = self.read_line()?;
        if str_field(&ack, "ok") != Some("promote") {
            return Err(server_error(ack));
        }
        adya_obs::counter!("serve_client.promotions").inc();
        Ok(())
    }

    fn try_resume(&mut self) -> Result<(), ClientError> {
        self.connect()?;
        adya_obs::counter!("serve_client.resumes").inc();
        let opt_in = if self.trace {
            ", \"trace\": \"on\""
        } else {
            ""
        };
        self.send_frame(&format!(
            "{{\"op\": \"resume\", \"session\": \"{}\", \"verdicts\": {}{opt_in}}}",
            self.session,
            self.verdicts.len()
        ))?;
        let mut ack = self.read_line()?;
        // A torn-tail healing notice precedes the ack.
        if str_field(&ack, "error") == Some("truncated_input") {
            self.truncated_notices.push(ack);
            ack = self.read_line()?;
        }
        if str_field(&ack, "ok") != Some("resume") {
            return Err(server_error(ack));
        }
        let durable = u64_field(&ack, "events")
            .ok_or_else(|| ClientError::Protocol(format!("resume ack missing events: {ack}")))?
            as usize;
        let replay = u64_field(&ack, "replay")
            .ok_or_else(|| ClientError::Protocol(format!("resume ack missing replay: {ack}")))?;
        for _ in 0..replay {
            let line = self.read_line()?;
            self.verdicts.push(line);
        }
        // Re-send everything the server never logged (cloned one at a
        // time: the wire push borrows self mutably).
        for i in durable..self.tokens.len() {
            let tok = self.tokens[i].clone();
            self.push_token_to_wire(tok)?;
        }
        Ok(())
    }

    /// Closes the session; returns the final (`"final": true`) verdict
    /// line. The `closing` frame is consumed and verified.
    pub fn close(mut self) -> Result<String, ClientError> {
        self.send_frame("{\"op\": \"close\"}")?;
        let fin = self.read_line()?;
        if fin.starts_with("{\"error\"") {
            return Err(server_error(fin));
        }
        let closing = self.read_line()?;
        if str_field(&closing, "closing") != Some("close") {
            return Err(server_error(closing));
        }
        Ok(fin)
    }
}

fn server_error(line: String) -> ClientError {
    let code = str_field(&line, "error").unwrap_or("protocol").to_string();
    ClientError::Server(code, line)
}

/// Splits a live verdict line into its optional wire-only trace
/// annotation and the canonical verdict bytes. Lines without the
/// annotation (server not propagating, or replayed/durable lines,
/// which are always canonical) pass through untouched.
fn strip_trace(line: &str) -> (Option<u64>, String) {
    let Some(rest) = line.strip_prefix("{\"trace\": \"") else {
        return (None, line.to_string());
    };
    let parsed = rest.find('"').and_then(|q| {
        let id = adya_obs::parse_trace_id(&rest[..q])?;
        let tail = rest[q + 1..].strip_prefix(", ")?;
        Some((id, format!("{{{tail}")))
    });
    match parsed {
        Some((id, canonical)) => (Some(id), canonical),
        None => (None, line.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_token_classification() {
        for t in ["c1", "c42", "c107"] {
            assert!(is_commit_token(t), "{t}");
        }
        // Aborts produce no verdict line, so they must not be treated
        // as verdict-producing — a client waiting after `a1` would
        // stall until the read timeout.
        for t in [
            "a1", "a107", "b1", "w1(x,1)", "r1(x1)", "c", "a", "cx", "c1x", "xinit",
        ] {
            assert!(!is_commit_token(t), "{t}");
        }
    }

    #[test]
    fn trace_annotation_stripping() {
        let canonical = "{\"txn\": 7, \"decision\": \"commit\"}";
        let id = adya_obs::trace_id("s", 32);
        let annotated = format!(
            "{{\"trace\": \"{}\", {}",
            adya_obs::fmt_trace_id(id),
            &canonical[1..]
        );
        assert_eq!(strip_trace(&annotated), (Some(id), canonical.to_string()));
        // Unannotated lines — and near-misses — pass through verbatim.
        for line in [canonical, "{\"trace\": \"zebra\", \"x\": 1}", "plain"] {
            assert_eq!(strip_trace(line), (None, line.to_string()), "{line}");
        }
    }

    #[test]
    fn frame_field_extraction() {
        let ack = "{\"ok\": \"resume\", \"session\": \"t\", \"events\": 41, \
                   \"verdicts\": 12, \"replay\": 3}";
        assert_eq!(u64_field(ack, "events"), Some(41));
        assert_eq!(u64_field(ack, "replay"), Some(3));
        assert_eq!(str_field(ack, "ok"), Some("resume"));
        assert_eq!(u64_field(ack, "missing"), None);
    }
}

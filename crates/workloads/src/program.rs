//! The transaction program language.
//!
//! Programs are finite step lists over integer-valued rows, with a
//! tiny register machine for data flow ("read x into r0, write r0−10
//! back"). Keeping programs first-order (no closures) is what lets the
//! deterministic driver interleave them step by step and replay them
//! after restarts.

use adya_engine::{Key, TableId, TablePred, Value};

/// An integer expression over the session's registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A constant.
    Const(i64),
    /// The value of a register (0 if never written).
    Reg(usize),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Evaluates against a register file.
    pub fn eval(&self, regs: &[i64]) -> i64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Reg(r) => regs.get(*r).copied().unwrap_or(0),
            Expr::Add(a, b) => a.eval(regs).wrapping_add(b.eval(regs)),
            Expr::Sub(a, b) => a.eval(regs).wrapping_sub(b.eval(regs)),
        }
    }

    /// `Reg(r)` shorthand.
    pub fn reg(r: usize) -> Expr {
        Expr::Reg(r)
    }

    /// `Reg(r) + c` shorthand.
    pub fn reg_plus(r: usize, c: i64) -> Expr {
        Expr::Add(Box::new(Expr::Reg(r)), Box::new(Expr::Const(c)))
    }
}

/// A declarative predicate usable by generated programs (compiled to
/// an [`adya_engine::TablePred`] on demand, deterministically).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredSpec {
    /// Every visible row.
    All,
    /// Rows whose integer value lies in `[lo, hi]`.
    IntRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
}

impl PredSpec {
    /// Compiles to an engine predicate over `table`.
    pub fn compile(&self, table: TableId) -> TablePred {
        match *self {
            PredSpec::All => TablePred::new("all", table, |_| true),
            PredSpec::IntRange { lo, hi } => TablePred::new(
                format!("{lo}<=v<={hi}"),
                table,
                move |v| matches!(v, Value::Int(i) if (lo..=hi).contains(i)),
            ),
        }
    }
}

/// One step of a program. A commit is implicit after the last step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Read `(table, key)`'s integer value into `reg` (0 when the row
    /// is absent or non-integer).
    Read {
        /// Table to read from.
        table: TableId,
        /// Row key.
        key: Key,
        /// Destination register.
        reg: usize,
    },
    /// Write `value` to `(table, key)`.
    Write {
        /// Table to write to.
        table: TableId,
        /// Row key.
        key: Key,
        /// Value expression.
        value: Expr,
    },
    /// Delete `(table, key)`.
    Delete {
        /// Table.
        table: TableId,
        /// Row key.
        key: Key,
    },
    /// Predicate read over `table`; the *count* of matches lands in
    /// `count_reg` and their integer *sum* in `sum_reg` when given.
    Select {
        /// Table to scan.
        table: TableId,
        /// The predicate.
        pred: PredSpec,
        /// Register receiving the match count.
        count_reg: Option<usize>,
        /// Register receiving the sum of matching integer values.
        sum_reg: Option<usize>,
    },
    /// Voluntarily abort (failure injection).
    Abort,
}

/// A transaction program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Display label ("transfer", "audit", …).
    pub label: String,
    /// The steps; an implicit commit follows the last one.
    pub steps: Vec<Step>,
}

impl Program {
    /// Creates a program.
    pub fn new(label: impl Into<String>, steps: Vec<Step>) -> Program {
        Program {
            label: label.into(),
            steps,
        }
    }

    /// Number of registers the program touches.
    pub fn register_count(&self) -> usize {
        fn expr_max(e: &Expr) -> usize {
            match e {
                Expr::Const(_) => 0,
                Expr::Reg(r) => r + 1,
                Expr::Add(a, b) | Expr::Sub(a, b) => expr_max(a).max(expr_max(b)),
            }
        }
        self.steps
            .iter()
            .map(|s| match s {
                Step::Read { reg, .. } => reg + 1,
                Step::Write { value, .. } => expr_max(value),
                Step::Select {
                    count_reg, sum_reg, ..
                } => count_reg
                    .map(|r| r + 1)
                    .max(sum_reg.map(|r| r + 1))
                    .unwrap_or(0),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_evaluation() {
        let regs = [10, 20];
        assert_eq!(Expr::Const(5).eval(&regs), 5);
        assert_eq!(Expr::Reg(1).eval(&regs), 20);
        assert_eq!(Expr::Reg(9).eval(&regs), 0);
        assert_eq!(Expr::reg_plus(0, -3).eval(&regs), 7);
        assert_eq!(
            Expr::Sub(Box::new(Expr::Reg(1)), Box::new(Expr::Reg(0))).eval(&regs),
            10
        );
    }

    #[test]
    fn pred_spec_compiles() {
        let p = PredSpec::IntRange { lo: 0, hi: 5 }.compile(TableId(0));
        assert!(p.matches(&Value::Int(3)));
        assert!(!p.matches(&Value::Int(9)));
        assert!(!p.matches(&Value::Str("x".into())));
        let all = PredSpec::All.compile(TableId(0));
        assert!(all.matches(&Value::Int(-1)));
    }

    #[test]
    fn register_count_covers_all_steps() {
        let p = Program::new(
            "t",
            vec![
                Step::Read {
                    table: TableId(0),
                    key: Key(1),
                    reg: 2,
                },
                Step::Write {
                    table: TableId(0),
                    key: Key(1),
                    value: Expr::reg_plus(4, 1),
                },
                Step::Select {
                    table: TableId(0),
                    pred: PredSpec::All,
                    count_reg: Some(6),
                    sum_reg: None,
                },
            ],
        );
        assert_eq!(p.register_count(), 7);
    }
}

//! A small Zipfian sampler for skewed key selection.
//!
//! Implemented from the classic inverse-CDF construction (precomputed
//! cumulative weights, binary search) because the sanctioned `rand`
//! crate carries no Zipf distribution. `theta = 0` degenerates to
//! uniform; larger `theta` concentrates probability on low indices —
//! the standard model of hotspot contention.

use rand::Rng;

/// A Zipf(θ) distribution over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `0..n` with skew `theta >= 0`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite, >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(theta);
            cumulative.push(total);
        }
        // Normalize.
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (the constructor rejects empty domains).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Samples an index in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn skewed_prefers_low_indices() {
        let z = Zipf::new(16, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 16];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[8] * 4, "{counts:?}");
        assert!(counts[0] > counts[15] * 6, "{counts:?}");
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(3, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.len(), 3);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_domain() {
        let _ = Zipf::new(0, 1.0);
    }
}

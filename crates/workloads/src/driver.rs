//! The deterministic interleaving driver.
//!
//! Given an engine and a set of programs, the driver runs one step of
//! one (seeded-randomly chosen) session at a time. Blocked operations
//! park the session; a wait-for cycle (or a fully-parked system)
//! nominates a deadlock victim, which is aborted and — under the
//! configured [`RetryPolicy`] — retried from the top. Engine-initiated
//! aborts (validation failures, certification cycles, cascades,
//! injected faults) are retried the same way; the policy's restart
//! budget and per-transaction operation deadline bound the fight. The
//! run is fully reproducible from its seed.

use std::collections::HashMap;

use adya_engine::{AbortReason, Engine, EngineError, TablePred, TxnId, Value};
use adya_graph::DiGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::program::{PredSpec, Program, Step};
use crate::retry::{RetryPolicy, RetrySession};

/// Driver knobs.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// RNG seed; equal seeds replay identical interleavings.
    pub seed: u64,
    /// Restart/deadline discipline for aborted sessions.
    pub retry: RetryPolicy,
    /// Global step budget (livelock guard).
    pub fuel: usize,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            seed: 0,
            retry: RetryPolicy::default(),
            fuel: 1_000_000,
        }
    }
}

/// What eventually happened to one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOutcome {
    /// Committed (possibly after restarts).
    Committed,
    /// Gave up after exhausting the restart budget.
    GaveUp,
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Programs that eventually committed.
    pub committed: usize,
    /// Programs that exhausted their restart budget.
    pub gave_up: usize,
    /// Transaction-level aborts by reason.
    pub aborts: HashMap<String, usize>,
    /// Total operations issued (including retried ones).
    pub ops: usize,
    /// Operations that returned `Blocked`.
    pub blocked: usize,
    /// Deadlock victims chosen by the driver.
    pub deadlock_victims: usize,
    /// Sessions that gave up because their per-transaction operation
    /// deadline ran out (a subset of `gave_up`).
    pub deadline_giveups: usize,
    /// Per-session outcomes, in program order.
    pub outcomes: Vec<SessionOutcome>,
}

impl RunStats {
    /// Total transaction attempts that aborted.
    pub fn total_aborts(&self) -> usize {
        self.aborts.values().sum()
    }

    fn count_abort(&mut self, reason: &AbortReason) {
        *self.aborts.entry(reason.to_string()).or_insert(0) += 1;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionState {
    Ready,
    Waiting,
    Done,
}

struct Session {
    program: Program,
    pc: usize,
    regs: Vec<i64>,
    txn: TxnId,
    state: SessionState,
    waiting_on: Vec<TxnId>,
    retry: RetrySession,
    outcome: Option<SessionOutcome>,
    /// Compiled predicates, cached per (step index) for pointer-stable
    /// predicate identity across retries of the same step.
    pred_cache: HashMap<usize, TablePred>,
}

/// Runs `programs` against `engine` under a seeded interleaving.
pub fn run_deterministic(
    engine: &dyn Engine,
    programs: Vec<Program>,
    cfg: &DriverConfig,
) -> RunStats {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stats = RunStats::default();
    let mut sessions: Vec<Session> = programs
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            let regs = vec![0i64; p.register_count().max(1)];
            Session {
                txn: engine.begin(),
                program: p,
                pc: 0,
                regs,
                state: SessionState::Ready,
                waiting_on: Vec::new(),
                retry: cfg
                    .retry
                    .session(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                outcome: None,
                pred_cache: HashMap::new(),
            }
        })
        .collect();

    let mut fuel = cfg.fuel;
    loop {
        if fuel == 0 {
            break;
        }
        let ready: Vec<usize> = sessions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == SessionState::Ready)
            .map(|(i, _)| i)
            .collect();
        if ready.is_empty() {
            let waiting: Vec<usize> = sessions
                .iter()
                .enumerate()
                .filter(|(_, s)| s.state == SessionState::Waiting)
                .map(|(i, _)| i)
                .collect();
            if waiting.is_empty() {
                break; // all done
            }
            // Everyone is parked: resolve via the wait-for graph; if
            // it is acyclic something will unpark on retry, so wake
            // everyone; a cycle nominates a victim first.
            if let Some(victim) = pick_deadlock_victim(&sessions, &waiting) {
                stats.deadlock_victims += 1;
                restart(engine, &mut sessions[victim], &mut stats, Some(victim));
            }
            for s in &mut sessions {
                if s.state == SessionState::Waiting {
                    s.state = SessionState::Ready;
                }
            }
            fuel = fuel.saturating_sub(1);
            continue;
        }
        let ix = ready[rng.gen_range(0..ready.len())];
        fuel -= 1;
        step_session(engine, &mut sessions, ix, &mut stats);
    }

    for s in &sessions {
        match s.outcome {
            Some(SessionOutcome::Committed) => stats.committed += 1,
            Some(SessionOutcome::GaveUp) | None => stats.gave_up += 1,
        }
        stats
            .outcomes
            .push(s.outcome.unwrap_or(SessionOutcome::GaveUp));
    }
    stats
}

/// Finds a session on a wait-for cycle (preferring the youngest txn),
/// or `None` when the wait-for graph is acyclic.
fn pick_deadlock_victim(sessions: &[Session], waiting: &[usize]) -> Option<usize> {
    let mut g: DiGraph<TxnId, ()> = DiGraph::new();
    let by_txn: HashMap<TxnId, usize> = waiting.iter().map(|&i| (sessions[i].txn, i)).collect();
    for &i in waiting {
        for &h in &sessions[i].waiting_on {
            g.add_edge(sessions[i].txn, h, ());
        }
    }
    // Victim: the waiting session with the largest txn id that sits in
    // a cyclic SCC.
    let comps = g.sccs();
    let mut victim: Option<TxnId> = None;
    for comp in comps {
        if !g.scc_is_cyclic(&comp, |_| true) {
            continue;
        }
        for ix in comp {
            let t = *g.node(ix);
            if by_txn.contains_key(&t) && victim.map(|v| t > v).unwrap_or(true) {
                victim = Some(t);
            }
        }
    }
    victim.and_then(|t| by_txn.get(&t).copied())
}

fn restart(engine: &dyn Engine, s: &mut Session, stats: &mut RunStats, _ix: Option<usize>) {
    let _ = engine.abort(s.txn);
    adya_obs::counter!("engine.deadlock_victim").inc();
    adya_obs::global().event(
        "engine.deadlock_victim",
        vec![
            ("txn".into(), adya_obs::Field::from(u64::from(s.txn.0))),
            (
                "attempts".into(),
                adya_obs::Field::from(s.retry.attempts() as u64),
            ),
        ],
    );
    stats.count_abort(&AbortReason::DeadlockVictim);
    begin_fresh_attempt(engine, s, &AbortReason::DeadlockVictim);
}

fn begin_fresh_attempt(engine: &dyn Engine, s: &mut Session, reason: &AbortReason) {
    if s.retry.should_restart(reason).is_err() {
        s.state = SessionState::Done;
        s.outcome = Some(SessionOutcome::GaveUp);
        return;
    }
    s.txn = engine.begin();
    s.pc = 0;
    s.regs.iter_mut().for_each(|r| *r = 0);
    s.pred_cache.clear();
    s.state = SessionState::Ready;
    s.waiting_on.clear();
}

enum Next {
    Advanced,
    Parked(Vec<TxnId>),
    Restart(AbortReason),
    Committed,
    GaveUp,
    AbortInjected,
}

fn step_session(engine: &dyn Engine, sessions: &mut [Session], ix: usize, stats: &mut RunStats) {
    if !sessions[ix].retry.admit_op() {
        // Per-transaction deadline exhausted: release whatever the
        // attempt holds and give up.
        let _ = engine.abort(sessions[ix].txn);
        stats.deadline_giveups += 1;
        sessions[ix].state = SessionState::Done;
        sessions[ix].outcome = Some(SessionOutcome::GaveUp);
        wake_waiters(sessions, ix);
        return;
    }
    stats.ops += 1;
    let next = exec_step(engine, &mut sessions[ix], stats);
    match next {
        Next::Advanced => {
            sessions[ix].pc += 1;
            wake_waiters(sessions, ix);
        }
        Next::Parked(holders) => {
            stats.blocked += 1;
            sessions[ix].state = SessionState::Waiting;
            sessions[ix].waiting_on = holders;
        }
        Next::Restart(reason) => {
            stats.count_abort(&reason);
            begin_fresh_attempt(engine, &mut sessions[ix], &reason);
            wake_waiters(sessions, ix);
        }
        Next::Committed => {
            sessions[ix].state = SessionState::Done;
            sessions[ix].outcome = Some(SessionOutcome::Committed);
            wake_waiters(sessions, ix);
        }
        Next::GaveUp => {
            sessions[ix].state = SessionState::Done;
            sessions[ix].outcome = Some(SessionOutcome::GaveUp);
            wake_waiters(sessions, ix);
        }
        Next::AbortInjected => {
            stats.count_abort(&AbortReason::Requested);
            sessions[ix].state = SessionState::Done;
            sessions[ix].outcome = Some(SessionOutcome::GaveUp);
            wake_waiters(sessions, ix);
        }
    }
}

fn exec_step(engine: &dyn Engine, s: &mut Session, _stats: &mut RunStats) -> Next {
    // Past the last step: commit.
    if s.pc >= s.program.steps.len() {
        return match engine.commit(s.txn) {
            Ok(()) => Next::Committed,
            Err(EngineError::Blocked { holders }) => Next::Parked(holders),
            Err(EngineError::Aborted(reason)) => Next::Restart(reason),
            Err(EngineError::UnknownTxn) => Next::GaveUp,
        };
    }

    let step = s.program.steps[s.pc].clone();
    let result: Result<(), EngineError> = match step {
        Step::Read { table, key, reg } => engine.read(s.txn, table, key).map(|v| {
            s.regs[reg] = match v {
                Some(Value::Int(i)) => i,
                _ => 0,
            };
        }),
        Step::Write { table, key, value } => {
            let v = value.eval(&s.regs);
            engine.write(s.txn, table, key, Value::Int(v))
        }
        Step::Delete { table, key } => engine.delete(s.txn, table, key),
        Step::Select {
            table,
            pred,
            count_reg,
            sum_reg,
        } => {
            let pc = s.pc;
            let compiled = s
                .pred_cache
                .entry(pc)
                .or_insert_with(|| compile_pred(&pred, table))
                .clone();
            engine.select(s.txn, &compiled).map(|rows| {
                if let Some(r) = count_reg {
                    s.regs[r] = rows.len() as i64;
                }
                if let Some(r) = sum_reg {
                    s.regs[r] = rows.iter().map(|(_, v)| v.as_int().unwrap_or(0)).sum();
                }
            })
        }
        Step::Abort => {
            let _ = engine.abort(s.txn);
            return Next::AbortInjected;
        }
    };

    match result {
        Ok(()) => Next::Advanced,
        Err(EngineError::Blocked { holders }) => Next::Parked(holders),
        Err(EngineError::Aborted(reason)) => Next::Restart(reason),
        Err(EngineError::UnknownTxn) => Next::GaveUp,
    }
}

fn compile_pred(pred: &PredSpec, table: adya_engine::TableId) -> TablePred {
    pred.compile(table)
}

/// After session `ix` made progress (commit/abort/op), wake every
/// waiting session — cheap and correct (they re-try and re-park if
/// still conflicted).
fn wake_waiters(sessions: &mut [Session], ix: usize) {
    for (i, s) in sessions.iter_mut().enumerate() {
        if i != ix && s.state == SessionState::Waiting {
            s.state = SessionState::Ready;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Expr;
    use adya_core::{classify, IsolationLevel};
    use adya_engine::{Key, LockConfig, LockingEngine, MvccEngine, MvccMode, OccEngine, TableId};

    fn transfer(t: TableId, a: u64, b: u64, amount: i64) -> Program {
        Program::new(
            "transfer",
            vec![
                Step::Read {
                    table: t,
                    key: Key(a),
                    reg: 0,
                },
                Step::Read {
                    table: t,
                    key: Key(b),
                    reg: 1,
                },
                Step::Write {
                    table: t,
                    key: Key(a),
                    value: Expr::reg_plus(0, -amount),
                },
                Step::Write {
                    table: t,
                    key: Key(b),
                    value: Expr::reg_plus(1, amount),
                },
            ],
        )
    }

    fn seed_accounts(e: &dyn Engine, t: TableId, n: u64, each: i64) {
        let tx = e.begin();
        for k in 0..n {
            e.write(tx, t, Key(k), Value::Int(each)).unwrap();
        }
        e.commit(tx).unwrap();
    }

    #[test]
    fn transfers_on_2pl_preserve_invariant_and_serializability() {
        let e = LockingEngine::new(LockConfig::serializable());
        let t = e.catalog().table("acct");
        seed_accounts(&e, t, 4, 100);
        let programs: Vec<Program> = (0..12)
            .map(|i| transfer(t, i % 4, (i + 1) % 4, 10))
            .collect();
        let stats = run_deterministic(&e, programs, &DriverConfig::default());
        assert!(stats.committed > 0);
        // Invariant: the sum is still 400.
        let tx = e.begin();
        let sum: i64 = (0..4)
            .map(|k| {
                e.read(tx, t, Key(k))
                    .unwrap()
                    .and_then(|v| v.as_int())
                    .unwrap_or(0)
            })
            .sum();
        e.commit(tx).unwrap();
        assert_eq!(sum, 400);
        // The recorded history passes PL-3.
        let h = e.finalize();
        let r = classify(&h);
        assert!(r.satisfies(IsolationLevel::PL3), "{r}");
    }

    #[test]
    fn transfers_on_occ_and_mvcc_commit_histories_pass_their_levels() {
        for (engine, level) in [
            (
                Box::new(OccEngine::new()) as Box<dyn Engine>,
                IsolationLevel::PL3,
            ),
            (
                Box::new(MvccEngine::new(MvccMode::SnapshotIsolation)),
                IsolationLevel::PLSI,
            ),
            (
                Box::new(MvccEngine::new(MvccMode::ReadCommitted)),
                IsolationLevel::PL2,
            ),
        ] {
            let t = engine.catalog().table("acct");
            seed_accounts(engine.as_ref(), t, 4, 100);
            let programs: Vec<Program> = (0..10)
                .map(|i| transfer(t, i % 4, (i + 1) % 4, 5))
                .collect();
            let stats = run_deterministic(
                engine.as_ref(),
                programs,
                &DriverConfig {
                    seed: 7,
                    ..Default::default()
                },
            );
            assert!(stats.committed > 0, "{}", engine.name());
            let h = engine.finalize();
            let r = classify(&h);
            assert!(
                r.satisfies(level),
                "{} history must satisfy {level}: {r}",
                engine.name()
            );
        }
    }

    #[test]
    fn deadlocks_are_broken() {
        // Two transfers in opposite directions on 2PL: a classic
        // deadlock under some interleavings. With restarts both must
        // eventually commit across several seeds.
        for seed in 0..8 {
            let e = LockingEngine::new(LockConfig::serializable());
            let t = e.catalog().table("acct");
            seed_accounts(&e, t, 2, 100);
            let programs = vec![transfer(t, 0, 1, 10), transfer(t, 1, 0, 20)];
            let stats = run_deterministic(
                &e,
                programs,
                &DriverConfig {
                    seed,
                    ..Default::default()
                },
            );
            assert_eq!(stats.committed, 2, "seed {seed}: {stats:?}");
        }
    }

    #[test]
    fn abort_step_injects_failures() {
        let e = LockingEngine::new(LockConfig::serializable());
        let t = e.catalog().table("acct");
        let programs = vec![Program::new(
            "doomed",
            vec![
                Step::Write {
                    table: t,
                    key: Key(0),
                    value: Expr::Const(1),
                },
                Step::Abort,
            ],
        )];
        let stats = run_deterministic(&e, programs, &DriverConfig::default());
        assert_eq!(stats.committed, 0);
        assert_eq!(stats.gave_up, 1);
        let h = e.finalize();
        assert_eq!(h.committed_txns().count(), 0);
    }

    #[test]
    fn select_aggregates_into_registers() {
        let e = LockingEngine::new(LockConfig::serializable());
        let t = e.catalog().table("emp");
        seed_accounts(&e, t, 3, 10);
        let programs = vec![Program::new(
            "audit",
            vec![
                Step::Select {
                    table: t,
                    pred: PredSpec::All,
                    count_reg: Some(0),
                    sum_reg: Some(1),
                },
                // Store the observed sum so the history shows it.
                Step::Write {
                    table: t,
                    key: Key(99),
                    value: Expr::reg(1),
                },
            ],
        )];
        let stats = run_deterministic(&e, programs, &DriverConfig::default());
        assert_eq!(stats.committed, 1);
        let tx = e.begin();
        assert_eq!(e.read(tx, t, Key(99)).unwrap(), Some(Value::Int(30)));
        e.commit(tx).unwrap();
    }

    #[test]
    fn runs_replay_identically_per_seed() {
        let run = |seed: u64| {
            let e = LockingEngine::new(LockConfig::read_committed());
            let t = e.catalog().table("acct");
            seed_accounts(&e, t, 4, 100);
            let programs: Vec<Program> =
                (0..8).map(|i| transfer(t, i % 4, (i + 2) % 4, 1)).collect();
            let stats = run_deterministic(
                &e,
                programs,
                &DriverConfig {
                    seed,
                    ..Default::default()
                },
            );
            (stats.committed, stats.ops, e.finalize().len())
        };
        assert_eq!(run(42), run(42));
    }
}

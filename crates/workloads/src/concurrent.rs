//! A real-threads driver.
//!
//! The deterministic driver proves *what* each scheme admits; this one
//! proves the engines are actually thread-safe: N OS threads hammer
//! one engine concurrently, spinning (with yields) on `Blocked`
//! operations and falling back to timeout-based deadlock victims. The
//! resulting history is still a single totally-ordered record (the
//! recorder serializes events), so the checker applies unchanged.
//!
//! Nondeterministic by nature — every run is a fresh schedule — which
//! is exactly what makes it a good stress test: the soundness property
//! ("every committed history satisfies the engine's level") must hold
//! for *all* schedules, not just seeded ones.

use std::sync::atomic::{AtomicUsize, Ordering};

use adya_engine::{AbortReason, Engine, EngineError, Value};
use crossbeam::thread;

use crate::driver::RunStats;
use crate::program::{Program, Step};
use crate::retry::RetryPolicy;

/// Knobs for the concurrent driver.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Worker threads.
    pub threads: usize,
    /// Consecutive `Blocked` retries of one operation before the
    /// session declares itself a deadlock victim and restarts.
    pub spin_limit: usize,
    /// Restart/backoff/deadline discipline per program.
    pub retry: RetryPolicy,
    /// Seeds the per-program backoff jitter (the schedule itself stays
    /// nondeterministic — this only makes the jitter draws replayable).
    pub seed: u64,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        ConcurrentConfig {
            threads: 4,
            spin_limit: 2_000,
            retry: RetryPolicy::default(),
            seed: 0,
        }
    }
}

/// Runs `programs` against `engine` from `cfg.threads` OS threads;
/// each thread claims the next unclaimed program and executes it to
/// commit (restarting on aborts/deadlocks) before claiming another.
pub fn run_concurrent(
    engine: &dyn Engine,
    programs: &[Program],
    cfg: &ConcurrentConfig,
) -> RunStats {
    let next = AtomicUsize::new(0);
    let committed = AtomicUsize::new(0);
    let gave_up = AtomicUsize::new(0);
    let blocked = AtomicUsize::new(0);
    let ops = AtomicUsize::new(0);
    let victims = AtomicUsize::new(0);
    let deadline_giveups = AtomicUsize::new(0);

    thread::scope(|scope| {
        for _ in 0..cfg.threads.max(1) {
            scope.spawn(|_| loop {
                let ix = next.fetch_add(1, Ordering::Relaxed);
                let Some(program) = programs.get(ix) else {
                    return;
                };
                if run_program(
                    engine,
                    program,
                    ix,
                    cfg,
                    &blocked,
                    &ops,
                    &victims,
                    &deadline_giveups,
                ) {
                    committed.fetch_add(1, Ordering::Relaxed);
                } else {
                    gave_up.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    })
    .expect("driver threads must not panic");

    let mut stats = RunStats {
        committed: committed.into_inner(),
        gave_up: gave_up.into_inner(),
        ops: ops.into_inner(),
        blocked: blocked.into_inner(),
        deadlock_victims: victims.into_inner(),
        deadline_giveups: deadline_giveups.into_inner(),
        ..Default::default()
    };
    // Aggregate outcomes are enough for the concurrent driver; per-
    // session outcome order is meaningless across threads.
    stats.outcomes.clear();
    stats
}

/// Executes one program to completion; true on commit.
#[allow(clippy::too_many_arguments)]
fn run_program(
    engine: &dyn Engine,
    program: &Program,
    ix: usize,
    cfg: &ConcurrentConfig,
    blocked: &AtomicUsize,
    ops: &AtomicUsize,
    victims: &AtomicUsize,
    deadline_giveups: &AtomicUsize,
) -> bool {
    let mut regs = vec![0i64; program.register_count().max(1)];
    // Predicates compiled once per program run so their identity is
    // stable across blocked retries.
    let preds: Vec<Option<adya_engine::TablePred>> = program
        .steps
        .iter()
        .map(|s| match s {
            Step::Select { table, pred, .. } => Some(pred.compile(*table)),
            _ => None,
        })
        .collect();
    let mut retry = cfg
        .retry
        .session(cfg.seed ^ (ix as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));

    'attempt: loop {
        let txn = engine.begin();
        regs.iter_mut().for_each(|r| *r = 0);
        let mut pc = 0usize;
        let mut spins = 0usize;
        loop {
            if !retry.admit_op() {
                // Per-transaction deadline exhausted.
                deadline_giveups.fetch_add(1, Ordering::Relaxed);
                let _ = engine.abort(txn);
                return false;
            }
            ops.fetch_add(1, Ordering::Relaxed);
            let result: Result<(), EngineError> = if pc >= program.steps.len() {
                match engine.commit(txn) {
                    Ok(()) => return true,
                    Err(e) => Err(e),
                }
            } else {
                match &program.steps[pc] {
                    Step::Read { table, key, reg } => engine.read(txn, *table, *key).map(|v| {
                        regs[*reg] = match v {
                            Some(Value::Int(i)) => i,
                            _ => 0,
                        };
                    }),
                    Step::Write { table, key, value } => {
                        let v = value.eval(&regs);
                        engine.write(txn, *table, *key, Value::Int(v))
                    }
                    Step::Delete { table, key } => engine.delete(txn, *table, *key),
                    Step::Select {
                        count_reg, sum_reg, ..
                    } => {
                        let pred = preds[pc].as_ref().expect("select step has predicate");
                        engine.select(txn, pred).map(|rows| {
                            if let Some(r) = count_reg {
                                regs[*r] = rows.len() as i64;
                            }
                            if let Some(r) = sum_reg {
                                regs[*r] = rows.iter().map(|(_, v)| v.as_int().unwrap_or(0)).sum();
                            }
                        })
                    }
                    Step::Abort => {
                        let _ = engine.abort(txn);
                        return false;
                    }
                }
            };
            match result {
                Ok(()) => {
                    pc += 1;
                    spins = 0;
                    retry.clear_backoff();
                }
                Err(EngineError::Blocked { .. }) => {
                    blocked.fetch_add(1, Ordering::Relaxed);
                    spins += 1;
                    if spins > cfg.spin_limit {
                        // Timeout-based deadlock victim.
                        victims.fetch_add(1, Ordering::Relaxed);
                        let _ = engine.abort(txn);
                        if retry.should_restart(&AbortReason::DeadlockVictim).is_err() {
                            return false;
                        }
                        continue 'attempt;
                    }
                    for _ in 0..retry.backoff_spins() {
                        std::thread::yield_now();
                    }
                }
                // Any abort surfaced by an *operation* is restartable —
                // including `Requested`, which under a fault plane means
                // the transaction was aborted out from under this thread
                // (a crash point), not that the program asked for it.
                // The program's own `Step::Abort` returns above without
                // consulting the policy.
                Err(EngineError::Aborted(reason)) => {
                    if retry.should_restart(&reason).is_err() {
                        return false;
                    }
                    continue 'attempt;
                }
                Err(EngineError::UnknownTxn) => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{bank_workload, mixed_workload, BankConfig, MixedConfig};
    use adya_core::{classify, IsolationLevel};
    use adya_engine::{
        CertifyLevel, Key, LockConfig, LockingEngine, MvccEngine, MvccMode, OccEngine, SgtEngine,
    };

    #[test]
    fn concurrent_2pl_preserves_invariant_and_serializability() {
        let e = LockingEngine::new(LockConfig::serializable());
        let (table, programs) = bank_workload(
            &e,
            &BankConfig {
                accounts: 6,
                initial_balance: 100,
                transfers: 40,
                audits: 10,
                seed: 3,
            },
        );
        let stats = run_concurrent(&e, &programs, &ConcurrentConfig::default());
        assert!(stats.committed > 0, "{stats:?}");
        let tx = e.begin();
        let total: i64 = (0..6)
            .map(|k| {
                e.read(tx, table, Key(k))
                    .unwrap()
                    .and_then(|v| v.as_int())
                    .unwrap_or(0)
            })
            .sum();
        e.commit(tx).unwrap();
        assert_eq!(total, 600);
        let h = e.finalize();
        assert!(classify(&h).satisfies(IsolationLevel::PL3));
    }

    #[test]
    fn concurrent_occ_and_mvcc_histories_check() {
        for (engine, level) in [
            (
                Box::new(OccEngine::new()) as Box<dyn adya_engine::Engine>,
                IsolationLevel::PL3,
            ),
            (
                Box::new(MvccEngine::new(MvccMode::SnapshotIsolation)),
                IsolationLevel::PLSI,
            ),
            (
                Box::new(MvccEngine::new(MvccMode::ReadCommitted)),
                IsolationLevel::PL2,
            ),
        ] {
            let (_, programs) = mixed_workload(
                engine.as_ref(),
                &MixedConfig {
                    keys: 8,
                    txns: 40,
                    ops_per_txn: 4,
                    write_ratio: 0.5,
                    abort_prob: 0.0,
                    delete_prob: 0.0,
                    theta: 0.8,
                    seed: 9,
                },
            );
            let stats = run_concurrent(engine.as_ref(), &programs, &ConcurrentConfig::default());
            assert!(stats.committed > 0, "{}", engine.name());
            let h = engine.finalize();
            assert!(
                classify(&h).satisfies(level),
                "{} under threads must satisfy {level}",
                engine.name()
            );
        }
    }

    #[test]
    fn concurrent_locking_levels_check() {
        for (config, level) in [
            (LockConfig::read_uncommitted(), IsolationLevel::PL1),
            (LockConfig::read_committed(), IsolationLevel::PL2),
            (LockConfig::repeatable_read(), IsolationLevel::PL299),
        ] {
            let e = LockingEngine::new(config);
            let (_, programs) = mixed_workload(
                &e,
                &MixedConfig {
                    keys: 6,
                    txns: 30,
                    ops_per_txn: 3,
                    write_ratio: 0.5,
                    abort_prob: 0.0,
                    delete_prob: 0.1,
                    theta: 0.7,
                    seed: 21,
                },
            );
            let _ = run_concurrent(&e, &programs, &ConcurrentConfig::default());
            let h = e.finalize();
            assert!(
                classify(&h).satisfies(level),
                "{config:?} under threads must satisfy {level}"
            );
        }
    }

    #[test]
    fn concurrent_mvto_histories_check() {
        let e = adya_engine::MvtoEngine::new();
        let (_, programs) = mixed_workload(
            &e,
            &MixedConfig {
                keys: 8,
                txns: 30,
                ops_per_txn: 3,
                write_ratio: 0.5,
                abort_prob: 0.0,
                delete_prob: 0.0,
                theta: 0.6,
                seed: 17,
            },
        );
        let _ = run_concurrent(&e, &programs, &ConcurrentConfig::default());
        let h = e.finalize();
        assert!(classify(&h).satisfies(IsolationLevel::PL3));
    }

    #[test]
    fn concurrent_sgt_histories_check() {
        let e = SgtEngine::new(CertifyLevel::PL3);
        let (_, programs) = mixed_workload(
            &e,
            &MixedConfig {
                keys: 8,
                txns: 30,
                ops_per_txn: 3,
                write_ratio: 0.5,
                abort_prob: 0.0,
                delete_prob: 0.0,
                theta: 0.6,
                seed: 13,
            },
        );
        let _ = run_concurrent(&e, &programs, &ConcurrentConfig::default());
        let h = e.finalize();
        assert!(classify(&h).satisfies(IsolationLevel::PL3));
    }
}

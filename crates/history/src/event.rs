//! The events that make up a history (§4.2).

use std::fmt;

use crate::ids::{ObjectId, PredicateId, TxnId, VersionId};
use crate::value::{Value, VersionKind};

/// A write `w_i(x_{i:m})`: transaction `txn` creates version `seq` of
/// `object`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteEvent {
    /// Writing transaction.
    pub txn: TxnId,
    /// Object written.
    pub object: ObjectId,
    /// 1-based per-(txn, object) modification counter (`m` in
    /// `x_{i:m}`).
    pub seq: u32,
    /// `Visible` for updates/inserts, `Dead` for deletes.
    pub kind: VersionKind,
    /// Optional payload (the `v` in `w_i(x_i, v)`).
    pub value: Option<Value>,
}

impl WriteEvent {
    /// The id of the version this write creates.
    pub fn version(&self) -> VersionId {
        VersionId::new(self.txn, self.seq)
    }
}

/// An item read `r_j(x_{i:m})`: `txn` observes version `version` of
/// `object`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadEvent {
    /// Reading transaction.
    pub txn: TxnId,
    /// Object read.
    pub object: ObjectId,
    /// Version observed (may belong to an uncommitted or aborted
    /// writer; the *checker* decides whether that is a phenomenon).
    pub version: VersionId,
    /// True when the read went through a cursor (used by the Cursor
    /// Stability extension level PL-CS; plain reads leave this false).
    pub through_cursor: bool,
}

/// A predicate-based read `r_i(P: Vset(P))` (§4.3.1).
///
/// The version set conceptually selects a version of *every* tuple in
/// `P`'s relations. Storing that literally would be enormous (it
/// includes unborn versions of tuples that are never inserted), so the
/// event stores the explicit entries and the containing [`History`]
/// resolves any unlisted object of those relations to its unborn
/// initial version — exactly the paper's own convention of only
/// showing visible versions in examples.
///
/// [`History`]: crate::History
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateReadEvent {
    /// Reading transaction.
    pub txn: TxnId,
    /// The predicate being evaluated.
    pub predicate: PredicateId,
    /// Explicit version-set entries, at most one per object.
    pub vset: Vec<(ObjectId, VersionId)>,
}

impl PredicateReadEvent {
    /// The explicit version selected for `object`, if listed.
    pub fn vset_entry(&self, object: ObjectId) -> Option<VersionId> {
        self.vset
            .iter()
            .find(|(o, _)| *o == object)
            .map(|(_, v)| *v)
    }
}

/// One event of a history.
///
/// The paper's histories are partial orders; this crate represents a
/// total order consistent with that partial order (the paper itself
/// presents every example that way, and any partial-order history can
/// be linearized without changing its DSG).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// Optional explicit transaction start (needed by Snapshot
    /// Isolation's time-precedes order; inferred as the first event
    /// otherwise).
    Begin(TxnId),
    /// `w_i(x_{i:m}[, v])`.
    Write(WriteEvent),
    /// `r_j(x_{i:m})`.
    Read(ReadEvent),
    /// `r_i(P: Vset(P))`.
    PredicateRead(PredicateReadEvent),
    /// `c_i`.
    Commit(TxnId),
    /// `a_i`.
    Abort(TxnId),
}

impl Event {
    /// The transaction this event belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            Event::Begin(t) | Event::Commit(t) | Event::Abort(t) => *t,
            Event::Write(w) => w.txn,
            Event::Read(r) => r.txn,
            Event::PredicateRead(p) => p.txn,
        }
    }

    /// True for `Commit` and `Abort`.
    pub fn is_terminal(&self) -> bool {
        matches!(self, Event::Commit(_) | Event::Abort(_))
    }

    /// The write payload, if this is a write.
    pub fn as_write(&self) -> Option<&WriteEvent> {
        match self {
            Event::Write(w) => Some(w),
            _ => None,
        }
    }

    /// The read payload, if this is an item read.
    pub fn as_read(&self) -> Option<&ReadEvent> {
        match self {
            Event::Read(r) => Some(r),
            _ => None,
        }
    }

    /// The predicate-read payload, if this is a predicate read.
    pub fn as_predicate_read(&self) -> Option<&PredicateReadEvent> {
        match self {
            Event::PredicateRead(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Begin(t) => write!(f, "b{}", Sub(*t)),
            Event::Commit(t) => write!(f, "c{}", Sub(*t)),
            Event::Abort(t) => write!(f, "a{}", Sub(*t)),
            Event::Write(w) => {
                write!(f, "w{}({}{}", Sub(w.txn), w.object, VSuffix(w.version()))?;
                match (&w.kind, &w.value) {
                    (VersionKind::Dead, _) => write!(f, ", dead)"),
                    (_, Some(v)) => write!(f, ", {v})"),
                    _ => write!(f, ")"),
                }
            }
            Event::Read(r) => {
                let c = if r.through_cursor { "rc" } else { "r" };
                write!(f, "{c}{}({}{})", Sub(r.txn), r.object, VSuffix(r.version))
            }
            Event::PredicateRead(p) => {
                write!(f, "r{}({}:", Sub(p.txn), p.predicate)?;
                for (i, (o, v)) in p.vset.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, " {o}{}", VSuffix(*v))?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Formats a transaction id as the paper's subscript (just the number).
struct Sub(TxnId);

impl fmt::Display for Sub {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_init() {
            write!(f, "init")
        } else {
            write!(f, "{}", self.0 .0)
        }
    }
}

/// Formats a version id as the paper's `x_i` / `x_{i:m}` suffix.
struct VSuffix(VersionId);

impl fmt::Display for VSuffix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_txn_extraction() {
        let t = TxnId(4);
        assert_eq!(Event::Begin(t).txn(), t);
        assert_eq!(Event::Commit(t).txn(), t);
        assert_eq!(Event::Abort(t).txn(), t);
        let w = Event::Write(WriteEvent {
            txn: t,
            object: ObjectId(0),
            seq: 1,
            kind: VersionKind::Visible,
            value: None,
        });
        assert_eq!(w.txn(), t);
        assert!(w.as_write().is_some());
        assert!(w.as_read().is_none());
    }

    #[test]
    fn terminal_detection() {
        assert!(Event::Commit(TxnId(1)).is_terminal());
        assert!(Event::Abort(TxnId(1)).is_terminal());
        assert!(!Event::Begin(TxnId(1)).is_terminal());
    }

    #[test]
    fn write_version_id() {
        let w = WriteEvent {
            txn: TxnId(3),
            object: ObjectId(7),
            seq: 2,
            kind: VersionKind::Visible,
            value: Some(Value::Int(9)),
        };
        assert_eq!(w.version(), VersionId::new(TxnId(3), 2));
    }

    #[test]
    fn vset_entry_lookup() {
        let e = PredicateReadEvent {
            txn: TxnId(1),
            predicate: PredicateId(0),
            vset: vec![(ObjectId(0), VersionId::INIT)],
        };
        assert_eq!(e.vset_entry(ObjectId(0)), Some(VersionId::INIT));
        assert_eq!(e.vset_entry(ObjectId(1)), None);
    }

    #[test]
    fn display_forms() {
        let w = Event::Write(WriteEvent {
            txn: TxnId(1),
            object: ObjectId(0),
            seq: 1,
            kind: VersionKind::Visible,
            value: Some(Value::Int(2)),
        });
        assert_eq!(w.to_string(), "w1(obj0[1], 2)");
        let d = Event::Write(WriteEvent {
            txn: TxnId(2),
            object: ObjectId(0),
            seq: 1,
            kind: VersionKind::Dead,
            value: None,
        });
        assert_eq!(d.to_string(), "w2(obj0[2], dead)");
        let r = Event::Read(ReadEvent {
            txn: TxnId(2),
            object: ObjectId(0),
            version: VersionId::new(TxnId(1), 1),
            through_cursor: false,
        });
        assert_eq!(r.to_string(), "r2(obj0[1])");
    }
}

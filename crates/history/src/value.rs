//! Values carried by object versions.
//!
//! The theory of the paper never inspects values — conflicts are
//! defined purely over version identities and predicate match status.
//! Values exist so that (a) example histories can mirror the paper's
//! `w1(x1, 2)` notation, (b) the engine substrate can store real rows,
//! and (c) predicate match tables can be *derived* from row contents
//! instead of being written out by hand.

use std::collections::BTreeMap;
use std::fmt;

/// A value stored in an object version.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// 64-bit integer (the paper's numeric examples).
    Int(i64),
    /// UTF-8 string (department names and the like).
    Str(String),
    /// Boolean.
    Bool(bool),
    /// A relational tuple with named fields.
    Tuple(Row),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The row payload, if this is a [`Value::Tuple`].
    pub fn as_row(&self) -> Option<&Row> {
        match self {
            Value::Tuple(r) => Some(r),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Tuple(r) => write!(f, "{r}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// A relational tuple: an ordered map from field name to value.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Row {
    fields: BTreeMap<String, Value>,
}

impl Row {
    /// An empty row.
    pub fn new() -> Row {
        Row::default()
    }

    /// Builder-style field setter.
    ///
    /// ```
    /// use adya_history::{Row, Value};
    /// let r = Row::new().with("dept", "Sales").with("sal", 100i64);
    /// assert_eq!(r.get("sal"), Some(&Value::Int(100)));
    /// ```
    pub fn with(mut self, field: impl Into<String>, value: impl Into<Value>) -> Row {
        self.fields.insert(field.into(), value.into());
        self
    }

    /// Sets a field in place.
    pub fn set(&mut self, field: impl Into<String>, value: impl Into<Value>) {
        self.fields.insert(field.into(), value.into());
    }

    /// Looks up a field.
    pub fn get(&self, field: &str) -> Option<&Value> {
        self.fields.get(field)
    }

    /// Iterates fields in name order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the row has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

/// The lifecycle kind of a version (§4.1).
///
/// Objects move `Unborn → Visible* → Dead`; only visible versions may
/// be read by item reads, and only visible versions can match a
/// predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VersionKind {
    /// The object has not yet been inserted (initial `x_init` state).
    Unborn,
    /// A normal, readable version.
    Visible,
    /// The object has been deleted; a dead version is terminal.
    Dead,
}

impl fmt::Display for VersionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VersionKind::Unborn => write!(f, "unborn"),
            VersionKind::Visible => write!(f, "visible"),
            VersionKind::Dead => write!(f, "dead"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_builder_and_lookup() {
        let r = Row::new().with("dept", "Sales").with("sal", 10i64);
        assert_eq!(r.get("dept"), Some(&Value::Str("Sales".into())));
        assert_eq!(r.get("sal").and_then(Value::as_int), Some(10));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn row_set_overwrites() {
        let mut r = Row::new().with("sal", 10i64);
        r.set("sal", 20i64);
        assert_eq!(r.get("sal").and_then(Value::as_int), Some(20));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::str("s"), Value::Str("s".into()));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("a").to_string(), "\"a\"");
        let r = Row::new().with("d", "S");
        assert_eq!(Value::Tuple(r).to_string(), "{d: \"S\"}");
        assert_eq!(VersionKind::Dead.to_string(), "dead");
    }
}

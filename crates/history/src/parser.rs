//! A parser for the paper's textual history notation.
//!
//! Item-level histories can be written exactly as they appear in the
//! paper and parsed directly in tests and examples:
//!
//! ```
//! use adya_history::parse_history;
//!
//! // H2 of §3 (T2 observes a violated invariant x + y = 10):
//! let h = parse_history(
//!     "r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9) c2",
//! ).unwrap();
//! assert_eq!(h.committed_txns().count(), 2);
//! ```
//!
//! Grammar (whitespace-separated tokens):
//!
//! * `w1(x)` / `w1(x,5)` / `w1(x,dead)` — write/delete by `T1`; version
//!   sequence numbers are assigned automatically.
//! * `r2(x1)` — `T2` reads the version of `x` most recently written by
//!   `T1`; `r2(x1:2)` reads `T1`'s second modification; `r2(xinit)`
//!   reads the initial version. An optional value after a comma is
//!   accepted and ignored (`r2(x1,5)` — values live on writes).
//! * `rc2(x1)` — cursor read (Cursor Stability extension).
//! * `b1` / `c1` / `a1` — begin / commit / abort.
//! * `#pred(NAME,lo,hi)` — declares predicate `NAME` matching integer
//!   values in `[lo, hi]` over the default relation; `rp2(NAME: x1,y0)`
//!   is then `T2`'s predicate read with the given version set (objects
//!   not listed are implicitly selected at their initial versions).
//! * A trailing `[x2 << x1, y1 << y2]` section fixes explicit version
//!   orders (writers' final versions; `init` is implicit and first).
//!
//! Objects are registered on first mention, **preloaded** with the
//! value of the first `w`/`r` that mentions them at `init` (or `0`).
//! For richer predicates (string matchers, multiple relations) use
//! [`crate::HistoryBuilder`], which can derive match tables from
//! arbitrary closures.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::builder::HistoryBuilder;
use crate::error::HistoryError;
use crate::history::History;
use crate::ids::{ObjectId, TxnId, VersionId};
use crate::value::Value;

/// A failure to parse the textual notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A token that is not an operation or order section.
    UnexpectedToken(String),
    /// A malformed operation target (e.g. `r2()` or `r2(x)` without a
    /// writer).
    BadTarget(String),
    /// A version-order chain mixing objects (`[x1 << y2]`).
    MixedChain(String),
    /// A version-order entry referencing a transaction that never
    /// wrote the object.
    UnknownWriter(String),
    /// The parsed history failed §4.2 validation.
    History(HistoryError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedToken(t) => write!(f, "unexpected token {t:?}"),
            ParseError::BadTarget(t) => write!(f, "malformed operation target {t:?}"),
            ParseError::MixedChain(t) => write!(f, "version-order chain mixes objects: {t:?}"),
            ParseError::UnknownWriter(t) => {
                write!(f, "version order references unknown writer: {t:?}")
            }
            ParseError::History(e) => write!(f, "history invalid: {e}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::History(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HistoryError> for ParseError {
    fn from(e: HistoryError) -> Self {
        ParseError::History(e)
    }
}

/// Parses the paper's textual notation into a validated [`History`].
///
/// All transactions run at the default requested level (PL-3); use
/// [`crate::HistoryBuilder`] for mixed-level histories.
pub fn parse_history(input: &str) -> Result<History, ParseError> {
    Parser::default().parse(input, false)
}

/// Like [`parse_history`], but applies the paper's completion rule:
/// transactions left open at the end of the text get an appended
/// abort (§4.2 — "a history that is not complete can be completed by
/// appending abort events").
pub fn parse_history_completed(input: &str) -> Result<History, ParseError> {
    Parser::default().parse(input, true)
}

#[derive(Default)]
struct Parser {
    b: HistoryBuilder,
    objects: BTreeMap<String, ObjectId>,
    /// Declared predicates: name -> (id, lo, hi).
    preds: BTreeMap<String, (crate::ids::PredicateId, i64, i64)>,
    /// Deferred version orders: (object name, writer chain).
    orders: Vec<(String, Vec<TxnId>)>,
}

impl Parser {
    fn parse(mut self, input: &str, complete: bool) -> Result<History, ParseError> {
        let (events_part, order_part) = match input.find('[') {
            Some(ix) => (&input[..ix], Some(&input[ix..])),
            None => (input, None),
        };
        // Whitespace inside parentheses is noise ("rp1(P: x0, y0)"),
        // not a token boundary.
        let mut compact = String::with_capacity(events_part.len());
        let mut depth = 0usize;
        for c in events_part.chars() {
            match c {
                '(' => {
                    depth += 1;
                    compact.push(c);
                }
                ')' => {
                    depth = depth.saturating_sub(1);
                    compact.push(c);
                }
                c if c.is_whitespace() && depth > 0 => {}
                c => compact.push(c),
            }
        }
        for token in compact.split_whitespace() {
            self.parse_op(token)?;
        }
        if let Some(order) = order_part {
            self.parse_orders(order)?;
        }
        for (name, writers) in std::mem::take(&mut self.orders) {
            let obj = self.objects[&name];
            // Resolve writers defensively: naming a transaction that
            // never wrote the object is a parse error, not a panic.
            let mut order = Vec::with_capacity(writers.len());
            for w in writers {
                match self.b.last_seq(w, obj) {
                    Some(seq) => order.push(VersionId::new(w, seq)),
                    None => {
                        return Err(ParseError::UnknownWriter(format!("{w} never wrote {name}")))
                    }
                }
            }
            self.b.version_order(obj, &order);
        }
        if complete {
            self.b.build_completed().map_err(ParseError::from)
        } else {
            self.b.build().map_err(ParseError::from)
        }
    }

    fn object(&mut self, name: &str, preload: Value) -> ObjectId {
        if let Some(&o) = self.objects.get(name) {
            return o;
        }
        let o = self.b.preloaded_object(name, preload);
        self.objects.insert(name.to_string(), o);
        o
    }

    fn parse_op(&mut self, token: &str) -> Result<(), ParseError> {
        // #pred(NAME,lo,hi)
        if let Some(rest) = token.strip_prefix("#pred(") {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| ParseError::UnexpectedToken(token.to_string()))?;
            let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
            let [name, lo, hi] = parts.as_slice() else {
                return Err(ParseError::UnexpectedToken(token.to_string()));
            };
            let lo: i64 = lo
                .parse()
                .map_err(|_| ParseError::UnexpectedToken(token.to_string()))?;
            let hi: i64 = hi
                .parse()
                .map_err(|_| ParseError::UnexpectedToken(token.to_string()))?;
            let rel = self.b.default_relation();
            let pid = self.b.predicate(format!("{name}:{lo}..={hi}"), &[rel]);
            self.b.derive_matches(
                pid,
                move |v| matches!(v, Value::Int(i) if (lo..=hi).contains(i)),
            );
            self.preds.insert(name.to_string(), (pid, lo, hi));
            return Ok(());
        }
        // rp1(NAME: targets…) — predicate read.
        if let Some(rest) = token.strip_prefix("rp") {
            if let Some(open) = rest.find('(') {
                if rest[..open].chars().all(|c| c.is_ascii_digit()) && open > 0 {
                    let txn = TxnId(
                        rest[..open]
                            .parse()
                            .map_err(|_| ParseError::UnexpectedToken(token.to_string()))?,
                    );
                    let inner = rest[open + 1..]
                        .strip_suffix(')')
                        .ok_or_else(|| ParseError::UnexpectedToken(token.to_string()))?;
                    let (pname, targets) = inner
                        .split_once(':')
                        .ok_or_else(|| ParseError::BadTarget(token.to_string()))?;
                    let &(pid, _, _) = self
                        .preds
                        .get(pname.trim())
                        .ok_or_else(|| ParseError::UnknownWriter(token.to_string()))?;
                    let mut vset = Vec::new();
                    for t in targets.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                        let (name, vref) = split_version_target(t)
                            .ok_or_else(|| ParseError::BadTarget(t.to_string()))?;
                        let obj = self.object(name, Value::Int(0));
                        let vid = match vref {
                            VersionRef::Init => VersionId::INIT,
                            VersionRef::Latest(w) => {
                                VersionId::new(w, self.b.last_seq(w, obj).unwrap_or(1))
                            }
                            VersionRef::Exact(w, seq) => VersionId::new(w, seq),
                        };
                        vset.push((obj, vid));
                    }
                    self.b.predicate_read_versions(txn, pid, vset);
                    return Ok(());
                }
            }
        }
        // b1 / c1 / a1
        if let Some(rest) = token.strip_prefix('c') {
            if let Ok(n) = rest.parse::<u32>() {
                self.b.commit(TxnId(n));
                return Ok(());
            }
        }
        if let Some(rest) = token.strip_prefix('a') {
            if let Ok(n) = rest.parse::<u32>() {
                self.b.abort(TxnId(n));
                return Ok(());
            }
        }
        if let Some(rest) = token.strip_prefix('b') {
            if let Ok(n) = rest.parse::<u32>() {
                self.b.begin(TxnId(n));
                return Ok(());
            }
        }
        // w1(...) / r1(...) / rc1(...)
        let (kind, rest) = if let Some(r) = token.strip_prefix("rc") {
            (OpKind::CursorRead, r)
        } else if let Some(r) = token.strip_prefix('r') {
            (OpKind::Read, r)
        } else if let Some(r) = token.strip_prefix('w') {
            (OpKind::Write, r)
        } else {
            return Err(ParseError::UnexpectedToken(token.to_string()));
        };
        let open = rest
            .find('(')
            .ok_or_else(|| ParseError::UnexpectedToken(token.to_string()))?;
        let txn_num: u32 = rest[..open]
            .parse()
            .map_err(|_| ParseError::UnexpectedToken(token.to_string()))?;
        let txn = TxnId(txn_num);
        let inner = rest[open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| ParseError::UnexpectedToken(token.to_string()))?;
        let mut args = inner.split(',').map(str::trim);
        let target = args
            .next()
            .filter(|t| !t.is_empty())
            .ok_or_else(|| ParseError::BadTarget(token.to_string()))?;
        let value = args.next();

        match kind {
            OpKind::Write => {
                let obj = self.object(target, Value::Int(0));
                match value {
                    Some("dead") => {
                        self.b.delete(txn, obj);
                    }
                    Some(v) => {
                        let val = v
                            .parse::<i64>()
                            .map(Value::Int)
                            .unwrap_or_else(|_| Value::str(v));
                        self.b.write(txn, obj, val);
                    }
                    None => {
                        self.b.write_unvalued(txn, obj);
                    }
                }
            }
            OpKind::Read | OpKind::CursorRead => {
                let (name, version) = split_version_target(target)
                    .ok_or_else(|| ParseError::BadTarget(token.to_string()))?;
                // Preload with the value of an init read when given, so
                // `r2(xinit,5)` round-trips the paper's notation.
                let preload = match (version, value) {
                    (VersionRef::Init, Some(v)) => {
                        v.parse::<i64>().map(Value::Int).unwrap_or(Value::Int(0))
                    }
                    _ => Value::Int(0),
                };
                let obj = self.object(name, preload);
                let vid = match version {
                    VersionRef::Init => VersionId::INIT,
                    VersionRef::Latest(writer) => {
                        // A read of a never-written version surfaces as
                        // a ReadBeforeWrite validation error at build
                        // time, not a panic here.
                        let seq = self.b.last_seq(writer, obj).unwrap_or(1);
                        VersionId::new(writer, seq)
                    }
                    VersionRef::Exact(writer, seq) => VersionId::new(writer, seq),
                };
                match kind {
                    OpKind::CursorRead => self.b.cursor_read_version(txn, obj, vid),
                    _ => self.b.read_version(txn, obj, vid),
                }
            }
        }
        Ok(())
    }

    fn parse_orders(&mut self, section: &str) -> Result<(), ParseError> {
        let inner = section
            .trim()
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| ParseError::UnexpectedToken(section.to_string()))?;
        for chain in inner.split(',') {
            let chain = chain.trim();
            if chain.is_empty() {
                continue;
            }
            let mut obj_name: Option<String> = None;
            let mut writers: Vec<TxnId> = Vec::new();
            for elem in chain.split("<<") {
                let elem = elem.trim();
                let (name, vref) = split_version_target(elem)
                    .ok_or_else(|| ParseError::BadTarget(elem.to_string()))?;
                match &obj_name {
                    None => obj_name = Some(name.to_string()),
                    Some(prev) if prev != name => {
                        return Err(ParseError::MixedChain(chain.to_string()))
                    }
                    _ => {}
                }
                match vref {
                    VersionRef::Init => {} // implicit leading init
                    VersionRef::Latest(w) | VersionRef::Exact(w, _) => writers.push(w),
                }
            }
            let name = obj_name.ok_or_else(|| ParseError::BadTarget(chain.to_string()))?;
            if !self.objects.contains_key(&name) {
                return Err(ParseError::UnknownWriter(chain.to_string()));
            }
            self.orders.push((name, writers));
        }
        Ok(())
    }
}

enum OpKind {
    Write,
    Read,
    CursorRead,
}

#[derive(Clone, Copy)]
enum VersionRef {
    Init,
    Latest(TxnId),
    Exact(TxnId, u32),
}

/// Splits `x1`, `x1:2`, `xinit` into object name and version
/// reference. The object name is the maximal prefix that does not end
/// in a digit.
fn split_version_target(target: &str) -> Option<(&str, VersionRef)> {
    if let Some(name) = target.strip_suffix("init") {
        if !name.is_empty() {
            return Some((name, VersionRef::Init));
        }
    }
    let (base, seq) = match target.split_once(':') {
        Some((b, s)) => (b, Some(s.parse::<u32>().ok()?)),
        None => (target, None),
    };
    let digits_at = base
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_ascii_digit())
        .last()
        .map(|(i, _)| i)?;
    let (name, writer) = base.split_at(digits_at);
    if name.is_empty() {
        return None;
    }
    let writer: u32 = writer.parse().ok()?;
    Some(match seq {
        Some(s) => (name, VersionRef::Exact(TxnId(writer), s)),
        None => (name, VersionRef::Latest(TxnId(writer))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxnStatus;

    #[test]
    fn parses_simple_history() {
        let h = parse_history("w1(x,2) c1 r2(x1) c2").unwrap();
        assert_eq!(h.len(), 4);
        let x = h.object_by_name("x").unwrap();
        assert_eq!(h.version_order(x).len(), 2);
    }

    #[test]
    fn parses_h1_prime() {
        // H1' of §3.
        let h = parse_history("r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) r2(x1,1) r2(y1,9) c1 c2")
            .unwrap();
        assert_eq!(h.committed_txns().count(), 2);
        let x = h.object_by_name("x").unwrap();
        assert_eq!(h.version_value(x, VersionId::INIT), Some(&Value::Int(5)));
    }

    #[test]
    fn parses_version_order_section() {
        // H_write_order of §4.2 (T4's write aborted, T3 uncommitted →
        // completion appends nothing here since we commit/abort all).
        let h =
            parse_history("w1(x) w2(x) w2(y) c1 c2 r3(x1) w3(x) w4(y) a4 a3  [x2 << x1]").unwrap();
        let x = h.object_by_name("x").unwrap();
        let v1 = VersionId::new(TxnId(1), 1);
        let v2 = VersionId::new(TxnId(2), 1);
        assert!(h.version_precedes(x, v2, v1));
    }

    #[test]
    fn parses_abort_and_dead() {
        let h = parse_history("w1(x,5) c1 w2(x,dead) a2").unwrap();
        assert_eq!(h.txn(TxnId(2)).unwrap().status, TxnStatus::Aborted);
        let x = h.object_by_name("x").unwrap();
        // Aborted delete: only init + x1 committed.
        assert_eq!(h.version_order(x).len(), 2);
    }

    #[test]
    fn parses_intermediate_version_read() {
        let h = parse_history("w1(x,1) w1(x,2) r2(x1:1) c1 c2").unwrap();
        let x = h.object_by_name("x").unwrap();
        assert!(!h.is_final_version(x, VersionId::new(TxnId(1), 1)));
        assert!(h.is_final_version(x, VersionId::new(TxnId(1), 2)));
    }

    #[test]
    fn parses_begin_and_cursor_read() {
        let h = parse_history("b1 w1(x,1) c1 b2 rc2(x1) c2").unwrap();
        assert_eq!(h.txn(TxnId(1)).unwrap().begin_event, Some(0));
        let r = h.reads_of(TxnId(2)).next().unwrap().1;
        assert!(r.through_cursor);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            parse_history("nonsense"),
            Err(ParseError::UnexpectedToken(_))
        ));
        assert!(matches!(
            parse_history("r1()"),
            Err(ParseError::BadTarget(_))
        ));
        assert!(matches!(
            parse_history("w1(x) c1 [x1 << y1]"),
            Err(ParseError::MixedChain(_))
        ));
    }

    #[test]
    fn version_order_with_unknown_writer_is_an_error() {
        // Regression: used to panic inside the builder.
        assert!(matches!(
            parse_history("w1(x,1) c1 [x9]"),
            Err(ParseError::UnknownWriter(_))
        ));
    }

    #[test]
    fn rejects_invalid_history() {
        // T2 reads a version that is never written.
        assert!(matches!(
            parse_history("r2(x1) c2"),
            Err(ParseError::History(_))
        ));
    }

    #[test]
    fn string_values_accepted() {
        let h = parse_history("w1(x,Sales) c1").unwrap();
        let x = h.object_by_name("x").unwrap();
        assert_eq!(
            h.version_value(x, VersionId::new(TxnId(1), 1)),
            Some(&Value::str("Sales"))
        );
    }

    #[test]
    fn predicate_declaration_and_read() {
        // An Hphantom-like shape in pure text: T1 queries positives,
        // T2 inserts a matching row afterwards.
        let h = parse_history("#pred(POS,1,100) w0(x,10) c0 rp1(POS: x0) w2(z,10) c2 c1").unwrap();
        let (pid, info) = h.predicates().next().unwrap();
        assert!(info.name.starts_with("POS"));
        let x = h.object_by_name("x").unwrap();
        let z = h.object_by_name("z").unwrap();
        assert!(h.matches(pid, x, VersionId::new(TxnId(0), 1)));
        assert!(h.matches(pid, z, VersionId::new(TxnId(2), 1)));
        assert!(!h.matches(pid, x, VersionId::INIT), "init preload is 0");
        let pr = h.predicate_reads_of(TxnId(1)).next().unwrap().1;
        assert_eq!(pr.vset.len(), 1);
        // z is implicitly selected at init: x explicit + z implicit.
        assert_eq!(h.resolve_vset(pr).len(), 2);
    }

    #[test]
    fn predicate_read_of_unknown_predicate_fails() {
        assert!(matches!(
            parse_history("rp1(NOPE: x0) c1"),
            Err(ParseError::UnknownWriter(_))
        ));
    }

    #[test]
    fn empty_vset_predicate_read() {
        let h = parse_history("#pred(P,0,5) w1(x,3) c1 rp2(P:) c2").unwrap();
        let pr = h.predicate_reads_of(TxnId(2)).next().unwrap().1;
        assert!(pr.vset.is_empty());
    }

    #[test]
    fn multi_char_object_names() {
        let h = parse_history("w1(sum,30) c1 r2(sum1) c2").unwrap();
        assert!(h.object_by_name("sum").is_some());
    }
}

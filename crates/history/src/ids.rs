//! Identifier newtypes for transactions, objects, relations, predicates
//! and versions.

use std::fmt;

/// Identifier of a transaction.
///
/// The paper's special initialization transaction `Tinit` — which
/// conceptually creates the unborn version of every object (and the
/// visible initial version of preloaded objects) — is
/// [`TxnId::INIT`]. Ordinary transaction numbers 0, 1, 2, … are free
/// for application use, matching the paper's `T0`, `T1`, … naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u32);

impl TxnId {
    /// The initialization transaction `Tinit` (§4.1).
    pub const INIT: TxnId = TxnId(u32::MAX);

    /// True for [`TxnId::INIT`].
    #[inline]
    pub fn is_init(self) -> bool {
        self == TxnId::INIT
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_init() {
            write!(f, "Tinit")
        } else {
            write!(f, "T{}", self.0)
        }
    }
}

/// Identifier of an object (a tuple, in the relational reading of §4.3).
///
/// A deleted-then-reinserted tuple is *two distinct objects* in the
/// model; builders enforce this by never reusing an `ObjectId` after a
/// committed dead version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// Identifier of a relation (table). Every object belongs to exactly
/// one relation, fixed at creation — conceptually at `Tinit` time
/// (§4.3: "a tuple's relation is known in our model when the database
/// is initialized").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelationId(pub u32);

impl fmt::Display for RelationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel{}", self.0)
    }
}

/// Identifier of a predicate instance (the boolean condition plus the
/// relations it ranges over, Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredicateId(pub u32);

impl fmt::Display for PredicateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of one version of one object: `x_{i:m}` in the paper —
/// the `seq`-th modification of the object by transaction `txn`.
///
/// The object itself is *not* part of the id (exactly as in the paper's
/// notation); a `VersionId` is always interpreted relative to an
/// [`ObjectId`]. The initial version `x_init` is
/// [`VersionId::INIT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VersionId {
    /// The writing transaction `Ti`.
    pub txn: TxnId,
    /// 1-based modification count of this object by `txn` (`m` in
    /// `x_{i:m}`).
    pub seq: u32,
}

impl VersionId {
    /// The initial version `x_init` installed by `Tinit`.
    pub const INIT: VersionId = VersionId {
        txn: TxnId::INIT,
        seq: 1,
    };

    /// Creates the version id for `txn`'s `seq`-th write of an object.
    pub fn new(txn: TxnId, seq: u32) -> Self {
        debug_assert!(seq >= 1, "version seq is 1-based");
        VersionId { txn, seq }
    }

    /// True for [`VersionId::INIT`].
    #[inline]
    pub fn is_init(self) -> bool {
        self.txn.is_init()
    }
}

impl fmt::Display for VersionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_init() {
            write!(f, "init")
        } else if self.seq == 1 {
            // Paper convention: x_i denotes T_i's (final) modification;
            // the :1 suffix is noise for single-write transactions.
            write!(f, "{}", self.txn.0)
        } else {
            write!(f, "{}:{}", self.txn.0, self.seq)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_txn_is_reserved() {
        assert!(TxnId::INIT.is_init());
        assert!(!TxnId(0).is_init());
        assert_eq!(TxnId::INIT.to_string(), "Tinit");
        assert_eq!(TxnId(3).to_string(), "T3");
    }

    #[test]
    fn version_display_matches_paper_notation() {
        assert_eq!(VersionId::new(TxnId(2), 1).to_string(), "2");
        assert_eq!(VersionId::new(TxnId(2), 3).to_string(), "2:3");
        assert_eq!(VersionId::INIT.to_string(), "init");
    }

    #[test]
    fn init_version_belongs_to_init_txn() {
        assert!(VersionId::INIT.is_init());
        assert_eq!(VersionId::INIT.txn, TxnId::INIT);
        assert_eq!(VersionId::INIT.seq, 1);
    }
}

//! A programmatic DSL for assembling histories in the paper's
//! notation.
//!
//! The builder tracks version sequence numbers automatically (`w1(x)`
//! twice produces `x_{1:1}` then `x_{1:2}`), resolves "read T1's write
//! of x" to the correct version, derives predicate match tables from
//! row values, and completes histories by appending aborts — so tests
//! and examples read almost exactly like the paper's histories.

use std::collections::BTreeMap;

use crate::error::HistoryError;
use crate::event::{Event, PredicateReadEvent, ReadEvent, WriteEvent};
use crate::history::{History, HistoryParts, ObjectInfo, PredicateInfo, RelationInfo};
use crate::ids::{ObjectId, PredicateId, RelationId, TxnId, VersionId};
use crate::txn::RequestedLevel;
use crate::value::{Value, VersionKind};

type MatchFn = Box<dyn Fn(&Value) -> bool + Send + Sync>;

/// Incremental builder for a [`History`].
///
/// ```
/// use adya_history::{HistoryBuilder, Value};
///
/// // H_wcycle of §5.1: w1(x1,2) w2(x2,5) w2(y2,5) c2 w1(y1,8) c1
/// //                   [x1 << x2, y2 << y1]
/// let mut b = HistoryBuilder::new();
/// let (t1, t2) = (b.txn(1), b.txn(2));
/// let x = b.object("x");
/// let y = b.object("y");
/// b.write(t1, x, Value::Int(2));
/// b.write(t2, x, Value::Int(5));
/// b.write(t2, y, Value::Int(5));
/// b.commit(t2);
/// b.write(t1, y, Value::Int(8));
/// b.commit(t1);
/// b.version_order_by_txn(x, &[t1, t2]);
/// b.version_order_by_txn(y, &[t2, t1]);
/// let h = b.build().unwrap();
/// assert!(h.version_precedes(x, adya_history::VersionId::new(t1, 1),
///                               adya_history::VersionId::new(t2, 1)));
/// ```
#[derive(Default)]
pub struct HistoryBuilder {
    parts: HistoryParts,
    next_object: u32,
    next_relation: u32,
    next_predicate: u32,
    default_relation: Option<RelationId>,
    /// Latest write seq per (txn, object) so far.
    seqs: BTreeMap<(TxnId, ObjectId), u32>,
    /// Match derivations to run at build time.
    derived: Vec<(PredicateId, MatchFn)>,
}

impl HistoryBuilder {
    /// Creates an empty builder.
    pub fn new() -> HistoryBuilder {
        HistoryBuilder::default()
    }

    // ---- schema ---------------------------------------------------

    /// Registers a relation.
    pub fn relation(&mut self, name: impl Into<String>) -> RelationId {
        let id = RelationId(self.next_relation);
        self.next_relation += 1;
        self.parts
            .relations
            .insert(id, RelationInfo { name: name.into() });
        id
    }

    /// The default relation, created on demand; item-only histories
    /// never need to mention relations at all. Public so the textual
    /// parser can declare predicates over it.
    pub fn default_relation(&mut self) -> RelationId {
        self.default_rel()
    }

    /// The default relation, created on demand.
    fn default_rel(&mut self) -> RelationId {
        match self.default_relation {
            Some(r) => r,
            None => {
                let r = self.relation("default");
                self.default_relation = Some(r);
                r
            }
        }
    }

    /// Registers an object in the default relation, with an unborn
    /// initial version.
    pub fn object(&mut self, name: impl Into<String>) -> ObjectId {
        let rel = self.default_rel();
        self.object_in(name, rel)
    }

    /// Registers an object in `relation`, with an unborn initial
    /// version.
    pub fn object_in(&mut self, name: impl Into<String>, relation: RelationId) -> ObjectId {
        self.register_object(name, relation, None)
    }

    /// Registers an object whose initial version is *visible* with
    /// `value` (database-loader semantics, §4.1).
    pub fn preloaded_object(&mut self, name: impl Into<String>, value: Value) -> ObjectId {
        let rel = self.default_rel();
        self.preloaded_object_in(name, rel, value)
    }

    /// Registers a preloaded object in `relation`.
    pub fn preloaded_object_in(
        &mut self,
        name: impl Into<String>,
        relation: RelationId,
        value: Value,
    ) -> ObjectId {
        self.register_object(name, relation, Some(value))
    }

    fn register_object(
        &mut self,
        name: impl Into<String>,
        relation: RelationId,
        preload: Option<Value>,
    ) -> ObjectId {
        let id = ObjectId(self.next_object);
        self.next_object += 1;
        self.parts.objects.insert(
            id,
            ObjectInfo {
                name: name.into(),
                relation,
                preload,
            },
        );
        id
    }

    /// Registers a predicate ranging over `relations`. Its match table
    /// starts empty; fill it with [`HistoryBuilder::set_match`] or
    /// [`HistoryBuilder::derive_matches`].
    pub fn predicate(&mut self, name: impl Into<String>, relations: &[RelationId]) -> PredicateId {
        let id = PredicateId(self.next_predicate);
        self.next_predicate += 1;
        self.parts.predicates.insert(
            id,
            PredicateInfo {
                name: name.into(),
                relations: relations.to_vec(),
                matches: Default::default(),
            },
        );
        id
    }

    /// Declares a transaction id (idempotent; any event also declares
    /// its transaction implicitly).
    pub fn txn(&mut self, id: u32) -> TxnId {
        TxnId(id)
    }

    /// Records the requested isolation level for mixed-history analysis
    /// (§5.5). Defaults to PL-3.
    pub fn txn_level(&mut self, txn: TxnId, level: RequestedLevel) {
        self.parts.levels.insert(txn, level);
    }

    // ---- events ---------------------------------------------------

    /// Appends a raw event.
    pub fn event(&mut self, event: Event) {
        if let Event::Write(w) = &event {
            self.seqs.insert((w.txn, w.object), w.seq);
        }
        self.parts.events.push(event);
    }

    /// `b_i` — explicit begin (needed for Snapshot Isolation's
    /// time-precedes order; otherwise optional).
    pub fn begin(&mut self, txn: TxnId) {
        self.event(Event::Begin(txn));
    }

    /// `w_i(x_{i:m}, v)` — visible write; the seq `m` is assigned
    /// automatically. Returns the created version id.
    pub fn write(&mut self, txn: TxnId, object: ObjectId, value: Value) -> VersionId {
        self.push_write(txn, object, VersionKind::Visible, Some(value))
    }

    /// `w_i(x_{i:m})` — visible write without a recorded value.
    pub fn write_unvalued(&mut self, txn: TxnId, object: ObjectId) -> VersionId {
        self.push_write(txn, object, VersionKind::Visible, None)
    }

    /// `w_i(x_i, dead)` — delete: installs a dead version.
    pub fn delete(&mut self, txn: TxnId, object: ObjectId) -> VersionId {
        self.push_write(txn, object, VersionKind::Dead, None)
    }

    fn push_write(
        &mut self,
        txn: TxnId,
        object: ObjectId,
        kind: VersionKind,
        value: Option<Value>,
    ) -> VersionId {
        let seq = self.seqs.get(&(txn, object)).copied().unwrap_or(0) + 1;
        self.event(Event::Write(WriteEvent {
            txn,
            object,
            seq,
            kind,
            value,
        }));
        VersionId::new(txn, seq)
    }

    /// The sequence number of `txn`'s latest write of `object` so far,
    /// if any. Lets callers resolve "the version T1 last wrote"
    /// without panicking.
    pub fn last_seq(&self, txn: TxnId, object: ObjectId) -> Option<u32> {
        self.seqs.get(&(txn, object)).copied()
    }

    /// `r_j(x_i)` — reads `writer`'s *latest write so far* of
    /// `object`. Panics if `writer` has not written `object` yet (use
    /// [`HistoryBuilder::read_version`] for exotic cases; validation
    /// would reject them anyway).
    pub fn read(&mut self, txn: TxnId, object: ObjectId, writer: TxnId) {
        let seq = self
            .seqs
            .get(&(writer, object))
            .copied()
            .unwrap_or_else(|| panic!("{writer} has not written this object yet"));
        self.read_version(txn, object, VersionId::new(writer, seq));
    }

    /// `r_j(x_init)` — reads the (preloaded, visible) initial version.
    pub fn read_init(&mut self, txn: TxnId, object: ObjectId) {
        self.read_version(txn, object, VersionId::INIT);
    }

    /// Reads an explicit version.
    pub fn read_version(&mut self, txn: TxnId, object: ObjectId, version: VersionId) {
        self.event(Event::Read(ReadEvent {
            txn,
            object,
            version,
            through_cursor: false,
        }));
    }

    /// `rc_j(x_i)` — a read through a cursor (Cursor Stability
    /// extension), reading `writer`'s latest write so far.
    pub fn cursor_read(&mut self, txn: TxnId, object: ObjectId, writer: TxnId) {
        let version = if writer.is_init() {
            VersionId::INIT
        } else {
            let seq = self
                .seqs
                .get(&(writer, object))
                .copied()
                .unwrap_or_else(|| panic!("{writer} has not written this object yet"));
            VersionId::new(writer, seq)
        };
        self.event(Event::Read(ReadEvent {
            txn,
            object,
            version,
            through_cursor: true,
        }));
    }

    /// Cursor-read of an explicit version.
    pub fn cursor_read_version(&mut self, txn: TxnId, object: ObjectId, version: VersionId) {
        self.event(Event::Read(ReadEvent {
            txn,
            object,
            version,
            through_cursor: true,
        }));
    }

    /// `r_i(P: Vset(P))` — predicate read with an explicit version
    /// set. Versions are given as `(object, writer)` pairs resolved to
    /// the writer's latest write so far (`Tinit` selects the initial
    /// version). Objects of `P`'s relations not listed are implicitly
    /// selected at their initial versions.
    pub fn predicate_read(
        &mut self,
        txn: TxnId,
        predicate: PredicateId,
        vset: &[(ObjectId, TxnId)],
    ) {
        let resolved: Vec<(ObjectId, VersionId)> =
            vset.iter()
                .map(|&(obj, writer)| {
                    let v = if writer.is_init() {
                        VersionId::INIT
                    } else {
                        let seq =
                            self.seqs.get(&(writer, obj)).copied().unwrap_or_else(|| {
                                panic!("{writer} has not written this object yet")
                            });
                        VersionId::new(writer, seq)
                    };
                    (obj, v)
                })
                .collect();
        self.predicate_read_versions(txn, predicate, resolved);
    }

    /// Predicate read with fully explicit `(object, version)` entries.
    pub fn predicate_read_versions(
        &mut self,
        txn: TxnId,
        predicate: PredicateId,
        vset: Vec<(ObjectId, VersionId)>,
    ) {
        self.event(Event::PredicateRead(PredicateReadEvent {
            txn,
            predicate,
            vset,
        }));
    }

    /// `c_i`.
    pub fn commit(&mut self, txn: TxnId) {
        self.event(Event::Commit(txn));
    }

    /// `a_i`.
    pub fn abort(&mut self, txn: TxnId) {
        self.event(Event::Abort(txn));
    }

    // ---- predicate match tables ------------------------------------

    /// Marks `version` of `object` as satisfying `predicate`.
    pub fn set_match(&mut self, predicate: PredicateId, object: ObjectId, version: VersionId) {
        if let Some(p) = self.parts.predicates.get_mut(&predicate) {
            p.matches.insert((object, version));
        }
    }

    /// Derives `predicate`'s match table at build time by evaluating
    /// `f` on the value of every visible version (including preloaded
    /// initial versions) of every object in the predicate's relations.
    /// Versions without recorded values are treated as non-matching.
    pub fn derive_matches(
        &mut self,
        predicate: PredicateId,
        f: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) {
        self.derived.push((predicate, Box::new(f)));
    }

    // ---- version orders --------------------------------------------

    /// Sets an explicit version order: the committed versions of
    /// `object` after the implicit leading init version.
    pub fn version_order(&mut self, object: ObjectId, order: &[VersionId]) {
        self.parts.version_orders.insert(object, order.to_vec());
    }

    /// Sets an explicit version order naming the final versions of the
    /// given writers, in order — the common case, matching the paper's
    /// `[x1 << x2]` annotations.
    pub fn version_order_by_txn(&mut self, object: ObjectId, writers: &[TxnId]) {
        let order: Vec<VersionId> = writers
            .iter()
            .map(|&t| {
                let seq = self
                    .seqs
                    .get(&(t, object))
                    .copied()
                    .unwrap_or_else(|| panic!("{t} has not written this object"));
                VersionId::new(t, seq)
            })
            .collect();
        self.version_order(object, &order);
    }

    // ---- build ------------------------------------------------------

    /// Validates and returns the history. Fails if any transaction is
    /// incomplete; see [`HistoryBuilder::build_completed`].
    pub fn build(mut self) -> Result<History, HistoryError> {
        self.run_derivations();
        History::from_parts(self.parts)
    }

    /// Appends an abort for every incomplete transaction (the paper's
    /// completion rule, §4.2) and then validates.
    pub fn build_completed(mut self) -> Result<History, HistoryError> {
        self.run_derivations();
        let mut open: Vec<TxnId> = Vec::new();
        let mut terminated: std::collections::BTreeSet<TxnId> = Default::default();
        for e in &self.parts.events {
            match e {
                Event::Commit(t) | Event::Abort(t) => {
                    terminated.insert(*t);
                }
                other => {
                    let t = other.txn();
                    if !open.contains(&t) {
                        open.push(t);
                    }
                }
            }
        }
        for t in open {
            if !terminated.contains(&t) {
                self.parts.events.push(Event::Abort(t));
            }
        }
        History::from_parts(self.parts)
    }

    fn run_derivations(&mut self) {
        // Gather (object, version, value) for all visible versions.
        let mut visible: Vec<(ObjectId, VersionId, Value)> = Vec::new();
        for (&obj, info) in &self.parts.objects {
            if let Some(v) = &info.preload {
                visible.push((obj, VersionId::INIT, v.clone()));
            }
        }
        for e in &self.parts.events {
            if let Event::Write(w) = e {
                if w.kind == VersionKind::Visible {
                    if let Some(v) = &w.value {
                        visible.push((w.object, w.version(), v.clone()));
                    }
                }
            }
        }
        for (pid, f) in self.derived.drain(..) {
            let Some(pred) = self.parts.predicates.get_mut(&pid) else {
                continue;
            };
            let rels = pred.relations.clone();
            for (obj, ver, val) in &visible {
                let in_rel = self
                    .parts
                    .objects
                    .get(obj)
                    .is_some_and(|o| rels.contains(&o.relation));
                if in_rel && f(val) {
                    // Re-borrow mutably: `pred` borrow ended above.
                    self.parts
                        .predicates
                        .get_mut(&pid)
                        .expect("predicate exists")
                        .matches
                        .insert((*obj, *ver));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TxnStatus;

    #[test]
    fn simple_history_builds() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let x = b.object("x");
        b.write(t1, x, Value::Int(1));
        b.commit(t1);
        b.read(t2, x, t1);
        b.commit(t2);
        let h = b.build().unwrap();
        assert_eq!(h.len(), 4);
        assert_eq!(h.committed_txns().count(), 2);
        assert_eq!(h.version_order(x).len(), 2); // init + x1
    }

    #[test]
    fn auto_seq_increments_per_object() {
        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        let x = b.object("x");
        let y = b.object("y");
        let v1 = b.write(t1, x, Value::Int(1));
        let v2 = b.write(t1, x, Value::Int(2));
        let v3 = b.write(t1, y, Value::Int(3));
        assert_eq!(v1.seq, 1);
        assert_eq!(v2.seq, 2);
        assert_eq!(v3.seq, 1);
        b.commit(t1);
        let h = b.build().unwrap();
        // Only the final version is in the order.
        assert_eq!(h.version_order(x), &[VersionId::INIT, v2]);
        assert!(h.is_final_version(x, v2));
        assert!(!h.is_final_version(x, v1));
    }

    #[test]
    fn incomplete_txn_rejected_then_completed() {
        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        let x = b.object("x");
        b.write(t1, x, Value::Int(1));
        assert!(matches!(
            b.build(),
            Err(HistoryError::IncompleteTxn { txn }) if txn == t1
        ));

        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        let x = b.object("x");
        b.write(t1, x, Value::Int(1));
        let h = b.build_completed().unwrap();
        assert_eq!(h.txn(t1).unwrap().status, TxnStatus::Aborted);
    }

    #[test]
    fn read_own_write_enforced() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let x = b.object("x");
        b.write(t2, x, Value::Int(9));
        b.write(t1, x, Value::Int(1));
        // T1 wrote x, then reads T2's version: violates constraint 3.
        b.read(t1, x, t2);
        b.commit(t1);
        b.commit(t2);
        assert!(matches!(b.build(), Err(HistoryError::ReadOwnStale { .. })));
    }

    #[test]
    fn read_before_write_rejected() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let x = b.object("x");
        b.read_version(t2, x, VersionId::new(t1, 1));
        b.write(t1, x, Value::Int(1));
        b.commit(t1);
        b.commit(t2);
        assert!(matches!(
            b.build(),
            Err(HistoryError::ReadBeforeWrite { .. })
        ));
    }

    #[test]
    fn reading_unpreloaded_init_rejected() {
        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        let x = b.object("x"); // unborn init
        b.read_init(t1, x);
        b.commit(t1);
        assert!(matches!(b.build(), Err(HistoryError::ReadInvisible { .. })));
    }

    #[test]
    fn reading_preloaded_init_allowed() {
        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        let x = b.preloaded_object("x", Value::Int(5));
        b.read_init(t1, x);
        b.commit(t1);
        let h = b.build().unwrap();
        assert_eq!(h.version_value(x, VersionId::INIT), Some(&Value::Int(5)));
    }

    #[test]
    fn reading_dead_version_rejected() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let x = b.object("x");
        let dead = b.delete(t1, x);
        b.commit(t1);
        b.read_version(t2, x, dead);
        b.commit(t2);
        assert!(matches!(b.build(), Err(HistoryError::ReadInvisible { .. })));
    }

    #[test]
    fn write_after_delete_rejected() {
        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        let x = b.object("x");
        b.delete(t1, x);
        b.write(t1, x, Value::Int(1));
        b.commit(t1);
        assert!(matches!(
            b.build(),
            Err(HistoryError::WriteAfterDead { .. })
        ));
    }

    #[test]
    fn explicit_version_order_overrides_commit_order() {
        // H_write_order of §4.2: x2 << x1 although T1 commits first.
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let x = b.object("x");
        let v1 = b.write_unvalued(t1, x);
        let v2 = b.write_unvalued(t2, x);
        b.commit(t1);
        b.commit(t2);
        b.version_order_by_txn(x, &[t2, t1]);
        let h = b.build().unwrap();
        assert!(h.version_precedes(x, v2, v1));
        assert_eq!(h.next_version(x, v2), Some(v1));
        assert_eq!(h.prev_version(x, v1), Some(v2));
        assert_eq!(h.prev_version(x, v2), Some(VersionId::INIT));
    }

    #[test]
    fn inferred_order_is_commit_order() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let x = b.object("x");
        let v1 = b.write_unvalued(t1, x);
        let v2 = b.write_unvalued(t2, x);
        b.commit(t2); // T2 commits first
        b.commit(t1);
        let h = b.build().unwrap();
        assert_eq!(h.version_order(x), &[VersionId::INIT, v2, v1]);
    }

    #[test]
    fn aborted_writes_not_in_version_order() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let x = b.object("x");
        b.write_unvalued(t1, x);
        let v2 = b.write_unvalued(t2, x);
        b.abort(t1);
        b.commit(t2);
        let h = b.build().unwrap();
        assert_eq!(h.version_order(x), &[VersionId::INIT, v2]);
        assert_eq!(h.order_index(x, VersionId::new(t1, 1)), None);
    }

    #[test]
    fn version_order_missing_writer_rejected() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let x = b.object("x");
        b.write_unvalued(t1, x);
        let v2 = b.write_unvalued(t2, x);
        b.commit(t1);
        b.commit(t2);
        b.version_order(x, &[v2]); // forgot T1
        assert!(matches!(
            b.build(),
            Err(HistoryError::VersionOrderMissingWriter { .. })
        ));
    }

    #[test]
    fn dead_version_must_be_last() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let x = b.object("x");
        let vdead = b.delete(t1, x);
        let v2 = b.write_unvalued(t2, x);
        b.commit(t1);
        b.commit(t2);
        b.version_order(x, &[vdead, v2]);
        assert!(matches!(b.build(), Err(HistoryError::DeadNotLast { .. })));
    }

    #[test]
    fn predicate_match_table_derivation() {
        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        let rel = b.relation("Emp");
        let x = b.object_in("x", rel);
        let p = b.predicate("dept=Sales", &[rel]);
        let v = b.write(t1, x, Value::str("Sales"));
        b.commit(t1);
        b.derive_matches(p, |val| val == &Value::str("Sales"));
        let h = b.build().unwrap();
        assert!(h.matches(p, x, v));
        assert!(!h.matches(p, x, VersionId::INIT));
        assert!(h.changes_matches(p, x, v));
    }

    #[test]
    fn resolve_vset_adds_implicit_init_versions() {
        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        let rel = b.relation("Emp");
        let x = b.object_in("x", rel);
        let z = b.object_in("z", rel); // never touched: implicit unborn
        let p = b.predicate("all", &[rel]);
        b.write(t1, x, Value::Int(1));
        b.predicate_read(t1, p, &[(x, t1)]);
        b.commit(t1);
        let h = b.build().unwrap();
        let pr = h
            .predicate_reads_of(t1)
            .next()
            .map(|(_, e)| e.clone())
            .unwrap();
        let full = h.resolve_vset(&pr);
        assert_eq!(full.len(), 2);
        assert!(full.contains(&(x, VersionId::new(t1, 1))));
        assert!(full.contains(&(z, VersionId::INIT)));
    }

    #[test]
    fn vset_object_outside_relations_rejected() {
        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        let r1 = b.relation("A");
        let r2 = b.relation("B");
        let x = b.object_in("x", r2);
        let p = b.predicate("only-A", &[r1]);
        b.write(t1, x, Value::Int(1));
        b.predicate_read(t1, p, &[(x, t1)]);
        b.commit(t1);
        assert!(matches!(
            b.build(),
            Err(HistoryError::VsetObjectOutsidePredicate { .. })
        ));
    }

    #[test]
    fn event_after_commit_rejected() {
        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        let x = b.object("x");
        b.commit(t1);
        b.write(t1, x, Value::Int(1));
        assert!(matches!(b.build(), Err(HistoryError::EventAfterEnd { .. })));
    }

    #[test]
    fn duplicate_commit_rejected() {
        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        b.commit(t1);
        b.commit(t1);
        assert!(matches!(
            b.build(),
            Err(HistoryError::DuplicateTerminal { .. })
        ));
    }

    #[test]
    fn begin_must_be_first() {
        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        let x = b.object("x");
        b.write(t1, x, Value::Int(1));
        b.begin(t1);
        b.commit(t1);
        assert!(matches!(b.build(), Err(HistoryError::BeginNotFirst { .. })));
    }

    #[test]
    fn mixed_levels_recorded() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        b.txn_level(t1, RequestedLevel::PL1);
        b.commit(t1);
        b.commit(t2);
        let h = b.build().unwrap();
        assert_eq!(h.level(t1), RequestedLevel::PL1);
        assert_eq!(h.level(t2), RequestedLevel::PL3); // default
    }

    #[test]
    fn display_uses_paper_notation() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let x = b.object("x");
        b.write(t1, x, Value::Int(2));
        b.commit(t1);
        b.read(t2, x, t1);
        b.commit(t2);
        let h = b.build().unwrap();
        let s = h.to_string();
        assert!(s.contains("w1(x[1], 2)"), "got: {s}");
        assert!(s.contains("r2(x[1])"), "got: {s}");
        assert!(s.contains("c1") && s.contains("c2"));
    }
}

//! Per-transaction metadata: completion status and requested isolation
//! level (for the mixed-level histories of §5.5).

use std::fmt;

/// How a transaction ended. Histories are complete (§4.2), so every
/// transaction has exactly one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnStatus {
    /// The transaction committed; its final versions are part of the
    /// committed state.
    Committed,
    /// The transaction aborted; none of its versions are committed.
    Aborted,
}

impl TxnStatus {
    /// True for [`TxnStatus::Committed`].
    pub fn is_committed(self) -> bool {
        self == TxnStatus::Committed
    }
}

impl fmt::Display for TxnStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnStatus::Committed => write!(f, "committed"),
            TxnStatus::Aborted => write!(f, "aborted"),
        }
    }
}

/// The isolation level a transaction *requested*, recorded in the
/// history for mixed-system analysis (§5.5).
///
/// This is deliberately distinct from the checker's richer level
/// lattice in `adya-core`: the Mixed Serialization Graph is defined by
/// the paper only over the four portable ANSI levels, and the requested
/// level is a property of the execution being recorded, not of the
/// analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RequestedLevel {
    /// PL-1 (proscribes G0).
    PL1,
    /// PL-2 (proscribes G1).
    PL2,
    /// PL-2.99, the locking REPEATABLE READ analogue (proscribes G1 and
    /// G2-item).
    PL299,
    /// PL-3, full serializability (proscribes G1 and G2). The default:
    /// an unmixed history is an all-PL-3 history.
    #[default]
    PL3,
}

impl RequestedLevel {
    /// All levels, weakest first.
    pub const ALL: [RequestedLevel; 4] = [
        RequestedLevel::PL1,
        RequestedLevel::PL2,
        RequestedLevel::PL299,
        RequestedLevel::PL3,
    ];

    /// True if `self` is at least as strong as `other` (PL-1 < PL-2 <
    /// PL-2.99 < PL-3).
    pub fn at_least(self, other: RequestedLevel) -> bool {
        self >= other
    }
}

impl fmt::Display for RequestedLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestedLevel::PL1 => write!(f, "PL-1"),
            RequestedLevel::PL2 => write!(f, "PL-2"),
            RequestedLevel::PL299 => write!(f, "PL-2.99"),
            RequestedLevel::PL3 => write!(f, "PL-3"),
        }
    }
}

/// Resolved metadata for one transaction in a validated history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnInfo {
    /// Completion status.
    pub status: TxnStatus,
    /// Requested isolation level (PL-3 unless the history says
    /// otherwise).
    pub level: RequestedLevel,
    /// Index in the event sequence of the transaction's first event
    /// (its `Begin` event when present).
    pub first_event: usize,
    /// Index of the commit or abort event.
    pub end_event: usize,
    /// Index of the explicit `Begin` event, when one was recorded.
    ///
    /// Snapshot Isolation analysis needs begin points; when absent, the
    /// transaction is taken to begin at `first_event`.
    pub begin_event: Option<usize>,
}

impl TxnInfo {
    /// The event index at which the transaction (conceptually) started.
    pub fn begin_point(&self) -> usize {
        self.begin_event.unwrap_or(self.first_event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_matches_lattice() {
        use RequestedLevel::*;
        assert!(PL3.at_least(PL299));
        assert!(PL299.at_least(PL2));
        assert!(PL2.at_least(PL1));
        assert!(PL1.at_least(PL1));
        assert!(!PL1.at_least(PL2));
        assert!(!PL299.at_least(PL3));
    }

    #[test]
    fn default_level_is_pl3() {
        assert_eq!(RequestedLevel::default(), RequestedLevel::PL3);
    }

    #[test]
    fn display_names() {
        assert_eq!(RequestedLevel::PL299.to_string(), "PL-2.99");
        assert_eq!(TxnStatus::Aborted.to_string(), "aborted");
    }

    #[test]
    fn begin_point_prefers_explicit_begin() {
        let mut info = TxnInfo {
            status: TxnStatus::Committed,
            level: RequestedLevel::PL3,
            first_event: 4,
            end_event: 9,
            begin_event: None,
        };
        assert_eq!(info.begin_point(), 4);
        info.begin_event = Some(2);
        assert_eq!(info.begin_point(), 2);
    }
}

//! The multi-version transaction-history model of Adya, Liskov and
//! O'Neil, "Generalized Isolation Level Definitions" (ICDE 2000), §4.
//!
//! A [`History`] captures an execution of a database system: a sequence
//! of read/write/commit/abort events over versioned objects, plus a
//! *version order* — a total order over the committed versions of each
//! object. Objects live in relations; predicate-based reads observe a
//! *version set* containing one version of every tuple in the
//! predicate's relations (§4.3), which is how the model accounts for
//! phantoms without reference to locks.
//!
//! Key modelling choices, straight from the paper:
//!
//! * Every object conceptually receives an initial **unborn** version
//!   from the special initialization transaction `Tinit`; inserting a
//!   tuple writes its first **visible** version and deleting it writes a
//!   final **dead** version. Unborn and dead versions never match a
//!   predicate.
//! * The version order of an object may differ from the order of write
//!   or commit events (needed for optimistic and multi-version
//!   implementations — history `H_write_order` of §4.2).
//! * Histories must be *complete*: every transaction ends in a commit
//!   or an abort ([`HistoryBuilder::build_completed`] appends the
//!   missing aborts, mirroring the paper's completion rule).
//!
//! The checker for the isolation levels themselves lives in
//! `adya-core`; this crate only defines what a history *is* and
//! validates the well-formedness conditions of §4.2.
//!
//! # Example
//!
//! History H1′ of the paper (§3) — `T2` reads `T1`'s uncommitted
//! writes, which locking forbids but the generalized definitions admit:
//!
//! ```
//! use adya_history::{HistoryBuilder, Value};
//!
//! let mut b = HistoryBuilder::new();
//! let (t1, t2) = (b.txn(1), b.txn(2));
//! let x = b.preloaded_object("x", Value::Int(5));
//! let y = b.preloaded_object("y", Value::Int(5));
//! b.read_init(t1, x); // r1(x,5)
//! b.write(t1, x, Value::Int(1)); // w1(x1,1)
//! b.read_init(t1, y);
//! b.write(t1, y, Value::Int(9));
//! b.read(t2, x, t1); // r2(x1) — dirty read
//! b.read(t2, y, t1);
//! b.commit(t1);
//! b.commit(t2);
//! let h = b.build().unwrap();
//! assert_eq!(h.committed_txns().count(), 2);
//! ```

#![warn(missing_docs)]

mod builder;
mod error;
mod event;
mod history;
mod ids;
mod parser;
mod txn;
mod value;

pub use builder::HistoryBuilder;
pub use error::HistoryError;
pub use event::{Event, PredicateReadEvent, ReadEvent, WriteEvent};
pub use history::{History, HistoryParts, ObjectInfo, PredicateInfo, RelationInfo};
pub use ids::{ObjectId, PredicateId, RelationId, TxnId, VersionId};
pub use parser::{parse_history, parse_history_completed, ParseError};
pub use txn::{RequestedLevel, TxnInfo, TxnStatus};
pub use value::{Row, Value, VersionKind};

//! Well-formedness errors (§4.2 of the paper).
//!
//! A [`crate::History`] is validated at construction, so every checker
//! in `adya-core` can assume the §4.2 invariants hold. Violations are
//! reported with enough context to pinpoint the offending event.

use std::error::Error;
use std::fmt;

use crate::ids::{ObjectId, PredicateId, RelationId, TxnId, VersionId};

/// A violation of the history well-formedness rules.
///
/// Variant fields carry the offending transaction/object/version and,
/// where useful, the event index; they are self-describing and
/// rendered by the `Display` implementation.
#[allow(missing_docs)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistoryError {
    /// `Tinit` is conceptual; it may not appear as an explicit event.
    InitTxnEvent { index: usize },
    /// An event follows the transaction's commit or abort.
    EventAfterEnd { txn: TxnId, index: usize },
    /// A transaction has two commit/abort events.
    DuplicateTerminal { txn: TxnId, index: usize },
    /// An explicit `Begin` is not the transaction's first event.
    BeginNotFirst { txn: TxnId, index: usize },
    /// A transaction has read/write events but no commit or abort
    /// (histories must be complete; use `build_completed` to append
    /// aborts).
    IncompleteTxn { txn: TxnId },
    /// Write sequence numbers of a (transaction, object) pair must be
    /// 1, 2, 3, … in event order.
    NonContiguousWriteSeq {
        txn: TxnId,
        object: ObjectId,
        expected: u32,
        got: u32,
    },
    /// A transaction wrote an object again after deleting it (a dead
    /// version is terminal; reinsertion is a distinct object).
    WriteAfterDead { txn: TxnId, object: ObjectId },
    /// An event references an object that was never registered.
    UnknownObject { object: ObjectId },
    /// An object references a relation that was never registered.
    UnknownRelation { relation: RelationId },
    /// An event references a predicate that was never registered.
    UnknownPredicate { predicate: PredicateId },
    /// `r_j(x_{i:m})` occurs before `w_i(x_{i:m})` (§4.2, constraint 2),
    /// or the version does not exist at all.
    ReadBeforeWrite {
        txn: TxnId,
        object: ObjectId,
        version: VersionId,
        index: usize,
    },
    /// A transaction that previously wrote an object read a version
    /// other than its own latest write (§4.2, constraint 3).
    ReadOwnStale {
        txn: TxnId,
        object: ObjectId,
        expected: VersionId,
        got: VersionId,
    },
    /// An item read observed an unborn or dead version; only visible
    /// versions may be read (§4.2).
    ReadInvisible {
        txn: TxnId,
        object: ObjectId,
        version: VersionId,
    },
    /// A version-set entry lists an object outside the predicate's
    /// relations.
    VsetObjectOutsidePredicate {
        predicate: PredicateId,
        object: ObjectId,
    },
    /// A version set selected two versions of the same object.
    VsetDuplicateObject {
        predicate: PredicateId,
        object: ObjectId,
    },
    /// A version-set entry references a version that does not exist at
    /// the point of the read.
    VsetUnknownVersion {
        predicate: PredicateId,
        object: ObjectId,
        version: VersionId,
    },
    /// A version order was supplied for an unregistered object.
    VersionOrderUnknownObject { object: ObjectId },
    /// A version order does not start with the initial version.
    VersionOrderMissingInit { object: ObjectId },
    /// A version appears twice in one version order.
    VersionOrderDuplicate {
        object: ObjectId,
        version: VersionId,
    },
    /// A version order lists a version that was never written.
    VersionOrderUnknownVersion {
        object: ObjectId,
        version: VersionId,
    },
    /// Version orders contain committed versions only.
    VersionOrderNotCommitted {
        object: ObjectId,
        version: VersionId,
    },
    /// Version orders contain only *final* versions `x_i`, never
    /// intermediate `x_{i:m}` ones.
    VersionOrderNotFinal {
        object: ObjectId,
        version: VersionId,
    },
    /// A committed transaction wrote the object but is missing from its
    /// version order.
    VersionOrderMissingWriter { object: ObjectId, txn: TxnId },
    /// A committed dead version must be the last version in the order.
    DeadNotLast { object: ObjectId },
    /// An object has more than one committed dead version.
    MultipleDead { object: ObjectId },
    /// A match-table entry references a version that does not exist.
    MatchUnknownVersion {
        predicate: PredicateId,
        object: ObjectId,
        version: VersionId,
    },
    /// Unborn and dead versions can never match a predicate (§4.3).
    MatchNonVisible {
        predicate: PredicateId,
        object: ObjectId,
        version: VersionId,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use HistoryError::*;
        match self {
            InitTxnEvent { index } => {
                write!(
                    f,
                    "event #{index}: Tinit may not appear as an explicit event"
                )
            }
            EventAfterEnd { txn, index } => {
                write!(f, "event #{index}: {txn} already committed or aborted")
            }
            DuplicateTerminal { txn, index } => {
                write!(f, "event #{index}: duplicate commit/abort for {txn}")
            }
            BeginNotFirst { txn, index } => {
                write!(f, "event #{index}: begin of {txn} is not its first event")
            }
            IncompleteTxn { txn } => {
                write!(f, "{txn} has neither commit nor abort (history incomplete)")
            }
            NonContiguousWriteSeq {
                txn,
                object,
                expected,
                got,
            } => write!(
                f,
                "{txn} write of {object}: expected seq {expected}, got {got}"
            ),
            WriteAfterDead { txn, object } => {
                write!(f, "{txn} wrote {object} after deleting it")
            }
            UnknownObject { object } => write!(f, "unregistered object {object}"),
            UnknownRelation { relation } => write!(f, "unregistered relation {relation}"),
            UnknownPredicate { predicate } => write!(f, "unregistered predicate {predicate}"),
            ReadBeforeWrite {
                txn,
                object,
                version,
                index,
            } => write!(
                f,
                "event #{index}: {txn} reads {object}[{version}] before it is written"
            ),
            ReadOwnStale {
                txn,
                object,
                expected,
                got,
            } => write!(
                f,
                "{txn} must read its own last write {object}[{expected}], read [{got}]"
            ),
            ReadInvisible {
                txn,
                object,
                version,
            } => write!(f, "{txn} reads non-visible version {object}[{version}]"),
            VsetObjectOutsidePredicate { predicate, object } => write!(
                f,
                "version set of {predicate} selects {object} outside its relations"
            ),
            VsetDuplicateObject { predicate, object } => {
                write!(f, "version set of {predicate} selects {object} twice")
            }
            VsetUnknownVersion {
                predicate,
                object,
                version,
            } => write!(
                f,
                "version set of {predicate}: version {object}[{version}] does not exist yet"
            ),
            VersionOrderUnknownObject { object } => {
                write!(f, "version order given for unregistered object {object}")
            }
            VersionOrderMissingInit { object } => {
                write!(
                    f,
                    "version order of {object} must start with the init version"
                )
            }
            VersionOrderDuplicate { object, version } => {
                write!(f, "version order of {object} lists [{version}] twice")
            }
            VersionOrderUnknownVersion { object, version } => {
                write!(
                    f,
                    "version order of {object} lists unknown version [{version}]"
                )
            }
            VersionOrderNotCommitted { object, version } => write!(
                f,
                "version order of {object} lists uncommitted/aborted version [{version}]"
            ),
            VersionOrderNotFinal { object, version } => write!(
                f,
                "version order of {object} lists intermediate version [{version}]"
            ),
            VersionOrderMissingWriter { object, txn } => write!(
                f,
                "version order of {object} is missing committed writer {txn}"
            ),
            DeadNotLast { object } => {
                write!(
                    f,
                    "dead version of {object} is not last in its version order"
                )
            }
            MultipleDead { object } => {
                write!(f, "{object} has more than one committed dead version")
            }
            MatchUnknownVersion {
                predicate,
                object,
                version,
            } => write!(
                f,
                "match table of {predicate}: unknown version {object}[{version}]"
            ),
            MatchNonVisible {
                predicate,
                object,
                version,
            } => write!(
                f,
                "match table of {predicate}: {object}[{version}] is unborn/dead and cannot match"
            ),
        }
    }
}

impl Error for HistoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_with_context() {
        let e = HistoryError::ReadOwnStale {
            txn: TxnId(2),
            object: ObjectId(0),
            expected: VersionId::new(TxnId(2), 2),
            got: VersionId::new(TxnId(1), 1),
        };
        let s = e.to_string();
        assert!(s.contains("T2"));
        assert!(s.contains("obj0"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn Error) {}
        takes_err(&HistoryError::IncompleteTxn { txn: TxnId(1) });
    }
}

//! The validated [`History`] type and its accessors.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use crate::error::HistoryError;
use crate::event::{Event, PredicateReadEvent};
use crate::ids::{ObjectId, PredicateId, RelationId, TxnId, VersionId};
use crate::txn::{RequestedLevel, TxnInfo, TxnStatus};
use crate::value::{Value, VersionKind};

/// Metadata for a registered object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Human-readable name ("x", "emp#4", …) used in displays.
    pub name: String,
    /// The relation the object (tuple) belongs to, fixed for life.
    pub relation: RelationId,
    /// When `Some`, the database loader installed a *visible* initial
    /// version with this value (the paper's "transaction that loads the
    /// database creates the initial visible versions"); when `None`,
    /// the initial version is unborn.
    pub preload: Option<Value>,
}

/// Metadata for a registered relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationInfo {
    /// Human-readable name.
    pub name: String,
}

/// Metadata for a registered predicate: its relations and its match
/// table.
///
/// The match table records, for each version the analysis may consult,
/// whether that version satisfies the predicate's boolean condition.
/// Unborn and dead versions never match and are not stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredicateInfo {
    /// Human-readable condition ("Dept=Sales").
    pub name: String,
    /// Relations the condition ranges over (Definition 1).
    pub relations: Vec<RelationId>,
    /// Versions that satisfy the condition.
    pub matches: HashSet<(ObjectId, VersionId)>,
}

impl PredicateInfo {
    /// True if `version` of `object` satisfies the predicate.
    pub fn matches(&self, object: ObjectId, version: VersionId) -> bool {
        self.matches.contains(&(object, version))
    }
}

/// Raw, unvalidated parts of a history; validated into a [`History`]
/// by [`History::from_parts`]. Builders and recorders assemble this.
#[derive(Debug, Clone, Default)]
pub struct HistoryParts {
    /// The event sequence (a total order consistent with the paper's
    /// partial order).
    pub events: Vec<Event>,
    /// Explicit version orders: full committed order per object,
    /// *excluding* the implicit leading init version. Objects absent
    /// here get the commit-order default.
    pub version_orders: BTreeMap<ObjectId, Vec<VersionId>>,
    /// Registered objects.
    pub objects: BTreeMap<ObjectId, ObjectInfo>,
    /// Registered relations.
    pub relations: BTreeMap<RelationId, RelationInfo>,
    /// Registered predicates with match tables.
    pub predicates: BTreeMap<PredicateId, PredicateInfo>,
    /// Requested isolation levels (default PL-3).
    pub levels: BTreeMap<TxnId, RequestedLevel>,
}

/// A validated multi-version transaction history (§4.2).
///
/// Construction via [`History::from_parts`] (usually through
/// [`crate::HistoryBuilder`]) checks every well-formedness rule of the
/// paper, so downstream analyses can rely on:
///
/// * event order consistent per transaction, exactly one terminal
///   event each (complete history);
/// * reads observe versions that exist, are visible, and respect
///   read-your-own-writes;
/// * version orders start at `x_init`, contain exactly the final
///   versions of committed writers, and place a dead version (if any)
///   last;
/// * predicate version sets select at most one version per object,
///   all within the predicate's relations.
#[derive(Debug, Clone)]
pub struct History {
    events: Vec<Event>,
    objects: BTreeMap<ObjectId, ObjectInfo>,
    relations: BTreeMap<RelationId, RelationInfo>,
    predicates: BTreeMap<PredicateId, PredicateInfo>,
    txns: BTreeMap<TxnId, TxnInfo>,
    /// Full committed order per object, *including* the leading init
    /// version.
    version_orders: BTreeMap<ObjectId, Vec<VersionId>>,
    /// Position of each committed version within its object's order.
    order_index: HashMap<(ObjectId, VersionId), usize>,
    /// Last write seq of each (txn, object) pair.
    final_seqs: HashMap<(TxnId, ObjectId), u32>,
    /// Kind of every written version, plus init versions.
    kinds: HashMap<(ObjectId, VersionId), VersionKind>,
    /// Value of every valued version, plus preloaded init versions.
    values: HashMap<(ObjectId, VersionId), Value>,
    /// Objects per relation, in id order.
    rel_objects: BTreeMap<RelationId, Vec<ObjectId>>,
}

impl History {
    /// Validates `parts` into a `History`.
    ///
    /// Missing version orders default to commit order (the order of
    /// the writers' commit events), which is what every
    /// installs-at-commit implementation produces; multi-version
    /// schemes that choose a different order must supply it explicitly.
    pub fn from_parts(parts: HistoryParts) -> Result<History, HistoryError> {
        validate::build(parts)
    }

    /// The event sequence.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the history has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Metadata for `txn` (absent for `Tinit` and unknown ids).
    pub fn txn(&self, txn: TxnId) -> Option<&TxnInfo> {
        self.txns.get(&txn)
    }

    /// All transactions with their metadata, in id order.
    pub fn txns(&self) -> impl Iterator<Item = (TxnId, &TxnInfo)> {
        self.txns.iter().map(|(t, i)| (*t, i))
    }

    /// Ids of committed transactions, in id order. `Tinit` is not
    /// included (it is implicit).
    pub fn committed_txns(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.txns
            .iter()
            .filter(|(_, i)| i.status.is_committed())
            .map(|(t, _)| *t)
    }

    /// True if `txn` committed. `Tinit` is always committed.
    pub fn is_committed(&self, txn: TxnId) -> bool {
        if txn.is_init() {
            return true;
        }
        self.txns.get(&txn).is_some_and(|i| i.status.is_committed())
    }

    /// The requested isolation level of `txn` (PL-3 for `Tinit`).
    pub fn level(&self, txn: TxnId) -> RequestedLevel {
        if txn.is_init() {
            return RequestedLevel::PL3;
        }
        self.txns.get(&txn).map(|i| i.level).unwrap_or_default()
    }

    /// Registered objects in id order.
    pub fn objects(&self) -> impl Iterator<Item = (ObjectId, &ObjectInfo)> {
        self.objects.iter().map(|(o, i)| (*o, i))
    }

    /// Metadata for `object`.
    pub fn object(&self, object: ObjectId) -> Option<&ObjectInfo> {
        self.objects.get(&object)
    }

    /// Looks an object up by its display name.
    pub fn object_by_name(&self, name: &str) -> Option<ObjectId> {
        self.objects
            .iter()
            .find(|(_, i)| i.name == name)
            .map(|(o, _)| *o)
    }

    /// Display name for `object` (falls back to the raw id).
    pub fn object_name(&self, object: ObjectId) -> &str {
        self.objects
            .get(&object)
            .map(|i| i.name.as_str())
            .unwrap_or("?")
    }

    /// Registered relations in id order.
    pub fn relations(&self) -> impl Iterator<Item = (RelationId, &RelationInfo)> {
        self.relations.iter().map(|(r, i)| (*r, i))
    }

    /// Objects belonging to `relation`, in id order.
    pub fn relation_objects(&self, relation: RelationId) -> &[ObjectId] {
        self.rel_objects
            .get(&relation)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Metadata (incl. match table) for `predicate`.
    pub fn predicate(&self, predicate: PredicateId) -> Option<&PredicateInfo> {
        self.predicates.get(&predicate)
    }

    /// Registered predicates in id order.
    pub fn predicates(&self) -> impl Iterator<Item = (PredicateId, &PredicateInfo)> {
        self.predicates.iter().map(|(p, i)| (*p, i))
    }

    /// The committed version order of `object`, starting with its init
    /// version. Objects never written have the one-element order
    /// `[init]`.
    pub fn version_order(&self, object: ObjectId) -> &[VersionId] {
        self.version_orders
            .get(&object)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Position of a committed `version` of `object` within its
    /// version order (`0` = init). `None` for uncommitted, aborted or
    /// intermediate versions.
    pub fn order_index(&self, object: ObjectId, version: VersionId) -> Option<usize> {
        self.order_index.get(&(object, version)).copied()
    }

    /// True if committed version `a` precedes committed version `b` in
    /// `object`'s version order (`a << b` in the paper's notation).
    pub fn version_precedes(&self, object: ObjectId, a: VersionId, b: VersionId) -> bool {
        match (self.order_index(object, a), self.order_index(object, b)) {
            (Some(ia), Some(ib)) => ia < ib,
            _ => false,
        }
    }

    /// The committed version immediately following `version` in
    /// `object`'s version order.
    pub fn next_version(&self, object: ObjectId, version: VersionId) -> Option<VersionId> {
        let ix = self.order_index(object, version)?;
        self.version_order(object).get(ix + 1).copied()
    }

    /// The committed version immediately preceding `version`.
    pub fn prev_version(&self, object: ObjectId, version: VersionId) -> Option<VersionId> {
        let ix = self.order_index(object, version)?;
        ix.checked_sub(1).map(|p| self.version_order(object)[p])
    }

    /// The last write sequence number of `txn` on `object`, if it ever
    /// wrote it.
    pub fn final_seq(&self, txn: TxnId, object: ObjectId) -> Option<u32> {
        if txn.is_init() {
            return Some(1);
        }
        self.final_seqs.get(&(txn, object)).copied()
    }

    /// True if `version` is its writer's *final* modification of
    /// `object` (`x_i` rather than `x_{i:m}`, m < final).
    pub fn is_final_version(&self, object: ObjectId, version: VersionId) -> bool {
        self.final_seq(version.txn, object) == Some(version.seq)
    }

    /// The lifecycle kind of `version` of `object` (`None` if the
    /// version does not exist).
    pub fn version_kind(&self, object: ObjectId, version: VersionId) -> Option<VersionKind> {
        self.kinds.get(&(object, version)).copied()
    }

    /// The value stored in `version` of `object`, when one was
    /// recorded.
    pub fn version_value(&self, object: ObjectId, version: VersionId) -> Option<&Value> {
        self.values.get(&(object, version))
    }

    /// The final committed versions installed by `txn`:
    /// `(object, version)` pairs, one per object it wrote, in object
    /// order. Empty for aborted transactions.
    pub fn installed_versions(&self, txn: TxnId) -> Vec<(ObjectId, VersionId)> {
        if !self.is_committed(txn) {
            return Vec::new();
        }
        let mut out: Vec<(ObjectId, VersionId)> = self
            .final_seqs
            .iter()
            .filter(|((t, _), _)| *t == txn)
            .map(|((_, o), seq)| (*o, VersionId::new(txn, *seq)))
            .collect();
        out.sort_unstable_by_key(|(o, _)| *o);
        out
    }

    /// True if `version` of `object` satisfies `predicate`'s boolean
    /// condition. Unborn and dead versions never match (§4.3).
    pub fn matches(&self, predicate: PredicateId, object: ObjectId, version: VersionId) -> bool {
        self.predicates
            .get(&predicate)
            .is_some_and(|p| p.matches(object, version))
    }

    /// True if installing committed `version` *changed the matches* of
    /// `predicate` (Definition 2): its match status differs from the
    /// immediately preceding version's. The first version of an object
    /// changes the matches iff it matches (the transition out of
    /// nonexistence).
    pub fn changes_matches(
        &self,
        predicate: PredicateId,
        object: ObjectId,
        version: VersionId,
    ) -> bool {
        let cur = self.matches(predicate, object, version);
        match self.prev_version(object, version) {
            Some(prev) => self.matches(predicate, object, prev) != cur,
            // x_init (or a version not in the committed order, where
            // the question is not meaningful): a match appearing from
            // nothing is a change.
            None => cur,
        }
    }

    /// Resolves the full version set of a predicate read: the explicit
    /// entries of the event plus, for every other object of the
    /// predicate's relations, the implicit selection of its init
    /// version (the paper's convention of not writing out unborn
    /// versions).
    pub fn resolve_vset(&self, event: &PredicateReadEvent) -> Vec<(ObjectId, VersionId)> {
        let Some(pred) = self.predicates.get(&event.predicate) else {
            return event.vset.clone();
        };
        let explicit: HashMap<ObjectId, VersionId> = event.vset.iter().copied().collect();
        let mut out = Vec::new();
        for rel in &pred.relations {
            for &obj in self.relation_objects(*rel) {
                let v = explicit.get(&obj).copied().unwrap_or(VersionId::INIT);
                out.push((obj, v));
            }
        }
        out
    }

    /// Item-read events performed by `txn`, with their event indices.
    pub fn reads_of(&self, txn: TxnId) -> impl Iterator<Item = (usize, &crate::ReadEvent)> {
        self.events
            .iter()
            .enumerate()
            .filter_map(move |(i, e)| match e {
                Event::Read(r) if r.txn == txn => Some((i, r)),
                _ => None,
            })
    }

    /// Predicate-read events performed by `txn`, with their event
    /// indices.
    pub fn predicate_reads_of(
        &self,
        txn: TxnId,
    ) -> impl Iterator<Item = (usize, &PredicateReadEvent)> {
        self.events
            .iter()
            .enumerate()
            .filter_map(move |(i, e)| match e {
                Event::PredicateRead(p) if p.txn == txn => Some((i, p)),
                _ => None,
            })
    }

    /// Renders the history in the parser's textual notation, so that
    /// `parse_history(h.to_notation()?)` reconstructs an equivalent
    /// history (same events, same version orders).
    ///
    /// Returns `None` for histories the notation cannot express:
    /// predicate reads over non-integer-range conditions, non-integer
    /// values, or cursor reads mixed with same-named objects. Values
    /// that are not integers are omitted (the theory never needs
    /// them); integer values round-trip.
    pub fn to_notation(&self) -> Option<String> {
        use std::fmt::Write as _;
        // Only item events are expressible.
        if self
            .events
            .iter()
            .any(|e| matches!(e, Event::PredicateRead(_)))
        {
            return None;
        }
        // Object names must be identifier-ish and digit-free at the
        // end for the parser's target grammar.
        let name_ok = |n: &str| {
            !n.is_empty()
                && n.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && !n.ends_with(|c: char| c.is_ascii_digit())
                && !n.ends_with("init")
        };
        for (_, info) in self.objects() {
            if !name_ok(&info.name) {
                return None;
            }
        }
        let mut out = String::new();
        for e in &self.events {
            if !out.is_empty() {
                out.push(' ');
            }
            match e {
                Event::Begin(t) => {
                    let _ = write!(out, "b{}", t.0);
                }
                Event::Commit(t) => {
                    let _ = write!(out, "c{}", t.0);
                }
                Event::Abort(t) => {
                    let _ = write!(out, "a{}", t.0);
                }
                Event::Write(w) => {
                    let name = self.object_name(w.object);
                    match (&w.kind, &w.value) {
                        (VersionKind::Dead, _) => {
                            let _ = write!(out, "w{}({name},dead)", w.txn.0);
                        }
                        (_, Some(Value::Int(i))) => {
                            let _ = write!(out, "w{}({name},{i})", w.txn.0);
                        }
                        _ => {
                            let _ = write!(out, "w{}({name})", w.txn.0);
                        }
                    }
                }
                Event::Read(r) => {
                    let name = self.object_name(r.object);
                    let prefix = if r.through_cursor { "rc" } else { "r" };
                    if r.version.is_init() {
                        let _ = write!(out, "{prefix}{}({name}init)", r.txn.0);
                    } else {
                        // Always the exact seq: "latest so far" would
                        // mis-resolve reads recorded after the writer
                        // wrote again.
                        let _ = write!(
                            out,
                            "{prefix}{}({name}{}:{})",
                            r.txn.0, r.version.txn.0, r.version.seq
                        );
                    }
                }
                Event::PredicateRead(_) => unreachable!("checked above"),
            }
        }
        // Version orders for multi-version objects (the single-version
        // ones are forced). Explicit beats inference differences.
        let mut chains = Vec::new();
        for (obj, order) in &self.version_orders {
            if order.len() <= 2 {
                continue;
            }
            let name = self.object_name(*obj);
            let chain: Vec<String> = order
                .iter()
                .filter(|v| !v.is_init())
                .map(|v| format!("{name}{}", v.txn.0))
                .collect();
            chains.push(chain.join(" << "));
        }
        if !chains.is_empty() {
            let _ = write!(out, " [{}]", chains.join(", "));
        }
        Some(out)
    }

    /// Decomposes the history back into (validated) parts, e.g. to
    /// relabel transaction levels or promote an executing transaction.
    /// Version orders are exported explicitly (without the leading
    /// init version), so rebuilding reproduces this history exactly.
    pub fn to_parts(&self) -> HistoryParts {
        let mut parts = HistoryParts {
            events: self.events.clone(),
            objects: self.objects.clone(),
            relations: self.relations.clone(),
            predicates: self.predicates.clone(),
            ..Default::default()
        };
        for (t, info) in &self.txns {
            parts.levels.insert(*t, info.level);
        }
        for (obj, order) in &self.version_orders {
            parts.version_orders.insert(
                *obj,
                order.iter().copied().filter(|v| !v.is_init()).collect(),
            );
        }
        parts
    }

    /// The "what if `txn` committed now" view used for
    /// executing-transaction analysis (§5.6 points to Adya's thesis
    /// for these): the transaction's abort event is replaced by a
    /// commit, and its final versions are appended to the version
    /// orders of the objects it wrote (the install order an
    /// at-commit implementation would choose).
    ///
    /// Fails if `txn` is unknown, already committed, or deleted an
    /// object that already has a committed dead version.
    pub fn promote_to_committed(&self, txn: TxnId) -> Result<History, HistoryError> {
        let info = self.txn(txn).ok_or(HistoryError::IncompleteTxn { txn })?;
        if info.status.is_committed() {
            return Ok(self.clone());
        }
        let mut parts = self.to_parts();
        parts.events[info.end_event] = Event::Commit(txn);
        // Append the promoted transaction's final versions.
        for ((t, obj), seq) in &self.final_seqs {
            if *t != txn {
                continue;
            }
            parts
                .version_orders
                .entry(*obj)
                .or_default()
                .push(VersionId::new(txn, *seq));
        }
        History::from_parts(parts)
    }

    /// Renders one event using object names instead of raw ids,
    /// mirroring the paper's notation.
    pub fn display_event(&self, event: &Event) -> String {
        use std::fmt::Write as _;
        let sub = |t: TxnId| {
            if t.is_init() {
                "init".to_string()
            } else {
                t.0.to_string()
            }
        };
        match event {
            Event::Begin(t) => format!("b{}", sub(*t)),
            Event::Commit(t) => format!("c{}", sub(*t)),
            Event::Abort(t) => format!("a{}", sub(*t)),
            Event::Write(w) => {
                let mut s = format!(
                    "w{}({}[{}]",
                    sub(w.txn),
                    self.object_name(w.object),
                    w.version()
                );
                match (&w.kind, &w.value) {
                    (VersionKind::Dead, _) => s.push_str(", dead)"),
                    (_, Some(v)) => {
                        let _ = write!(s, ", {v})");
                    }
                    _ => s.push(')'),
                }
                s
            }
            Event::Read(r) => format!(
                "{}{}({}[{}])",
                if r.through_cursor { "rc" } else { "r" },
                sub(r.txn),
                self.object_name(r.object),
                r.version
            ),
            Event::PredicateRead(p) => {
                let pname = self
                    .predicates
                    .get(&p.predicate)
                    .map(|i| i.name.as_str())
                    .unwrap_or("?");
                let mut s = format!("r{}({}:", sub(p.txn), pname);
                for (i, (o, v)) in p.vset.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, " {}[{}]", self.object_name(*o), v);
                }
                s.push(')');
                s
            }
        }
    }
}

impl fmt::Display for History {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", self.display_event(e))?;
        }
        // Version orders for multi-version objects, paper style.
        let mut shown_any = false;
        for (obj, order) in &self.version_orders {
            if order.len() <= 2 {
                continue; // init + at most one version: order is forced
            }
            if !shown_any {
                write!(f, "  [")?;
                shown_any = true;
            } else {
                write!(f, ", ")?;
            }
            let name = self.object_name(*obj);
            let chain: Vec<String> = order.iter().map(|v| format!("{name}[{v}]")).collect();
            write!(f, "{}", chain.join(" << "))?;
        }
        if shown_any {
            write!(f, "]")?;
        }
        Ok(())
    }
}

mod validate {
    use super::*;

    /// Per-(txn, object) running write state while scanning events.
    #[derive(Default)]
    struct WriteState {
        last_seq: u32,
        dead: bool,
    }

    pub(super) fn build(parts: HistoryParts) -> Result<History, HistoryError> {
        let HistoryParts {
            events,
            version_orders: explicit_orders,
            objects,
            relations,
            predicates,
            levels,
        } = parts;

        // -- Relations referenced by objects must exist.
        for info in objects.values() {
            if !relations.contains_key(&info.relation) {
                return Err(HistoryError::UnknownRelation {
                    relation: info.relation,
                });
            }
        }
        for pred in predicates.values() {
            for rel in &pred.relations {
                if !relations.contains_key(rel) {
                    return Err(HistoryError::UnknownRelation { relation: *rel });
                }
            }
        }

        // -- Seed version kinds/values with init versions.
        let mut kinds: HashMap<(ObjectId, VersionId), VersionKind> = HashMap::new();
        let mut values: HashMap<(ObjectId, VersionId), Value> = HashMap::new();
        for (&obj, info) in &objects {
            match &info.preload {
                Some(v) => {
                    kinds.insert((obj, VersionId::INIT), VersionKind::Visible);
                    values.insert((obj, VersionId::INIT), v.clone());
                }
                None => {
                    kinds.insert((obj, VersionId::INIT), VersionKind::Unborn);
                }
            }
        }

        // -- Scan events: per-txn ordering, write seqs, read rules.
        let mut txns: BTreeMap<TxnId, TxnInfo> = BTreeMap::new();
        let mut write_state: HashMap<(TxnId, ObjectId), WriteState> = HashMap::new();
        let mut final_seqs: HashMap<(TxnId, ObjectId), u32> = HashMap::new();

        for (index, event) in events.iter().enumerate() {
            let txn = event.txn();
            if txn.is_init() {
                return Err(HistoryError::InitTxnEvent { index });
            }
            let entry = txns.entry(txn).or_insert_with(|| TxnInfo {
                status: TxnStatus::Aborted, // placeholder until terminal seen
                level: levels.get(&txn).copied().unwrap_or_default(),
                first_event: index,
                end_event: usize::MAX,
                begin_event: None,
            });
            if entry.end_event != usize::MAX {
                return Err(if event.is_terminal() {
                    HistoryError::DuplicateTerminal { txn, index }
                } else {
                    HistoryError::EventAfterEnd { txn, index }
                });
            }
            match event {
                Event::Begin(_) => {
                    if entry.first_event != index {
                        return Err(HistoryError::BeginNotFirst { txn, index });
                    }
                    entry.begin_event = Some(index);
                }
                Event::Commit(_) => {
                    entry.status = TxnStatus::Committed;
                    entry.end_event = index;
                }
                Event::Abort(_) => {
                    entry.status = TxnStatus::Aborted;
                    entry.end_event = index;
                }
                Event::Write(w) => {
                    if !objects.contains_key(&w.object) {
                        return Err(HistoryError::UnknownObject { object: w.object });
                    }
                    let st = write_state.entry((txn, w.object)).or_default();
                    if st.dead {
                        return Err(HistoryError::WriteAfterDead {
                            txn,
                            object: w.object,
                        });
                    }
                    if w.seq != st.last_seq + 1 {
                        return Err(HistoryError::NonContiguousWriteSeq {
                            txn,
                            object: w.object,
                            expected: st.last_seq + 1,
                            got: w.seq,
                        });
                    }
                    st.last_seq = w.seq;
                    st.dead = w.kind == VersionKind::Dead;
                    final_seqs.insert((txn, w.object), w.seq);
                    kinds.insert((w.object, w.version()), w.kind);
                    if let Some(v) = &w.value {
                        values.insert((w.object, w.version()), v.clone());
                    }
                }
                Event::Read(r) => {
                    if !objects.contains_key(&r.object) {
                        return Err(HistoryError::UnknownObject { object: r.object });
                    }
                    let kind = kinds.get(&(r.object, r.version)).copied();
                    match kind {
                        None => {
                            return Err(HistoryError::ReadBeforeWrite {
                                txn,
                                object: r.object,
                                version: r.version,
                                index,
                            })
                        }
                        Some(VersionKind::Visible) => {}
                        Some(_) => {
                            return Err(HistoryError::ReadInvisible {
                                txn,
                                object: r.object,
                                version: r.version,
                            })
                        }
                    }
                    // Read-your-own-writes (§4.2, constraint 3).
                    if let Some(st) = write_state.get(&(txn, r.object)) {
                        let own = VersionId::new(txn, st.last_seq);
                        if r.version != own {
                            return Err(HistoryError::ReadOwnStale {
                                txn,
                                object: r.object,
                                expected: own,
                                got: r.version,
                            });
                        }
                    }
                }
                Event::PredicateRead(p) => {
                    let Some(pred) = predicates.get(&p.predicate) else {
                        return Err(HistoryError::UnknownPredicate {
                            predicate: p.predicate,
                        });
                    };
                    let mut seen: HashSet<ObjectId> = HashSet::new();
                    for (obj, ver) in &p.vset {
                        let Some(info) = objects.get(obj) else {
                            return Err(HistoryError::UnknownObject { object: *obj });
                        };
                        if !pred.relations.contains(&info.relation) {
                            return Err(HistoryError::VsetObjectOutsidePredicate {
                                predicate: p.predicate,
                                object: *obj,
                            });
                        }
                        if !seen.insert(*obj) {
                            return Err(HistoryError::VsetDuplicateObject {
                                predicate: p.predicate,
                                object: *obj,
                            });
                        }
                        if !kinds.contains_key(&(*obj, *ver)) {
                            return Err(HistoryError::VsetUnknownVersion {
                                predicate: p.predicate,
                                object: *obj,
                                version: *ver,
                            });
                        }
                    }
                }
            }
        }

        // -- Completeness.
        for (txn, info) in &txns {
            if info.end_event == usize::MAX {
                return Err(HistoryError::IncompleteTxn { txn: *txn });
            }
        }

        // -- Version orders.
        let committed =
            |t: TxnId| t.is_init() || txns.get(&t).is_some_and(|i| i.status.is_committed());
        let mut version_orders: BTreeMap<ObjectId, Vec<VersionId>> = BTreeMap::new();
        for &obj in objects.keys() {
            // Committed final writers of obj, by commit order.
            let mut writers: Vec<(usize, TxnId, u32)> = final_seqs
                .iter()
                .filter(|((t, o), _)| *o == obj && committed(*t))
                .map(|((t, _), seq)| (txns[t].end_event, *t, *seq))
                .collect();
            writers.sort_unstable();

            let order: Vec<VersionId> = match explicit_orders.get(&obj) {
                None => {
                    let mut order = Vec::with_capacity(writers.len() + 1);
                    order.push(VersionId::INIT);
                    order.extend(writers.iter().map(|&(_, t, seq)| VersionId::new(t, seq)));
                    order
                }
                Some(explicit) => {
                    let mut order = Vec::with_capacity(explicit.len() + 1);
                    order.push(VersionId::INIT);
                    for v in explicit {
                        if v.is_init() {
                            return Err(HistoryError::VersionOrderDuplicate {
                                object: obj,
                                version: *v,
                            });
                        }
                        order.push(*v);
                    }
                    order
                }
            };

            // Validate the (explicit or inferred) order.
            let mut seen: HashSet<VersionId> = HashSet::new();
            let mut dead_seen = false;
            for (pos, v) in order.iter().enumerate() {
                if !seen.insert(*v) {
                    return Err(HistoryError::VersionOrderDuplicate {
                        object: obj,
                        version: *v,
                    });
                }
                let Some(kind) = kinds.get(&(obj, *v)).copied() else {
                    return Err(HistoryError::VersionOrderUnknownVersion {
                        object: obj,
                        version: *v,
                    });
                };
                if pos == 0 {
                    if !v.is_init() {
                        return Err(HistoryError::VersionOrderMissingInit { object: obj });
                    }
                } else {
                    if !committed(v.txn) {
                        return Err(HistoryError::VersionOrderNotCommitted {
                            object: obj,
                            version: *v,
                        });
                    }
                    if final_seqs.get(&(v.txn, obj)) != Some(&v.seq) {
                        return Err(HistoryError::VersionOrderNotFinal {
                            object: obj,
                            version: *v,
                        });
                    }
                }
                if dead_seen {
                    return Err(HistoryError::DeadNotLast { object: obj });
                }
                if kind == VersionKind::Dead {
                    if dead_seen {
                        return Err(HistoryError::MultipleDead { object: obj });
                    }
                    dead_seen = true;
                }
            }
            // Every committed writer must be present.
            for &(_, t, seq) in &writers {
                if !seen.contains(&VersionId::new(t, seq)) {
                    return Err(HistoryError::VersionOrderMissingWriter {
                        object: obj,
                        txn: t,
                    });
                }
            }
            version_orders.insert(obj, order);
        }
        // Explicit orders for unregistered objects are an error.
        for obj in explicit_orders.keys() {
            if !objects.contains_key(obj) {
                return Err(HistoryError::VersionOrderUnknownObject { object: *obj });
            }
        }

        // -- Predicate match tables.
        for (&pid, pred) in &predicates {
            for &(obj, ver) in &pred.matches {
                let Some(kind) = kinds.get(&(obj, ver)).copied() else {
                    return Err(HistoryError::MatchUnknownVersion {
                        predicate: pid,
                        object: obj,
                        version: ver,
                    });
                };
                if kind != VersionKind::Visible {
                    return Err(HistoryError::MatchNonVisible {
                        predicate: pid,
                        object: obj,
                        version: ver,
                    });
                }
            }
        }

        // -- Derived indexes.
        let mut order_index = HashMap::new();
        for (&obj, order) in &version_orders {
            for (ix, &v) in order.iter().enumerate() {
                order_index.insert((obj, v), ix);
            }
        }
        let mut rel_objects: BTreeMap<RelationId, Vec<ObjectId>> = BTreeMap::new();
        for (&obj, info) in &objects {
            rel_objects.entry(info.relation).or_default().push(obj);
        }

        Ok(History {
            events,
            objects,
            relations,
            predicates,
            txns,
            version_orders,
            order_index,
            final_seqs,
            kinds,
            values,
            rel_objects,
        })
    }
}

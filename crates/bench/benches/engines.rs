//! E10 (Criterion form) — engine throughput per scheme and contention
//! level under the deterministic driver. The shapes (who wins where)
//! are the reproduction target; absolute numbers are machine-local.

use adya_engine::{
    CertifyLevel, Engine, LockConfig, LockingEngine, MvccEngine, MvccMode, MvtoEngine, OccEngine,
    SgtEngine,
};
use adya_workloads::{mixed_workload, run_deterministic, DriverConfig, MixedConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn run_once(make: &dyn Fn() -> Box<dyn Engine>, cfg: &MixedConfig) -> usize {
    let engine = make();
    let (_, programs) = mixed_workload(engine.as_ref(), cfg);
    let stats = run_deterministic(
        engine.as_ref(),
        programs,
        &DriverConfig {
            seed: cfg.seed,
            ..Default::default()
        },
    );
    stats.committed
}

type EngineFactory = Box<dyn Fn() -> Box<dyn Engine>>;

fn bench_schemes(c: &mut Criterion) {
    let schemes: Vec<(&str, EngineFactory)> = vec![
        (
            "2pl_ser",
            Box::new(|| {
                Box::new(LockingEngine::new(LockConfig::serializable())) as Box<dyn Engine>
            }),
        ),
        (
            "2pl_rc",
            Box::new(|| {
                Box::new(LockingEngine::new(LockConfig::read_committed())) as Box<dyn Engine>
            }),
        ),
        (
            "occ",
            Box::new(|| Box::new(OccEngine::new()) as Box<dyn Engine>),
        ),
        (
            "sgt_pl3",
            Box::new(|| Box::new(SgtEngine::new(CertifyLevel::PL3)) as Box<dyn Engine>),
        ),
        (
            "mvcc_si",
            Box::new(|| Box::new(MvccEngine::new(MvccMode::SnapshotIsolation)) as Box<dyn Engine>),
        ),
        (
            "mvcc_rc",
            Box::new(|| Box::new(MvccEngine::new(MvccMode::ReadCommitted)) as Box<dyn Engine>),
        ),
        (
            "mvto",
            Box::new(|| Box::new(MvtoEngine::new()) as Box<dyn Engine>),
        ),
    ];

    for (contention, keys, theta) in [("low", 256u64, 0.0), ("high", 8u64, 1.0)] {
        let mut group = c.benchmark_group(format!("workload_{contention}_contention"));
        group.sample_size(10);
        for (name, make) in &schemes {
            let cfg = MixedConfig {
                keys,
                txns: 32,
                ops_per_txn: 4,
                write_ratio: 0.5,
                abort_prob: 0.0,
                delete_prob: 0.0,
                theta,
                seed: 5,
            };
            group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
                b.iter(|| run_once(make.as_ref(), cfg))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);

//! E12 — checker scalability: wall time of conflict derivation, DSG
//! construction and full classification as history size grows.

use adya_core::{classify, detect_all, Dsg};
use adya_workloads::histgen::{random_history, HistGenConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn history_of(txns: usize) -> adya_history::History {
    let cfg = HistGenConfig {
        txns,
        objects: (txns / 2).max(4),
        ops_per_txn: 6,
        write_prob: 0.5,
        dirty_read_prob: 0.2,
        abort_prob: 0.1,
        shuffle_order_prob: 0.0,
        max_concurrent: 0,
    };
    random_history(&cfg, 42)
}

fn bench_dsg_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsg_build");
    for txns in [10usize, 50, 250, 1000] {
        let h = history_of(txns);
        group.throughput(Throughput::Elements(txns as u64));
        group.bench_with_input(BenchmarkId::from_parameter(txns), &h, |b, h| {
            b.iter(|| Dsg::build(h))
        });
    }
    group.finish();
}

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify_all_levels");
    for txns in [10usize, 50, 250, 1000] {
        let h = history_of(txns);
        group.throughput(Throughput::Elements(txns as u64));
        group.bench_with_input(BenchmarkId::from_parameter(txns), &h, |b, h| {
            b.iter(|| classify(h))
        });
    }
    group.finish();
}

fn bench_detect_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect_all_phenomena");
    for txns in [10usize, 100, 500] {
        let h = history_of(txns);
        group.throughput(Throughput::Elements(txns as u64));
        group.bench_with_input(BenchmarkId::from_parameter(txns), &h, |b, h| {
            b.iter(|| detect_all(h))
        });
    }
    group.finish();
}

fn bench_paper_histories(c: &mut Criterion) {
    // Micro: full classification of each named paper history.
    let mut group = c.benchmark_group("paper_histories");
    for (name, h) in adya_core::paper::all() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &h, |b, h| {
            b.iter(|| classify(h))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dsg_build,
    bench_classify,
    bench_detect_all,
    bench_paper_histories
);
criterion_main!(benches);

//! The isolation-level lattice (thesis Figure 4-5): the static
//! implication matrix, verified for reflexivity/transitivity and
//! printed for the report.

use adya_bench::{banner, mark, verdict, Table};
use adya_core::IsolationLevel;

fn main() {
    banner("Isolation level lattice: a implies b (row implies column)");
    let levels = IsolationLevel::ALL;
    let mut header: Vec<String> = vec!["".to_string()];
    header.extend(levels.iter().map(|l| l.to_string()));
    let mut table = Table::new(&header);
    for a in levels {
        let mut row = vec![a.to_string()];
        for b in levels {
            row.push(mark(a.implies(b)).to_string());
        }
        table.row(&row);
    }
    println!("{}", table.render());

    // Structural sanity: reflexive, transitive, and PL-3 at the top of
    // everything except PL-SI's start-ordering clause.
    let mut ok = true;
    for a in levels {
        ok &= a.implies(a);
        for b in levels {
            for c in levels {
                if a.implies(b) && b.implies(c) {
                    ok &= a.implies(c);
                }
            }
        }
    }
    use IsolationLevel::*;
    ok &= PL3.implies(PL299)
        && PL3.implies(PL2Plus)
        && PL3.implies(PLMAV)
        && PL3.implies(PLCS)
        && PL3.implies(PL2)
        && PL3.implies(PL1)
        && !PL3.implies(PLSI) // SI's start-dependency clause is extra
        && PLSI.implies(PL2Plus)
        && PL2Plus.implies(PLMAV)
        && !PL299.implies(PL2Plus);
    println!(
        "reflexive + transitive; PL-3 tops the DSG-only levels; PL-SI adds the \
         start-ordering clause PL-3 does not claim."
    );
    verdict("lattice", ok);
}

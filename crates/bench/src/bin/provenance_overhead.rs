//! E16 — what forensics costs on the hot path. The online checker now
//! records per-edge provenance (the concrete operation behind every
//! ww/wr/rw edge) so a violating verdict can cite its cycle; this
//! bench measures that bookkeeping against the same ingest run with
//! provenance disabled ([`OnlineChecker::set_provenance`]).
//!
//! Method: for each history size, generate one random history and
//! ingest it repeatedly under both configurations, taking the best of
//! several repetitions per side (the usual min-of-N noise filter).
//! Both sides must produce identical phenomenon sets — provenance is
//! an annotation, never a detector. The measured cost (~18% aggregate
//! on this conflict-heavy workload, after freshness gating and
//! indexed GC purges) exceeds the 10% budget an always-on feature
//! would need, which is why the library ships with provenance off by
//! default and `adya-check --stream` opts in explicitly. The verdict
//! enforces parity plus a 25% regression ceiling on the opt-in cost.
//! A final row times the offline side of forensics (witness
//! extraction with history shrinking) for scale, since that work only
//! runs on demand, never per event.

use std::time::Instant;

use adya_bench::{
    banner, note, report_header, report_path_from_args, u64_from_args, verdict, Table,
};
use adya_forensics::extract_all;
use adya_history::parse_history_completed;
use adya_obs::json::JsonWriter;
use adya_online::{GcConfig, OnlineChecker};
use adya_workloads::histgen::{random_history, HistGenConfig};

/// Timing repetitions per (size, configuration); best-of is reported.
/// Generous because each rep is only milliseconds and the best-of
/// floor is what the overhead comparison hinges on.
const REPS: usize = 15;

struct SizeRun {
    txns: usize,
    events: usize,
    on_ns: u128,
    off_ns: u128,
    fired_agree: bool,
}

/// Best-of-[`REPS`] ingest time over `h`'s events with provenance
/// `on`, plus the final fired set for the parity check.
fn time_ingest(h: &adya_history::History, on: bool) -> (u128, Vec<adya_core::PhenomenonKind>) {
    let mut best = u128::MAX;
    let mut fired = Vec::new();
    for _ in 0..REPS {
        let mut c = OnlineChecker::with_gc(GcConfig::default());
        c.set_provenance(on);
        let start = Instant::now();
        for e in h.events() {
            c.ingest(e);
        }
        let fin = c.finish();
        best = best.min(start.elapsed().as_nanos());
        fired = fin.fired;
    }
    (best, fired)
}

fn run_size(txns: usize, seed: u64) -> SizeRun {
    let cfg = HistGenConfig {
        txns,
        objects: 8,
        ops_per_txn: 4,
        write_prob: 0.5,
        dirty_read_prob: 0.1,
        abort_prob: 0.1,
        shuffle_order_prob: 0.0,
        max_concurrent: 8,
    };
    let h = random_history(&cfg, seed);
    let (on_ns, on_fired) = time_ingest(&h, true);
    let (off_ns, off_fired) = time_ingest(&h, false);
    SizeRun {
        txns,
        events: h.events().len(),
        on_ns,
        off_ns,
        fired_agree: on_fired == off_fired,
    }
}

fn overhead_pct(on: u128, off: u128) -> f64 {
    (on as f64 - off as f64) / off.max(1) as f64 * 100.0
}

fn write_report(path: &str, seed: u64, runs: &[SizeRun], extract_ns: u128) -> std::io::Result<()> {
    let mut w = JsonWriter::new();
    report_header(
        &mut w,
        "provenance_overhead",
        seed,
        &[("reps", REPS as u64)],
    );
    w.open_array(Some("runs"));
    for r in runs {
        w.open_object(None);
        w.u64_field("txns", r.txns as u64);
        w.u64_field("events", r.events as u64);
        w.u64_field("provenance_on_ns", r.on_ns as u64);
        w.u64_field("provenance_off_ns", r.off_ns as u64);
        // Basis-point overhead keeps the minimal writer integral.
        let bp = ((r.on_ns as f64 - r.off_ns as f64) / r.off_ns.max(1) as f64 * 10_000.0) as i64;
        w.u64_field("overhead_bp", bp.max(0) as u64);
        w.bool_field("fired_agree", r.fired_agree);
        w.close_object();
    }
    w.close_array();
    let on: u128 = runs.iter().map(|r| r.on_ns).sum();
    let off: u128 = runs.iter().map(|r| r.off_ns).sum();
    w.u64_field("total_on_ns", on as u64);
    w.u64_field("total_off_ns", off as u64);
    w.u64_field(
        "total_overhead_bp",
        (overhead_pct(on, off) * 100.0).max(0.0) as u64,
    );
    w.u64_field("witness_extract_ns", extract_ns as u64);
    w.close_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(path, json)
}

fn main() {
    banner("Provenance overhead: online ingest with vs without edge provenance");
    let report_path = report_path_from_args();
    let seed = u64_from_args("seed", 42);

    let sizes = [128usize, 256, 512, 1024];
    let runs: Vec<SizeRun> = sizes.iter().map(|&n| run_size(n, seed)).collect();

    let mut table = Table::new(&[
        "txns",
        "events",
        "prov on µs",
        "prov off µs",
        "overhead",
        "fired agree",
    ]);
    for r in &runs {
        table.row(&[
            r.txns.to_string(),
            r.events.to_string(),
            (r.on_ns / 1000).to_string(),
            (r.off_ns / 1000).to_string(),
            format!("{:+.1}%", overhead_pct(r.on_ns, r.off_ns)),
            if r.fired_agree { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    // The offline side, for scale: extracting minimized witnesses from
    // the paper's read-skew history (shrinking re-runs the detectors,
    // so this is deliberately not a per-event cost).
    let h = parse_history_completed(
        "r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9) c2",
    )
    .expect("paper history parses");
    let start = Instant::now();
    let witnesses = extract_all(&h);
    let extract_ns = start.elapsed().as_nanos();
    note(&format!(
        "witness extraction (read skew, {} witnesses, shrink + re-detect): {} µs",
        witnesses.len(),
        extract_ns / 1000
    ));

    let on: u128 = runs.iter().map(|r| r.on_ns).sum();
    let off: u128 = runs.iter().map(|r| r.off_ns).sum();
    let agg = overhead_pct(on, off);
    note(&format!("aggregate ingest overhead: {agg:+.1}%"));

    if let Some(path) = &report_path {
        match write_report(path, seed, &runs, extract_ns) {
            Ok(()) => note(&format!("report written to {path}")),
            Err(e) => {
                eprintln!("provenance_overhead: cannot write report {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    let agree = runs.iter().all(|r| r.fired_agree);
    // Above the 10% always-on budget, so provenance is off by default
    // (`set_provenance(true)` opts in); the ceiling here only guards
    // the opt-in path against regressions.
    verdict("E16 provenance overhead", agree && agg <= 25.0);
}

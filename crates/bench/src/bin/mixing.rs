//! §5.5 — Mixing of Isolation Levels: Definition 9 and the Mixing
//! Theorem.
//!
//! Two experiments:
//!
//! 1. **Locking mixes**: transactions at different Figure 1 rows run
//!    together on one 2PL engine ("a mixed system can be implemented
//!    using locking"); every recorded history must be mixing-correct.
//! 2. **Sampled mixes**: random histories with random per-transaction
//!    levels; we verify the theorem's observable consequences — an
//!    all-PL-3 assignment makes mixing-correct coincide with PL-3
//!    acceptance, and *lowering* any transaction's level never turns a
//!    mixing-correct history into an incorrect one (fewer obligatory
//!    edges, same G1 scope or smaller).

use adya_bench::{banner, verdict, Table};
use adya_core::{check_mixing, classify, IsolationLevel};
use adya_engine::{Engine, EngineError, Key, LockConfig, LockingEngine, Value};
use adya_history::{HistoryParts, RequestedLevel};
use adya_workloads::histgen::{random_history, HistGenConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs a hand-interleaved mixed-level schedule on the locking engine:
/// a PL-1 writer, a PL-2 reader and a PL-3 read-modify-writer over a
/// small table, retrying blocked operations round-robin.
fn locking_mix(seed: u64) -> adya_history::History {
    let engine = LockingEngine::new(LockConfig::serializable());
    let table = engine.catalog().table("acct");
    let seedtx = engine.begin();
    for k in 0..4u64 {
        engine.write(seedtx, table, Key(k), Value::Int(10)).unwrap();
    }
    engine.commit(seedtx).unwrap();

    let mut rng = StdRng::seed_from_u64(seed);
    // Session scripts: (config, ops) where an op is (is_write, key).
    let configs = [
        LockConfig::read_uncommitted(),
        LockConfig::read_committed(),
        LockConfig::serializable(),
    ];
    struct Sess {
        txn: adya_history::TxnId,
        ops: Vec<(bool, u64)>,
        pc: usize,
    }
    let mut sessions: Vec<Sess> = configs
        .iter()
        .map(|c| {
            let ops = (0..3)
                .map(|_| (rng.gen_bool(0.5), rng.gen_range(0..4u64)))
                .collect();
            Sess {
                txn: engine.begin_with(*c),
                ops,
                pc: 0,
            }
        })
        .collect();
    let mut fuel = 300;
    while fuel > 0 {
        fuel -= 1;
        let open: Vec<usize> = (0..sessions.len())
            .filter(|&i| sessions[i].pc <= sessions[i].ops.len())
            .collect();
        if open.is_empty() {
            break;
        }
        let i = open[rng.gen_range(0..open.len())];
        let s = &mut sessions[i];
        let result = if s.pc == s.ops.len() {
            engine.commit(s.txn)
        } else {
            let (w, k) = s.ops[s.pc];
            if w {
                engine.write(s.txn, table, Key(k), Value::Int(rng.gen_range(0..100)))
            } else {
                engine.read(s.txn, table, Key(k)).map(|_| ())
            }
        };
        match result {
            Ok(()) => s.pc += 1,
            Err(EngineError::Blocked { .. }) => {} // retry later
            Err(_) => {
                let _ = engine.abort(s.txn);
                s.pc = s.ops.len() + 1; // done (aborted)
            }
        }
    }
    engine.finalize()
}

/// Reassigns every transaction of `h` to the given level and
/// re-validates (levels live in the parts, so rebuild).
fn with_uniform_level(h: &adya_history::History, level: RequestedLevel) -> adya_history::History {
    let mut parts = HistoryParts {
        events: h.events().to_vec(),
        ..Default::default()
    };
    for (obj, info) in h.objects() {
        parts.objects.insert(obj, info.clone());
    }
    for (rel, info) in h.relations() {
        parts.relations.insert(rel, info.clone());
    }
    for (pid, info) in h.predicates() {
        parts.predicates.insert(pid, info.clone());
    }
    for (t, _) in h.txns() {
        parts.levels.insert(t, level);
        // Preserve explicit version orders (strip the leading init).
    }
    for (obj, _) in h.objects() {
        let order: Vec<_> = h
            .version_order(obj)
            .iter()
            .copied()
            .filter(|v| !v.is_init())
            .collect();
        parts.version_orders.insert(obj, order);
    }
    adya_history::History::from_parts(parts).expect("relabelled history stays valid")
}

fn main() {
    banner("Section 5.5: mixing of isolation levels (Definition 9)");
    // Seed plumbing: `--seed` shifts every sampled run.
    let base_seed = adya_bench::u64_from_args("seed", 0);

    // Experiment 1: locking mixes are always mixing-correct.
    let mut lock_ok = true;
    for seed in base_seed..base_seed + 20 {
        let h = locking_mix(seed);
        let rep = check_mixing(&h);
        if !rep.is_correct() {
            lock_ok = false;
            eprintln!("locking mix seed {seed} NOT mixing-correct: {rep}\n{h}");
        }
    }
    println!("locking-engine mixed runs (20 seeds): all mixing-correct = {lock_ok}");

    // Experiment 2: sampled histories.
    let cfg = HistGenConfig {
        dirty_read_prob: 0.35,
        abort_prob: 0.1,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(99 ^ base_seed);
    let mut agree = 0;
    let mut total = 0;
    let mut monotone_ok = true;
    let mut correct_at_pl3 = 0;
    let mut correct_random = 0;
    let n = 150;
    for seed in base_seed..base_seed + n {
        let h = random_history(&cfg, seed);
        // (a) all-PL-3 assignment: mixing-correct ⇔ PL-3.
        let pl3h = with_uniform_level(&h, RequestedLevel::PL3);
        let mix3 = check_mixing(&pl3h).is_correct();
        let pl3 = classify(&pl3h).satisfies(IsolationLevel::PL3);
        total += 1;
        if mix3 == pl3 {
            agree += 1;
        }
        if mix3 {
            correct_at_pl3 += 1;
        }
        // (b) random level assignment: lowering levels never breaks a
        // correct mix.
        let levels = [
            RequestedLevel::PL1,
            RequestedLevel::PL2,
            RequestedLevel::PL299,
            RequestedLevel::PL3,
        ];
        let mut parts_levels = std::collections::BTreeMap::new();
        for (t, _) in pl3h.txns() {
            parts_levels.insert(t, levels[rng.gen_range(0..levels.len())]);
        }
        let mixed = {
            let mut parts = HistoryParts {
                events: pl3h.events().to_vec(),
                levels: parts_levels,
                ..Default::default()
            };
            for (obj, info) in pl3h.objects() {
                parts.objects.insert(obj, info.clone());
            }
            for (rel, info) in pl3h.relations() {
                parts.relations.insert(rel, info.clone());
            }
            for (obj, _) in pl3h.objects() {
                let order: Vec<_> = pl3h
                    .version_order(obj)
                    .iter()
                    .copied()
                    .filter(|v| !v.is_init())
                    .collect();
                parts.version_orders.insert(obj, order);
            }
            adya_history::History::from_parts(parts).expect("valid")
        };
        let mix_rand = check_mixing(&mixed).is_correct();
        if mix_rand {
            correct_random += 1;
        }
        if mix3 && !mix_rand {
            monotone_ok = false;
            eprintln!("seed {seed}: lowering levels broke mixing-correctness");
        }
    }

    let mut table = Table::new(&["property", "result"]);
    table.row(&[
        "all-PL-3: mixing-correct ⇔ PL-3".to_string(),
        format!("{agree}/{total} agree"),
    ]);
    table.row(&[
        "mixing-correct at all-PL-3".to_string(),
        format!("{correct_at_pl3}/{total}"),
    ]);
    table.row(&[
        "mixing-correct at random levels".to_string(),
        format!("{correct_random}/{total} (≥ all-PL-3 count)"),
    ]);
    table.row(&[
        "lowering levels never breaks correctness".to_string(),
        format!("{monotone_ok}"),
    ]);
    println!("{}", table.render());

    let ok = lock_ok && agree == total && monotone_ok && correct_random >= correct_at_pl3;
    verdict("mixing", ok);
}

//! Figure 6 — "Summary of portable ANSI isolation levels": regenerated
//! as a history × level admission matrix over the paper's named
//! histories plus canonical anomalies, with the strongest satisfied
//! ANSI level per history.

use adya_bench::{banner, mark, verdict, Table};
use adya_core::{classify, paper, IsolationLevel};
use adya_history::{parse_history, History};

fn canonical_extras() -> Vec<(&'static str, History)> {
    vec![
        (
            "dirty-read-cycle",
            parse_history("w1(x,1) w2(y,2) r1(y2) r2(x1) c1 c2").unwrap(),
        ),
        (
            "lost-update",
            parse_history("r1(xinit,0) r2(xinit,0) w1(x,1) c1 w2(x,2) c2").unwrap(),
        ),
        (
            "write-skew",
            parse_history(
                "b1 b2 r1(xinit,5) r1(yinit,5) r2(xinit,5) r2(yinit,5) \
                 w1(x,1) w2(y,1) c1 c2",
            )
            .unwrap(),
        ),
        (
            "serial",
            parse_history("w1(x,1) c1 r2(x1) w2(x,2) c2").unwrap(),
        ),
    ]
}

fn main() {
    banner("Figure 6: portable isolation level summary (admission matrix)");
    println!(
        "PL-1 proscribes G0; PL-2 proscribes G1; PL-2.99 proscribes G1, G2-item; \
         PL-3 proscribes G1, G2.\nExtension levels: PL-CS (G-cursor), PL-2+ (G-single), \
         PL-SI (G-SIa/b), PL-MAV (G-monotonic).\n"
    );

    let mut histories = paper::all();
    histories.extend(canonical_extras());

    let mut table = Table::new(&[
        "history",
        "PL-1",
        "PL-2",
        "PL-CS",
        "PL-MAV",
        "PL-2+",
        "PL-2.99",
        "PL-SI",
        "PL-3",
        "strongest ANSI",
    ]);
    for (name, h) in &histories {
        let r = classify(h);
        table.row(&[
            name.to_string(),
            mark(r.satisfies(IsolationLevel::PL1)).to_string(),
            mark(r.satisfies(IsolationLevel::PL2)).to_string(),
            mark(r.satisfies(IsolationLevel::PLCS)).to_string(),
            mark(r.satisfies(IsolationLevel::PLMAV)).to_string(),
            mark(r.satisfies(IsolationLevel::PL2Plus)).to_string(),
            mark(r.satisfies(IsolationLevel::PL299)).to_string(),
            mark(r.satisfies(IsolationLevel::PLSI)).to_string(),
            mark(r.satisfies(IsolationLevel::PL3)).to_string(),
            r.strongest_ansi()
                .map(|l| l.to_string())
                .unwrap_or_else(|| "below PL-1".to_string()),
        ]);
    }
    println!("{}", table.render());

    // Spot-check the paper's claims.
    let get = |n: &str| {
        histories
            .iter()
            .find(|(name, _)| *name == n)
            .map(|(_, h)| classify(h))
            .expect("history present")
    };
    let ok = !get("H_wcycle").satisfies(IsolationLevel::PL1)
        && get("H1").strongest_ansi() == Some(IsolationLevel::PL2)
        && get("H2").strongest_ansi() == Some(IsolationLevel::PL2)
        && get("H1'").satisfies(IsolationLevel::PL3)
        && get("H2'").satisfies(IsolationLevel::PL3)
        && get("H_phantom").strongest_ansi() == Some(IsolationLevel::PL299)
        && get("write-skew").satisfies(IsolationLevel::PLSI)
        && !get("write-skew").satisfies(IsolationLevel::PL3)
        && get("serial").satisfies(IsolationLevel::PL3);
    verdict("figure6", ok);
}

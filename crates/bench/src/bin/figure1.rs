//! Figure 1 — "Consistency Levels and Locking ANSI-92 Isolation
//! Levels": runs the real 2PL engine in each lock configuration under
//! adversarial workloads and verifies that exactly the proscribed
//! preventative phenomena are absent from the recorded histories,
//! while the corresponding generalized level holds.

use adya_bench::{banner, mark, verdict, Table};
use adya_core::{classify, IsolationLevel};
use adya_engine::{Engine, LockConfig, LockingEngine};
use adya_prevent::{detect_all_p, PKind};
use adya_workloads::{
    mixed_workload, phantom_workload, run_deterministic, DriverConfig, MixedConfig, PhantomConfig,
};

/// The generalized level each Figure 1 row must deliver. Degree 0
/// promises nothing (not even PL-1 is claimed by the paper's table).
fn expected_level(config: &LockConfig) -> Option<IsolationLevel> {
    match config.name {
        "2PL-degree0" => None,
        "2PL-read-uncommitted" => Some(IsolationLevel::PL1),
        "2PL-read-committed" => Some(IsolationLevel::PL2),
        "2PL-repeatable-read" => Some(IsolationLevel::PL299),
        "2PL-serializable" => Some(IsolationLevel::PL3),
        other => panic!("unknown config {other}"),
    }
}

fn proscribed(config: &LockConfig) -> &'static [PKind] {
    match config.name {
        "2PL-degree0" => &[],
        "2PL-read-uncommitted" => &[PKind::P0],
        "2PL-read-committed" => &[PKind::P0, PKind::P1],
        "2PL-repeatable-read" => &[PKind::P0, PKind::P1, PKind::P2],
        "2PL-serializable" => &[PKind::P0, PKind::P1, PKind::P2, PKind::P3],
        other => panic!("unknown config {other}"),
    }
}

fn main() {
    banner("Figure 1: locking isolation levels vs proscribed phenomena");
    let mut table = Table::new(&[
        "locking level",
        "P0",
        "P1",
        "P2",
        "P3",
        "proscribed absent",
        "generalized level holds",
    ]);
    let mut all_ok = true;

    for config in LockConfig::all() {
        // Accumulate phenomena over several seeds of two adversarial
        // workloads on one engine instance per seed.
        let mut seen = [false; 4];
        let mut level_ok = true;
        for seed in 0..6u64 {
            let engine = LockingEngine::new(config);
            let (_, mut programs) = mixed_workload(
                &engine,
                &MixedConfig {
                    keys: 4,
                    txns: 14,
                    ops_per_txn: 3,
                    write_ratio: 0.6,
                    abort_prob: 0.2,
                    delete_prob: 0.0,
                    theta: 0.9,
                    seed,
                },
            );
            let (_, _, mut ph) = phantom_workload(
                &engine,
                &PhantomConfig {
                    initial_employees: 3,
                    hires: 5,
                    audits: 5,
                    seed,
                    ..Default::default()
                },
            );
            programs.append(&mut ph);
            let _ = run_deterministic(
                &engine,
                programs,
                &DriverConfig {
                    seed,
                    ..Default::default()
                },
            );
            let h = engine.finalize();
            for p in detect_all_p(&h) {
                seen[match p.kind {
                    PKind::P0 => 0,
                    PKind::P1 => 1,
                    PKind::P2 => 2,
                    PKind::P3 => 3,
                }] = true;
            }
            if let Some(lvl) = expected_level(&config) {
                let r = classify(&h);
                if !r.satisfies(lvl) {
                    level_ok = false;
                    eprintln!("  !! seed {seed}: {} violates {lvl}:\n{r}", config.name);
                }
            }
        }
        let proscribed_absent = proscribed(&config).iter().all(|k| {
            !seen[match k {
                PKind::P0 => 0,
                PKind::P1 => 1,
                PKind::P2 => 2,
                PKind::P3 => 3,
            }]
        });
        all_ok &= proscribed_absent && level_ok;
        table.row(&[
            config.name,
            mark(seen[0]),
            mark(seen[1]),
            mark(seen[2]),
            mark(seen[3]),
            mark(proscribed_absent),
            match expected_level(&config) {
                Some(l) if level_ok => format!("{l}"),
                Some(l) => format!("{l} VIOLATED"),
                None => "(none claimed)".to_string(),
            }
            .as_str(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Paper's Figure 1 proscription sets: Degree 0: none; READ UNCOMMITTED: P0; \
         READ COMMITTED: P0,P1; REPEATABLE READ: P0-P2; SERIALIZABLE: P0-P3."
    );
    verdict("figure1", all_ok);
}

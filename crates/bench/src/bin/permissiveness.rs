//! E11 — quantifying "the preventative approach is overly
//! restrictive": over random histories of varying dirtiness, the
//! fraction admitted by each preventative level vs the corresponding
//! generalized level. The G column must dominate the P column at every
//! level (containment), with a strictly positive gap once histories
//! contain concurrent conflicting operations.

use adya_bench::{banner, verdict, Table};
use adya_core::{classify, IsolationLevel};
use adya_prevent::{check_locking, LockingLevel};
use adya_workloads::histgen::{random_history, HistGenConfig};

const PAIRS: [(LockingLevel, IsolationLevel); 4] = [
    (LockingLevel::ReadUncommitted, IsolationLevel::PL1),
    (LockingLevel::ReadCommitted, IsolationLevel::PL2),
    (LockingLevel::RepeatableRead, IsolationLevel::PL299),
    (LockingLevel::Serializable, IsolationLevel::PL3),
];

fn main() {
    banner("Permissiveness: admission rates, preventative vs generalized");
    let n = 400usize;
    // Seed plumbing: `--seed` shifts the sampled-history base seed.
    let base_seed = adya_bench::u64_from_args("seed", 1_000);
    let mut all_ok = true;

    for (dirty, label) in [
        (0.0, "clean reads"),
        (0.3, "30% dirty reads"),
        (0.6, "60% dirty reads"),
    ] {
        let cfg = HistGenConfig {
            txns: 6,
            objects: 4,
            ops_per_txn: 4,
            write_prob: 0.5,
            dirty_read_prob: dirty,
            abort_prob: 0.1,
            shuffle_order_prob: 0.0,
            max_concurrent: 0,
        };
        let mut admitted_p = [0usize; 4];
        let mut admitted_g = [0usize; 4];
        let mut containment = true;
        for seed in 0..n as u64 {
            let h = random_history(&cfg, base_seed + seed);
            let g = classify(&h);
            for (i, (pl, gl)) in PAIRS.iter().enumerate() {
                let p_ok = check_locking(&h, *pl).ok();
                let g_ok = g.satisfies(*gl);
                if p_ok {
                    admitted_p[i] += 1;
                    if !g_ok {
                        containment = false;
                    }
                }
                if g_ok {
                    admitted_g[i] += 1;
                }
            }
        }
        println!("workload: {label} ({n} sampled histories)");
        let mut table = Table::new(&[
            "level pair",
            "preventative admits",
            "generalized admits",
            "gap (G-only)",
        ]);
        for (i, (pl, gl)) in PAIRS.iter().enumerate() {
            table.row(&[
                format!("{pl} vs {gl}"),
                format!("{:5.1}%", 100.0 * admitted_p[i] as f64 / n as f64),
                format!("{:5.1}%", 100.0 * admitted_g[i] as f64 / n as f64),
                format!(
                    "{:5.1}%",
                    100.0 * (admitted_g[i].saturating_sub(admitted_p[i])) as f64 / n as f64
                ),
            ]);
        }
        println!("{}", table.render());
        all_ok &= containment;
        for i in 0..4 {
            all_ok &= admitted_g[i] >= admitted_p[i];
        }
        if dirty > 0.0 {
            // With dirty reads, serializable-level gap must be
            // strictly positive (H1'-like histories exist).
            all_ok &= admitted_g[3] > admitted_p[3];
        }
        if !containment {
            eprintln!("containment violated: some P-admitted history was G-rejected");
        }
    }
    println!(
        "Containment (P-admitted ⇒ G-admitted) must hold everywhere; the gap grows \
         with dirtiness because optimistic-style schedules (dirty reads later \
         validated) are exactly what P1/P2 over-reject."
    );
    verdict("permissiveness", all_ok);
}

//! E15 — chaos soak: guarantee preservation under deterministic fault
//! injection. Every engine runs a threaded workload behind a
//! [`FaultyEngine`] for a family of seeded fault schedules (artificial
//! blocks, forced aborts, scheduling delays, mid-commit crash points),
//! and three properties must hold on every run:
//!
//! 1. **The advertised isolation level holds.** The finalized history
//!    — faults, crashes, retries and all — is classified by the batch
//!    checker and must still satisfy the level the engine claims. The
//!    paper's generalized definitions judge the history the system
//!    actually produced, which is exactly what makes them usable as a
//!    fault-testing oracle (a lock-based definition cannot even be
//!    stated for a run with injected faults).
//! 2. **The durable event log round-trips.** The tapped event stream
//!    survives encode/decode through the checksummed on-disk format,
//!    and a torn tail (writer killed mid-append) is detected as such —
//!    the intact prefix is recovered, not discarded or misread.
//! 3. **Crash/restore changes nothing.** Replaying the stream through
//!    the online checker with snapshot/restore cycles at several cut
//!    points yields a verdict stream byte-identical to an
//!    uninterrupted pass.
//! 4. **The pipeline changes nothing either.** Replaying the stream
//!    through the staged ingest pipeline — threaded feeder, tiny rings
//!    under constant backpressure, batched application — with the
//!    stream cut (pipeline closed, sequencer drained, checker
//!    snapshot/restored) at seeded points is also byte-identical.
//!
//! Seeds are CLI-settable and echoed into the JSON report
//! (`--report`), so any soak run is reproducible from the report
//! alone: `chaos_soak --seed <base> --schedules <n> --txns <n>`.
//!
//! Setting `ADYA_SOAK_LONG=1` switches to the long profile: many more
//! schedules, an order of magnitude more transactions per run, and a
//! key space that *grows* with the schedule index (later schedules
//! spread the same contention over ever more objects, exercising the
//! online checker's GC and reader anchors across a widening domain).
//! The long profile is hour-scale and meant for soak boxes, not CI;
//! the default run is unchanged. Explicit `--schedules`/`--txns`
//! flags still override either profile's defaults.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use adya_bench::{
    banner, note, report_header, report_path_from_args, u64_from_args, verdict, Table,
};
use adya_core::{classify, IsolationLevel};
use adya_engine::{
    CertifyLevel, Engine, LockConfig, LockingEngine, MvccEngine, MvccMode, MvtoEngine, OccEngine,
    SgtEngine,
};
use adya_faults::{FaultConfig, FaultPlane, FaultStats, FaultyEngine};
use adya_history::Event;
use adya_obs::json::JsonWriter;
use adya_online::{
    encode_log, EventLogReader, EventPipeline, LogError, OnlineChecker, PipelineConfig,
};
use adya_workloads::{mixed_workload, run_concurrent, ConcurrentConfig, MixedConfig, RetryPolicy};

type EngineFactory = Box<dyn Fn() -> (Box<dyn Engine>, IsolationLevel)>;

fn schemes() -> Vec<(&'static str, EngineFactory)> {
    vec![
        (
            "2PL-serializable",
            Box::new(|| {
                (
                    Box::new(LockingEngine::new(LockConfig::serializable())) as Box<dyn Engine>,
                    IsolationLevel::PL3,
                )
            }),
        ),
        (
            "OCC",
            Box::new(|| {
                (
                    Box::new(OccEngine::new()) as Box<dyn Engine>,
                    IsolationLevel::PL3,
                )
            }),
        ),
        (
            "SGT-PL3",
            Box::new(|| {
                (
                    Box::new(SgtEngine::new(CertifyLevel::PL3)) as Box<dyn Engine>,
                    IsolationLevel::PL3,
                )
            }),
        ),
        (
            "MVCC-SI",
            Box::new(|| {
                (
                    Box::new(MvccEngine::new(MvccMode::SnapshotIsolation)) as Box<dyn Engine>,
                    IsolationLevel::PLSI,
                )
            }),
        ),
        (
            "MVTO",
            Box::new(|| {
                (
                    Box::new(MvtoEngine::new()) as Box<dyn Engine>,
                    IsolationLevel::PL3,
                )
            }),
        ),
    ]
}

/// The i-th fault schedule of a soak: intensities ramp with `i` so the
/// family spans quiet-with-delays up to block+abort+crash storms, and
/// each schedule's plane seed is derived from the base seed, so the
/// whole family is reproducible from `(base, i)`.
fn schedule(base: u64, i: u64) -> FaultConfig {
    FaultConfig {
        seed: base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        block_prob: 0.02 * (i % 4) as f64,
        abort_prob: 0.015 * (i % 3) as f64,
        delay_prob: 0.05,
        delay_spins: 8,
        crash_every: if i % 2 == 1 { Some(11 + 2 * i) } else { None },
    }
}

struct SoakRun {
    engine: String,
    schedule: u64,
    cfg: FaultConfig,
    committed: usize,
    gave_up: usize,
    ops: usize,
    events: usize,
    faults: FaultStats,
    level: IsolationLevel,
    level_ok: bool,
    log_ok: bool,
    replay_ok: bool,
    pipelined_ok: bool,
    micros: u128,
}

impl SoakRun {
    fn ok(&self) -> bool {
        self.level_ok && self.log_ok && self.replay_ok && self.pipelined_ok
    }
}

/// Encode the stream, decode it back, and check torn-tail detection:
/// a log missing its final bytes must yield exactly the intact prefix
/// plus a `TornTail` — never a misread and never a hard error.
fn check_log_roundtrip(events: &[Event]) -> bool {
    let bytes = encode_log(events);
    let mut reader = match EventLogReader::open(&bytes) {
        Ok(r) => r,
        Err(_) => return false,
    };
    let mut decoded = Vec::new();
    while let Some(item) = reader.next() {
        match item {
            Ok(e) => decoded.push(e),
            Err(_) => return false,
        }
    }
    if decoded != events {
        return false;
    }
    if events.is_empty() {
        return true;
    }
    let torn = &bytes[..bytes.len() - 3];
    let mut reader = match EventLogReader::open(torn) {
        Ok(r) => r,
        Err(_) => return false,
    };
    let mut prefix = Vec::new();
    loop {
        match reader.next() {
            Some(Ok(e)) => prefix.push(e),
            Some(Err(LogError::TornTail { .. })) => break,
            _ => return false,
        }
    }
    prefix.len() == events.len() - 1 && prefix[..] == events[..prefix.len()]
}

/// One verdict, rendered to the exact line the comparison is over.
fn verdict_line(v: &adya_online::Verdict) -> String {
    format!(
        "txn={:?} committed={} level={:?} fired={:?} new={:?} stale={}",
        v.txn, v.committed, v.strongest_ansi, v.fired, v.new_fired, v.stale_refs
    )
}

/// Replays `events` through the online checker twice — once
/// uninterrupted, once with snapshot/restore cycles at three cut
/// points — and demands byte-identical verdict streams.
fn check_crash_replay(events: &[Event], seed: u64) -> bool {
    let mut plain = Vec::new();
    let mut c = OnlineChecker::new();
    for e in events {
        if let Some(v) = c.ingest(e) {
            plain.push(verdict_line(&v));
        }
    }
    plain.push(verdict_line(&c.finish()));

    // Cut points derived from the schedule seed so different schedules
    // crash the checker at different stream positions.
    let n = events.len();
    let mut cuts: Vec<usize> = (1..=3u64)
        .map(|k| {
            let h = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(k)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            (h % n.max(1) as u64) as usize
        })
        .collect();
    cuts.sort_unstable();

    let mut resumed = Vec::new();
    let mut c = OnlineChecker::new();
    for (i, e) in events.iter().enumerate() {
        if cuts.contains(&i) {
            let snap = c.snapshot();
            drop(c);
            c = match OnlineChecker::restore(&snap) {
                Ok(c) => c,
                Err(_) => return false,
            };
        }
        if let Some(v) = c.ingest(e) {
            resumed.push(verdict_line(&v));
        }
    }
    resumed.push(verdict_line(&c.finish()));
    plain == resumed
}

/// Replays `events` through the *staged pipeline* — threaded feeder,
/// tiny rings forcing backpressure, batched application — with the
/// stream cut at seeded points: each cut closes the pipeline (the
/// sequencer drains what the rings still buffer, exactly as on a
/// crash), snapshots the checker, and resumes a restored checker on a
/// fresh pipeline. The whole verdict stream must be byte-identical to
/// a plain uninterrupted per-event pass.
fn check_pipelined_replay(events: &[Event], seed: u64) -> bool {
    let mut plain = Vec::new();
    let mut c = OnlineChecker::new();
    for e in events {
        if let Some(v) = c.ingest(e) {
            plain.push(verdict_line(&v));
        }
    }
    plain.push(verdict_line(&c.finish()));

    let n = events.len();
    let mut cuts: Vec<usize> = (1..=2u64)
        .map(|k| {
            let h = seed
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                .wrapping_add(k)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (h % n.max(1) as u64) as usize
        })
        .collect();
    cuts.push(n);
    cuts.sort_unstable();
    cuts.dedup();

    let cfg = PipelineConfig {
        rings: 3,
        ring_capacity: 4, // tiny: the feeder hits backpressure
        max_batch: 7,
    };
    let mut got = Vec::new();
    let mut c = OnlineChecker::new();
    let mut start = 0usize;
    for cut in cuts {
        let segment = &events[start..cut];
        start = cut;
        if !segment.is_empty() {
            let (producers, pipe) = EventPipeline::manual(cfg);
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let k = producers.len();
                    for (i, ev) in segment.iter().enumerate() {
                        producers[i % k].push(i as u64, ev.clone());
                    }
                    // producers drop: rings close, sequencer drains.
                });
                pipe.run(&mut c, |v| got.push(verdict_line(&v)));
            });
        }
        if cut < n {
            let snap = c.snapshot();
            c = match OnlineChecker::restore(&snap) {
                Ok(c) => c,
                Err(_) => return false,
            };
        }
    }
    got.push(verdict_line(&c.finish()));
    got == plain
}

fn run_one(
    name: &str,
    make: &dyn Fn() -> (Box<dyn Engine>, IsolationLevel),
    cfg: FaultConfig,
    schedule_ix: u64,
    txns: u64,
    threads: u64,
    keys: u64,
) -> SoakRun {
    let (engine, level) = make();
    let plane = Arc::new(FaultPlane::new(cfg));
    let faulty = FaultyEngine::new(engine, Arc::clone(&plane));

    let events: Arc<Mutex<Vec<Event>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&events);
    faulty.set_event_tap(Arc::new(move |e: &Event| {
        sink.lock().expect("tap mutex").push(e.clone());
    }));

    // Seed rows through the *inner* engine: populating the table is
    // test scaffolding, not workload, and must not be faulted.
    let (_, programs) = mixed_workload(
        faulty.inner(),
        &MixedConfig {
            keys,
            txns: txns as usize,
            ops_per_txn: 5,
            write_ratio: 0.5,
            abort_prob: 0.05,
            delete_prob: 0.05,
            theta: 0.8,
            seed: cfg.seed,
        },
    );

    let start = Instant::now();
    let stats = run_concurrent(
        &faulty,
        &programs,
        &ConcurrentConfig {
            threads: threads as usize,
            spin_limit: 64,
            retry: RetryPolicy {
                max_attempts: 40,
                deadline_ops: Some(4_000),
                ..RetryPolicy::default()
            },
            seed: cfg.seed,
        },
    );
    let micros = start.elapsed().as_micros();

    let history = faulty.finalize();
    let level_ok = classify(&history).satisfies(level);
    let events = Arc::try_unwrap(events)
        .map(|m| m.into_inner().expect("tap mutex"))
        .unwrap_or_else(|arc| arc.lock().expect("tap mutex").clone());
    let log_ok = check_log_roundtrip(&events);
    let replay_ok = check_crash_replay(&events, cfg.seed);
    let pipelined_ok = check_pipelined_replay(&events, cfg.seed);

    SoakRun {
        engine: name.to_string(),
        schedule: schedule_ix,
        committed: stats.committed,
        gave_up: stats.gave_up,
        ops: stats.ops,
        events: events.len(),
        faults: plane.stats(),
        level,
        level_ok,
        log_ok,
        replay_ok,
        pipelined_ok,
        micros,
        cfg,
    }
}

/// Probabilities go into the report as exact per-mille integers (the
/// schedule generator only produces multiples of 0.005), keeping the
/// JSON writer integral while staying lossless for reproduction.
fn per_mille(p: f64) -> u64 {
    (p * 1000.0).round() as u64
}

fn write_report(path: &str, base_seed: u64, runs: &[SoakRun]) -> std::io::Result<()> {
    let mut w = JsonWriter::new();
    report_header(
        &mut w,
        "chaos_soak",
        base_seed,
        &[("runs_total", runs.len() as u64)],
    );
    w.open_array(Some("runs"));
    for r in runs {
        w.open_object(None);
        w.str_field("engine", &r.engine);
        w.u64_field("schedule", r.schedule);
        w.u64_field("plane_seed", r.cfg.seed);
        w.u64_field("block_prob_pm", per_mille(r.cfg.block_prob));
        w.u64_field("abort_prob_pm", per_mille(r.cfg.abort_prob));
        w.u64_field("delay_prob_pm", per_mille(r.cfg.delay_prob));
        w.u64_field("delay_spins", u64::from(r.cfg.delay_spins));
        w.u64_field("crash_every", r.cfg.crash_every.unwrap_or(0));
        w.u64_field("committed", r.committed as u64);
        w.u64_field("gave_up", r.gave_up as u64);
        w.u64_field("ops", r.ops as u64);
        w.u64_field("events", r.events as u64);
        w.u64_field("injected_blocks", r.faults.blocked);
        w.u64_field("injected_aborts", r.faults.aborted);
        w.u64_field("injected_delays", r.faults.delayed);
        w.u64_field("crashes", r.faults.crashes);
        w.u64_field("micros", r.micros as u64);
        w.str_field("advertised", &r.level.to_string());
        w.bool_field("level_ok", r.level_ok);
        w.bool_field("log_roundtrip_ok", r.log_ok);
        w.bool_field("crash_replay_ok", r.replay_ok);
        w.bool_field("pipelined_ok", r.pipelined_ok);
        w.close_object();
    }
    w.close_array();
    w.close_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(path, json)
}

fn main() {
    banner("Chaos soak: isolation guarantees under injected faults");
    let long = std::env::var("ADYA_SOAK_LONG").is_ok_and(|v| v == "1");
    let report_path = report_path_from_args();
    let base_seed = u64_from_args("seed", 0xC0FFEE);
    let schedules = u64_from_args("schedules", if long { 64 } else { 8 });
    let txns = u64_from_args("txns", if long { 512 } else { 48 });
    let threads = u64_from_args("threads", 4);
    note(&format!(
        "base seed {base_seed}, {schedules} schedules x {} engines, {txns} txns, {threads} threads{}",
        schemes().len(),
        if long { " (ADYA_SOAK_LONG profile)" } else { "" }
    ));

    let mut runs: Vec<SoakRun> = Vec::new();
    for i in 0..schedules {
        let cfg = schedule(base_seed, i);
        // Long profile: the key space grows with the schedule index, so
        // late schedules spread contention over many more objects.
        let keys = if long { 16 + 12 * i } else { 12 };
        for (name, make) in &schemes() {
            runs.push(run_one(name, make.as_ref(), cfg, i, txns, threads, keys));
        }
    }

    let mut table = Table::new(&[
        "engine",
        "sched",
        "committed",
        "gave up",
        "blocks/aborts/crashes",
        "events",
        "level",
        "log",
        "replay",
        "pipelined",
    ]);
    for r in &runs {
        table.row(&[
            r.engine.clone(),
            r.schedule.to_string(),
            r.committed.to_string(),
            r.gave_up.to_string(),
            format!(
                "{}/{}/{}",
                r.faults.blocked, r.faults.aborted, r.faults.crashes
            ),
            r.events.to_string(),
            if r.level_ok {
                format!("{} ok", r.level)
            } else {
                format!("{} VIOLATED", r.level)
            },
            if r.log_ok { "ok" } else { "FAIL" }.to_string(),
            if r.replay_ok { "ok" } else { "FAIL" }.to_string(),
            if r.pipelined_ok { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    // Sanity on the soak itself: the schedule family must actually
    // have injected faults and crashes somewhere, or the run proved
    // nothing.
    let total_faults: u64 = runs
        .iter()
        .map(|r| r.faults.blocked + r.faults.aborted + r.faults.crashes)
        .sum();
    if total_faults == 0 {
        note("  schedule family injected no faults — soak is vacuous");
    }
    let all_ok = runs.iter().all(SoakRun::ok);
    for r in runs.iter().filter(|r| !r.ok()) {
        note(&format!(
            "  {} schedule {}: level_ok={} log_ok={} replay_ok={} pipelined_ok={}",
            r.engine, r.schedule, r.level_ok, r.log_ok, r.replay_ok, r.pipelined_ok
        ));
    }

    if let Some(path) = &report_path {
        match write_report(path, base_seed, &runs) {
            Ok(()) => note(&format!("report written to {path}")),
            Err(e) => {
                eprintln!("chaos_soak: cannot write report {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    verdict("E15 chaos soak", all_ok && total_faults > 0);
}

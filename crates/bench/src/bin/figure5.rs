//! Figure 5 — the DSG of H_phantom (§5.4): the cycle exists only when
//! predicate anti-dependency edges are considered, so PL-2.99 admits
//! the history and PL-3 rejects it.

use adya_bench::{banner, verdict};
use adya_core::{classify, paper, DepKind, Dsg, IsolationLevel};
use adya_history::TxnId;

fn main() {
    banner("Figure 5: DSG for history H_phantom");
    let h = paper::h_phantom();
    println!("H_phantom = {h}\n");
    let dsg = Dsg::build(&h);

    let pred_anti = dsg.has_edge(TxnId(1), TxnId(2), DepKind::PredAntiDep);
    let wr_back = dsg.has_edge(TxnId(2), TxnId(1), DepKind::ItemReadDep);
    println!("T1 -rw(pred)-> T2 present: {pred_anti}");
    println!("T2 -wr-> T1 present:       {wr_back}");

    let report = classify(&h);
    println!("\nlevel verdicts:\n{report}");
    println!("\nDOT:\n{}", dsg.to_dot("Figure5_Hphantom"));

    let ok = pred_anti
        && wr_back
        && report.satisfies(IsolationLevel::PL299)
        && !report.satisfies(IsolationLevel::PL3);
    println!(
        "\nThe paper: \"This history is ruled out by PL-3 but permitted by PL-2.99 \
         because the DSG contains a cycle only if predicate anti-dependency edges \
         are considered.\""
    );
    verdict("figure5", ok);
}

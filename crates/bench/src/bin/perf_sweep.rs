//! E10 — the paper's §1/§3 motivation: "optimism can outperform
//! locking in some environments". A contention sweep across the four
//! concurrency-control schemes, measuring commit rate, aborts, blocked
//! operations and wall time under the deterministic driver; every
//! committed history is re-checked at the scheme's level, so the
//! comparison is between *correct* implementations only.

use std::time::Instant;

use adya_bench::{banner, verdict, Table};
use adya_core::{classify, IsolationLevel};
use adya_engine::{
    CertifyLevel, Engine, LockConfig, LockingEngine, MvccEngine, MvccMode, MvtoEngine, OccEngine,
    SgtEngine,
};
use adya_workloads::{mixed_workload, run_deterministic, DriverConfig, MixedConfig};

struct SchemeRun {
    name: String,
    committed: usize,
    attempts: usize,
    aborts: usize,
    blocked: usize,
    deadlocks: usize,
    micros: u128,
    level_ok: bool,
}

fn run_scheme(make: &dyn Fn() -> (Box<dyn Engine>, IsolationLevel), cfg: &MixedConfig) -> SchemeRun {
    let mut totals = SchemeRun {
        name: String::new(),
        committed: 0,
        attempts: 0,
        aborts: 0,
        blocked: 0,
        deadlocks: 0,
        micros: 0,
        level_ok: true,
    };
    for seed in 0..4u64 {
        let (engine, level) = make();
        totals.name = engine.name();
        let (_, programs) = mixed_workload(engine.as_ref(), &MixedConfig { seed, ..cfg.clone() });
        let n = programs.len();
        let start = Instant::now();
        let stats = run_deterministic(
            engine.as_ref(),
            programs,
            &DriverConfig {
                seed,
                ..Default::default()
            },
        );
        totals.micros += start.elapsed().as_micros();
        totals.committed += stats.committed;
        totals.attempts += n;
        totals.aborts += stats.total_aborts();
        totals.blocked += stats.blocked;
        totals.deadlocks += stats.deadlock_victims;
        let h = engine.finalize();
        if !classify(&h).satisfies(level) {
            totals.level_ok = false;
        }
    }
    totals
}

type EngineFactory = Box<dyn Fn() -> (Box<dyn Engine>, IsolationLevel)>;

fn main() {
    banner("Performance sweep: locking vs optimistic vs multi-version");
    let mut all_ok = true;

    let schemes: Vec<(&str, EngineFactory)> = vec![
        (
            "2PL-serializable",
            Box::new(|| {
                (
                    Box::new(LockingEngine::new(LockConfig::serializable())) as Box<dyn Engine>,
                    IsolationLevel::PL3,
                )
            }),
        ),
        (
            "OCC",
            Box::new(|| (Box::new(OccEngine::new()) as Box<dyn Engine>, IsolationLevel::PL3)),
        ),
        (
            "SGT-PL3",
            Box::new(|| {
                (
                    Box::new(SgtEngine::new(CertifyLevel::PL3)) as Box<dyn Engine>,
                    IsolationLevel::PL3,
                )
            }),
        ),
        (
            "MVCC-SI",
            Box::new(|| {
                (
                    Box::new(MvccEngine::new(MvccMode::SnapshotIsolation)) as Box<dyn Engine>,
                    IsolationLevel::PLSI,
                )
            }),
        ),
        (
            "MVTO",
            Box::new(|| {
                (
                    Box::new(MvtoEngine::new()) as Box<dyn Engine>,
                    IsolationLevel::PL3,
                )
            }),
        ),
    ];

    for (contention, keys, theta) in [
        ("low (256 keys, uniform)", 256u64, 0.0),
        ("medium (32 keys, zipf 0.8)", 32, 0.8),
        ("high (4 keys, zipf 1.1)", 4, 1.1),
    ] {
        let cfg = MixedConfig {
            keys,
            txns: 48,
            ops_per_txn: 4,
            write_ratio: 0.5,
            abort_prob: 0.0,
            delete_prob: 0.0,
            theta,
            seed: 0,
        };
        println!("contention: {contention}");
        let mut table = Table::new(&[
            "scheme",
            "commit rate",
            "aborts",
            "blocked ops",
            "deadlocks",
            "wall time (us)",
            "history checks",
        ]);
        for (_, make) in &schemes {
            let r = run_scheme(make.as_ref(), &cfg);
            all_ok &= r.level_ok;
            table.row(&[
                r.name.clone(),
                format!("{:4.1}%", 100.0 * r.committed as f64 / r.attempts as f64),
                r.aborts.to_string(),
                r.blocked.to_string(),
                r.deadlocks.to_string(),
                r.micros.to_string(),
                if r.level_ok { "ok" } else { "LEVEL VIOLATED" }.to_string(),
            ]);
        }
        println!("{}", table.render());
    }
    println!(
        "Expected shape (not absolute numbers): under low contention the optimistic \
         schemes commit everything without blocking while 2PL pays lock overhead; \
         under write hotspots validation/certification aborts rise for OCC/SGT while \
         2PL mostly blocks; MVCC-SI never blocks readers and aborts only on \
         first-committer-wins conflicts."
    );
    verdict("perf_sweep", all_ok);
}

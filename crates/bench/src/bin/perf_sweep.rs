//! E10 — the paper's §1/§3 motivation: "optimism can outperform
//! locking in some environments". A contention sweep across the four
//! concurrency-control schemes, measuring commit rate, aborts, blocked
//! operations and wall time under the deterministic driver; every
//! committed history is re-checked at the scheme's level, so the
//! comparison is between *correct* implementations only.

use std::time::Instant;

use adya_bench::{banner, note, report_path_from_args, verdict, Table};
use adya_core::{classify, IsolationLevel};
use adya_engine::{
    CertifyLevel, Engine, LockConfig, LockingEngine, MvccEngine, MvccMode, MvtoEngine, OccEngine,
    SgtEngine,
};
use adya_obs::json::JsonWriter;
use adya_obs::Snapshot;
use adya_workloads::{mixed_workload, run_deterministic, DriverConfig, MixedConfig};

struct SchemeRun {
    name: String,
    committed: usize,
    attempts: usize,
    aborts: usize,
    blocked: usize,
    deadlocks: usize,
    micros: u128,
    level_ok: bool,
}

fn run_scheme(
    make: &dyn Fn() -> (Box<dyn Engine>, IsolationLevel),
    cfg: &MixedConfig,
    base_seed: u64,
) -> SchemeRun {
    let mut totals = SchemeRun {
        name: String::new(),
        committed: 0,
        attempts: 0,
        aborts: 0,
        blocked: 0,
        deadlocks: 0,
        micros: 0,
        level_ok: true,
    };
    for seed in base_seed..base_seed + 4 {
        let (engine, level) = make();
        totals.name = engine.name();
        let (_, programs) = mixed_workload(
            engine.as_ref(),
            &MixedConfig {
                seed,
                ..cfg.clone()
            },
        );
        let n = programs.len();
        let start = Instant::now();
        let stats = run_deterministic(
            engine.as_ref(),
            programs,
            &DriverConfig {
                seed,
                ..Default::default()
            },
        );
        totals.micros += start.elapsed().as_micros();
        totals.committed += stats.committed;
        totals.attempts += n;
        totals.aborts += stats.total_aborts();
        totals.blocked += stats.blocked;
        totals.deadlocks += stats.deadlock_victims;
        let h = engine.finalize();
        if !classify(&h).satisfies(level) {
            totals.level_ok = false;
        }
    }
    totals
}

type EngineFactory = Box<dyn Fn() -> (Box<dyn Engine>, IsolationLevel)>;

/// Writes the JSON metrics report: one entry per (contention, scheme)
/// run with the driver totals and the engine/checker metrics recorded
/// during that run.
fn write_report(
    path: &str,
    base_seed: u64,
    runs: &[(String, SchemeRun, Snapshot)],
) -> std::io::Result<()> {
    let mut w = JsonWriter::new();
    w.open_object(None);
    w.str_field("report", "perf_sweep");
    w.u64_field("base_seed", base_seed);
    w.u64_field("runs_total", runs.len() as u64);
    w.open_array(Some("runs"));
    for (contention, r, snap) in runs {
        w.open_object(None);
        w.str_field("contention", contention);
        w.str_field("scheme", &r.name);
        w.u64_field("committed", r.committed as u64);
        w.u64_field("attempts", r.attempts as u64);
        w.u64_field("aborts", r.aborts as u64);
        w.u64_field("blocked", r.blocked as u64);
        w.u64_field("deadlocks", r.deadlocks as u64);
        w.u64_field("micros", r.micros as u64);
        w.bool_field("level_ok", r.level_ok);
        snap.write_json(&mut w, Some("metrics"));
        w.close_object();
    }
    w.close_array();
    w.close_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(path, json)
}

fn main() {
    banner("Performance sweep: locking vs optimistic vs multi-version");
    let report_path = report_path_from_args();
    // Seed plumbing: `--seed` shifts the whole sweep and is echoed in
    // the report, so a run is reproducible from the report alone.
    let base_seed = adya_bench::u64_from_args("seed", 0);
    let mut runs: Vec<(String, SchemeRun, Snapshot)> = Vec::new();
    let mut all_ok = true;

    let schemes: Vec<(&str, EngineFactory)> = vec![
        (
            "2PL-serializable",
            Box::new(|| {
                (
                    Box::new(LockingEngine::new(LockConfig::serializable())) as Box<dyn Engine>,
                    IsolationLevel::PL3,
                )
            }),
        ),
        (
            "OCC",
            Box::new(|| {
                (
                    Box::new(OccEngine::new()) as Box<dyn Engine>,
                    IsolationLevel::PL3,
                )
            }),
        ),
        (
            "SGT-PL3",
            Box::new(|| {
                (
                    Box::new(SgtEngine::new(CertifyLevel::PL3)) as Box<dyn Engine>,
                    IsolationLevel::PL3,
                )
            }),
        ),
        (
            "MVCC-SI",
            Box::new(|| {
                (
                    Box::new(MvccEngine::new(MvccMode::SnapshotIsolation)) as Box<dyn Engine>,
                    IsolationLevel::PLSI,
                )
            }),
        ),
        (
            "MVTO",
            Box::new(|| {
                (
                    Box::new(MvtoEngine::new()) as Box<dyn Engine>,
                    IsolationLevel::PL3,
                )
            }),
        ),
    ];

    for (contention, keys, theta) in [
        ("low (256 keys, uniform)", 256u64, 0.0),
        ("medium (32 keys, zipf 0.8)", 32, 0.8),
        ("high (4 keys, zipf 1.1)", 4, 1.1),
    ] {
        let cfg = MixedConfig {
            keys,
            txns: 48,
            ops_per_txn: 4,
            write_ratio: 0.5,
            abort_prob: 0.0,
            delete_prob: 0.0,
            theta,
            seed: 0,
        };
        println!("contention: {contention}");
        let mut table = Table::new(&[
            "scheme",
            "commit rate",
            "aborts",
            "blocked ops",
            "deadlocks",
            "wall time (us)",
            "history checks",
        ]);
        for (_, make) in &schemes {
            // Reset the global registry so the snapshot after the run
            // is this run's delta (metric handles survive the reset).
            adya_obs::global().reset();
            let r = run_scheme(make.as_ref(), &cfg, base_seed);
            let snap = adya_obs::global().snapshot();
            all_ok &= r.level_ok;
            table.row(&[
                r.name.clone(),
                format!("{:4.1}%", 100.0 * r.committed as f64 / r.attempts as f64),
                r.aborts.to_string(),
                r.blocked.to_string(),
                r.deadlocks.to_string(),
                r.micros.to_string(),
                if r.level_ok { "ok" } else { "LEVEL VIOLATED" }.to_string(),
            ]);
            runs.push((contention.to_string(), r, snap));
        }
        println!("{}", table.render());
    }
    note(
        "Expected shape (not absolute numbers): under low contention the optimistic \
         schemes commit everything without blocking while 2PL pays lock overhead; \
         under write hotspots validation/certification aborts rise for OCC/SGT while \
         2PL mostly blocks; MVCC-SI never blocks readers and aborts only on \
         first-committer-wins conflicts.",
    );
    if let Some(path) = &report_path {
        match write_report(path, base_seed, &runs) {
            Ok(()) => note(&format!("metrics report written to {path}")),
            Err(e) => {
                eprintln!("perf_sweep: cannot write report {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    verdict("perf_sweep", all_ok);
}

//! Figure 4 — the DSG of H_wcycle (§5.1): a pure write-dependency
//! cycle, the shape G0 proscribes at PL-1.

use adya_bench::{banner, verdict};
use adya_core::{classify, paper, Dsg, IsolationLevel};

fn main() {
    banner("Figure 4: DSG for history H_wcycle");
    let h = paper::h_wcycle();
    println!("H_wcycle = {h}\n");
    let dsg = Dsg::build(&h);
    let cycle = dsg.write_cycle();
    match &cycle {
        Some(c) => println!("G0 write cycle: {c}"),
        None => println!("no write cycle found (MISMATCH)"),
    }
    let report = classify(&h);
    println!("\nlevel verdicts:\n{report}");
    println!("\nDOT:\n{}", dsg.to_dot("Figure4_Hwcycle"));
    let ok = cycle.map(|c| c.len() == 2).unwrap_or(false) && !report.satisfies(IsolationLevel::PL1);
    verdict("figure4", ok);
}

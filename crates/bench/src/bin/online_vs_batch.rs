//! E14 — the streaming checker's reason to exist: per-commit verdicts
//! from one incremental pass versus re-running the batch checker on
//! every committed prefix. Both sides produce a verdict after *every*
//! commit, so the comparison is work-per-decision at equal information,
//! and both must agree on the final classification.
//!
//! The batch side is the honest alternative a user without
//! `adya-online` would deploy: truncate the event log at each commit,
//! complete the open transactions with aborts (the paper's completion
//! rule), rebuild the `History` and DSG, and run the six ANSI-chain
//! detectors. That is O(n) histories of O(n) events — O(n²) total —
//! while the online checker does one O(n) ingest, so the speedup must
//! grow with history length.

use std::time::Instant;

use adya_bench::{banner, note, report_header, report_path_from_args, verdict, Table};
use adya_core::{g0, g1a, g1b, g1c, g2, g2_item, Dsg, IsolationLevel, PhenomenonKind};
use adya_history::{Event, History, TxnId};
use adya_obs::json::JsonWriter;
use adya_online::{GcConfig, OnlineChecker};
use adya_workloads::histgen::{random_history, HistGenConfig};

struct SizeRun {
    txns: usize,
    events: usize,
    commits: usize,
    online_ns: u128,
    batch_ns: u128,
    online_level: Option<IsolationLevel>,
    batch_level: Option<IsolationLevel>,
    peak_live: usize,
    pruned: u64,
    verdict_p50: u64,
    verdict_p99: u64,
}

/// Strongest ANSI level whose proscriptions avoid `fired` — the same
/// rule both checkers apply, computed here from the raw detector
/// outputs so the batch side pays only for the six ANSI detectors.
fn strongest(fired: &[PhenomenonKind]) -> Option<IsolationLevel> {
    [
        IsolationLevel::PL1,
        IsolationLevel::PL2,
        IsolationLevel::PL299,
        IsolationLevel::PL3,
    ]
    .iter()
    .rev()
    .copied()
    .find(|l| l.proscribes().iter().all(|p| !fired.contains(p)))
}

/// One full batch check: DSG plus the six ANSI-chain detectors.
fn batch_check(h: &History) -> Vec<PhenomenonKind> {
    let dsg = Dsg::build(h);
    [g0(&dsg), g1a(h), g1b(h), g1c(&dsg), g2_item(&dsg), g2(&dsg)]
        .into_iter()
        .flatten()
        .map(|p| p.kind())
        .collect()
}

/// Rebuilds a validated history from the first `len` events, completing
/// still-open transactions with aborts (what a crash at this instant
/// would have meant). Version orders stay implicit: the generator runs
/// with `shuffle_order_prob = 0`, so commit order is the install order
/// on every prefix.
fn prefix_history(h: &History, len: usize) -> History {
    let mut parts = h.to_parts();
    parts.events.truncate(len);
    parts.version_orders.clear();
    let mut open: Vec<TxnId> = Vec::new();
    for e in &parts.events {
        match e {
            Event::Commit(t) | Event::Abort(t) => open.retain(|x| x != t),
            e => {
                if !open.contains(&e.txn()) {
                    open.push(e.txn());
                }
            }
        }
    }
    for t in open {
        parts.events.push(Event::Abort(t));
    }
    let present: Vec<TxnId> = parts.events.iter().map(|e| e.txn()).collect();
    parts.levels.retain(|t, _| present.contains(t));
    History::from_parts(parts).expect("a prefix of a valid history is valid")
}

fn run_size(txns: usize, seed: u64) -> SizeRun {
    let cfg = HistGenConfig {
        txns,
        objects: 8,
        ops_per_txn: 4,
        write_prob: 0.5,
        dirty_read_prob: 0.1,
        abort_prob: 0.1,
        shuffle_order_prob: 0.0,
        // A connection-pool-like window: bounded concurrency is what
        // lets the checker's GC keep the live set flat while the
        // history grows without bound.
        max_concurrent: 8,
    };
    let h = random_history(&cfg, seed);
    let events = h.events().len();

    // Online: one incremental pass, a verdict at every commit.
    adya_obs::global().reset();
    let mut checker = OnlineChecker::with_gc(GcConfig::default());
    let mut peak_live = 0usize;
    let start = Instant::now();
    for e in h.events() {
        checker.ingest(e);
        peak_live = peak_live.max(checker.live_txns());
    }
    let fin = checker.finish();
    let online_ns = start.elapsed().as_nanos();
    let snap = adya_obs::global().snapshot();
    let (verdict_p50, verdict_p99) = snap
        .histograms
        .iter()
        .find(|(n, _)| n.as_str() == "online.verdict_latency")
        .map(|(_, hs)| (hs.p50, hs.p99))
        .unwrap_or((0, 0));

    // Batch: a full re-check of the completed prefix at every commit.
    let commit_points: Vec<usize> = h
        .events()
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Event::Commit(_)))
        .map(|(i, _)| i + 1)
        .collect();
    let start = Instant::now();
    let mut batch_fired: Vec<PhenomenonKind> = Vec::new();
    for &len in &commit_points {
        let p = prefix_history(&h, len);
        batch_fired = batch_check(&p);
    }
    let batch_ns = start.elapsed().as_nanos();

    SizeRun {
        txns,
        events,
        commits: commit_points.len(),
        online_ns,
        batch_ns,
        online_level: fin.strongest_ansi,
        batch_level: strongest(&batch_fired),
        peak_live,
        pruned: fin.pruned_txns,
        verdict_p50,
        verdict_p99,
    }
}

fn write_report(path: &str, seed: u64, runs: &[SizeRun]) -> std::io::Result<()> {
    let mut w = JsonWriter::new();
    report_header(&mut w, "online_vs_batch", seed, &[]);
    w.open_array(Some("runs"));
    for r in runs {
        w.open_object(None);
        w.u64_field("txns", r.txns as u64);
        w.u64_field("events", r.events as u64);
        w.u64_field("commits", r.commits as u64);
        w.u64_field("online_ns", r.online_ns as u64);
        w.u64_field("batch_ns", r.batch_ns as u64);
        w.u64_field(
            "online_ns_per_event",
            (r.online_ns / r.events.max(1) as u128) as u64,
        );
        w.u64_field("verdict_latency_p50_ns", r.verdict_p50);
        w.u64_field("verdict_latency_p99_ns", r.verdict_p99);
        w.u64_field("peak_live_txns", r.peak_live as u64);
        w.u64_field("gc_pruned_txns", r.pruned);
        let speedup = r.batch_ns as f64 / r.online_ns.max(1) as f64;
        // No float field on the minimal writer; hundredths keep the
        // report integral and precise enough for a ratio.
        w.u64_field("batch_over_online_x100", (speedup * 100.0) as u64);
        w.str_field(
            "strongest_ansi",
            &r.online_level
                .map(|l| l.to_string())
                .unwrap_or_else(|| "none".into()),
        );
        w.bool_field("verdicts_agree", r.online_level == r.batch_level);
        w.close_object();
    }
    w.close_array();
    w.close_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(path, json)
}

fn main() {
    banner("Online (incremental) vs batch (re-check every prefix)");
    let report_path = report_path_from_args();
    // Seed plumbing: `--seed` re-generates every size's history and is
    // echoed in the report, so a run is reproducible from it alone.
    let seed = adya_bench::u64_from_args("seed", 42);

    let sizes = [32usize, 64, 128, 256, 512];
    let runs: Vec<SizeRun> = sizes.iter().map(|&n| run_size(n, seed)).collect();

    let mut table = Table::new(&[
        "txns",
        "events",
        "commits",
        "online µs",
        "batch µs",
        "speedup",
        "peak live",
        "pruned",
        "level",
    ]);
    for r in &runs {
        table.row(&[
            r.txns.to_string(),
            r.events.to_string(),
            r.commits.to_string(),
            (r.online_ns / 1000).to_string(),
            (r.batch_ns / 1000).to_string(),
            format!("{:.1}x", r.batch_ns as f64 / r.online_ns.max(1) as f64),
            r.peak_live.to_string(),
            r.pruned.to_string(),
            r.online_level
                .map(|l| l.to_string())
                .unwrap_or_else(|| "none".into()),
        ]);
    }
    println!("{}", table.render());

    let agree = runs.iter().all(|r| r.online_level == r.batch_level);
    if !agree {
        for r in &runs {
            if r.online_level != r.batch_level {
                note(&format!(
                    "  txns={}: online {:?} != batch {:?}",
                    r.txns, r.online_level, r.batch_level
                ));
            }
        }
    }
    // Asymptotics: the batch side re-checks every prefix, so its cost
    // relative to the single online pass must grow with history
    // length. Compare the ends of the sweep rather than demanding
    // strict monotonicity (small sizes are noisy).
    let first = runs.first().expect("sizes is non-empty");
    let last = runs.last().expect("sizes is non-empty");
    let s_first = first.batch_ns as f64 / first.online_ns.max(1) as f64;
    let s_last = last.batch_ns as f64 / last.online_ns.max(1) as f64;
    let asymptotic = s_last > s_first && s_last > 1.0;
    if !asymptotic {
        note(&format!(
            "  speedup did not grow: {s_first:.2}x at {} txns vs {s_last:.2}x at {} txns",
            first.txns, last.txns
        ));
    }
    // Bounded memory: GC keeps the live set far below the history size.
    let bounded = last.peak_live < last.txns / 2;
    if !bounded {
        note(&format!(
            "  peak live {} vs {} txns — GC is not pruning",
            last.peak_live, last.txns
        ));
    }

    if let Some(path) = report_path {
        write_report(&path, seed, &runs).expect("write report");
        note(&format!("report written to {path}"));
    }
    verdict("E14 online vs batch", agree && asymptotic && bounded);
}

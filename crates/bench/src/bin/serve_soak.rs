//! E18 — serve soak: the durable checker service under concurrent
//! tenants and a mid-stream kill. The bench spawns a real `adya-serve`
//! process, streams N concurrent sessions against it through
//! [`adya_workloads::ServeClient`], SIGKILLs the server when every
//! session is mid-stream, restarts it on the same address, and lets
//! every client resume under the workloads retry/backoff policy.
//!
//! Two properties must hold on every run:
//!
//! 1. **Verdict-stream parity.** Each session's verdict ledger —
//!    absorbed across the kill via snapshot + log-tail recovery and
//!    the resume replay window — must be byte-identical to an
//!    uninterrupted in-process run of the same tokens, final verdict
//!    included.
//! 2. **Every session resumed.** A kill with all sessions mid-stream
//!    must force at least one reconnect per session, or the soak
//!    proved nothing about recovery.
//!
//! Reported: sessions/sec, events/sec, per-session recovery latency
//! (client-observed, reconnect backoff included) and the parity bits,
//! into `--report experiments/serve_soak.json`. `--budget-pct <p>`
//! scales the per-session transaction count to p% for CI smoke runs;
//! `--seed/--sessions/--txns` make any run reproducible from its
//! report.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use adya_bench::{
    banner, note, report_header, report_path_from_args, u64_from_args, verdict, Table,
};
use adya_obs::json::JsonWriter;
use adya_online::{GcConfig, OnlineChecker, StreamParser};
use adya_workloads::{ClientError, RetryPolicy, ServeClient};

/// The spawned server; killed on drop so a panicking bench never
/// leaks a listener.
struct Server(Child);

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// `adya-serve` lands in the same target directory as this bench
/// binary, so the sibling path is the default; `ADYA_SERVE_BIN`
/// overrides it for out-of-tree runs.
fn serve_bin() -> PathBuf {
    if let Ok(p) = std::env::var("ADYA_SERVE_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().expect("current_exe");
    p.pop();
    p.push("adya-serve");
    p
}

/// Spawns the server over `data` on `listen`, returning the process
/// and the bound address. Retries briefly so the restart can rebind
/// the port its killed predecessor just held.
fn spawn_server(bin: &std::path::Path, data: &std::path::Path, listen: &str) -> (Server, String) {
    for attempt in 0..50 {
        let mut child = Command::new(bin)
            .arg("--data")
            .arg(data)
            .args([
                "--listen",
                listen,
                "--snapshot-every",
                "32",
                "--rotate-events",
                "64",
            ])
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
        let stderr = child.stderr.take().expect("piped stderr");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read first stderr line");
        if let Some((_, addr)) = line.rsplit_once("listening on ") {
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut reader, &mut std::io::sink());
            });
            return (Server(child), addr.trim().to_string());
        }
        let _ = child.kill();
        let _ = child.wait();
        assert!(attempt < 49, "adya-serve kept failing to bind: {line:?}");
        std::thread::sleep(Duration::from_millis(100));
    }
    unreachable!()
}

/// A deterministic token stream for one session: interleaved begins,
/// version-correct reads, writes and commits over eight objects. The
/// seed perturbs the object choices so sessions diverge run to run
/// while staying reproducible.
fn session_tokens(session: u64, seed: u64, txns: u64) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut last_writer = [None::<u64>; 8];
    let obj = |i: usize| (b'a' + i as u8) as char;
    let salt = (seed ^ session.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as usize;
    for t in 1..=txns {
        let wobj = ((t as usize) * 7 + salt) % 8;
        let robj = ((t as usize) * 3 + salt / 8) % 8;
        tokens.push(format!("b{t}"));
        if let Some(w) = last_writer[robj] {
            tokens.push(format!("r{t}(k{}{w})", obj(robj)));
        }
        tokens.push(format!("w{t}(k{},{t})", obj(wobj)));
        tokens.push(format!("c{t}"));
        last_writer[wobj] = Some(t);
    }
    tokens
}

/// The uninterrupted in-process reference: same tokens, same checker
/// configuration as a server session — (verdict lines, final line).
fn reference(tokens: &[String]) -> (Vec<String>, String) {
    let mut parser = StreamParser::new();
    let mut checker = OnlineChecker::with_gc(GcConfig::default());
    let mut verdicts = Vec::new();
    for tok in tokens {
        let ev = parser.parse_token(tok).expect("reference tokens parse");
        if let Some(v) = checker.ingest(&ev) {
            verdicts.push(v.to_json());
        }
    }
    (verdicts, checker.finish().to_json())
}

/// One session's outcome, as reported.
struct SessionRun {
    name: String,
    events: u64,
    verdicts: u64,
    resumes: u32,
    /// Client-observed recovery latency (reconnect backoff included),
    /// summed over all resumes.
    recovery_micros: u128,
    stream_ok: bool,
    final_ok: bool,
}

impl SessionRun {
    fn ok(&self) -> bool {
        self.stream_ok && self.final_ok
    }
}

/// Streams a whole session around the kill: half the tokens, two
/// barrier waits while the server is replaced, the rest, then close.
/// Transport errors anywhere turn into a timed resume.
fn run_session(addr: &str, session: u64, seed: u64, txns: u64, barrier: &Barrier) -> SessionRun {
    let tokens = session_tokens(session, seed, txns);
    let name = format!("tenant-{session}");
    let mut client = ServeClient::hello(addr, &name).expect("hello");
    let mut resumes = 0u32;
    let mut recovery_micros = 0u128;
    let policy = RetryPolicy {
        deadline_ops: Some(4_000),
        ..RetryPolicy::default()
    };
    let mut send = |client: &mut ServeClient, tok: &str| match client.send_token(tok) {
        Ok(()) => {}
        Err(ClientError::Io(_)) => {
            let t0 = Instant::now();
            client
                .resume(&policy, seed ^ session)
                .unwrap_or_else(|e| panic!("{name}: resume failed: {e}"));
            recovery_micros += t0.elapsed().as_micros();
            resumes += 1;
        }
        Err(e) => panic!("{name}: protocol error on {tok:?}: {e}"),
    };

    let half = tokens.len() / 2;
    for tok in &tokens[..half] {
        send(&mut client, tok);
    }
    barrier.wait(); // everyone is mid-stream
    barrier.wait(); // the server has been killed and restarted
    for tok in &tokens[half..] {
        send(&mut client, tok);
    }

    let (want_verdicts, want_final) = reference(&tokens);
    let stream_ok = client.verdicts() == &want_verdicts[..];
    let events = client.tokens_sent() as u64;
    let verdicts = client.verdicts().len() as u64;
    let fin = client.close().expect("close");
    SessionRun {
        name,
        events,
        verdicts,
        resumes,
        recovery_micros,
        stream_ok,
        final_ok: fin == want_final,
    }
}

#[allow(clippy::too_many_arguments)]
fn write_report(
    path: &str,
    seed: u64,
    txns: u64,
    budget_pct: u64,
    runs: &[SessionRun],
    restart_micros: u128,
    elapsed: Duration,
) -> std::io::Result<()> {
    let total_events: u64 = runs.iter().map(|r| r.events).sum();
    let total_verdicts: u64 = runs.iter().map(|r| r.verdicts).sum();
    let total_resumes: u64 = runs.iter().map(|r| u64::from(r.resumes)).sum();
    let secs = elapsed.as_secs_f64().max(1e-9);
    let mut w = JsonWriter::new();
    report_header(
        &mut w,
        "serve_soak",
        seed,
        &[
            ("sessions", runs.len() as u64),
            ("txns_per_session", txns),
            ("budget_pct", budget_pct),
        ],
    );
    w.u64_field("events_total", total_events);
    w.u64_field("verdicts_total", total_verdicts);
    w.u64_field("resumes_total", total_resumes);
    w.u64_field("elapsed_micros", elapsed.as_micros() as u64);
    w.u64_field("server_restart_micros", restart_micros as u64);
    w.u64_field(
        "sessions_per_sec_milli",
        (runs.len() as f64 / secs * 1000.0) as u64,
    );
    w.u64_field("events_per_sec", (total_events as f64 / secs) as u64);
    w.bool_field("parity_ok", runs.iter().all(SessionRun::ok));
    w.open_array(Some("per_session"));
    for r in runs {
        w.open_object(None);
        w.str_field("session", &r.name);
        w.u64_field("events", r.events);
        w.u64_field("verdicts", r.verdicts);
        w.u64_field("resumes", u64::from(r.resumes));
        w.u64_field("recovery_micros", r.recovery_micros as u64);
        w.bool_field("stream_parity", r.stream_ok);
        w.bool_field("final_parity", r.final_ok);
        w.close_object();
    }
    w.close_array();
    w.close_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(path, json)
}

fn main() {
    banner("Serve soak: durable sessions across a mid-stream kill");
    let report_path = report_path_from_args();
    let seed = u64_from_args("seed", 0x5E17E);
    let sessions = u64_from_args("sessions", 6).max(1);
    let budget_pct = u64_from_args("budget-pct", 100).clamp(1, 100);
    let txns = (u64_from_args("txns", 160) * budget_pct / 100).max(8);
    note(&format!(
        "seed {seed}, {sessions} concurrent sessions x {txns} txns (budget {budget_pct}%)"
    ));

    let bin = serve_bin();
    assert!(
        bin.exists(),
        "adya-serve binary not found at {} — build it first (cargo build --release) \
         or set ADYA_SERVE_BIN",
        bin.display()
    );
    let data = std::env::temp_dir().join(format!("adya-serve-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data);
    let (server, addr) = spawn_server(&bin, &data, "127.0.0.1:0");
    note(&format!(
        "adya-serve pid {} on {addr}, data {}",
        server.0.id(),
        data.display()
    ));

    let start = Instant::now();
    let barrier = Arc::new(Barrier::new(sessions as usize + 1));
    let mut handles = Vec::new();
    for s in 0..sessions {
        let addr = addr.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            run_session(&addr, s, seed, txns, &barrier)
        }));
    }

    barrier.wait(); // every session is mid-stream
    drop(server); // SIGKILL — no flush, no goodbye
    let t_restart = Instant::now();
    let (_server2, addr2) = spawn_server(&bin, &data, &addr);
    let restart_micros = t_restart.elapsed().as_micros();
    assert_eq!(
        addr2, addr,
        "replacement server must rebind the same address"
    );
    barrier.wait();

    let runs: Vec<SessionRun> = handles
        .into_iter()
        .map(|h| h.join().expect("session thread"))
        .collect();
    let elapsed = start.elapsed();
    let _ = std::fs::remove_dir_all(&data);

    let mut table = Table::new(&[
        "session",
        "events",
        "verdicts",
        "resumes",
        "recovery ms",
        "stream",
        "final",
    ]);
    for r in &runs {
        table.row(&[
            r.name.clone(),
            r.events.to_string(),
            r.verdicts.to_string(),
            r.resumes.to_string(),
            format!("{:.1}", r.recovery_micros as f64 / 1000.0),
            if r.stream_ok { "ok" } else { "FAIL" }.to_string(),
            if r.final_ok { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    let total_events: u64 = runs.iter().map(|r| r.events).sum();
    let total_resumes: u32 = runs.iter().map(|r| r.resumes).sum();
    let secs = elapsed.as_secs_f64().max(1e-9);
    note(&format!(
        "{:.1} sessions/sec, {:.0} events/sec, server restart {:.1} ms, {total_resumes} resumes",
        runs.len() as f64 / secs,
        total_events as f64 / secs,
        restart_micros as f64 / 1000.0,
    ));

    let parity = runs.iter().all(SessionRun::ok);
    let all_resumed = runs.iter().all(|r| r.resumes >= 1);
    if !all_resumed {
        note("  a session never resumed — the kill missed it; soak is vacuous");
    }
    for r in runs.iter().filter(|r| !r.ok()) {
        note(&format!(
            "  {}: stream_parity={} final_parity={}",
            r.name, r.stream_ok, r.final_ok
        ));
    }

    if let Some(path) = &report_path {
        match write_report(path, seed, txns, budget_pct, &runs, restart_micros, elapsed) {
            Ok(()) => note(&format!("report written to {path}")),
            Err(e) => {
                eprintln!("serve_soak: cannot write report {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    verdict("E18 serve soak", parity && all_resumed);
}

//! E21 — what cross-node latency provenance costs, and what it shows.
//! PR 10 stamps sampled events with monotonic per-stage timestamps
//! from the client tap through ring handoff, sequencing, batch apply,
//! verdict emission, durable log append, replication publish and the
//! follower's acknowledged fsync, carrying trace ids across the wire
//! so one verdict renders as one flow across both nodes.
//!
//! Two parts, two kinds of claim:
//!
//! 1. **Overhead** (in-process): the E14/E16/E17 workload ingested
//!    with a [`TracePlane`] stamping the stream stages at the default
//!    1-in-32 cadence vs the identical run with no plane, best-of-N
//!    per side. Gates: byte-identical verdict NDJSON, and aggregate
//!    overhead within the 5% budget (half the E17 telemetry budget —
//!    stamping is four ring writes, not a histogram plane).
//! 2. **Provenance** (replicated, real processes): a leader
//!    `adya-serve` replicating to a follower, both with
//!    `--trace-propagate --trace-sample 1`; a tracing client streams a
//!    session and keeps per-verdict RTTs from the `"trace"`-annotated
//!    verdict lines. After the follower acknowledges the full log, the
//!    bench captures `/trace` from both nodes, merges the segments the
//!    way `adya-check trace-merge` does, and reports the p50/p99
//!    per-stage breakdown (leader clock, delta from tap), the
//!    follower's replicate→ack time (follower clock), the full
//!    tap→ack span and the client-observed commit→verdict RTT. Gates:
//!    the client ledger stays byte-identical to an untraced in-process
//!    reference, and at least one sampled verdict carries all eight
//!    stages across both lanes.
//!
//! `--report experiments/trace_provenance.json` persists everything;
//! `--seed/--txns/--serve-txns` make any run reproducible from the
//! report; `--budget-pct <p>` loosens the overhead ceiling for noisy
//! CI runners.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use adya_bench::{
    banner, note, report_header, report_path_from_args, u64_from_args, verdict, Table,
};
use adya_obs::json::JsonWriter;
use adya_obs::trace::{
    merge_segments, parse_segment, trace_id, Stage, TraceSegment, DEFAULT_TRACE_SAMPLE,
};
use adya_obs::TracePlane;
use adya_online::{GcConfig, OnlineChecker, StreamParser};
use adya_workloads::histgen::{random_history, HistGenConfig};
use adya_workloads::ServeClient;

/// Timing repetitions per (size, configuration); best-of is reported.
const REPS: usize = 15;

struct SizeRun {
    txns: usize,
    events: usize,
    on_ns: u128,
    off_ns: u128,
    verdicts_identical: bool,
}

/// Best-of-[`REPS`] ingest time over `h`'s events with a trace plane
/// stamping the stream stages (tap/ring/seq before ingest, apply
/// after, verdict on emission — the `adya-check --stream` path) at the
/// default 1-in-[`DEFAULT_TRACE_SAMPLE`] cadence, or with no plane at
/// all, plus the verdict NDJSON stream for the parity gate.
fn time_ingest(h: &adya_history::History, on: bool) -> (u128, Vec<String>) {
    let mut best = u128::MAX;
    let mut lines = Vec::new();
    for _ in 0..REPS {
        let mut c = OnlineChecker::with_gc(GcConfig::default());
        let plane = on.then(|| TracePlane::new("bench", "leader"));
        let mut cur = Vec::new();
        let start = Instant::now();
        for (seq, e) in h.events().iter().enumerate() {
            let tid = plane.as_ref().and_then(|p| {
                p.sampled(seq as u64).then(|| {
                    let id = trace_id("bench", seq as u64);
                    p.stamp(id, Stage::Tap);
                    p.stamp(id, Stage::Ring);
                    p.stamp(id, Stage::Seq);
                    id
                })
            });
            let v = c.ingest(e);
            if let (Some(p), Some(id)) = (&plane, tid) {
                p.stamp(id, Stage::Apply);
                if v.is_some() {
                    p.stamp(id, Stage::Verdict);
                }
            }
            if let Some(v) = v {
                cur.push(v.to_json());
            }
        }
        cur.push(c.finish().to_json());
        best = best.min(start.elapsed().as_nanos());
        lines = cur;
    }
    (best, lines)
}

fn run_size(txns: usize, seed: u64) -> SizeRun {
    // The E14/E16/E17 workload: conflict-heavy, aborts in the mix,
    // bounded concurrency — the regime where hot-path costs show.
    let cfg = HistGenConfig {
        txns,
        objects: 8,
        ops_per_txn: 4,
        write_prob: 0.5,
        dirty_read_prob: 0.1,
        abort_prob: 0.1,
        shuffle_order_prob: 0.0,
        max_concurrent: 8,
    };
    let h = random_history(&cfg, seed);
    let (on_ns, on_lines) = time_ingest(&h, true);
    let (off_ns, off_lines) = time_ingest(&h, false);
    SizeRun {
        txns,
        events: h.events().len(),
        on_ns,
        off_ns,
        verdicts_identical: on_lines == off_lines,
    }
}

fn overhead_pct(on: u128, off: u128) -> f64 {
    (on as f64 - off as f64) / off.max(1) as f64 * 100.0
}

/// A spawned server; killed on drop so a panicking bench never leaks
/// a listener.
struct Server(Child);

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// `adya-serve` lands in the same target directory as this bench
/// binary, so the sibling path is the default; `ADYA_SERVE_BIN`
/// overrides it for out-of-tree runs.
fn serve_bin() -> PathBuf {
    if let Ok(p) = std::env::var("ADYA_SERVE_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().expect("current_exe");
    p.pop();
    p.push("adya-serve");
    p
}

/// Spawns the server over `data` with `extra` flags, returning the
/// process and the bound address.
fn spawn_server(bin: &std::path::Path, data: &std::path::Path, extra: &[&str]) -> (Server, String) {
    for attempt in 0..50 {
        let mut child = Command::new(bin)
            .arg("--data")
            .arg(data)
            .args([
                "--listen",
                "127.0.0.1:0",
                "--snapshot-every",
                "32",
                "--rotate-events",
                "64",
                "--trace-propagate",
                "--trace-sample",
                "1",
            ])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
        let stderr = child.stderr.take().expect("piped stderr");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read first stderr line");
        if let Some((_, addr)) = line.rsplit_once("listening on ") {
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut reader, &mut std::io::sink());
            });
            return (Server(child), addr.trim().to_string());
        }
        let _ = child.kill();
        let _ = child.wait();
        assert!(attempt < 49, "adya-serve kept failing to bind: {line:?}");
        std::thread::sleep(Duration::from_millis(100));
    }
    unreachable!()
}

fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect service port");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: adya\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut response = String::new();
    s.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Extracts the number after `"key": ` in a flat JSON body.
fn u64_body_field(body: &str, key: &str) -> Option<u64> {
    let at = body.find(&format!("\"{key}\": "))?;
    let digits: String = body[at + key.len() + 4..]
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// A deterministic token stream: interleaved begins, version-correct
/// reads, writes and commits over eight objects (the E19/E20 shape).
fn session_tokens(seed: u64, txns: u64) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut last_writer = [None::<u64>; 8];
    let obj = |i: usize| (b'a' + i as u8) as char;
    let salt = seed as usize;
    for t in 1..=txns {
        let wobj = ((t as usize) * 7 + salt) % 8;
        let robj = ((t as usize) * 3 + salt / 8) % 8;
        tokens.push(format!("b{t}"));
        if let Some(w) = last_writer[robj] {
            tokens.push(format!("r{t}(k{}{w})", obj(robj)));
        }
        tokens.push(format!("w{t}(k{},{t})", obj(wobj)));
        tokens.push(format!("c{t}"));
        last_writer[wobj] = Some(t);
    }
    tokens
}

/// The untraced in-process reference: same tokens, same checker
/// configuration as a server session — (verdict lines, final line).
fn reference(tokens: &[String]) -> (Vec<String>, String) {
    let mut parser = StreamParser::new();
    let mut checker = OnlineChecker::with_gc(GcConfig::default());
    let mut verdicts = Vec::new();
    for tok in tokens {
        let ev = parser.parse_token(tok).expect("reference tokens parse");
        if let Some(v) = checker.ingest(&ev) {
            verdicts.push(v.to_json());
        }
    }
    (verdicts, checker.finish().to_json())
}

/// p50/p99 over a latency sample (nanoseconds).
struct Pct {
    count: u64,
    p50: u64,
    p99: u64,
}

fn percentiles(mut v: Vec<u64>) -> Pct {
    if v.is_empty() {
        return Pct {
            count: 0,
            p50: 0,
            p99: 0,
        };
    }
    v.sort_unstable();
    let at = |p: usize| v[(v.len() * p / 100).min(v.len() - 1)];
    Pct {
        count: v.len() as u64,
        p50: at(50),
        p99: at(99),
    }
}

/// Per-trace stage timestamps from one node's segment.
fn by_trace(seg: &TraceSegment) -> BTreeMap<u64, BTreeMap<Stage, u64>> {
    let mut out: BTreeMap<u64, BTreeMap<Stage, u64>> = BTreeMap::new();
    for s in &seg.stamps {
        out.entry(s.trace).or_default().insert(s.stage, s.t_ns);
    }
    out
}

/// The replicated run's findings.
struct Provenance {
    txns: u64,
    client_verdicts: u64,
    serve_parity: bool,
    sampled_traces: u64,
    complete_traces: u64,
    /// Delta from the leader's tap stamp, leader clock, per stage.
    leader_stages: Vec<(Stage, Pct)>,
    follower_repl_to_ack: Pct,
    tap_to_ack: Pct,
    client_rtt: Pct,
    merged_ok: bool,
}

fn run_replicated(seed: u64, txns: u64) -> Provenance {
    let bin = serve_bin();
    assert!(
        bin.exists(),
        "adya-serve binary not found at {} — build it first (cargo build --release) \
         or set ADYA_SERVE_BIN",
        bin.display()
    );
    let base = std::env::temp_dir().join(format!("adya-trace-provenance-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let (follower, faddr) = spawn_server(
        &bin,
        &base.join("follower"),
        &["--follower", "--node", "follower"],
    );
    let (leader, laddr) = spawn_server(
        &bin,
        &base.join("leader"),
        &["--replicate-to", &faddr, "--node", "leader"],
    );
    note(&format!(
        "leader pid {} on {laddr} -> follower pid {} on {faddr}, tracing 1-in-1",
        leader.0.id(),
        follower.0.id(),
    ));

    let tokens = session_tokens(seed, txns);
    let mut client = ServeClient::hello_traced(&laddr, "e21", true).expect("hello");
    for tok in &tokens {
        client.send_token(tok).expect("send token");
    }
    let (want_verdicts, want_final) = reference(&tokens);
    let serve_stream_ok = client.verdicts() == &want_verdicts[..];
    let client_verdicts = client.verdicts().len() as u64;
    let rtts: Vec<u64> = client.trace_rtts().iter().map(|&(_, ns)| ns).collect();
    let fin = client.close().expect("close");
    let serve_parity = serve_stream_ok && fin == want_final;

    // Wait for the follower to acknowledge the whole log so every
    // in-flight trace gets its replicate/ack stamps.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, health) = http_get(&laddr, "/health");
        if u64_body_field(&health, "max_lag_records") == Some(0) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "follower never caught up: {health}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let (ls, leader_trace) = http_get(&laddr, "/trace");
    let (fs, follower_trace) = http_get(&faddr, "/trace");
    assert_eq!((ls, fs), (200, 200), "/trace must serve on both nodes");
    drop(leader);
    drop(follower);
    let _ = std::fs::remove_dir_all(&base);

    let lseg = parse_segment(&leader_trace).expect("leader /trace parses");
    let fseg = parse_segment(&follower_trace).expect("follower /trace parses");
    let merged = merge_segments(&[lseg.clone(), fseg.clone()]);
    let merged_ok = merged.contains("\"clock_offsets\"") && merged.contains("\"traces\"");

    let lt = by_trace(&lseg);
    let ft = by_trace(&fseg);
    let mut leader_deltas: BTreeMap<Stage, Vec<u64>> = BTreeMap::new();
    let mut repl_ack = Vec::new();
    let mut tap_ack = Vec::new();
    let mut complete = 0u64;
    for (id, stages) in &lt {
        let Some(&tap) = stages.get(&Stage::Tap) else {
            continue;
        };
        for (&stage, &t) in stages {
            if stage != Stage::Tap {
                leader_deltas
                    .entry(stage)
                    .or_default()
                    .push(t.saturating_sub(tap));
            }
        }
        if let Some(&ack) = stages.get(&Stage::Ack) {
            tap_ack.push(ack.saturating_sub(tap));
        }
        let follower_stages = ft.get(id);
        if let Some(fstages) = follower_stages {
            if let (Some(&r), Some(&a)) = (fstages.get(&Stage::Replicate), fstages.get(&Stage::Ack))
            {
                repl_ack.push(a.saturating_sub(r));
            }
        }
        let both: std::collections::BTreeSet<Stage> = stages
            .keys()
            .chain(follower_stages.into_iter().flat_map(BTreeMap::keys))
            .copied()
            .collect();
        if Stage::ALL.iter().all(|s| both.contains(s)) {
            complete += 1;
        }
    }

    Provenance {
        txns,
        client_verdicts,
        serve_parity,
        sampled_traces: lt.len() as u64,
        complete_traces: complete,
        leader_stages: Stage::ALL
            .into_iter()
            .filter(|s| *s != Stage::Tap)
            .map(|s| (s, percentiles(leader_deltas.remove(&s).unwrap_or_default())))
            .collect(),
        follower_repl_to_ack: percentiles(repl_ack),
        tap_to_ack: percentiles(tap_ack),
        client_rtt: percentiles(rtts),
        merged_ok,
    }
}

#[allow(clippy::too_many_arguments)]
fn write_report(
    path: &str,
    seed: u64,
    budget_pct: u64,
    runs: &[SizeRun],
    prov: &Provenance,
) -> std::io::Result<()> {
    let mut w = JsonWriter::new();
    report_header(
        &mut w,
        "trace_provenance",
        seed,
        &[
            ("reps", REPS as u64),
            ("sample_every", DEFAULT_TRACE_SAMPLE),
            ("budget_pct", budget_pct),
        ],
    );
    w.open_array(Some("runs"));
    for r in runs {
        w.open_object(None);
        w.u64_field("txns", r.txns as u64);
        w.u64_field("events", r.events as u64);
        w.u64_field("trace_on_ns", r.on_ns as u64);
        w.u64_field("trace_off_ns", r.off_ns as u64);
        // Basis-point overhead keeps the minimal writer integral.
        let bp = ((r.on_ns as f64 - r.off_ns as f64) / r.off_ns.max(1) as f64 * 10_000.0) as i64;
        w.u64_field("overhead_bp", bp.max(0) as u64);
        w.bool_field("verdicts_identical", r.verdicts_identical);
        w.close_object();
    }
    w.close_array();
    let on: u128 = runs.iter().map(|r| r.on_ns).sum();
    let off: u128 = runs.iter().map(|r| r.off_ns).sum();
    w.u64_field("total_on_ns", on as u64);
    w.u64_field("total_off_ns", off as u64);
    w.u64_field(
        "total_overhead_bp",
        (overhead_pct(on, off) * 100.0).max(0.0) as u64,
    );
    w.bool_field(
        "within_budget",
        overhead_pct(on, off) <= budget_pct as f64 && runs.iter().all(|r| r.verdicts_identical),
    );
    w.open_object(Some("replicated"));
    w.u64_field("txns", prov.txns);
    w.u64_field("client_verdicts", prov.client_verdicts);
    w.bool_field("serve_parity", prov.serve_parity);
    w.u64_field("sampled_traces", prov.sampled_traces);
    w.u64_field("complete_traces", prov.complete_traces);
    w.bool_field("all_stages_observed", prov.complete_traces > 0);
    w.bool_field("merged_ok", prov.merged_ok);
    // Leader-clock latency from the tap stamp to each later stage.
    w.open_array(Some("stages_from_tap"));
    for (stage, p) in &prov.leader_stages {
        w.open_object(None);
        w.str_field("stage", stage.as_str());
        w.u64_field("count", p.count);
        w.u64_field("p50_ns", p.p50);
        w.u64_field("p99_ns", p.p99);
        w.close_object();
    }
    w.close_array();
    w.u64_field(
        "follower_replicate_to_ack_p50_ns",
        prov.follower_repl_to_ack.p50,
    );
    w.u64_field(
        "follower_replicate_to_ack_p99_ns",
        prov.follower_repl_to_ack.p99,
    );
    w.u64_field("tap_to_ack_p50_ns", prov.tap_to_ack.p50);
    w.u64_field("tap_to_ack_p99_ns", prov.tap_to_ack.p99);
    w.u64_field("client_rtt_p50_ns", prov.client_rtt.p50);
    w.u64_field("client_rtt_p99_ns", prov.client_rtt.p99);
    w.close_object();
    w.close_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(path, json)
}

fn main() {
    banner("Trace provenance: per-verdict latency from client tap to replicated ack");
    let report_path = report_path_from_args();
    let seed = u64_from_args("seed", 42);
    // Smoke mode for CI: `--txns N` runs one small overhead size
    // instead of the full sweep.
    let smoke_txns = u64_from_args("txns", 0);
    let serve_txns = u64_from_args("serve-txns", 120);
    // The claim is ≤5%; CI smoke passes a looser regression ceiling
    // because shared runners are noisy — E16/E17 do the same.
    let budget_pct = u64_from_args("budget-pct", 5);

    let sizes: Vec<usize> = if smoke_txns > 0 {
        vec![smoke_txns as usize]
    } else {
        vec![128, 256, 512, 1024]
    };
    let runs: Vec<SizeRun> = sizes.iter().map(|&n| run_size(n, seed)).collect();

    let mut table = Table::new(&[
        "txns",
        "events",
        "trace on µs",
        "trace off µs",
        "overhead",
        "verdicts identical",
    ]);
    for r in &runs {
        table.row(&[
            r.txns.to_string(),
            r.events.to_string(),
            (r.on_ns / 1000).to_string(),
            (r.off_ns / 1000).to_string(),
            format!("{:+.1}%", overhead_pct(r.on_ns, r.off_ns)),
            if r.verdicts_identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    let on: u128 = runs.iter().map(|r| r.on_ns).sum();
    let off: u128 = runs.iter().map(|r| r.off_ns).sum();
    let agg = overhead_pct(on, off);
    note(&format!(
        "aggregate ingest overhead with 1-in-{DEFAULT_TRACE_SAMPLE} stage stamping: {agg:+.1}%"
    ));

    let prov = run_replicated(seed, serve_txns);
    let mut stages = Table::new(&["stage", "count", "p50 µs", "p99 µs"]);
    for (stage, p) in &prov.leader_stages {
        stages.row(&[
            format!("tap→{}", stage.as_str()),
            p.count.to_string(),
            format!("{:.1}", p.p50 as f64 / 1000.0),
            format!("{:.1}", p.p99 as f64 / 1000.0),
        ]);
    }
    stages.row(&[
        "replicate→ack (follower)".to_string(),
        prov.follower_repl_to_ack.count.to_string(),
        format!("{:.1}", prov.follower_repl_to_ack.p50 as f64 / 1000.0),
        format!("{:.1}", prov.follower_repl_to_ack.p99 as f64 / 1000.0),
    ]);
    stages.row(&[
        "client commit→verdict".to_string(),
        prov.client_rtt.count.to_string(),
        format!("{:.1}", prov.client_rtt.p50 as f64 / 1000.0),
        format!("{:.1}", prov.client_rtt.p99 as f64 / 1000.0),
    ]);
    println!("{}", stages.render());
    note(&format!(
        "{} sampled traces, {} complete across both lanes; tap→ack p50 {:.1} µs / p99 {:.1} µs",
        prov.sampled_traces,
        prov.complete_traces,
        prov.tap_to_ack.p50 as f64 / 1000.0,
        prov.tap_to_ack.p99 as f64 / 1000.0,
    ));

    let identical = runs.iter().all(|r| r.verdicts_identical);
    let within = agg <= budget_pct as f64;
    if !identical {
        note("  stamping altered a verdict stream — provenance must observe, never alter");
    }
    if !within {
        note(&format!(
            "  aggregate overhead {agg:+.1}% exceeds the {budget_pct}% budget"
        ));
    }
    if !prov.serve_parity {
        note("  the traced client ledger diverged from the untraced reference");
    }
    if prov.complete_traces == 0 {
        note("  no sampled verdict carried all eight stages across both lanes");
    }

    if let Some(path) = &report_path {
        match write_report(path, seed, budget_pct, &runs, &prov) {
            Ok(()) => note(&format!("report written to {path}")),
            Err(e) => {
                eprintln!("trace_provenance: cannot write report {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    verdict(
        "E21 trace provenance",
        identical && within && prov.serve_parity && prov.merged_ok && prov.complete_traces > 0,
    );
}

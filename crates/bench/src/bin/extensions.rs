//! E13 — the extension levels the paper points to (§1/§6): Snapshot
//! Isolation, Cursor Stability, PL-2+ and PL-MAV, each separated from
//! its neighbours by a canonical history, plus MVTO's version-order
//! flexibility (§4.2) demonstrated on a live engine.

use adya_bench::{banner, mark, verdict, Table};
use adya_core::{classify, IsolationLevel};
use adya_engine::{Engine, Key, LockConfig, LockingEngine, MvtoEngine, Value};
use adya_history::{parse_history, VersionId};

fn main() {
    banner("Extension levels: separations the thesis lattice predicts");
    let mut ok = true;

    // Each row: (name, history, level that admits, level that rejects)
    let separations = [
        (
            "write skew",
            "b1 b2 r1(xinit,5) r1(yinit,5) r2(xinit,5) r2(yinit,5) w1(x,1) w2(y,1) c1 c2",
            IsolationLevel::PLSI,
            IsolationLevel::PL299,
        ),
        (
            "read skew H2 (old-then-new)",
            "r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9) c2",
            IsolationLevel::PLMAV,
            IsolationLevel::PL2Plus,
        ),
        (
            "inconsistent read H1 (new-then-old)",
            "r1(xinit,5) w1(x,1) r2(x1,1) r2(yinit,5) c2 r1(yinit,5) w1(y,9) c1",
            IsolationLevel::PLCS,
            IsolationLevel::PLMAV,
        ),
        (
            "lost update (plain reads)",
            "r1(xinit,0) r2(xinit,0) w1(x,1) c1 w2(x,2) c2",
            IsolationLevel::PLCS,
            IsolationLevel::PL2Plus,
        ),
        (
            "lost update (cursor reads)",
            "rc1(xinit,0) rc2(xinit,0) w1(x,1) c1 w2(x,2) c2",
            IsolationLevel::PL2,
            IsolationLevel::PLCS,
        ),
        (
            "dirty reads in commit order (H1')",
            "r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) r2(x1,1) r2(y1,9) c1 c2",
            IsolationLevel::PL3,
            IsolationLevel::PLSI,
        ),
    ];

    let mut table = Table::new(&["history", "admitted by", "rejected by", "holds"]);
    for (name, text, admits, rejects) in separations {
        let h = parse_history(text).expect("well-formed");
        let r = classify(&h);
        let holds = r.satisfies(admits) && !r.satisfies(rejects);
        ok &= holds;
        table.row(&[
            name.to_string(),
            admits.to_string(),
            rejects.to_string(),
            mark(holds).to_string(),
        ]);
    }
    println!("{}", table.render());

    // Cursor Stability end-to-end: cursor locks serialize the
    // read-modify-write pair on the real engine.
    let e = LockingEngine::new(LockConfig::read_committed());
    let tbl = e.catalog().table("counter");
    let t0 = e.begin();
    e.write(t0, tbl, Key(1), Value::Int(0)).unwrap();
    e.commit(t0).unwrap();
    let t1 = e.begin();
    let v = e.cursor_read(t1, tbl, Key(1)).unwrap().unwrap();
    let t2 = e.begin();
    let blocked = e.write(t2, tbl, Key(1), Value::Int(99)).is_err();
    e.write(t1, tbl, Key(1), Value::Int(v.as_int().unwrap() + 1))
        .unwrap();
    e.commit(t1).unwrap();
    let _ = e.abort(t2);
    let h = e.finalize();
    let cs_ok = blocked && classify(&h).satisfies(IsolationLevel::PLCS);
    println!(
        "cursor-stability engine: concurrent writer blocked = {blocked}, history PL-CS = {}",
        classify(&h).satisfies(IsolationLevel::PLCS)
    );
    ok &= cs_ok;

    // MVTO: version order beats commit order (the §4.2 flexibility).
    let e = MvtoEngine::new();
    let tbl = e.catalog().table("acct");
    let t1 = e.begin();
    let t2 = e.begin();
    e.write(t1, tbl, Key(1), Value::Int(1)).unwrap();
    e.write(t2, tbl, Key(1), Value::Int(2)).unwrap();
    e.commit(t2).unwrap();
    e.commit(t1).unwrap();
    let h = e.finalize();
    let x = h.object_by_name("table0#1").expect("row exists");
    let ts_order = h.version_precedes(x, VersionId::new(t1, 1), VersionId::new(t2, 1));
    let commit_reversed = h.txn(t1).unwrap().end_event > h.txn(t2).unwrap().end_event;
    let pl3 = classify(&h).satisfies(IsolationLevel::PL3);
    println!(
        "MVTO: version order x(T{}) << x(T{}) with reversed commit order = {}, PL-3 = {pl3}",
        t1.0,
        t2.0,
        ts_order && commit_reversed
    );
    ok &= ts_order && commit_reversed && pl3;

    verdict("extensions", ok);
}

//! Figure 2 — "Definitions of direct conflicts between transactions":
//! regenerates the notation table from the live implementation and
//! demonstrates each conflict kind on a minimal history.

use adya_bench::{banner, verdict, Table};
use adya_core::{direct_conflicts, DepKind};
use adya_history::parse_history;

fn main() {
    banner("Figure 2: direct conflicts between transactions");
    let mut table = Table::new(&["name", "description (Tj conflicts on Ti)", "notation"]);
    table.row(&[
        "Directly write-depends",
        "Ti installs xi and Tj installs x's next version",
        &format!("Ti -{}-> Tj", DepKind::WriteDep),
    ]);
    table.row(&[
        "Directly read-depends",
        "Ti installs xi, Tj reads xi / Ti changes the matches of Tj's predicate read",
        &format!("Ti -{}/{}-> Tj", DepKind::ItemReadDep, DepKind::PredReadDep),
    ]);
    table.row(&[
        "Directly anti-depends",
        "Ti reads xh and Tj installs x's next version / Tj overwrites Ti's predicate read",
        &format!("Ti -{}/{}-> Tj", DepKind::ItemAntiDep, DepKind::PredAntiDep),
    ]);
    println!("{}", table.render());

    // Demonstrations on minimal histories.
    let mut ok = true;
    let demos: [(&str, &str, DepKind); 3] = [
        ("ww", "w1(x,1) c1 w2(x,2) c2", DepKind::WriteDep),
        ("wr", "w1(x,1) c1 r2(x1) c2", DepKind::ItemReadDep),
        ("rw", "r1(xinit,0) w2(x,9) c2 c1", DepKind::ItemAntiDep),
    ];
    let mut demo_table = Table::new(&["kind", "history", "derived edge"]);
    for (name, text, expect) in demos {
        let h = parse_history(text).expect("demo history");
        let cs = direct_conflicts(&h);
        let found = cs
            .iter()
            .find(|c| c.kind == expect)
            .map(|c| format!("{} -{}-> {}", c.from, c.kind, c.to));
        ok &= found.is_some();
        demo_table.row(&[name, text, found.as_deref().unwrap_or("MISSING")]);
    }
    println!("{}", demo_table.render());
    verdict("figure2", ok);
}

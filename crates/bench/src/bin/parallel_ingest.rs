//! E19 — what the staged ingest pipeline buys over the mutex-guarded
//! checker as producers multiply. PR 8 replaced "every producer locks
//! the checker and pays graph maintenance inline" with per-producer
//! SPSC rings, a sequencing stage, and batched Pearce–Kelly
//! application; this bench drives both shapes with 1/2/4/8 producer
//! threads over the same recorded event stream.
//!
//! Method: generate one conflict-heavy random history, split its
//! events round-robin across N producer threads, and time (a) the
//! *mutex* shape — threads take turns ingesting per event through one
//! `Mutex<OnlineChecker>`, which is what the pre-pipeline tap amounted
//! to: recorded order enforced by the lock, checker work serialized on
//! producer threads — and (b) the *pipelined* shape — each producer
//! only pushes its stride into its ring, one application thread drains
//! the sequencer and applies batches. Best-of-[`REPS`] per cell.
//!
//! Gates: every configuration's verdict NDJSON must be byte-identical
//! to plain sequential ingest (the determinism contract), and the
//! scaling gate adapts to the machine — on ≥4 cores, 4 pipelined
//! producers must clear 3× the single-producer throughput; on smaller
//! machines (CI runners here expose one core, where *no* software can
//! scale) the gate instead requires that adding producers does not
//! degrade the pipeline below `--budget-pct`% of its single-producer
//! throughput and that the pipeline beats the mutex shape at the same
//! producer count. The report records `cores` so a reader can tell
//! which gate a committed run enforced.

use std::sync::Mutex;
use std::time::Instant;

use adya_bench::{
    banner, note, report_header, report_path_from_args, u64_from_args, verdict, Table,
};
use adya_history::Event;
use adya_obs::json::JsonWriter;
use adya_online::{EventPipeline, OnlineChecker, PipelineConfig};
use adya_workloads::histgen::{random_history, HistGenConfig};

/// Timing repetitions per (producers, shape); best-of is reported.
const REPS: usize = 3;

/// Producer counts swept, per the E19 protocol.
const PRODUCERS: [usize; 4] = [1, 2, 4, 8];

struct Cell {
    producers: usize,
    pipelined_ns: u128,
    mutex_ns: u128,
    identical: bool,
}

/// Plain sequential ingest: the reference verdict stream.
fn sequential_verdicts(events: &[Event]) -> Vec<String> {
    let mut c = OnlineChecker::new();
    let mut out = Vec::new();
    for e in events {
        if let Some(v) = c.ingest(e) {
            out.push(v.to_json());
        }
    }
    out.push(c.finish().to_json());
    out
}

/// The pipelined shape: `n` producers each push their round-robin
/// stride of the stream into their own ring; the calling thread is the
/// application stage.
fn time_pipelined(events: &[Event], n: usize) -> (u128, Vec<String>) {
    let mut best = u128::MAX;
    let mut lines = Vec::new();
    for _ in 0..REPS {
        let (producers, pipe) = EventPipeline::manual(PipelineConfig {
            rings: n,
            ..PipelineConfig::default()
        });
        let mut checker = OnlineChecker::new();
        let mut cur = Vec::new();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for (j, p) in producers.into_iter().enumerate() {
                scope.spawn(move || {
                    let mut s = j;
                    while s < events.len() {
                        p.push(s as u64, events[s].clone());
                        s += n;
                    }
                    // p drops here; once every producer is done the
                    // rings close and the sequencer drains out.
                });
            }
            pipe.run(&mut checker, |v| cur.push(v.to_json()));
        });
        cur.push(checker.finish().to_json());
        best = best.min(start.elapsed().as_nanos());
        lines = cur;
    }
    (best, lines)
}

/// The pre-pipeline shape: `n` threads share one mutex-guarded checker
/// and take turns ingesting per event, preserving recorded order —
/// checker graph maintenance runs on producer threads, under the lock.
fn time_mutex(events: &[Event], n: usize) -> (u128, Vec<String>) {
    let mut best = u128::MAX;
    let mut lines = Vec::new();
    for _ in 0..REPS {
        let shared = Mutex::new((0usize, OnlineChecker::new(), Vec::new()));
        let start = Instant::now();
        std::thread::scope(|scope| {
            for j in 0..n {
                let shared = &shared;
                scope.spawn(move || loop {
                    let mut g = shared.lock().unwrap();
                    let next = g.0;
                    if next >= events.len() {
                        break;
                    }
                    if next % n == j {
                        if let Some(v) = g.1.ingest(&events[next]) {
                            let line = v.to_json();
                            g.2.push(line);
                        }
                        g.0 += 1;
                    } else {
                        drop(g);
                        std::thread::yield_now();
                    }
                });
            }
        });
        let (_, mut checker, mut cur) = shared.into_inner().unwrap();
        cur.push(checker.finish().to_json());
        best = best.min(start.elapsed().as_nanos());
        lines = cur;
    }
    (best, lines)
}

fn throughput(events: usize, ns: u128) -> f64 {
    events as f64 / (ns as f64 / 1e9)
}

#[allow(clippy::too_many_arguments)]
fn write_report(
    path: &str,
    seed: u64,
    events: usize,
    cells: &[Cell],
    scaling_enforced: bool,
    scaling_ok: bool,
    passed: bool,
) -> std::io::Result<()> {
    let base = cells[0].pipelined_ns;
    let mut w = JsonWriter::new();
    report_header(
        &mut w,
        "parallel_ingest",
        seed,
        &[("reps", REPS as u64), ("events", events as u64)],
    );
    w.open_array(Some("runs"));
    for c in cells {
        w.open_object(None);
        w.u64_field("producers", c.producers as u64);
        w.u64_field("pipelined_ns", c.pipelined_ns as u64);
        w.u64_field("mutex_ns", c.mutex_ns as u64);
        // Speedup over the single-producer pipeline, in basis points,
        // keeping the minimal writer integral.
        w.u64_field(
            "speedup_vs_one_producer_bp",
            (base as f64 / c.pipelined_ns.max(1) as f64 * 10_000.0) as u64,
        );
        w.bool_field("verdicts_identical", c.identical);
        w.close_object();
    }
    w.close_array();
    w.bool_field("scaling_gate_enforced", scaling_enforced);
    w.bool_field("scaling_ok", scaling_ok);
    w.bool_field("passed", passed);
    w.close_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(path, json)
}

fn main() {
    banner("Parallel ingest: staged pipeline vs mutex-guarded checker, 1/2/4/8 producers");
    let report_path = report_path_from_args();
    let seed = u64_from_args("seed", 42);
    let smoke_txns = u64_from_args("txns", 0);
    // On <4-core machines this is the no-degradation floor: pipelined
    // throughput at 4 producers must stay above this percentage of the
    // single-producer run. CI smoke loosens it for noisy runners.
    let budget_pct = u64_from_args("budget-pct", 75) as f64;

    let txns = if smoke_txns > 0 {
        smoke_txns as usize
    } else {
        768
    };
    let h = random_history(
        &HistGenConfig {
            txns,
            objects: 8,
            ops_per_txn: 4,
            write_prob: 0.5,
            dirty_read_prob: 0.1,
            abort_prob: 0.1,
            shuffle_order_prob: 0.0,
            max_concurrent: 8,
        },
        seed,
    );
    let events = h.events();
    let reference = sequential_verdicts(events);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let cells: Vec<Cell> = PRODUCERS
        .iter()
        .map(|&n| {
            let (pipelined_ns, pipe_lines) = time_pipelined(events, n);
            let (mutex_ns, mutex_lines) = time_mutex(events, n);
            Cell {
                producers: n,
                pipelined_ns,
                mutex_ns,
                identical: pipe_lines == reference && mutex_lines == reference,
            }
        })
        .collect();

    let mut table = Table::new(&[
        "producers",
        "pipelined ev/s",
        "mutex ev/s",
        "vs 1-producer",
        "verdicts identical",
    ]);
    let base = throughput(events.len(), cells[0].pipelined_ns);
    for c in &cells {
        let tp = throughput(events.len(), c.pipelined_ns);
        table.row(&[
            c.producers.to_string(),
            format!("{:.0}", tp),
            format!("{:.0}", throughput(events.len(), c.mutex_ns)),
            format!("{:.2}x", tp / base),
            if c.identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    let identical = cells.iter().all(|c| c.identical);
    let at4 = cells.iter().find(|c| c.producers == 4).unwrap();
    let ratio4 = throughput(events.len(), at4.pipelined_ns) / base;
    let scaling_enforced = cores >= 4;
    let scaling_ok = if scaling_enforced {
        ratio4 >= 3.0
    } else {
        // One- or two-core machine: parallel speedup is physically
        // unavailable, so hold the line on "adding producers costs
        // ~nothing and the pipeline still beats the mutex shape".
        ratio4 >= budget_pct / 100.0 && at4.pipelined_ns <= at4.mutex_ns
    };
    note(&format!(
        "cores: {cores}; 4-producer pipeline at {ratio4:.2}x of 1-producer ({} gate)",
        if scaling_enforced {
            "3x scaling"
        } else {
            "no-degradation"
        }
    ));

    let passed = identical && scaling_ok;
    if let Some(path) = &report_path {
        match write_report(
            path,
            seed,
            events.len(),
            &cells,
            scaling_enforced,
            scaling_ok,
            passed,
        ) {
            Ok(()) => note(&format!("report written to {path}")),
            Err(e) => {
                eprintln!("parallel_ingest: cannot write report {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    verdict("E19 parallel ingest", passed);
}

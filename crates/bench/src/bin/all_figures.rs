//! Runs every figure/section reproduction binary in sequence — the
//! one-shot CI entry point. Each child asserts the paper's claims and
//! exits non-zero on any mismatch.

use std::process::{Command, ExitCode};

const BINARIES: &[&str] = &[
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "section3",
    "section4",
    "mixing",
    "permissiveness",
    "perf_sweep",
    "extensions",
    "lattice",
];

fn main() -> ExitCode {
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for name in BINARIES {
        let path = dir.join(name);
        println!("\n──────── running {name} ────────");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name}: exited with {s}");
                failed.push(*name);
            }
            Err(e) => {
                eprintln!(
                    "{name}: cannot run {path:?}: {e}\n(build all bins first: \
                     `cargo build --release -p adya-bench --bins`)"
                );
                failed.push(*name);
            }
        }
    }
    println!("\n════════ summary ════════");
    if failed.is_empty() {
        println!("all {} paper artifacts reproduce", BINARIES.len());
        ExitCode::SUCCESS
    } else {
        println!("FAILED: {failed:?}");
        ExitCode::FAILURE
    }
}

//! Runs every figure/section reproduction binary in sequence — the
//! one-shot CI entry point. Each child asserts the paper's claims and
//! exits non-zero on any mismatch.
//!
//! With `--report <path>`, writes a JSON summary (per-binary status
//! and wall time) to `<path>` and forwards a derived
//! `<path stem>.perf_sweep.json` to the `perf_sweep` child so its
//! detailed metrics report lands next to the summary.

use std::process::{Command, ExitCode};
use std::time::Instant;

use adya_obs::json::JsonWriter;

const BINARIES: &[&str] = &[
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "section3",
    "section4",
    "mixing",
    "permissiveness",
    "perf_sweep",
    "extensions",
    "lattice",
];

/// `out.json` → `out.perf_sweep.json`; extensionless paths just get
/// the suffix appended.
fn child_report_path(report: &str, child: &str) -> String {
    match report.rsplit_once('.') {
        Some((stem, ext)) if !stem.is_empty() => format!("{stem}.{child}.{ext}"),
        _ => format!("{report}.{child}.json"),
    }
}

struct BinRun {
    name: &'static str,
    ok: bool,
    millis: u64,
}

fn write_summary(path: &str, runs: &[BinRun], perf_sweep_report: &str) -> std::io::Result<()> {
    let mut w = JsonWriter::new();
    w.open_object(None);
    w.str_field("report", "all_figures");
    w.u64_field("binaries_total", runs.len() as u64);
    w.u64_field(
        "binaries_failed",
        runs.iter().filter(|r| !r.ok).count() as u64,
    );
    w.str_field("perf_sweep_report", perf_sweep_report);
    w.open_array(Some("binaries"));
    for r in runs {
        w.open_object(None);
        w.str_field("name", r.name);
        w.bool_field("ok", r.ok);
        w.u64_field("millis", r.millis);
        w.close_object();
    }
    w.close_array();
    w.close_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(path, json)
}

fn main() -> ExitCode {
    let report_path = adya_bench::report_path_from_args();
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut runs = Vec::new();
    let mut failed = Vec::new();
    for name in BINARIES {
        let path = dir.join(name);
        eprintln!("\n──────── running {name} ────────");
        let mut cmd = Command::new(&path);
        if *name == "perf_sweep" {
            if let Some(report) = &report_path {
                cmd.args(["--report", &child_report_path(report, "perf_sweep")]);
            }
        }
        let start = Instant::now();
        let status = cmd.status();
        let millis = start.elapsed().as_millis() as u64;
        let ok = match status {
            Ok(s) if s.success() => true,
            Ok(s) => {
                eprintln!("{name}: exited with {s}");
                failed.push(*name);
                false
            }
            Err(e) => {
                eprintln!(
                    "{name}: cannot run {path:?}: {e}\n(build all bins first: \
                     `cargo build --release -p adya-bench --bins`)"
                );
                failed.push(*name);
                false
            }
        };
        runs.push(BinRun { name, ok, millis });
    }
    if let Some(report) = &report_path {
        let sweep = child_report_path(report, "perf_sweep");
        if let Err(e) = write_summary(report, &runs, &sweep) {
            eprintln!("all_figures: cannot write report {report}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("summary report written to {report}");
    }
    println!("\n════════ summary ════════");
    if failed.is_empty() {
        println!("all {} paper artifacts reproduce", BINARIES.len());
        ExitCode::SUCCESS
    } else {
        println!("FAILED: {failed:?}");
        ExitCode::FAILURE
    }
}

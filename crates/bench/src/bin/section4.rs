//! §4 — the model's worked examples: H_write_order (version order vs
//! commit order), H_pred_read (minimal predicate conflicts), H_insert
//! (predicate-based insert) and H_pred_update (predicate modification
//! at PL-1).

use adya_bench::{banner, mark, verdict, Table};
use adya_core::{classify, paper, DepKind, Dsg, IsolationLevel};
use adya_history::{TxnId, VersionId};

fn main() {
    banner("Section 4: model examples");
    let mut table = Table::new(&["history", "claim", "holds"]);
    let mut all = true;
    let mut check = |table: &mut Table, name: &str, claim: &str, holds: bool| {
        table.row(&[name, claim, mark(holds)]);
        all &= holds;
    };

    // H_write_order: version order may contradict commit order.
    let h = paper::h_write_order();
    println!("H_write_order = {h}\n");
    let x = h.object_by_name("x").expect("x exists");
    let before = h.version_precedes(x, VersionId::new(TxnId(2), 1), VersionId::new(TxnId(1), 1));
    check(
        &mut table,
        "H_write_order",
        "x2 << x1 although c1 precedes c2",
        before,
    );
    check(
        &mut table,
        "H_write_order",
        "committed projection is PL-3 (T2 serialized before T1)",
        classify(&h).satisfies(IsolationLevel::PL3),
    );

    // H_pred_read: predicate-read-dependency from the latest
    // match-changing transaction only.
    let h = paper::h_pred_read();
    println!("H_pred_read = {h}\n");
    let dsg = Dsg::build(&h);
    check(
        &mut table,
        "H_pred_read",
        "T1 -wr(pred)-> T3 (T1 moved x out of Sales)",
        dsg.has_edge(TxnId(1), TxnId(3), DepKind::PredReadDep),
    );
    check(
        &mut table,
        "H_pred_read",
        "no predicate edge from T2 (irrelevant phone update)",
        !dsg.has_edge(TxnId(2), TxnId(3), DepKind::PredReadDep)
            && !dsg.has_edge(TxnId(3), TxnId(2), DepKind::PredAntiDep),
    );
    check(
        &mut table,
        "H_pred_read",
        "serializable in the order T0, T1, T3, T2",
        dsg.is_valid_serial_order(&[TxnId(0), TxnId(1), TxnId(3), TxnId(2)]),
    );

    // H_insert: the BONUS insert example.
    let h = paper::h_insert();
    println!("H_insert = {h}\n");
    let dsg = Dsg::build(&h);
    check(
        &mut table,
        "H_insert",
        "T1 predicate- and item-read-depends on T0; history serializable",
        dsg.has_edge(TxnId(0), TxnId(1), DepKind::PredReadDep)
            && dsg.has_edge(TxnId(0), TxnId(1), DepKind::ItemReadDep)
            && classify(&h).satisfies(IsolationLevel::PL3),
    );

    // H_pred_update: weak predicate guarantees at PL-1.
    let h = paper::h_pred_update();
    println!("H_pred_update = {h}\n");
    let r = classify(&h);
    check(
        &mut table,
        "H_pred_update",
        "interleaved predicate update allowed at PL-1",
        r.satisfies(IsolationLevel::PL1),
    );
    check(
        &mut table,
        "H_pred_update",
        "but not serializable (PL-3 rejects)",
        !r.satisfies(IsolationLevel::PL3),
    );

    println!("{}", table.render());
    verdict("section4", all);
}

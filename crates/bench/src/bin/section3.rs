//! §3 — "Restrictiveness of the Preventative Approach": H1 and H2 are
//! bad (both definitions reject them at the serializable level), but
//! H1′ and H2′ are perfectly serializable histories that the
//! preventative phenomena P1/P2 reject anyway — the paper's core
//! permissiveness claim, mechanically verified.

use adya_bench::{banner, mark, verdict, Table};
use adya_core::{classify, paper, IsolationLevel};
use adya_prevent::{check_locking, detect_all_p, LockingLevel};

fn main() {
    banner("Section 3: preventative (P) vs generalized (G) at the serializable level");
    let histories = [
        ("H1 (inconsistent read)", paper::h1()),
        ("H2 (read skew)", paper::h2()),
        ("H1' (dirty reads, right order)", paper::h1_prime()),
        ("H2' (old reads, commits first)", paper::h2_prime()),
    ];

    let mut table = Table::new(&[
        "history",
        "P-phenomena",
        "preventative SERIALIZABLE",
        "generalized PL-3",
    ]);
    let mut rows = Vec::new();
    for (name, h) in &histories {
        let p = check_locking(h, LockingLevel::Serializable).ok();
        let g = classify(h).satisfies(IsolationLevel::PL3);
        let kinds: Vec<String> = detect_all_p(h).iter().map(|x| x.kind.to_string()).collect();
        table.row(&[
            name.to_string(),
            if kinds.is_empty() {
                "none".to_string()
            } else {
                kinds.join(",")
            },
            if p { "admits" } else { "rejects" }.to_string(),
            if g { "admits" } else { "rejects" }.to_string(),
        ]);
        rows.push((p, g));
    }
    println!("{}", table.render());

    let ok = rows[0] == (false, false)   // H1: both reject
        && rows[1] == (false, false)     // H2: both reject
        && rows[2] == (false, true)      // H1': P over-rejects
        && rows[3] == (false, true); // H2': P over-rejects
    println!(
        "H1'/H2' are serializable histories produced by optimistic and multi-version \
         schemes; the preventative definitions reject them (P1/P2), the generalized \
         ones admit them — 'the preventative approach is overly restrictive'."
    );
    let mut t2 = Table::new(&["claim", "holds"]);
    t2.row(&[
        "H1, H2 rejected by both",
        mark(rows[0] == (false, false) && rows[1] == (false, false)),
    ]);
    t2.row(&[
        "H1', H2' admitted by PL-3 only",
        mark(rows[2] == (false, true) && rows[3] == (false, true)),
    ]);
    println!("{}", t2.render());
    verdict("section3", ok);
}

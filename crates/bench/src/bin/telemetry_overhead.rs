//! E17 — what the live telemetry plane costs on the hot path. PR 6
//! threads sampled spans through the checker (apply / graph-insert /
//! verdict / GC attribution) and mirrors SLIs into a
//! [`CheckerMonitor`] after every event; this bench measures that
//! fully-on plane against the same ingest run with telemetry off, on
//! the E14/E16 workload.
//!
//! Method: for each history size, generate one random history and
//! ingest it repeatedly under both configurations, best-of-N per side.
//! Two gates: the verdict NDJSON streams must be byte-identical
//! (telemetry observes, never alters), and aggregate ingest overhead
//! must stay within the 10% budget that E16 held provenance to —
//! sampling (1 event in [`SAMPLE_EVERY`]) is what buys that headroom,
//! since E16 showed always-on per-event bookkeeping lands near 18%.

use std::time::Instant;

use adya_bench::{
    banner, note, report_header, report_path_from_args, u64_from_args, verdict, Table,
};
use adya_obs::json::JsonWriter;
use adya_online::{CheckerMonitor, GcConfig, HealthPolicy, OnlineChecker};
use adya_workloads::histgen::{random_history, HistGenConfig};

/// Timing repetitions per (size, configuration); best-of is reported.
const REPS: usize = 15;

/// Telemetry sampling period under test — the same 1-in-32 the
/// `adya-check --stream` obs plane uses.
const SAMPLE_EVERY: u32 = 32;

struct SizeRun {
    txns: usize,
    events: usize,
    on_ns: u128,
    off_ns: u128,
    verdicts_identical: bool,
}

/// Best-of-[`REPS`] ingest time over `h`'s events with the telemetry
/// plane `on` (sampled spans + per-event monitor SLIs) or fully off,
/// plus the complete verdict NDJSON stream for the parity check.
fn time_ingest(h: &adya_history::History, on: bool) -> (u128, Vec<String>) {
    let mut best = u128::MAX;
    let mut lines = Vec::new();
    for _ in 0..REPS {
        let mut c = OnlineChecker::with_gc(GcConfig::default());
        let monitor = on.then(|| CheckerMonitor::new(HealthPolicy::default()));
        if on {
            c.set_telemetry_sampling(SAMPLE_EVERY);
        }
        let mut cur = Vec::new();
        let start = Instant::now();
        for e in h.events() {
            match &monitor {
                Some(m) => {
                    let arrived = m.arrival();
                    let v = c.ingest(e);
                    m.observe_event(&c, arrived);
                    if let Some(v) = v {
                        m.observe_verdict(&v);
                        cur.push(v.to_json());
                    }
                }
                None => {
                    if let Some(v) = c.ingest(e) {
                        cur.push(v.to_json());
                    }
                }
            }
        }
        let fin = c.finish();
        if let Some(m) = &monitor {
            m.observe_verdict(&fin);
        }
        cur.push(fin.to_json());
        best = best.min(start.elapsed().as_nanos());
        lines = cur;
    }
    (best, lines)
}

fn run_size(txns: usize, seed: u64) -> SizeRun {
    // The E14/E16 workload: conflict-heavy, aborts in the mix, bounded
    // concurrency — the regime where checker hot-path costs show.
    let cfg = HistGenConfig {
        txns,
        objects: 8,
        ops_per_txn: 4,
        write_prob: 0.5,
        dirty_read_prob: 0.1,
        abort_prob: 0.1,
        shuffle_order_prob: 0.0,
        max_concurrent: 8,
    };
    let h = random_history(&cfg, seed);
    let (on_ns, on_lines) = time_ingest(&h, true);
    let (off_ns, off_lines) = time_ingest(&h, false);
    SizeRun {
        txns,
        events: h.events().len(),
        on_ns,
        off_ns,
        verdicts_identical: on_lines == off_lines,
    }
}

fn overhead_pct(on: u128, off: u128) -> f64 {
    (on as f64 - off as f64) / off.max(1) as f64 * 100.0
}

fn write_report(path: &str, seed: u64, runs: &[SizeRun]) -> std::io::Result<()> {
    let mut w = JsonWriter::new();
    report_header(
        &mut w,
        "telemetry_overhead",
        seed,
        &[
            ("reps", REPS as u64),
            ("sample_every", u64::from(SAMPLE_EVERY)),
        ],
    );
    w.open_array(Some("runs"));
    for r in runs {
        w.open_object(None);
        w.u64_field("txns", r.txns as u64);
        w.u64_field("events", r.events as u64);
        w.u64_field("telemetry_on_ns", r.on_ns as u64);
        w.u64_field("telemetry_off_ns", r.off_ns as u64);
        // Basis-point overhead keeps the minimal writer integral.
        let bp = ((r.on_ns as f64 - r.off_ns as f64) / r.off_ns.max(1) as f64 * 10_000.0) as i64;
        w.u64_field("overhead_bp", bp.max(0) as u64);
        w.bool_field("verdicts_identical", r.verdicts_identical);
        w.close_object();
    }
    w.close_array();
    let on: u128 = runs.iter().map(|r| r.on_ns).sum();
    let off: u128 = runs.iter().map(|r| r.off_ns).sum();
    w.u64_field("total_on_ns", on as u64);
    w.u64_field("total_off_ns", off as u64);
    w.u64_field(
        "total_overhead_bp",
        (overhead_pct(on, off) * 100.0).max(0.0) as u64,
    );
    w.bool_field(
        "within_budget",
        overhead_pct(on, off) <= 10.0 && runs.iter().all(|r| r.verdicts_identical),
    );
    w.close_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(path, json)
}

fn main() {
    banner("Telemetry overhead: online ingest with the obs plane fully on vs off");
    let report_path = report_path_from_args();
    let seed = u64_from_args("seed", 42);
    // Smoke mode for CI: `--txns N` runs one small size instead of
    // the full sweep.
    let smoke_txns = u64_from_args("txns", 0);
    // The claim is ≤10% (what the committed report's `within_budget`
    // records); CI smoke passes a looser regression ceiling because
    // shared runners are noisy — the E16 bench does the same.
    let budget_pct = u64_from_args("budget-pct", 10) as f64;

    let sizes: Vec<usize> = if smoke_txns > 0 {
        vec![smoke_txns as usize]
    } else {
        vec![128, 256, 512, 1024]
    };
    let runs: Vec<SizeRun> = sizes.iter().map(|&n| run_size(n, seed)).collect();

    let mut table = Table::new(&[
        "txns",
        "events",
        "plane on µs",
        "plane off µs",
        "overhead",
        "verdicts identical",
    ]);
    for r in &runs {
        table.row(&[
            r.txns.to_string(),
            r.events.to_string(),
            (r.on_ns / 1000).to_string(),
            (r.off_ns / 1000).to_string(),
            format!("{:+.1}%", overhead_pct(r.on_ns, r.off_ns)),
            if r.verdicts_identical { "yes" } else { "NO" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    let on: u128 = runs.iter().map(|r| r.on_ns).sum();
    let off: u128 = runs.iter().map(|r| r.off_ns).sum();
    let agg = overhead_pct(on, off);
    note(&format!(
        "aggregate ingest overhead with spans+SLIs on (1-in-{SAMPLE_EVERY} sampling): {agg:+.1}%"
    ));

    if let Some(path) = &report_path {
        match write_report(path, seed, &runs) {
            Ok(()) => note(&format!("report written to {path}")),
            Err(e) => {
                eprintln!("telemetry_overhead: cannot write report {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    let identical = runs.iter().all(|r| r.verdicts_identical);
    // The ≤10% budget is the same rule that kept provenance (E16)
    // opt-in; the telemetry plane meets it by sampling, so it can
    // stay on for every `--stream --obs-listen` run.
    verdict("E17 telemetry overhead", identical && agg <= budget_pct);
}

//! Figure 3 — the DSG of H_serial (§4.4.4): regenerates the edge set
//! and the drawing (as DOT), and checks the paper's claimed
//! serialization order T1; T2; T3.

use adya_bench::{banner, verdict, Table};
use adya_core::{paper, DepKind, Dsg};
use adya_history::TxnId;

fn main() {
    banner("Figure 3: DSG for history H_serial");
    let h = paper::h_serial();
    println!("H_serial = {h}\n");
    let dsg = Dsg::build(&h);

    let mut table = Table::new(&["edge", "present"]);
    let expected = [
        (1, 2, DepKind::ItemReadDep),
        (1, 2, DepKind::WriteDep),
        (1, 3, DepKind::WriteDep),
        (2, 3, DepKind::ItemReadDep),
        (2, 3, DepKind::ItemAntiDep),
    ];
    let mut ok = true;
    for (f, t, k) in expected {
        let present = dsg.has_edge(TxnId(f), TxnId(t), k);
        ok &= present;
        table.row(&[
            format!("T{f} -{k}-> T{t}"),
            adya_bench::mark(present).to_string(),
        ]);
    }
    // No reverse edges.
    let no_reverse = !dsg.has_edge(TxnId(2), TxnId(1), DepKind::WriteDep)
        && !dsg.has_edge(TxnId(3), TxnId(1), DepKind::WriteDep)
        && !dsg.has_edge(TxnId(3), TxnId(2), DepKind::ItemReadDep);
    ok &= no_reverse;
    println!("{}", table.render());

    let order = dsg.serial_order();
    println!("equivalent serial order: {:?}", order);
    ok &= order == Some(vec![TxnId(1), TxnId(2), TxnId(3)]);

    println!("\nDOT:\n{}", dsg.to_dot("Figure3_Hserial"));
    verdict("figure3", ok);
}

//! E20 — replica failover: leader/follower session-log replication
//! under concurrent tenants and a leader SIGKILL. The bench spawns a
//! real follower `adya-serve`, a leader replicating every durable log
//! byte to it, streams N concurrent sessions at the leader, samples
//! the leader's acknowledged replication lag, SIGKILLs the leader with
//! every session mid-stream — and never restarts it. Clients fail over
//! to the follower on their multi-endpoint list, promote it, and
//! finish their streams there.
//!
//! Three properties must hold on every run:
//!
//! 1. **Verdict-stream parity.** Each session's verdict ledger,
//!    continued on the promoted follower, must be byte-identical to an
//!    uninterrupted in-process run of the same tokens, final verdict
//!    included — even when the follower's acknowledged prefix trailed
//!    the leader at the moment of the kill.
//! 2. **Every session failed over.** The kill lands with all sessions
//!    mid-stream, so each must reconnect at least once.
//! 3. **The follower was actually promoted** — its `/health` reports
//!    the leader role afterwards.
//!
//! Reported: replication lag at kill time (records + bytes, as last
//! acknowledged by the follower), per-session client-observed failover
//! latency (rotation, redirects and promotion included), events/sec
//! and the parity bits, into `--report experiments/replica_failover.json`.
//! `--budget-pct <p>` scales the per-session transaction count to p%
//! for CI smoke runs; `--seed/--sessions/--txns` make any run
//! reproducible from its report.

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use adya_bench::{
    banner, note, report_header, report_path_from_args, u64_from_args, verdict, Table,
};
use adya_obs::json::JsonWriter;
use adya_online::{GcConfig, OnlineChecker, StreamParser};
use adya_workloads::{ClientError, RetryPolicy, ServeClient};

/// A spawned server; killed on drop so a panicking bench never leaks
/// a listener.
struct Server(Child);

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// `adya-serve` lands in the same target directory as this bench
/// binary, so the sibling path is the default; `ADYA_SERVE_BIN`
/// overrides it for out-of-tree runs.
fn serve_bin() -> PathBuf {
    if let Ok(p) = std::env::var("ADYA_SERVE_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().expect("current_exe");
    p.pop();
    p.push("adya-serve");
    p
}

/// Spawns the server over `data` on `listen` with `extra` role flags,
/// returning the process and the bound address.
fn spawn_server(
    bin: &std::path::Path,
    data: &std::path::Path,
    listen: &str,
    extra: &[&str],
) -> (Server, String) {
    for attempt in 0..50 {
        let mut child = Command::new(bin)
            .arg("--data")
            .arg(data)
            .args([
                "--listen",
                listen,
                "--snapshot-every",
                "32",
                "--rotate-events",
                "64",
            ])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
        let stderr = child.stderr.take().expect("piped stderr");
        let mut reader = BufReader::new(stderr);
        let mut line = String::new();
        reader.read_line(&mut line).expect("read first stderr line");
        if let Some((_, addr)) = line.rsplit_once("listening on ") {
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut reader, &mut std::io::sink());
            });
            return (Server(child), addr.trim().to_string());
        }
        let _ = child.kill();
        let _ = child.wait();
        assert!(attempt < 49, "adya-serve kept failing to bind: {line:?}");
        std::thread::sleep(Duration::from_millis(100));
    }
    unreachable!()
}

fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect service port");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: adya\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut response = String::new();
    s.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {response:?}"));
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Extracts the number after `"key": ` in a flat JSON body.
fn u64_field(body: &str, key: &str) -> Option<u64> {
    let at = body.find(&format!("\"{key}\": "))?;
    let digits: String = body[at + key.len() + 4..]
        .chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// A deterministic token stream for one session: interleaved begins,
/// version-correct reads, writes and commits over eight objects. The
/// seed perturbs the object choices so sessions diverge run to run
/// while staying reproducible.
fn session_tokens(session: u64, seed: u64, txns: u64) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut last_writer = [None::<u64>; 8];
    let obj = |i: usize| (b'a' + i as u8) as char;
    let salt = (seed ^ session.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as usize;
    for t in 1..=txns {
        let wobj = ((t as usize) * 7 + salt) % 8;
        let robj = ((t as usize) * 3 + salt / 8) % 8;
        tokens.push(format!("b{t}"));
        if let Some(w) = last_writer[robj] {
            tokens.push(format!("r{t}(k{}{w})", obj(robj)));
        }
        tokens.push(format!("w{t}(k{},{t})", obj(wobj)));
        tokens.push(format!("c{t}"));
        last_writer[wobj] = Some(t);
    }
    tokens
}

/// The uninterrupted in-process reference: same tokens, same checker
/// configuration as a server session — (verdict lines, final line).
fn reference(tokens: &[String]) -> (Vec<String>, String) {
    let mut parser = StreamParser::new();
    let mut checker = OnlineChecker::with_gc(GcConfig::default());
    let mut verdicts = Vec::new();
    for tok in tokens {
        let ev = parser.parse_token(tok).expect("reference tokens parse");
        if let Some(v) = checker.ingest(&ev) {
            verdicts.push(v.to_json());
        }
    }
    (verdicts, checker.finish().to_json())
}

/// One session's outcome, as reported.
struct SessionRun {
    name: String,
    events: u64,
    verdicts: u64,
    failovers: u32,
    /// Client-observed failover latency (endpoint rotation, not_leader
    /// redirects and promotion included), summed over all failovers.
    failover_micros: u128,
    stream_ok: bool,
    final_ok: bool,
}

impl SessionRun {
    fn ok(&self) -> bool {
        self.stream_ok && self.final_ok
    }
}

/// Streams a whole session around the leader kill: half the tokens,
/// two barrier waits while the leader dies (for good), the rest, then
/// close. Transport errors anywhere turn into a timed failover resume
/// against the endpoint list.
fn run_session(
    endpoints: &str,
    session: u64,
    seed: u64,
    txns: u64,
    barrier: &Barrier,
) -> SessionRun {
    let tokens = session_tokens(session, seed, txns);
    let name = format!("tenant-{session}");
    let mut client = ServeClient::hello(endpoints, &name).expect("hello");
    let mut failovers = 0u32;
    let mut failover_micros = 0u128;
    let policy = RetryPolicy {
        deadline_ops: Some(4_000),
        ..RetryPolicy::default()
    };
    let mut send = |client: &mut ServeClient, tok: &str| match client.send_token(tok) {
        Ok(()) => {}
        Err(ClientError::Io(_)) => {
            let t0 = Instant::now();
            client
                .resume(&policy, seed ^ session)
                .unwrap_or_else(|e| panic!("{name}: failover resume failed: {e}"));
            failover_micros += t0.elapsed().as_micros();
            failovers += 1;
        }
        Err(e) => panic!("{name}: protocol error on {tok:?}: {e}"),
    };

    let half = tokens.len() / 2;
    for tok in &tokens[..half] {
        send(&mut client, tok);
    }
    barrier.wait(); // everyone is mid-stream
    barrier.wait(); // the leader is dead — no replacement coming
    for tok in &tokens[half..] {
        send(&mut client, tok);
    }

    let (want_verdicts, want_final) = reference(&tokens);
    let stream_ok = client.verdicts() == &want_verdicts[..];
    let events = client.tokens_sent() as u64;
    let verdicts = client.verdicts().len() as u64;
    let fin = client.close().expect("close");
    SessionRun {
        name,
        events,
        verdicts,
        failovers,
        failover_micros,
        stream_ok,
        final_ok: fin == want_final,
    }
}

#[allow(clippy::too_many_arguments)]
fn write_report(
    path: &str,
    seed: u64,
    txns: u64,
    budget_pct: u64,
    runs: &[SessionRun],
    lag_records_at_kill: u64,
    lag_bytes_at_kill: u64,
    promoted: bool,
    elapsed: Duration,
) -> std::io::Result<()> {
    let total_events: u64 = runs.iter().map(|r| r.events).sum();
    let total_verdicts: u64 = runs.iter().map(|r| r.verdicts).sum();
    let total_failovers: u64 = runs.iter().map(|r| u64::from(r.failovers)).sum();
    let max_failover: u128 = runs.iter().map(|r| r.failover_micros).max().unwrap_or(0);
    let secs = elapsed.as_secs_f64().max(1e-9);
    let mut w = JsonWriter::new();
    report_header(
        &mut w,
        "replica_failover",
        seed,
        &[
            ("sessions", runs.len() as u64),
            ("txns_per_session", txns),
            ("budget_pct", budget_pct),
        ],
    );
    w.u64_field("events_total", total_events);
    w.u64_field("verdicts_total", total_verdicts);
    w.u64_field("failovers_total", total_failovers);
    w.u64_field("repl_lag_records_at_kill", lag_records_at_kill);
    w.u64_field("repl_lag_bytes_at_kill", lag_bytes_at_kill);
    w.u64_field("failover_micros_max", max_failover as u64);
    w.u64_field("elapsed_micros", elapsed.as_micros() as u64);
    w.u64_field("events_per_sec", (total_events as f64 / secs) as u64);
    w.bool_field("follower_promoted", promoted);
    w.bool_field("parity_ok", runs.iter().all(SessionRun::ok));
    w.open_array(Some("per_session"));
    for r in runs {
        w.open_object(None);
        w.str_field("session", &r.name);
        w.u64_field("events", r.events);
        w.u64_field("verdicts", r.verdicts);
        w.u64_field("failovers", u64::from(r.failovers));
        w.u64_field("failover_micros", r.failover_micros as u64);
        w.bool_field("stream_parity", r.stream_ok);
        w.bool_field("final_parity", r.final_ok);
        w.close_object();
    }
    w.close_array();
    w.close_object();
    let mut json = w.finish();
    json.push('\n');
    std::fs::write(path, json)
}

fn main() {
    banner("Replica failover: leader SIGKILL, follower promotion, verdict parity");
    let report_path = report_path_from_args();
    let seed = u64_from_args("seed", 0xFA110);
    let sessions = u64_from_args("sessions", 4).max(1);
    let budget_pct = u64_from_args("budget-pct", 100).clamp(1, 100);
    let txns = (u64_from_args("txns", 120) * budget_pct / 100).max(8);
    note(&format!(
        "seed {seed}, {sessions} concurrent sessions x {txns} txns (budget {budget_pct}%)"
    ));

    let bin = serve_bin();
    assert!(
        bin.exists(),
        "adya-serve binary not found at {} — build it first (cargo build --release) \
         or set ADYA_SERVE_BIN",
        bin.display()
    );
    let base = std::env::temp_dir().join(format!("adya-replica-failover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let (follower, faddr) =
        spawn_server(&bin, &base.join("follower"), "127.0.0.1:0", &["--follower"]);
    let (leader, laddr) = spawn_server(
        &bin,
        &base.join("leader"),
        "127.0.0.1:0",
        &["--replicate-to", &faddr],
    );
    note(&format!(
        "leader pid {} on {laddr} -> follower pid {} on {faddr}",
        leader.0.id(),
        follower.0.id(),
    ));
    let endpoints = format!("{laddr},{faddr}");

    let start = Instant::now();
    let barrier = Arc::new(Barrier::new(sessions as usize + 1));
    let mut handles = Vec::new();
    for s in 0..sessions {
        let endpoints = endpoints.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            run_session(&endpoints, s, seed, txns, &barrier)
        }));
    }

    barrier.wait(); // every session is mid-stream
                    // Sample the acknowledged replication lag the follower will have
                    // to absorb, then SIGKILL the leader — and never bring it back.
    let (_, health) = http_get(&laddr, "/health");
    let lag_records_at_kill = u64_field(&health, "max_lag_records").unwrap_or(0);
    let lag_bytes_at_kill = u64_field(&health, "max_lag_bytes").unwrap_or(0);
    drop(leader); // SIGKILL — no flush, no goodbye
    note(&format!(
        "leader killed mid-stream; acknowledged lag {lag_records_at_kill} records / {lag_bytes_at_kill} bytes"
    ));
    barrier.wait();

    let runs: Vec<SessionRun> = handles
        .into_iter()
        .map(|h| h.join().expect("session thread"))
        .collect();
    let elapsed = start.elapsed();
    let (_, fhealth) = http_get(&faddr, "/health");
    let promoted = fhealth.contains("\"role\": \"leader\"");
    drop(follower);
    let _ = std::fs::remove_dir_all(&base);

    let mut table = Table::new(&[
        "session",
        "events",
        "verdicts",
        "failovers",
        "failover ms",
        "stream",
        "final",
    ]);
    for r in &runs {
        table.row(&[
            r.name.clone(),
            r.events.to_string(),
            r.verdicts.to_string(),
            r.failovers.to_string(),
            format!("{:.1}", r.failover_micros as f64 / 1000.0),
            if r.stream_ok { "ok" } else { "FAIL" }.to_string(),
            if r.final_ok { "ok" } else { "FAIL" }.to_string(),
        ]);
    }
    println!("{}", table.render());

    let total_events: u64 = runs.iter().map(|r| r.events).sum();
    let total_failovers: u32 = runs.iter().map(|r| r.failovers).sum();
    let max_failover: u128 = runs.iter().map(|r| r.failover_micros).max().unwrap_or(0);
    let secs = elapsed.as_secs_f64().max(1e-9);
    note(&format!(
        "{:.0} events/sec, {total_failovers} failovers, worst client-observed failover {:.1} ms",
        total_events as f64 / secs,
        max_failover as f64 / 1000.0,
    ));

    let parity = runs.iter().all(SessionRun::ok);
    let all_failed_over = runs.iter().all(|r| r.failovers >= 1);
    if !all_failed_over {
        note("  a session never failed over — the kill missed it; run is vacuous");
    }
    if !promoted {
        note("  the follower never reported the leader role after failover");
    }
    for r in runs.iter().filter(|r| !r.ok()) {
        note(&format!(
            "  {}: stream_parity={} final_parity={}",
            r.name, r.stream_ok, r.final_ok
        ));
    }

    if let Some(path) = &report_path {
        match write_report(
            path,
            seed,
            txns,
            budget_pct,
            &runs,
            lag_records_at_kill,
            lag_bytes_at_kill,
            promoted,
            elapsed,
        ) {
            Ok(()) => note(&format!("report written to {path}")),
            Err(e) => {
                eprintln!("replica_failover: cannot write report {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    verdict(
        "E20 replica failover",
        parity && all_failed_over && promoted,
    );
}

//! Shared infrastructure for the figure-regeneration binaries and
//! Criterion benches.
//!
//! Every table and figure of the paper has a binary here that
//! regenerates it from the live implementation:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `figure1` | Figure 1 — locking levels ↔ proscribed phenomena (run on the real 2PL engine) |
//! | `figure2` | Figure 2 — direct-conflict definitions, demonstrated on minimal histories |
//! | `figure3` | Figure 3 — the DSG of H_serial (edges + DOT) |
//! | `figure4` | Figure 4 — the DSG of H_wcycle (G0 cycle) |
//! | `figure5` | Figure 5 — the DSG of H_phantom (predicate anti-dependency cycle) |
//! | `figure6` | Figure 6 — the PL-level summary as a history × level matrix |
//! | `section3` | §3 — H1/H2/H1′/H2′ under preventative vs generalized definitions |
//! | `section4` | §4 — H_write_order, H_pred_read, H_insert, H_pred_update reconstructions |
//! | `mixing` | §5.5 — Definition 9 / Mixing Theorem on engine-mixed and sampled histories |
//! | `permissiveness` | E11 — admission-rate gap between P- and G-definitions |
//! | `perf_sweep` | E10 — scheme comparison across contention (the §1/§3 motivation) |
//! | `extensions` | E13 — thesis-level separations (SI / CS / MAV / 2+), cursor engine, MVTO version orders |
//! | `lattice` | the level-implication matrix (thesis lattice), checked for coherence |
//! | `all_figures` | runs every binary above in sequence (CI entry point) |
//!
//! Run them all with `cargo run -p adya-bench --bin <name>`.

#![warn(missing_docs)]

use std::fmt::Display;

/// A minimal fixed-width table printer for the report binaries.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Display>(header: &[S]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row<S: Display>(&mut self, cells: &[S]) {
        let mut row: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                let pad = widths[i] - c.chars().count();
                s.push(' ');
                s.push_str(c);
                s.push_str(&" ".repeat(pad + 1));
                s.push('|');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders a boolean as the check/cross marks used in the reports.
pub fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}

/// Prints a section banner. Goes to stderr so the stdout of a report
/// binary stays pure data (tables and verdicts) and can be piped or
/// diffed.
pub fn banner(title: &str) {
    eprintln!("\n=== {title} ===");
}

/// Prints a progress/diagnostic note to stderr (same contract as
/// [`banner`]: stdout is reserved for report data).
pub fn note(msg: &str) {
    eprintln!("{msg}");
}

/// Extracts `--report <path>` from the process arguments, if present.
/// Report binaries that support it write a JSON metrics report there.
pub fn report_path_from_args() -> Option<String> {
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == "--report" {
            return it.next();
        }
    }
    None
}

/// Extracts `--<name> <value>` as a `u64` from the process arguments,
/// falling back to `default`. Report binaries use it for seed (and
/// size) plumbing: every randomized run's seed is CLI-settable and
/// echoed into the JSON report, so any run can be reproduced from the
/// report alone. Exits with an error on an unparsable value rather
/// than silently running a different experiment.
pub fn u64_from_args(name: &str, default: u64) -> u64 {
    let flag = format!("--{name}");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if a == flag {
            let v = it.next().unwrap_or_default();
            match v.parse() {
                Ok(n) => return n,
                Err(_) => {
                    eprintln!("invalid {flag} value: {v:?} (expected a u64)");
                    std::process::exit(2);
                }
            }
        }
    }
    default
}

/// The machine's available parallelism, echoed into every report so a
/// perf number can always be read against the hardware that produced
/// it.
pub fn cores() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// Opens the uniform report header shared by every committed
/// `experiments/*.json`: the report name, the RNG seed, the core
/// count, and then the experiment's own knobs as `(name, value)`
/// pairs, in order. The writer is left inside the root object so the
/// caller appends its payload (runs array, totals) and closes it.
pub fn report_header(
    w: &mut adya_obs::json::JsonWriter,
    report: &str,
    seed: u64,
    knobs: &[(&str, u64)],
) {
    w.open_object(None);
    w.str_field("report", report);
    w.u64_field("seed", seed);
    w.u64_field("cores", cores());
    for (name, value) in knobs {
        w.u64_field(name, *value);
    }
}

/// Exit helper: prints the verdict and panics on failure so CI-style
/// invocations notice mismatches.
pub fn verdict(name: &str, ok: bool) {
    if ok {
        println!("[{name}] reproduction OK");
    } else {
        panic!("[{name}] MISMATCH with the paper's claims");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["level", "ok"]);
        t.row(&["PL-1", "yes"]);
        t.row(&["PL-2.99", "-"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("PL-2.99"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["x"]);
        assert!(t.render().contains("x"));
    }

    #[test]
    fn marks() {
        assert_eq!(mark(true), "yes");
        assert_eq!(mark(false), "-");
    }

    #[test]
    fn report_header_is_uniform() {
        let mut w = adya_obs::json::JsonWriter::new();
        report_header(&mut w, "demo", 7, &[("reps", 3), ("txns", 128)]);
        w.close_object();
        let s = w.finish();
        let want = format!(
            "{{\n  \"report\": \"demo\",\n  \"seed\": 7,\n  \"cores\": {},\n  \"reps\": 3,\n  \"txns\": 128\n}}",
            cores()
        );
        assert_eq!(s, want);
        assert!(cores() >= 1);
    }
}

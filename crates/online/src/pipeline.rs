//! The staged ingest pipeline: lock-free event rings → sequencer →
//! batched checker application.
//!
//! The sequential ingest path calls `Mutex<OnlineChecker>::ingest` per
//! event, which serializes every producing engine thread on the
//! checker's graph maintenance. The pipeline decouples the two sides:
//!
//! 1. **Rings** — each recorded event is pushed (under the recorder
//!    lock, so in exact recorded order) into one of `rings` bounded
//!    SPSC rings, sharded by sequence number
//!    ([`adya_engine::buffering_tap`]). Producers only ever pay a ring
//!    push; a full ring exerts backpressure.
//! 2. **Sequencer** — the application stage drains the rings in dense
//!    sequence order (event `seq` can only be at the head of ring
//!    `seq % rings`, so the merge is O(1)) and forms batches of up to
//!    [`PipelineConfig::max_batch`] events.
//! 3. **Batched application** — each batch goes through
//!    [`OnlineChecker::ingest_batch`], whose per-commit DSG edges are
//!    applied via the amortized [`IncrementalDag::insert_edges`]
//!    path.
//!
//! The verdict stream is byte-identical to per-event sequential
//! ingest: events reach the checker in exactly recorded order, and
//! both the batch API and the batched graph application are
//! state-identical to their per-event/per-edge forms (pinned by the
//! `pipeline_equivalence` proptests).
//!
//! Backpressure observability: `pipeline.queue_depth` (gauge, events
//! buffered across rings at batch formation), `pipeline.batch_size`
//! (histogram, events per applied batch), and
//! `pipeline.backpressure_waits` (counter, producer wait rounds on
//! full rings).
//!
//! [`IncrementalDag::insert_edges`]: adya_graph::IncrementalDag::insert_edges

use std::sync::Arc;

use adya_engine::{buffering_tap, Engine, RingCloser, RingConsumer, RingProducer};
use adya_history::Event;
use adya_obs::{trace::Stage, TracePlane};

use crate::checker::{OnlineChecker, Verdict};

/// Shape of one ingest pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Number of SPSC event rings the tap shards over.
    pub rings: usize,
    /// Capacity of each ring, in events; a full ring blocks its
    /// producer (backpressure).
    pub ring_capacity: usize,
    /// Largest event batch handed to the checker in one application
    /// call.
    pub max_batch: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            rings: 2,
            ring_capacity: 1024,
            max_batch: 128,
        }
    }
}

/// Counters from one completed pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Events applied to the checker.
    pub events: u64,
    /// Application-stage batches formed.
    pub batches: u64,
}

/// The consumer half of an ingest pipeline: rings already fed by a
/// producing tap (or by hand-stamped pushes), ready to be drained into
/// a checker by [`run`](EventPipeline::run).
pub struct EventPipeline {
    consumers: Vec<RingConsumer>,
    closers: Vec<RingCloser>,
    cfg: PipelineConfig,
    /// Per-verdict trace stamping: the plane plus the trace-id scope
    /// (threaded separately from [`PipelineConfig`], which stays
    /// `Copy`). `None` = no stamping overhead beyond one branch.
    trace: Option<(Arc<TracePlane>, String)>,
}

impl EventPipeline {
    /// Builds a pipeline and installs its buffering tap on `engine`'s
    /// recorder. Only events recorded from this point on flow through
    /// the pipeline (the tap rebases sequence numbers, so attaching
    /// after setup transactions is fine).
    pub fn attach<E: Engine + ?Sized>(engine: &E, cfg: PipelineConfig) -> EventPipeline {
        let (tap, consumers, closers) = buffering_tap(cfg.rings, cfg.ring_capacity);
        engine.set_seq_event_tap(tap);
        EventPipeline {
            consumers,
            closers,
            cfg,
            trace: None,
        }
    }

    /// Builds a free-standing pipeline and hands back the producer
    /// endpoints, for drivers that stamp their own dense sequence
    /// numbers (e.g. `adya-check --stream --pipeline-threads`):
    /// event `seq` must be pushed to producer `seq % rings`, starting
    /// at 0. Dropping the producers ends the stream.
    pub fn manual(cfg: PipelineConfig) -> (Vec<RingProducer>, EventPipeline) {
        let rings = cfg.rings.max(1);
        let mut producers = Vec::with_capacity(rings);
        let mut consumers = Vec::with_capacity(rings);
        for _ in 0..rings {
            let (p, c) = adya_engine::EventRing::with_capacity(cfg.ring_capacity);
            producers.push(p);
            consumers.push(c);
        }
        let closers = producers.iter().map(|p| p.closer()).collect();
        (
            producers,
            EventPipeline {
                consumers,
                closers,
                cfg,
                trace: None,
            },
        )
    }

    /// Ends the stream: the sequencer drains what is buffered, then
    /// [`run`](EventPipeline::run) returns. Call after the producing
    /// side is finished (e.g. workload threads joined). Also triggered
    /// by dropping the tap/producers.
    pub fn close(&self) {
        for c in &self.closers {
            c.close();
        }
    }

    /// A detached handle that closes this pipeline's rings, for
    /// handing to the thread that owns the producing side.
    pub fn closer(&self) -> PipelineCloser {
        PipelineCloser {
            closers: self.closers.clone(),
        }
    }

    /// Enables per-verdict trace stamping: sampled events (by the
    /// plane's cadence, over their dense sequence numbers) are stamped
    /// at the sequencer pop (`seq`), batch application (`apply`) and
    /// commit-verdict emission (`verdict`) stages. `scope` seeds the
    /// trace ids ([`adya_obs::trace_id`]); the producer side stamps
    /// `tap`/`ring` for the same ids itself.
    pub fn set_trace(&mut self, plane: Arc<TracePlane>, scope: &str) {
        self.trace = Some((plane, scope.to_string()));
    }

    /// The application stage: drains rings in dense sequence order,
    /// applies batches through [`OnlineChecker::ingest_batch`], and
    /// invokes `on_verdict` for every commit verdict, in order. Runs
    /// until the stream is closed and fully drained. Typically called
    /// on a dedicated checker thread.
    pub fn run(
        self,
        checker: &mut OnlineChecker,
        mut on_verdict: impl FnMut(Verdict),
    ) -> PipelineStats {
        let k = self.consumers.len();
        let mut next = 0u64;
        let mut batch: Vec<Event> = Vec::with_capacity(self.cfg.max_batch.max(1));
        let mut stats = PipelineStats::default();
        // Sampled members of the current batch: (batch index, id).
        let mut traced: Vec<(usize, u64)> = Vec::new();
        loop {
            while batch.len() < self.cfg.max_batch.max(1) {
                match self.consumers[(next as usize) % k].try_pop() {
                    Some((seq, ev)) => {
                        debug_assert_eq!(seq, next, "ring delivered out-of-sequence event");
                        if let Some((plane, scope)) = &self.trace {
                            if plane.sampled(seq) {
                                let id = adya_obs::trace_id(scope, seq);
                                plane.stamp(id, Stage::Seq);
                                traced.push((batch.len(), id));
                            }
                        }
                        batch.push(ev);
                        next += 1;
                    }
                    None => break,
                }
            }
            if batch.is_empty() {
                // Dense sequencing means event `next` lives in ring
                // `next % k`; once that ring is closed and empty, no
                // event ≥ next was ever pushed (pushes happen in
                // sequence order under the recorder lock).
                if self.consumers[(next as usize) % k].is_drained() {
                    break;
                }
                std::thread::yield_now();
                continue;
            }
            let depth: usize = self.consumers.iter().map(|c| c.len()).sum();
            adya_obs::gauge!("pipeline.queue_depth").set(depth as i64);
            adya_obs::histogram!("pipeline.batch_size").record(batch.len() as u64);
            stats.batches += 1;
            stats.events += batch.len() as u64;
            if let Some((plane, _)) = &self.trace {
                for &(_, id) in &traced {
                    plane.stamp(id, Stage::Apply);
                }
            }
            let verdicts = checker.ingest_batch(&batch);
            if let Some((plane, _)) = &self.trace {
                // Each commit verdict's source event is a Commit in
                // this batch; stamp the sampled ones at emission time.
                for &(i, id) in &traced {
                    if matches!(batch[i], Event::Commit(_)) {
                        plane.stamp(id, Stage::Verdict);
                    }
                }
            }
            for v in verdicts {
                on_verdict(v);
            }
            batch.clear();
            traced.clear();
        }
        adya_obs::gauge!("pipeline.queue_depth").set(0);
        stats
    }
}

/// Close-only handle to a pipeline's rings (cloneable, thread-safe).
#[derive(Clone)]
pub struct PipelineCloser {
    closers: Vec<RingCloser>,
}

impl PipelineCloser {
    /// Ends the stream, like [`EventPipeline::close`].
    pub fn close(&self) {
        for c in &self.closers {
            c.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::{Event, ReadEvent, TxnId, VersionId, WriteEvent};

    fn sample_events() -> Vec<Event> {
        // T1 and T2 read each other's writes: G1c fires at T2's commit.
        vec![
            Event::Begin(TxnId(1)),
            Event::Begin(TxnId(2)),
            Event::Write(WriteEvent {
                txn: TxnId(1),
                object: adya_history::ObjectId(0),
                seq: 1,
                kind: adya_history::VersionKind::Visible,
                value: None,
            }),
            Event::Write(WriteEvent {
                txn: TxnId(2),
                object: adya_history::ObjectId(1),
                seq: 1,
                kind: adya_history::VersionKind::Visible,
                value: None,
            }),
            Event::Read(ReadEvent {
                txn: TxnId(1),
                object: adya_history::ObjectId(1),
                version: VersionId::new(TxnId(2), 1),
                through_cursor: false,
            }),
            Event::Read(ReadEvent {
                txn: TxnId(2),
                object: adya_history::ObjectId(0),
                version: VersionId::new(TxnId(1), 1),
                through_cursor: false,
            }),
            Event::Commit(TxnId(1)),
            Event::Commit(TxnId(2)),
        ]
    }

    /// Pipelined ingest (threaded producer, tiny rings forcing
    /// backpressure) produces the byte-identical verdict stream of
    /// plain sequential ingest.
    #[test]
    fn manual_pipeline_matches_sequential() {
        let events = sample_events();
        let mut seq_checker = OnlineChecker::new();
        let mut want = Vec::new();
        for ev in &events {
            if let Some(v) = seq_checker.ingest(ev) {
                want.push(v.to_json());
            }
        }
        for cfg in [
            PipelineConfig {
                rings: 1,
                ring_capacity: 1,
                max_batch: 1,
            },
            PipelineConfig {
                rings: 3,
                ring_capacity: 2,
                max_batch: 4,
            },
            PipelineConfig::default(),
        ] {
            let (producers, pipe) = EventPipeline::manual(cfg);
            let evs = events.clone();
            let feeder = std::thread::spawn(move || {
                for (i, ev) in evs.into_iter().enumerate() {
                    producers[i % producers.len()].push(i as u64, ev);
                }
                // producers drop here → rings close
            });
            let mut checker = OnlineChecker::new();
            let mut got = Vec::new();
            let stats = pipe.run(&mut checker, |v| got.push(v.to_json()));
            feeder.join().unwrap();
            assert_eq!(got, want, "verdicts diverged under {cfg:?}");
            assert_eq!(stats.events, 8);
            assert_eq!(checker.fired_kinds(), vec![adya_core::PhenomenonKind::G1c]);
        }
    }
}

//! Checker self-monitoring: SLI gauges and health semantics for the
//! live telemetry plane.
//!
//! The [`OnlineChecker`] runs on one thread; the
//! obs endpoint serves `/health` from others. A [`CheckerMonitor`]
//! bridges them: the ingest loop calls [`CheckerMonitor::arrival`]
//! before each event and [`CheckerMonitor::observe_event`] /
//! [`CheckerMonitor::observe_verdict`] after each apply, which cache
//! the checker's SLIs in atomics (and mirror them into the global obs
//! registry as `sli.*` gauges so `/metrics` exports them too); any
//! thread can then render [`CheckerMonitor::health_json`] without
//! touching the checker.
//!
//! SLI capture is sampled (default 1 event in 32, the same rate the
//! checker's spans use): the fast path is one atomic increment, and
//! only sampled events pay for clock reads, the checker's live-set
//! scans, and registry gauge updates. The sampling period is the
//! plane's reporting interval — induced lag or staleness shows in
//! `/health` within one interval. E17 holds the whole plane to ≤10%
//! ingest overhead, which per-event capture blows by itself.
//!
//! Health is a judgement, not a dump: a [`HealthPolicy`] holds the
//! staleness and lag thresholds, and the JSON carries `healthy` plus
//! the reasons it is not — the endpoint maps that straight to
//! 200/503 exit-status semantics. Each fired phenomenon contributes
//! one exemplar citing the forensics witness id, so a degraded
//! `/health` names the cycle to go look at.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use adya_core::PhenomenonKind;
use adya_obs::json::JsonWriter;

use crate::checker::{OnlineChecker, Verdict};

/// Most exemplars retained (one per phenomenon kind at first fire
/// covers the six online kinds with room for repeats).
const EXEMPLAR_CAP: usize = 32;

/// Default SLI sampling period: capture every 32nd event, matching
/// the checker's span sampling.
const DEFAULT_SAMPLE_EVERY: u64 = 32;

/// Thresholds that decide when `/health` degrades to 503.
#[derive(Debug, Clone, Copy)]
pub struct HealthPolicy {
    /// Degraded when no event has been applied for this many
    /// milliseconds (after at least one was).
    pub stale_ms: u64,
    /// Degraded when the last sampled ingest lag (arrival → applied)
    /// exceeds this many milliseconds.
    pub lag_ms: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            stale_ms: 5_000,
            lag_ms: 1_000,
        }
    }
}

/// One fired-phenomenon exemplar: enough to find the full story in
/// the verdict stream and the forensics plane.
#[derive(Debug, Clone)]
pub struct Exemplar {
    /// The phenomenon that fired.
    pub kind: PhenomenonKind,
    /// The committing transaction whose verdict latched it (`None`
    /// for the final verdict).
    pub txn: Option<u32>,
    /// Stable witness id (see [`adya_obs::witness_id`]) linking to
    /// the forensic witness of the same cycle.
    pub witness_id: String,
    /// Committed-prefix size when it fired.
    pub committed: u64,
}

/// Cached checker SLIs, updatable from the ingest thread and readable
/// from any endpoint thread.
#[derive(Debug)]
pub struct CheckerMonitor {
    start: Instant,
    policy: HealthPolicy,
    /// Events left until the next sampled one (single-writer: only
    /// the ingest thread calls [`CheckerMonitor::arrival`]; countdown
    /// avoids a per-event division).
    sample_countdown: AtomicU64,
    sample_every: u64,
    /// Total events seen by [`CheckerMonitor::arrival`] — exact even
    /// between samples, so `/health` counts and liveness don't lag
    /// the sampling interval.
    arrivals: AtomicU64,
    /// Arrival count the last staleness judgement saw.
    last_seen_arrivals: AtomicU64,
    /// Nanoseconds since `start` when a judgement last saw the
    /// arrival count advance.
    last_progress_ns: AtomicU64,
    commits: AtomicU64,
    /// Last sampled ingest lag (arrival → applied), nanoseconds.
    lag_ns: AtomicU64,
    live_txns: AtomicI64,
    watermark_staleness: AtomicU64,
    prov_bytes: AtomicU64,
    pruned_txns: AtomicU64,
    stale_refs: AtomicU64,
    /// Bitmask of phenomenon kinds already holding an exemplar.
    exemplar_kinds: AtomicU64,
    exemplars: Mutex<Vec<Exemplar>>,
}

impl CheckerMonitor {
    /// A monitor with the given health thresholds and the default
    /// 1-in-32 SLI sampling.
    pub fn new(policy: HealthPolicy) -> CheckerMonitor {
        CheckerMonitor::with_sampling(policy, DEFAULT_SAMPLE_EVERY)
    }

    /// A monitor capturing SLIs on every `sample_every`-th event
    /// (0 is treated as 1: capture everything).
    pub fn with_sampling(policy: HealthPolicy, sample_every: u64) -> CheckerMonitor {
        CheckerMonitor {
            start: Instant::now(),
            policy,
            sample_countdown: AtomicU64::new(0),
            sample_every: sample_every.max(1),
            arrivals: AtomicU64::new(0),
            last_seen_arrivals: AtomicU64::new(0),
            last_progress_ns: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            lag_ns: AtomicU64::new(0),
            live_txns: AtomicI64::new(0),
            watermark_staleness: AtomicU64::new(0),
            prov_bytes: AtomicU64::new(0),
            pruned_txns: AtomicU64::new(0),
            stale_refs: AtomicU64::new(0),
            exemplar_kinds: AtomicU64::new(0),
            exemplars: Mutex::new(Vec::new()),
        }
    }

    /// The active thresholds.
    pub fn policy(&self) -> HealthPolicy {
        self.policy
    }

    /// Call before reading/applying the next event. Returns the
    /// arrival timestamp when this event is sampled for SLI capture,
    /// `None` on the (cheap) fast path. Pass the result straight to
    /// [`CheckerMonitor::observe_event`] after the apply.
    pub fn arrival(&self) -> Option<Instant> {
        self.arrivals.fetch_add(1, Ordering::Relaxed);
        let left = self.sample_countdown.load(Ordering::Relaxed);
        if left == 0 {
            self.sample_countdown
                .store(self.sample_every - 1, Ordering::Relaxed);
            Some(Instant::now())
        } else {
            self.sample_countdown.store(left - 1, Ordering::Relaxed);
            None
        }
    }

    /// Records one applied event when it was sampled: caches the
    /// checker's SLIs and mirrors them into the global registry as
    /// `sli.*` gauges. `arrived` is [`CheckerMonitor::arrival`]'s
    /// timestamp from just before the event was read off the input;
    /// the gap to now is the ingest lag (which a tap-side fault delay
    /// inflates — that is how `/health` sees induced lag within one
    /// sampling interval).
    pub fn observe_event(&self, checker: &OnlineChecker, arrived: Option<Instant>) {
        let Some(arrived) = arrived else { return };
        let lag_ns = arrived.elapsed().as_nanos() as u64;
        let live = checker.live_txns() as i64;
        let staleness = checker.watermark_staleness();
        let prov = checker.provenance_bytes() as u64;
        self.lag_ns.store(lag_ns, Ordering::Relaxed);
        self.live_txns.store(live, Ordering::Relaxed);
        self.watermark_staleness.store(staleness, Ordering::Relaxed);
        self.prov_bytes.store(prov, Ordering::Relaxed);
        self.pruned_txns
            .store(checker.pruned_txns(), Ordering::Relaxed);
        self.stale_refs
            .store(checker.stale_refs(), Ordering::Relaxed);

        adya_obs::gauge!("sli.live_txns").set(live);
        adya_obs::gauge!("sli.watermark_staleness").set(staleness as i64);
        adya_obs::gauge!("sli.provenance_bytes").set(prov as i64);
        adya_obs::gauge!("sli.ingest_lag_us").set((lag_ns / 1_000) as i64);
        adya_obs::histogram!("sli.ingest_lag_ns").record(lag_ns);
    }

    /// Records one verdict: counts the commit and captures an
    /// exemplar for each newly fired phenomenon (first fire per kind
    /// wins; capped at 32).
    pub fn observe_verdict(&self, v: &Verdict) {
        self.commits.store(v.committed, Ordering::Relaxed);
        if v.new_fired.is_empty() {
            return;
        }
        let Some(id) = &v.witness_id else { return };
        for &kind in &v.new_fired {
            let bit = 1u64 << (kind as u8 as u64 % 64);
            if self.exemplar_kinds.fetch_or(bit, Ordering::Relaxed) & bit != 0 {
                continue;
            }
            let mut ex = self.exemplars.lock().expect("exemplar lock");
            if ex.len() < EXEMPLAR_CAP {
                ex.push(Exemplar {
                    kind,
                    txn: v.txn.map(|t| t.0),
                    witness_id: id.clone(),
                    committed: v.committed,
                });
            }
        }
    }

    /// Milliseconds since a judgement last saw the arrival count
    /// advance (`None` before the first event). Liveness is measured
    /// between scrapes — the ingest thread only bumps a counter, and
    /// the scrape side does the clock reads: a scrape that finds new
    /// arrivals since the previous one resets the gap to zero; one
    /// that finds none reports how long the count has sat still.
    pub fn ms_since_last_event(&self) -> Option<u64> {
        let arr = self.arrivals.load(Ordering::Relaxed);
        if arr == 0 {
            return None;
        }
        let now = self.start.elapsed().as_nanos() as u64;
        if self.last_seen_arrivals.swap(arr, Ordering::Relaxed) != arr {
            self.last_progress_ns.store(now, Ordering::Relaxed);
            return Some(0);
        }
        Some(now.saturating_sub(self.last_progress_ns.load(Ordering::Relaxed)) / 1_000_000)
    }

    /// Last sampled ingest lag in milliseconds.
    pub fn lag_ms(&self) -> u64 {
        self.lag_ns.load(Ordering::Relaxed) / 1_000_000
    }

    /// The health judgement: `Ok` when every SLI is inside the
    /// policy, else the list of violated conditions.
    pub fn judge(&self) -> Result<(), Vec<String>> {
        let mut reasons = Vec::new();
        if let Some(ms) = self.ms_since_last_event() {
            if ms > self.policy.stale_ms {
                reasons.push(format!(
                    "stale: {ms}ms since last event (threshold {}ms)",
                    self.policy.stale_ms
                ));
            }
        }
        let lag = self.lag_ms();
        if lag > self.policy.lag_ms {
            reasons.push(format!(
                "lagging: last ingest lag {lag}ms (threshold {}ms)",
                self.policy.lag_ms
            ));
        }
        if reasons.is_empty() {
            Ok(())
        } else {
            Err(reasons)
        }
    }

    /// Renders the `/health` document: the judgement, every SLI, the
    /// thresholds, verdict-latency percentiles from the global
    /// registry, and the fired-phenomenon exemplars.
    pub fn health_json(&self) -> String {
        let verdict_hist = adya_obs::global()
            .snapshot()
            .histogram("online.verdict_latency")
            .cloned();
        let judgement = self.judge();
        let mut w = JsonWriter::new();
        w.open_object(None);
        w.bool_field("healthy", judgement.is_ok());
        w.open_array(Some("reasons"));
        if let Err(reasons) = &judgement {
            for r in reasons {
                w.raw_element(&format!("\"{}\"", adya_obs::json::esc(r)));
            }
        }
        w.close_array();
        w.open_object(Some("sli"));
        w.u64_field("events", self.arrivals.load(Ordering::Relaxed));
        w.u64_field("commits", self.commits.load(Ordering::Relaxed));
        w.u64_field(
            "live_txns",
            self.live_txns.load(Ordering::Relaxed).max(0) as u64,
        );
        w.u64_field(
            "watermark_staleness",
            self.watermark_staleness.load(Ordering::Relaxed),
        );
        w.u64_field("provenance_bytes", self.prov_bytes.load(Ordering::Relaxed));
        w.u64_field("pruned_txns", self.pruned_txns.load(Ordering::Relaxed));
        w.u64_field("stale_refs", self.stale_refs.load(Ordering::Relaxed));
        w.u64_field("ingest_lag_ms", self.lag_ms());
        w.u64_field(
            "ms_since_last_event",
            self.ms_since_last_event().unwrap_or(0),
        );
        if let Some(h) = verdict_hist {
            w.u64_field("verdict_latency_ns_p50", h.p50);
            w.u64_field("verdict_latency_ns_p99", h.p99);
        }
        w.close_object();
        w.open_object(Some("thresholds"));
        w.u64_field("stale_ms", self.policy.stale_ms);
        w.u64_field("lag_ms", self.policy.lag_ms);
        w.close_object();
        w.open_array(Some("exemplars"));
        // Clone the exemplars out so the lock is not held across JSON
        // rendering — a slow scrape must never stall the ingest-side
        // record path that appends under this mutex.
        let exemplars: Vec<Exemplar> = self.exemplars.lock().expect("exemplar lock").clone();
        for ex in &exemplars {
            let mut e = JsonWriter::new();
            e.open_object(None);
            e.str_field("phenomenon", &ex.kind.to_string());
            match ex.txn {
                Some(t) => e.u64_field("txn", u64::from(t)),
                None => e.raw_field("txn", "null"),
            }
            e.str_field("witness_id", &ex.witness_id);
            e.u64_field("committed", ex.committed);
            e.close_object();
            w.raw_element(&e.finish());
        }
        w.close_array();
        w.close_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::{Event, ReadEvent, TxnId, VersionId, WriteEvent};
    use std::time::Duration;

    fn w(txn: u32, object: u32, seq: u32) -> Event {
        Event::Write(WriteEvent {
            txn: TxnId(txn),
            object: adya_history::ObjectId(object),
            seq,
            kind: adya_history::VersionKind::Visible,
            value: None,
        })
    }

    fn r(txn: u32, object: u32, wtxn: u32, wseq: u32) -> Event {
        Event::Read(ReadEvent {
            txn: TxnId(txn),
            object: adya_history::ObjectId(object),
            version: VersionId::new(TxnId(wtxn), wseq),
            through_cursor: false,
        })
    }

    /// Circular information flow: T1 and T2 each read the other's
    /// write, so G1c fires at T2's commit — a commit-time fire, which
    /// is what produces a verdict with `new_fired` (and an exemplar).
    fn drive(monitor: &CheckerMonitor) -> OnlineChecker {
        let mut c = OnlineChecker::new();
        let evs = [
            Event::Begin(TxnId(1)),
            Event::Begin(TxnId(2)),
            w(1, 0, 1),
            w(2, 1, 1),
            r(1, 1, 2, 1),
            r(2, 0, 1, 1),
            Event::Commit(TxnId(1)),
            Event::Commit(TxnId(2)),
        ];
        for e in &evs {
            let arrived = monitor.arrival();
            let v = c.ingest(e);
            monitor.observe_event(&c, arrived);
            if let Some(v) = v {
                monitor.observe_verdict(&v);
            }
        }
        let v = c.finish();
        monitor.observe_verdict(&v);
        c
    }

    #[test]
    fn healthy_stream_reports_slis_and_exemplars() {
        // Sampling 1: every event captured, so the SLIs are exact.
        let m = CheckerMonitor::with_sampling(HealthPolicy::default(), 1);
        let c = drive(&m);
        assert!(c.fired_kinds().contains(&PhenomenonKind::G1c));
        let health = m.health_json();
        assert!(health.contains("\"healthy\": true"), "{health}");
        assert!(health.contains("\"events\": 8"), "{health}");
        assert!(health.contains("\"phenomenon\": \"G1c\""), "{health}");
        assert!(health.contains("\"witness_id\": \"w"), "{health}");
    }

    #[test]
    fn staleness_threshold_degrades_health() {
        let m = CheckerMonitor::with_sampling(
            HealthPolicy {
                stale_ms: 0,
                lag_ms: 1_000,
            },
            1,
        );
        drive(&m);
        // Staleness is judged between scrapes: the first one latches
        // the arrival count, the next sees it unchanged.
        assert!(m.judge().is_ok(), "first scrape sees progress");
        std::thread::sleep(Duration::from_millis(5));
        let judgement = m.judge();
        assert!(judgement.is_err());
        let health = m.health_json();
        assert!(health.contains("\"healthy\": false"), "{health}");
        assert!(health.contains("stale:"), "{health}");
    }

    #[test]
    fn induced_lag_degrades_health_within_one_event() {
        let m = CheckerMonitor::new(HealthPolicy {
            stale_ms: 60_000,
            lag_ms: 0,
        });
        let mut c = OnlineChecker::new();
        let arrived = m.arrival();
        assert!(arrived.is_some(), "first event is always sampled");
        std::thread::sleep(Duration::from_millis(3));
        c.ingest(&Event::Begin(TxnId(1)));
        m.observe_event(&c, arrived);
        assert!(m.lag_ms() >= 3);
        assert!(m.judge().is_err());
        assert!(m.health_json().contains("lagging:"));
    }

    #[test]
    fn exemplars_are_first_fire_per_kind() {
        let m = CheckerMonitor::new(HealthPolicy::default());
        drive(&m);
        drive(&m); // same phenomena again: no duplicate exemplars
        let health = m.health_json();
        assert_eq!(health.matches("\"phenomenon\": \"G1c\"").count(), 1);
    }
}

//! Incremental parser for the paper's textual notation, token by
//! token, for `adya-check --stream` and canned event logs.
//!
//! Supports the item-operation subset of the batch parser: `b1`,
//! `c1`, `a1`, `w1(x[,v])`, `r1(x2[,v])`, `rc1(x2)`, with version
//! targets `x2` (latest seen write of T2 on x), `x2:3` (explicit
//! modification counter) and `xinit`. Predicate reads (`#pred`, `rp…`)
//! and trailing explicit version orders (`[x1 << x2]`) are batch-only
//! concepts — the online checker assumes install order = commit order
//! — and are rejected with a clear error.

use std::collections::HashMap;

use adya_history::{Event, ObjectId, ReadEvent, TxnId, Value, VersionId, VersionKind, WriteEvent};

/// Streaming token parser. Stateful: it interns object names and
/// tracks each transaction's per-object write counters so that `r2(x1)`
/// resolves to the latest modification T1 has made to `x` *so far*.
#[derive(Debug, Default)]
pub struct StreamParser {
    objects: HashMap<String, ObjectId>,
    names: Vec<String>,
    last_seq: HashMap<(TxnId, ObjectId), u32>,
}

impl StreamParser {
    /// An empty parser.
    pub fn new() -> StreamParser {
        StreamParser::default()
    }

    /// The interned name of `o` (for rendering verdicts).
    pub fn object_name(&self, o: ObjectId) -> &str {
        &self.names[o.0 as usize]
    }

    fn object(&mut self, name: &str) -> ObjectId {
        if let Some(&o) = self.objects.get(name) {
            return o;
        }
        let o = ObjectId(self.names.len() as u32);
        self.objects.insert(name.to_string(), o);
        self.names.push(name.to_string());
        o
    }

    /// Parses one whitespace-delimited token into an [`Event`].
    pub fn parse_token(&mut self, tok: &str) -> Result<Event, String> {
        if tok.starts_with("#pred") || tok.starts_with("rp") {
            return Err(format!(
                "{tok:?}: predicate reads are not supported in streaming mode"
            ));
        }
        if tok.starts_with('[') {
            return Err(format!(
                "{tok:?}: explicit version orders are not supported in streaming mode \
                 (install order is commit order)"
            ));
        }
        for (prefix, make) in [
            ("b", Event::Begin as fn(TxnId) -> Event),
            ("c", Event::Commit as fn(TxnId) -> Event),
            ("a", Event::Abort as fn(TxnId) -> Event),
        ] {
            if let Some(rest) = tok.strip_prefix(prefix) {
                if let Ok(n) = rest.parse::<u32>() {
                    return Ok(make(TxnId(n)));
                }
            }
        }
        let (cursor, rest) = if let Some(r) = tok.strip_prefix("rc") {
            (true, r)
        } else if let Some(r) = tok.strip_prefix('r') {
            (false, r)
        } else if let Some(r) = tok.strip_prefix('w') {
            return self.parse_write(tok, r);
        } else {
            return Err(format!("unrecognized token {tok:?}"));
        };
        let (txn, target, _value) = split_call(tok, rest)?;
        let (name, vref) = split_version_target(target)
            .ok_or_else(|| format!("{tok:?}: bad read target {target:?}"))?;
        let object = self.object(name);
        let version = match vref {
            VersionRef::Init => VersionId::INIT,
            VersionRef::Latest(w) => {
                let seq = self.last_seq.get(&(w, object)).copied().unwrap_or(1);
                VersionId::new(w, seq)
            }
            VersionRef::Exact(w, seq) => VersionId::new(w, seq),
        };
        Ok(Event::Read(ReadEvent {
            txn,
            object,
            version,
            through_cursor: cursor,
        }))
    }

    fn parse_write(&mut self, tok: &str, rest: &str) -> Result<Event, String> {
        let (txn, target, value) = split_call(tok, rest)?;
        if target.chars().any(|c| c.is_ascii_digit()) {
            return Err(format!(
                "{tok:?}: write targets are object names without version suffixes"
            ));
        }
        let object = self.object(target);
        let seq = self.last_seq.entry((txn, object)).or_insert(0);
        *seq += 1;
        let seq = *seq;
        let (kind, value) = match value {
            Some("dead") => (VersionKind::Dead, None),
            Some(v) => (
                VersionKind::Visible,
                Some(
                    v.parse::<i64>()
                        .map(Value::Int)
                        .unwrap_or_else(|_| Value::str(v)),
                ),
            ),
            None => (VersionKind::Visible, None),
        };
        Ok(Event::Write(WriteEvent {
            txn,
            object,
            seq,
            kind,
            value,
        }))
    }
}

/// Splits `12(x,5)` into `(TxnId(12), "x", Some("5"))`.
fn split_call<'a>(tok: &str, rest: &'a str) -> Result<(TxnId, &'a str, Option<&'a str>), String> {
    let open = rest
        .find('(')
        .ok_or_else(|| format!("unrecognized token {tok:?}"))?;
    let txn: u32 = rest[..open]
        .parse()
        .map_err(|_| format!("{tok:?}: bad transaction number"))?;
    let inner = rest[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| format!("{tok:?}: missing closing paren"))?;
    let mut args = inner.split(',').map(str::trim);
    let target = args
        .next()
        .filter(|t| !t.is_empty())
        .ok_or_else(|| format!("{tok:?}: missing target"))?;
    Ok((TxnId(txn), target, args.next()))
}

enum VersionRef {
    Init,
    Latest(TxnId),
    Exact(TxnId, u32),
}

/// Mirrors the batch parser: the object name is the maximal prefix not
/// ending in a digit; `xinit` selects the initial version.
fn split_version_target(target: &str) -> Option<(&str, VersionRef)> {
    if let Some(name) = target.strip_suffix("init") {
        if !name.is_empty() {
            return Some((name, VersionRef::Init));
        }
    }
    let (base, seq) = match target.split_once(':') {
        Some((b, s)) => (b, Some(s.parse::<u32>().ok()?)),
        None => (target, None),
    };
    let digits_at = base
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_ascii_digit())
        .last()
        .map(|(i, _)| i)?;
    let (name, writer) = base.split_at(digits_at);
    if name.is_empty() {
        return None;
    }
    let writer: u32 = writer.parse().ok()?;
    Some(match seq {
        Some(s) => (name, VersionRef::Exact(TxnId(writer), s)),
        None => (name, VersionRef::Latest(TxnId(writer))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_basic_forms() {
        let mut p = StreamParser::new();
        assert_eq!(p.parse_token("b1").unwrap(), Event::Begin(TxnId(1)));
        let w = p.parse_token("w1(x,5)").unwrap();
        match &w {
            Event::Write(we) => {
                assert_eq!(we.txn, TxnId(1));
                assert_eq!(we.seq, 1);
                assert_eq!(we.value, Some(Value::Int(5)));
            }
            other => panic!("{other:?}"),
        }
        // Second write of the same txn bumps the seq.
        match p.parse_token("w1(x,6)").unwrap() {
            Event::Write(we) => assert_eq!(we.seq, 2),
            other => panic!("{other:?}"),
        }
        // Latest-version read resolves to seq 2.
        match p.parse_token("r2(x1)").unwrap() {
            Event::Read(re) => {
                assert_eq!(re.version, VersionId::new(TxnId(1), 2));
                assert!(!re.through_cursor);
            }
            other => panic!("{other:?}"),
        }
        match p.parse_token("rc2(x1:1)").unwrap() {
            Event::Read(re) => {
                assert_eq!(re.version, VersionId::new(TxnId(1), 1));
                assert!(re.through_cursor);
            }
            other => panic!("{other:?}"),
        }
        match p.parse_token("r2(yinit)").unwrap() {
            Event::Read(re) => assert!(re.version.is_init()),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.parse_token("c2").unwrap(), Event::Commit(TxnId(2)));
        assert_eq!(p.parse_token("a1").unwrap(), Event::Abort(TxnId(1)));
    }

    #[test]
    fn rejects_batch_only_notation() {
        let mut p = StreamParser::new();
        assert!(p.parse_token("#pred(P,1,9)").is_err());
        assert!(p.parse_token("rp1(P: x0)").is_err());
        assert!(p.parse_token("[x1 << x2]").is_err());
        assert!(p.parse_token("zzz").is_err());
    }

    #[test]
    fn dead_writes_and_string_values() {
        let mut p = StreamParser::new();
        match p.parse_token("w3(x,dead)").unwrap() {
            Event::Write(we) => {
                assert_eq!(we.kind, VersionKind::Dead);
                assert_eq!(we.value, None);
            }
            other => panic!("{other:?}"),
        }
        match p.parse_token("w3(y,hello)").unwrap() {
            Event::Write(we) => assert_eq!(we.value, Some(Value::str("hello"))),
            other => panic!("{other:?}"),
        }
    }
}

//! Event input for the online checker: the incremental text-notation
//! parser (`adya-check --stream` tokens) and the durable binary event
//! log with torn-tail detection.
//!
//! The text parser supports the item-operation subset of the batch
//! parser: `b1`, `c1`, `a1`, `w1(x[,v])`, `r1(x2[,v])`, `rc1(x2)`,
//! with version targets `x2` (latest seen write of T2 on x), `x2:3`
//! (explicit modification counter) and `xinit`. Predicate reads
//! (`#pred`, `rp…`) and trailing explicit version orders (`[x1 <<
//! x2]`) are batch-only concepts — the online checker assumes install
//! order = commit order — and are rejected with a clear error.
//!
//! The binary log ([`EventLogWriter`] / [`EventLogReader`]) is the
//! crash-safe on-disk form: a magic header followed by
//! length-prefixed, CRC-32-checksummed records, one [`Event`] each. A
//! process killed mid-append leaves a *torn tail* — a final record
//! whose bytes ran out or whose checksum fails — which the reader
//! reports as [`LogError::TornTail`] with the exact byte offset of
//! the last good record, so the caller can truncate and resume
//! appending instead of refusing the whole file.

use std::collections::HashMap;
use std::io::Write;

use adya_history::{Event, ObjectId, ReadEvent, TxnId, Value, VersionId, VersionKind, WriteEvent};

use crate::wire::{self, WireError};

/// Streaming token parser. Stateful: it interns object names and
/// tracks each transaction's per-object write counters so that `r2(x1)`
/// resolves to the latest modification T1 has made to `x` *so far*.
///
/// Because that state determines how future tokens parse, a durable
/// session must persist it alongside the checker: [`snapshot`] /
/// [`restore`] freeze it to deterministic bytes (binary log events
/// alone cannot rebuild the name table).
///
/// [`snapshot`]: StreamParser::snapshot
/// [`restore`]: StreamParser::restore
#[derive(Debug, Default, Clone)]
pub struct StreamParser {
    objects: HashMap<String, ObjectId>,
    names: Vec<String>,
    last_seq: HashMap<(TxnId, ObjectId), u32>,
}

impl StreamParser {
    /// An empty parser.
    pub fn new() -> StreamParser {
        StreamParser::default()
    }

    /// Serializes the parser state (interned names and per-(txn,
    /// object) write counters) to deterministic bytes: equal states
    /// produce equal bytes, so snapshots can prove state equality.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = wire::Enc::new();
        e.len(self.names.len());
        for name in &self.names {
            e.str(name);
        }
        let mut seqs: Vec<_> = self.last_seq.iter().collect();
        seqs.sort_by_key(|((t, o), _)| (t.0, o.0));
        e.len(seqs.len());
        for ((txn, object), seq) in seqs {
            e.u32(txn.0);
            e.u32(object.0);
            e.u32(*seq);
        }
        e.into_bytes()
    }

    /// Revives a parser from [`snapshot`](StreamParser::snapshot)
    /// bytes.
    pub fn restore(bytes: &[u8]) -> Result<StreamParser, WireError> {
        let mut d = wire::Dec::new(bytes);
        let n = d.len()?;
        let mut names = Vec::with_capacity(n);
        let mut objects = HashMap::with_capacity(n);
        for i in 0..n {
            let name = d.str()?;
            objects.insert(name.clone(), ObjectId(i as u32));
            names.push(name);
        }
        let n = d.len()?;
        let mut last_seq = HashMap::with_capacity(n);
        for _ in 0..n {
            let txn = TxnId(d.u32()?);
            let object = ObjectId(d.u32()?);
            let seq = d.u32()?;
            if object.0 as usize >= names.len() {
                return Err(WireError::Malformed(format!(
                    "write counter references unknown object {}",
                    object.0
                )));
            }
            last_seq.insert((txn, object), seq);
        }
        if d.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after parser state",
                d.remaining()
            )));
        }
        Ok(StreamParser {
            objects,
            names,
            last_seq,
        })
    }

    /// The interned name of `o` (for rendering verdicts).
    pub fn object_name(&self, o: ObjectId) -> &str {
        &self.names[o.0 as usize]
    }

    /// Number of interned object names (ids are `0..count`).
    pub fn interned(&self) -> usize {
        self.names.len()
    }

    /// Interns `name` (idempotent), returning its id. Durable sessions
    /// use this to rebuild the name table from a persisted side log —
    /// the binary event log stores resolved ids only.
    pub fn intern(&mut self, name: &str) -> ObjectId {
        self.object(name)
    }

    /// Records that `txn` has installed modification `seq` of
    /// `object`, as if a `w` token had been parsed. Replaying decoded
    /// log events through this keeps latest-version read resolution
    /// (`r2(x1)`) identical to the uninterrupted run.
    pub fn note_write(&mut self, txn: TxnId, object: ObjectId, seq: u32) {
        self.last_seq.insert((txn, object), seq);
    }

    fn object(&mut self, name: &str) -> ObjectId {
        if let Some(&o) = self.objects.get(name) {
            return o;
        }
        let o = ObjectId(self.names.len() as u32);
        self.objects.insert(name.to_string(), o);
        self.names.push(name.to_string());
        o
    }

    /// Parses one whitespace-delimited token into an [`Event`].
    pub fn parse_token(&mut self, tok: &str) -> Result<Event, String> {
        if tok.starts_with("#pred") || tok.starts_with("rp") {
            return Err(format!(
                "{tok:?}: predicate reads are not supported in streaming mode"
            ));
        }
        if tok.starts_with('[') {
            return Err(format!(
                "{tok:?}: explicit version orders are not supported in streaming mode \
                 (install order is commit order)"
            ));
        }
        for (prefix, make) in [
            ("b", Event::Begin as fn(TxnId) -> Event),
            ("c", Event::Commit as fn(TxnId) -> Event),
            ("a", Event::Abort as fn(TxnId) -> Event),
        ] {
            if let Some(rest) = tok.strip_prefix(prefix) {
                if let Ok(n) = rest.parse::<u32>() {
                    return Ok(make(TxnId(n)));
                }
            }
        }
        let (cursor, rest) = if let Some(r) = tok.strip_prefix("rc") {
            (true, r)
        } else if let Some(r) = tok.strip_prefix('r') {
            (false, r)
        } else if let Some(r) = tok.strip_prefix('w') {
            return self.parse_write(tok, r);
        } else {
            return Err(format!("unrecognized token {tok:?}"));
        };
        let (txn, target, _value) = split_call(tok, rest)?;
        let (name, vref) = split_version_target(target)
            .ok_or_else(|| format!("{tok:?}: bad read target {target:?}"))?;
        let object = self.object(name);
        let version = match vref {
            VersionRef::Init => VersionId::INIT,
            VersionRef::Latest(w) => {
                let seq = self.last_seq.get(&(w, object)).copied().unwrap_or(1);
                VersionId::new(w, seq)
            }
            VersionRef::Exact(w, seq) => VersionId::new(w, seq),
        };
        Ok(Event::Read(ReadEvent {
            txn,
            object,
            version,
            through_cursor: cursor,
        }))
    }

    fn parse_write(&mut self, tok: &str, rest: &str) -> Result<Event, String> {
        let (txn, target, value) = split_call(tok, rest)?;
        if target.chars().any(|c| c.is_ascii_digit()) {
            return Err(format!(
                "{tok:?}: write targets are object names without version suffixes"
            ));
        }
        let object = self.object(target);
        let seq = self.last_seq.entry((txn, object)).or_insert(0);
        *seq += 1;
        let seq = *seq;
        let (kind, value) = match value {
            Some("dead") => (VersionKind::Dead, None),
            Some(v) => (
                VersionKind::Visible,
                Some(
                    v.parse::<i64>()
                        .map(Value::Int)
                        .unwrap_or_else(|_| Value::str(v)),
                ),
            ),
            None => (VersionKind::Visible, None),
        };
        Ok(Event::Write(WriteEvent {
            txn,
            object,
            seq,
            kind,
            value,
        }))
    }
}

/// Splits `12(x,5)` into `(TxnId(12), "x", Some("5"))`.
fn split_call<'a>(tok: &str, rest: &'a str) -> Result<(TxnId, &'a str, Option<&'a str>), String> {
    let open = rest
        .find('(')
        .ok_or_else(|| format!("unrecognized token {tok:?}"))?;
    let txn: u32 = rest[..open]
        .parse()
        .map_err(|_| format!("{tok:?}: bad transaction number"))?;
    let inner = rest[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| format!("{tok:?}: missing closing paren"))?;
    let mut args = inner.split(',').map(str::trim);
    let target = args
        .next()
        .filter(|t| !t.is_empty())
        .ok_or_else(|| format!("{tok:?}: missing target"))?;
    Ok((TxnId(txn), target, args.next()))
}

enum VersionRef {
    Init,
    Latest(TxnId),
    Exact(TxnId, u32),
}

/// Mirrors the batch parser: the object name is the maximal prefix not
/// ending in a digit; `xinit` selects the initial version.
fn split_version_target(target: &str) -> Option<(&str, VersionRef)> {
    if let Some(name) = target.strip_suffix("init") {
        if !name.is_empty() {
            return Some((name, VersionRef::Init));
        }
    }
    let (base, seq) = match target.split_once(':') {
        Some((b, s)) => (b, Some(s.parse::<u32>().ok()?)),
        None => (target, None),
    };
    let digits_at = base
        .char_indices()
        .rev()
        .take_while(|(_, c)| c.is_ascii_digit())
        .last()
        .map(|(i, _)| i)?;
    let (name, writer) = base.split_at(digits_at);
    if name.is_empty() {
        return None;
    }
    let writer: u32 = writer.parse().ok()?;
    Some(match seq {
        Some(s) => (name, VersionRef::Exact(TxnId(writer), s)),
        None => (name, VersionRef::Latest(TxnId(writer))),
    })
}

// ----------------------------------------------------------------------
// Durable binary event log
// ----------------------------------------------------------------------

/// First 8 bytes of every binary event log.
pub const LOG_MAGIC: [u8; 8] = *b"ADYALOG\x01";

/// Failure while reading a binary event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// The file does not start with [`LOG_MAGIC`].
    BadMagic,
    /// The final record is incomplete or fails its checksum: the
    /// writer was killed mid-append. `good_len` is the byte length of
    /// the intact prefix — truncate there and the log is valid again.
    TornTail {
        /// Bytes of intact log before the torn record.
        good_len: usize,
        /// What exactly was wrong with the tail.
        detail: String,
    },
    /// A record *before* the final one is damaged: this is corruption,
    /// not a torn write, and truncation would silently drop good data.
    Corrupt {
        /// Byte offset of the bad record.
        offset: usize,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::BadMagic => write!(f, "not an adya event log (bad magic)"),
            LogError::TornTail { good_len, detail } => {
                write!(f, "torn tail after byte {good_len}: {detail}")
            }
            LogError::Corrupt { offset, detail } => {
                write!(f, "corrupt record at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for LogError {}

/// Appends framed events to any [`Write`] sink.
///
/// Each record is `[len: u32 LE][crc32(payload): u32 LE][payload]`;
/// the payload is [`wire::encode_event`]. The writer does not buffer:
/// call sites that need durability decide when to flush/sync.
#[derive(Debug)]
pub struct EventLogWriter<W: Write> {
    sink: W,
}

impl<W: Write> EventLogWriter<W> {
    /// Starts a fresh log on `sink`, writing the magic header.
    pub fn create(mut sink: W) -> std::io::Result<EventLogWriter<W>> {
        sink.write_all(&LOG_MAGIC)?;
        Ok(EventLogWriter { sink })
    }

    /// Resumes appending to a sink already positioned at the end of an
    /// intact log (no header is written).
    pub fn append_to(sink: W) -> EventLogWriter<W> {
        EventLogWriter { sink }
    }

    /// Appends one event record.
    pub fn append(&mut self, ev: &Event) -> std::io::Result<()> {
        let payload = wire::encode_event(ev);
        self.sink.write_all(&(payload.len() as u32).to_le_bytes())?;
        self.sink.write_all(&wire::crc32(&payload).to_le_bytes())?;
        self.sink.write_all(&payload)
    }

    /// Flushes and returns the underlying sink.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Iterates the records of an in-memory binary event log.
///
/// A damaged *final* record yields [`LogError::TornTail`]; damage
/// anywhere else yields [`LogError::Corrupt`]. After any error the
/// reader is exhausted.
#[derive(Debug)]
pub struct EventLogReader<'a> {
    buf: &'a [u8],
    pos: usize,
    failed: bool,
}

impl<'a> EventLogReader<'a> {
    /// Opens `buf` as a binary log, validating the magic header.
    pub fn open(buf: &'a [u8]) -> Result<EventLogReader<'a>, LogError> {
        if buf.len() < LOG_MAGIC.len() || buf[..LOG_MAGIC.len()] != LOG_MAGIC {
            return Err(LogError::BadMagic);
        }
        Ok(EventLogReader {
            buf,
            pos: LOG_MAGIC.len(),
            failed: false,
        })
    }

    /// Opens `buf` positioned at `offset` — a byte offset previously
    /// reported by [`offset`](EventLogReader::offset) or by
    /// [`LogError::TornTail::good_len`] — so recovery resumes exactly
    /// where a prior scan stopped instead of re-reading the segment
    /// from the top. `offset` must land on a record boundary inside
    /// the log (at minimum the magic header, at most the buffer end).
    ///
    /// [`LogError::TornTail::good_len`]: LogError::TornTail
    pub fn open_at(buf: &'a [u8], offset: usize) -> Result<EventLogReader<'a>, LogError> {
        let reader = EventLogReader::open(buf)?;
        if offset < LOG_MAGIC.len() || offset > buf.len() {
            return Err(LogError::Corrupt {
                offset,
                detail: format!(
                    "resume offset outside the log (header {}, len {})",
                    LOG_MAGIC.len(),
                    buf.len()
                ),
            });
        }
        Ok(EventLogReader {
            pos: offset,
            ..reader
        })
    }

    /// True when `buf` starts with the binary-log magic (used by
    /// `adya-check` to auto-detect binary vs. text input).
    pub fn sniff(buf: &[u8]) -> bool {
        buf.len() >= LOG_MAGIC.len() && buf[..LOG_MAGIC.len()] == LOG_MAGIC
    }

    /// Byte offset of the next unread record (= length of the intact
    /// prefix once iteration finishes cleanly).
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn torn(&mut self, detail: String) -> LogError {
        self.failed = true;
        LogError::TornTail {
            good_len: self.pos,
            detail,
        }
    }

    /// Reads the next event; `None` at a clean end of log.
    #[allow(clippy::should_implement_trait)] // fallible, lending-style next
    pub fn next(&mut self) -> Option<Result<Event, LogError>> {
        if self.failed || self.pos == self.buf.len() {
            return None;
        }
        let start = self.pos;
        let rest = &self.buf[start..];
        if rest.len() < 8 {
            return Some(Err(self.torn(format!(
                "{} header bytes of a record frame (need 8)",
                rest.len()
            ))));
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if rest.len() - 8 < len {
            return Some(Err(self.torn(format!(
                "record declares {len} payload bytes, {} present",
                rest.len() - 8
            ))));
        }
        let payload = &rest[8..8 + len];
        let end = start + 8 + len;
        if wire::crc32(payload) != crc {
            // A checksum failure on the very last record is a torn
            // (partially overwritten) append; earlier it is corruption.
            self.failed = true;
            return Some(Err(if end == self.buf.len() {
                LogError::TornTail {
                    good_len: start,
                    detail: "final record failed its checksum".into(),
                }
            } else {
                LogError::Corrupt {
                    offset: start,
                    detail: "record failed its checksum".into(),
                }
            }));
        }
        match wire::decode_event(payload) {
            Ok(ev) => {
                self.pos = end;
                Some(Ok(ev))
            }
            Err(WireError::Truncated) => Some(Err(self.torn("event payload truncated".into()))),
            Err(WireError::Malformed(m)) => {
                self.failed = true;
                Some(Err(LogError::Corrupt {
                    offset: start,
                    detail: m,
                }))
            }
        }
    }
}

/// Encodes `events` as a complete binary log in memory.
pub fn encode_log(events: &[Event]) -> Vec<u8> {
    let mut w = EventLogWriter::create(Vec::new()).expect("Vec<u8> writes are infallible");
    for ev in events {
        w.append(ev).expect("Vec<u8> writes are infallible");
    }
    w.into_inner().expect("Vec<u8> flush is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_basic_forms() {
        let mut p = StreamParser::new();
        assert_eq!(p.parse_token("b1").unwrap(), Event::Begin(TxnId(1)));
        let w = p.parse_token("w1(x,5)").unwrap();
        match &w {
            Event::Write(we) => {
                assert_eq!(we.txn, TxnId(1));
                assert_eq!(we.seq, 1);
                assert_eq!(we.value, Some(Value::Int(5)));
            }
            other => panic!("{other:?}"),
        }
        // Second write of the same txn bumps the seq.
        match p.parse_token("w1(x,6)").unwrap() {
            Event::Write(we) => assert_eq!(we.seq, 2),
            other => panic!("{other:?}"),
        }
        // Latest-version read resolves to seq 2.
        match p.parse_token("r2(x1)").unwrap() {
            Event::Read(re) => {
                assert_eq!(re.version, VersionId::new(TxnId(1), 2));
                assert!(!re.through_cursor);
            }
            other => panic!("{other:?}"),
        }
        match p.parse_token("rc2(x1:1)").unwrap() {
            Event::Read(re) => {
                assert_eq!(re.version, VersionId::new(TxnId(1), 1));
                assert!(re.through_cursor);
            }
            other => panic!("{other:?}"),
        }
        match p.parse_token("r2(yinit)").unwrap() {
            Event::Read(re) => assert!(re.version.is_init()),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.parse_token("c2").unwrap(), Event::Commit(TxnId(2)));
        assert_eq!(p.parse_token("a1").unwrap(), Event::Abort(TxnId(1)));
    }

    #[test]
    fn rejects_batch_only_notation() {
        let mut p = StreamParser::new();
        assert!(p.parse_token("#pred(P,1,9)").is_err());
        assert!(p.parse_token("rp1(P: x0)").is_err());
        assert!(p.parse_token("[x1 << x2]").is_err());
        assert!(p.parse_token("zzz").is_err());
    }

    #[test]
    fn dead_writes_and_string_values() {
        let mut p = StreamParser::new();
        match p.parse_token("w3(x,dead)").unwrap() {
            Event::Write(we) => {
                assert_eq!(we.kind, VersionKind::Dead);
                assert_eq!(we.value, None);
            }
            other => panic!("{other:?}"),
        }
        match p.parse_token("w3(y,hello)").unwrap() {
            Event::Write(we) => assert_eq!(we.value, Some(Value::str("hello"))),
            other => panic!("{other:?}"),
        }
    }

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Begin(TxnId(1)),
            Event::Write(WriteEvent {
                txn: TxnId(1),
                object: ObjectId(0),
                seq: 1,
                kind: VersionKind::Visible,
                value: Some(Value::Int(5)),
            }),
            Event::Commit(TxnId(1)),
            Event::Begin(TxnId(2)),
            Event::Read(ReadEvent {
                txn: TxnId(2),
                object: ObjectId(0),
                version: VersionId::new(TxnId(1), 1),
                through_cursor: false,
            }),
            Event::Abort(TxnId(2)),
        ]
    }

    fn drain(buf: &[u8]) -> (Vec<Event>, Option<LogError>) {
        let mut r = EventLogReader::open(buf).unwrap();
        let mut evs = Vec::new();
        while let Some(item) = r.next() {
            match item {
                Ok(ev) => evs.push(ev),
                Err(e) => return (evs, Some(e)),
            }
        }
        (evs, None)
    }

    #[test]
    fn log_round_trips() {
        let evs = sample_events();
        let buf = encode_log(&evs);
        assert!(EventLogReader::sniff(&buf));
        assert!(!EventLogReader::sniff(b"b1 w1(x) c1"));
        let (got, err) = drain(&buf);
        assert_eq!(err, None);
        assert_eq!(got, evs);
    }

    #[test]
    fn torn_tail_reports_the_intact_prefix() {
        let evs = sample_events();
        let buf = encode_log(&evs);
        // Chop bytes off the final record: every cut length must read
        // back all but the last event and report a torn tail whose
        // good_len lets the caller resume exactly there.
        let full_len = buf.len();
        let last_start = {
            let (_, err) = drain(&buf[..full_len - 1]);
            match err.unwrap() {
                LogError::TornTail { good_len, .. } => good_len,
                other => panic!("{other:?}"),
            }
        };
        for cut in last_start + 1..full_len {
            let (got, err) = drain(&buf[..cut]);
            assert_eq!(got.len(), evs.len() - 1, "cut at {cut}");
            match err.unwrap() {
                LogError::TornTail { good_len, .. } => assert_eq!(good_len, last_start),
                other => panic!("expected torn tail at {cut}, got {other:?}"),
            }
        }
        // Truncating at good_len and appending again yields a clean log.
        let mut healed = buf[..last_start].to_vec();
        let mut w = EventLogWriter::append_to(&mut healed);
        w.append(&Event::Commit(TxnId(9))).unwrap();
        let (got, err) = drain(&healed);
        assert_eq!(err, None);
        assert_eq!(got.last(), Some(&Event::Commit(TxnId(9))));
    }

    #[test]
    fn mid_file_damage_is_corruption_not_torn_tail() {
        let evs = sample_events();
        let mut buf = encode_log(&evs);
        // Flip a payload byte of the FIRST record (header is 8 bytes
        // of magic, then 8 bytes of frame, then the payload).
        buf[17] ^= 0xFF;
        let (got, err) = drain(&buf);
        assert!(got.is_empty());
        assert!(
            matches!(err, Some(LogError::Corrupt { offset: 8, .. })),
            "{err:?}"
        );
        // A checksum failure on the *last* record is a torn tail.
        let mut buf2 = encode_log(&evs);
        let n = buf2.len();
        buf2[n - 1] ^= 0xFF;
        let (got2, err2) = drain(&buf2);
        assert_eq!(got2.len(), evs.len() - 1);
        assert!(matches!(err2, Some(LogError::TornTail { .. })), "{err2:?}");
    }

    #[test]
    fn parser_snapshot_round_trips_and_is_deterministic() {
        let mut p = StreamParser::new();
        p.parse_token("w1(x,5)").unwrap();
        p.parse_token("w1(x,6)").unwrap();
        p.parse_token("w2(y,1)").unwrap();
        let bytes = p.snapshot();
        let q = StreamParser::restore(&bytes).unwrap();
        assert_eq!(q.snapshot(), bytes, "restore is byte-stable");
        // The revived parser resolves latest-version reads with the
        // original counters and interning.
        let mut p2 = p.clone();
        let mut q2 = q;
        assert_eq!(
            q2.parse_token("r3(x1)").unwrap(),
            p2.parse_token("r3(x1)").unwrap()
        );
        assert_eq!(
            q2.parse_token("w1(x)").unwrap(),
            p2.parse_token("w1(x)").unwrap(),
            "seq counters survive"
        );
        assert_eq!(q2.object_name(ObjectId(1)), "y");
        // Truncated and trailing-garbage snapshots are rejected.
        assert!(StreamParser::restore(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes.clone();
        long.push(0);
        assert!(StreamParser::restore(&long).is_err());
    }

    #[test]
    fn open_at_resumes_a_scan_without_rescanning() {
        let evs = sample_events();
        let buf = encode_log(&evs);
        // First pass: read two records, note the offset.
        let mut r = EventLogReader::open(&buf).unwrap();
        r.next().unwrap().unwrap();
        r.next().unwrap().unwrap();
        let mid = r.offset();
        // Second pass resumes exactly there.
        let mut r2 = EventLogReader::open_at(&buf, mid).unwrap();
        let mut rest = Vec::new();
        while let Some(item) = r2.next() {
            rest.push(item.unwrap());
        }
        assert_eq!(rest, evs[2..]);
        // A torn tail's good_len is a valid resume point: the resumed
        // reader immediately reports the same torn tail.
        let torn = &buf[..buf.len() - 3];
        let (prefix, err) = drain(torn);
        let good_len = match err.unwrap() {
            LogError::TornTail { good_len, .. } => good_len,
            other => panic!("{other:?}"),
        };
        assert_eq!(prefix.len(), evs.len() - 1);
        let mut r3 = EventLogReader::open_at(torn, good_len).unwrap();
        match r3.next().unwrap() {
            Err(LogError::TornTail { good_len: g, .. }) => assert_eq!(g, good_len),
            other => panic!("{other:?}"),
        }
        // Out-of-range offsets are refused.
        assert!(EventLogReader::open_at(&buf, 2).is_err());
        assert!(EventLogReader::open_at(&buf, buf.len() + 1).is_err());
        // At exactly the end the reader is cleanly exhausted.
        assert!(EventLogReader::open_at(&buf, buf.len())
            .unwrap()
            .next()
            .is_none());
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert_eq!(
            EventLogReader::open(b"not a log at all").err(),
            Some(LogError::BadMagic)
        );
        assert_eq!(EventLogReader::open(b"").err(), Some(LogError::BadMagic));
    }
}

//! Low-level byte codec shared by the durable event log
//! ([`EventLogWriter`](crate::EventLogWriter)) and the checker's
//! crash/restore snapshots.
//!
//! Everything is little-endian, length-prefixed, and checksummed with
//! CRC-32 (IEEE) so torn writes and bit rot are detected rather than
//! misparsed. No external dependencies: the formats here must be
//! readable by `adya-check` in any build of this workspace.

use std::fmt;

use adya_history::{
    Event, ObjectId, PredicateId, PredicateReadEvent, ReadEvent, Row, TxnId, Value, VersionId,
    VersionKind, WriteEvent,
};

/// CRC-32 (IEEE 802.3, reflected) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Decode failure: the input ended early or held an impossible value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the declared structure did.
    Truncated,
    /// A tag, count or checksum made no sense.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated mid-structure"),
            WireError::Malformed(m) => write!(f, "malformed input: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Byte-string encoder (append-only).
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Consumes the encoder, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a `usize` as u64 (collection sizes, slot indices).
    pub fn len(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends raw bytes (write a length first — e.g. [`Enc::len`] —
    /// if the decoder needs to find the end).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Byte-string decoder (a cursor over a slice).
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// A decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a bool; anything but 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::Malformed(format!("bool byte {b}"))),
        }
    }

    /// Reads a u64 size, refusing values the buffer cannot possibly
    /// hold (each element needs ≥1 byte) so a corrupt count fails fast
    /// instead of allocating gigabytes.
    // A decoder for a length prefix, not a container length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, WireError> {
        let n = self.u64()?;
        if n > self.remaining() as u64 {
            return Err(WireError::Malformed(format!(
                "count {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, WireError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("non-UTF-8 string".into()))
    }

    /// Reads `n` raw bytes (the counterpart of [`Enc::bytes`]).
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }
}

// ----------------------------------------------------------------------
// Event payloads (the durable log's record bodies)
// ----------------------------------------------------------------------

const TAG_BEGIN: u8 = 0;
const TAG_COMMIT: u8 = 1;
const TAG_ABORT: u8 = 2;
const TAG_WRITE: u8 = 3;
const TAG_READ: u8 = 4;
const TAG_PRED_READ: u8 = 5;

const VAL_NONE: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_STR: u8 = 2;
const VAL_BOOL: u8 = 3;
const VAL_TUPLE: u8 = 4;

fn enc_opt_value(e: &mut Enc, v: &Option<Value>) {
    match v {
        None => e.u8(VAL_NONE),
        Some(v) => enc_value(e, v),
    }
}

fn enc_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Int(i) => {
            e.u8(VAL_INT);
            e.i64(*i);
        }
        Value::Str(s) => {
            e.u8(VAL_STR);
            e.str(s);
        }
        Value::Bool(b) => {
            e.u8(VAL_BOOL);
            e.bool(*b);
        }
        Value::Tuple(row) => {
            e.u8(VAL_TUPLE);
            e.len(row.len());
            for (k, v) in row.fields() {
                e.str(k);
                enc_value(e, v);
            }
        }
    }
}

fn dec_opt_value(d: &mut Dec<'_>) -> Result<Option<Value>, WireError> {
    match d.u8()? {
        VAL_NONE => Ok(None),
        tag => dec_value_tagged(d, tag).map(Some),
    }
}

fn dec_value_tagged(d: &mut Dec<'_>, tag: u8) -> Result<Value, WireError> {
    match tag {
        VAL_INT => Ok(Value::Int(d.i64()?)),
        VAL_STR => Ok(Value::Str(d.str()?)),
        VAL_BOOL => Ok(Value::Bool(d.bool()?)),
        VAL_TUPLE => {
            let n = d.len()?;
            let mut row = Row::new();
            for _ in 0..n {
                let k = d.str()?;
                let tag = d.u8()?;
                row.set(k, dec_value_tagged(d, tag)?);
            }
            Ok(Value::Tuple(row))
        }
        t => Err(WireError::Malformed(format!("value tag {t}"))),
    }
}

fn enc_version(e: &mut Enc, v: VersionId) {
    e.u32(v.txn.0);
    e.u32(v.seq);
}

fn dec_version(d: &mut Dec<'_>) -> Result<VersionId, WireError> {
    let txn = TxnId(d.u32()?);
    let seq = d.u32()?;
    Ok(VersionId { txn, seq })
}

/// Encodes one [`Event`] as a self-contained payload (no framing).
pub fn encode_event(ev: &Event) -> Vec<u8> {
    let mut e = Enc::new();
    match ev {
        Event::Begin(t) => {
            e.u8(TAG_BEGIN);
            e.u32(t.0);
        }
        Event::Commit(t) => {
            e.u8(TAG_COMMIT);
            e.u32(t.0);
        }
        Event::Abort(t) => {
            e.u8(TAG_ABORT);
            e.u32(t.0);
        }
        Event::Write(w) => {
            e.u8(TAG_WRITE);
            e.u32(w.txn.0);
            e.u32(w.object.0);
            e.u32(w.seq);
            e.u8(match w.kind {
                VersionKind::Unborn => 0,
                VersionKind::Visible => 1,
                VersionKind::Dead => 2,
            });
            enc_opt_value(&mut e, &w.value);
        }
        Event::Read(r) => {
            e.u8(TAG_READ);
            e.u32(r.txn.0);
            e.u32(r.object.0);
            enc_version(&mut e, r.version);
            e.bool(r.through_cursor);
        }
        Event::PredicateRead(p) => {
            e.u8(TAG_PRED_READ);
            e.u32(p.txn.0);
            e.u32(p.predicate.0);
            e.len(p.vset.len());
            for &(o, v) in &p.vset {
                e.u32(o.0);
                enc_version(&mut e, v);
            }
        }
    }
    e.into_bytes()
}

/// Decodes one [`encode_event`] payload. The whole buffer must be
/// consumed — trailing garbage means a framing bug upstream.
pub fn decode_event(bytes: &[u8]) -> Result<Event, WireError> {
    let mut d = Dec::new(bytes);
    let ev = match d.u8()? {
        TAG_BEGIN => Event::Begin(TxnId(d.u32()?)),
        TAG_COMMIT => Event::Commit(TxnId(d.u32()?)),
        TAG_ABORT => Event::Abort(TxnId(d.u32()?)),
        TAG_WRITE => {
            let txn = TxnId(d.u32()?);
            let object = ObjectId(d.u32()?);
            let seq = d.u32()?;
            let kind = match d.u8()? {
                0 => VersionKind::Unborn,
                1 => VersionKind::Visible,
                2 => VersionKind::Dead,
                k => return Err(WireError::Malformed(format!("version kind {k}"))),
            };
            let value = dec_opt_value(&mut d)?;
            Event::Write(WriteEvent {
                txn,
                object,
                seq,
                kind,
                value,
            })
        }
        TAG_READ => {
            let txn = TxnId(d.u32()?);
            let object = ObjectId(d.u32()?);
            let version = dec_version(&mut d)?;
            let through_cursor = d.bool()?;
            Event::Read(ReadEvent {
                txn,
                object,
                version,
                through_cursor,
            })
        }
        TAG_PRED_READ => {
            let txn = TxnId(d.u32()?);
            let predicate = PredicateId(d.u32()?);
            let n = d.len()?;
            let mut vset = Vec::with_capacity(n);
            for _ in 0..n {
                let o = ObjectId(d.u32()?);
                let v = dec_version(&mut d)?;
                vset.push((o, v));
            }
            Event::PredicateRead(PredicateReadEvent {
                txn,
                predicate,
                vset,
            })
        }
        t => return Err(WireError::Malformed(format!("event tag {t}"))),
    };
    if d.remaining() != 0 {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after event",
            d.remaining()
        )));
    }
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn events_round_trip() {
        let evs = [
            Event::Begin(TxnId(7)),
            Event::Commit(TxnId(7)),
            Event::Abort(TxnId(0)),
            Event::Write(WriteEvent {
                txn: TxnId(1),
                object: ObjectId(3),
                seq: 2,
                kind: VersionKind::Dead,
                value: None,
            }),
            Event::Write(WriteEvent {
                txn: TxnId(1),
                object: ObjectId(3),
                seq: 3,
                kind: VersionKind::Visible,
                value: Some(Value::Tuple(
                    Row::new().with("dept", "Sales").with("sal", 9i64),
                )),
            }),
            Event::Read(ReadEvent {
                txn: TxnId(2),
                object: ObjectId(0),
                version: VersionId::INIT,
                through_cursor: true,
            }),
            Event::PredicateRead(PredicateReadEvent {
                txn: TxnId(4),
                predicate: PredicateId(1),
                vset: vec![(ObjectId(0), VersionId::new(TxnId(1), 2))],
            }),
        ];
        for ev in &evs {
            let bytes = encode_event(ev);
            assert_eq!(&decode_event(&bytes).unwrap(), ev, "{ev:?}");
        }
    }

    #[test]
    fn truncation_and_garbage_are_detected() {
        let bytes = encode_event(&Event::Read(ReadEvent {
            txn: TxnId(2),
            object: ObjectId(0),
            version: VersionId::new(TxnId(1), 1),
            through_cursor: false,
        }));
        assert_eq!(
            decode_event(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated)
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            decode_event(&trailing),
            Err(WireError::Malformed(_))
        ));
        assert!(matches!(
            decode_event(&[99, 0, 0, 0, 0]),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn absurd_count_fails_without_allocating() {
        // A PredicateRead whose vset count claims more elements than
        // the buffer has bytes must error out immediately.
        let mut e = Enc::new();
        e.u8(5); // TAG_PRED_READ
        e.u32(1);
        e.u32(1);
        e.u64(u64::MAX);
        assert!(matches!(
            decode_event(&e.into_bytes()),
            Err(WireError::Malformed(_))
        ));
    }
}

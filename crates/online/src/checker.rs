//! The incremental checker: event ingestion, incremental DSG
//! maintenance, commit-time verdicts and low-watermark GC.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::time::Instant;

use adya_core::{IsolationLevel, PhenomenonKind};
use adya_graph::{DagParts, IncrementalDag, Insert, SlotParts};
use adya_history::{Event, ObjectId, TxnId, VersionId};

use crate::wire::{crc32, Dec, Enc, WireError};

/// Edge label in the incremental graphs: a tiny mask rather than a
/// full `DepKind`, because contraction (GC shortcut edges) must be
/// able to *combine* labels — a shortcut inherits "contains an
/// anti-dependency" from whichever side had one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct EdgeMask(u8);

impl EdgeMask {
    /// ww or wr — a dependency edge.
    const DEP: EdgeMask = EdgeMask(0);
    /// rw — an item anti-dependency edge (possibly via shortcuts).
    const ANTI_ITEM: EdgeMask = EdgeMask(1);

    fn combine(a: EdgeMask, b: EdgeMask) -> EdgeMask {
        EdgeMask(a.0 | b.0)
    }

    fn has_item_anti(self) -> bool {
        self.0 & 1 != 0
    }
}

/// Provenance step kinds (wire-stable codes).
const PROV_WW: u8 = 0;
const PROV_WR: u8 = 1;
const PROV_RW: u8 = 2;

/// Most inducing operations remembered per DSG edge. Contraction
/// concatenates chains, so a cap keeps shortcut provenance bounded.
const PROV_CAP: usize = 8;

/// One concrete operation that induced (part of) a DSG edge: the
/// conflict kind plus the object/version it happened on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ProvStep {
    kind: u8,
    object: ObjectId,
    version: VersionId,
}

impl ProvStep {
    fn render(&self) -> String {
        let k = match self.kind {
            PROV_WW => "ww",
            PROV_WR => "wr",
            _ => "rw",
        };
        format!("{k} {}[{}]", self.object, self.version)
    }
}

/// A per-edge provenance chain. Nearly every edge is induced by one
/// operation, so the single-step case is stored inline — a heap
/// allocation per edge key showed up as the bulk of E16's hot-path
/// overhead. Chains only spill to a `Vec` when a second distinct
/// operation (or a contraction merge) lands on the same edge.
#[derive(Debug, Clone, PartialEq)]
enum ProvChain {
    One(ProvStep),
    Many(Vec<ProvStep>),
}

impl ProvChain {
    fn steps(&self) -> &[ProvStep] {
        match self {
            ProvChain::One(s) => std::slice::from_ref(s),
            ProvChain::Many(v) => v,
        }
    }

    /// Appends `st` if the chain has room and doesn't already hold it.
    fn push(&mut self, st: ProvStep) {
        match self {
            ProvChain::One(s) => {
                if *s != st {
                    *self = ProvChain::Many(vec![*s, st]);
                }
            }
            ProvChain::Many(v) => {
                if v.len() < PROV_CAP && !v.contains(&st) {
                    v.push(st);
                }
            }
        }
    }

    fn from_steps(steps: Vec<ProvStep>) -> ProvChain {
        match steps.as_slice() {
            [one] => ProvChain::One(*one),
            _ => ProvChain::Many(steps),
        }
    }
}

fn render_chain(chain: &[ProvStep]) -> String {
    let mut s = String::new();
    for (i, st) in chain.iter().enumerate() {
        if i > 0 {
            s.push_str("; ");
        }
        s.push_str(&st.render());
    }
    s
}

/// Multiplicative hasher for the provenance maps, whose keys are one
/// or two transaction ids — small, fixed-width, attacker-free. The
/// std SipHash showed up as a measurable share of E16's per-edge
/// overhead; this is the usual FxHash recipe.
#[derive(Debug, Default)]
struct ProvHasher(u64);

impl std::hash::Hasher for ProvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(5) ^ u64::from(b)).wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.0 = (self.0.rotate_left(5) ^ u64::from(v)).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

type ProvMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<ProvHasher>>;

/// One edge of a violating cycle with its provenance, as attached to a
/// [`Verdict`] when the phenomenon fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleEdgeProv {
    /// Depended-on transaction.
    pub from: TxnId,
    /// Depending transaction.
    pub to: TxnId,
    /// True when the edge carries an item anti-dependency (rw),
    /// possibly via GC contraction shortcuts.
    pub anti: bool,
    /// The concrete inducing operations, rendered `kind obj[version]`
    /// and `; `-joined; empty when provenance was disabled or the chain
    /// ran through pruned state.
    pub via: String,
}

/// Garbage-collection policy for the checker.
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// Master switch; disabled means the checker keeps every
    /// transaction forever (exact batch behaviour, unbounded memory).
    pub enabled: bool,
    /// Run a collection pass every this-many ingested events.
    pub interval: u64,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            enabled: true,
            interval: 64,
        }
    }
}

/// The commit-time (or final) answer of the online checker.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The transaction whose commit produced this verdict; `None` for
    /// the final verdict from [`OnlineChecker::finish`].
    pub txn: Option<TxnId>,
    /// Committed transactions in the prefix so far.
    pub committed: u64,
    /// Strongest ANSI-chain level the committed prefix satisfies
    /// (`None` when even PL-1 is violated).
    pub strongest_ansi: Option<IsolationLevel>,
    /// Every phenomenon that has fired in the prefix (latched).
    pub fired: Vec<PhenomenonKind>,
    /// Phenomena that fired for the first time at this commit.
    pub new_fired: Vec<PhenomenonKind>,
    /// Witness for the first newly fired phenomenon, if any.
    pub witness: Option<String>,
    /// Stable id of the first newly fired phenomenon's witness:
    /// [`adya_obs::witness_id`] over the canonical (rotation-invariant)
    /// cycle signature when the offending cycle is known, else over
    /// the witness text. The forensics plane derives witness ids the
    /// same way, so a fired G1c/G2 here links straight to its
    /// forensic witness when both saw the same cycle.
    pub witness_id: Option<String>,
    /// Cycle provenance for the first newly fired phenomenon: every
    /// edge of the offending cycle with the operations that induced
    /// it. `None` when nothing new fired, the phenomenon has no cycle
    /// (G1a/G1b), or provenance tracking is disabled.
    pub cycle: Option<Vec<CycleEdgeProv>>,
    /// Transactions pruned by the GC so far.
    pub pruned_txns: u64,
    /// Reads that referenced an already-pruned (or never-seen) writer:
    /// when non-zero the verdict may be weaker than a batch check of
    /// the full history — flagged, never silent.
    pub stale_refs: u64,
    /// Transactions currently held in memory.
    pub live_txns: usize,
    /// True for the verdict returned by [`OnlineChecker::finish`].
    pub is_final: bool,
}

impl Verdict {
    /// True when none of `level`'s proscribed phenomena have fired.
    pub fn satisfies(&self, level: IsolationLevel) -> bool {
        level.proscribes().iter().all(|p| !self.fired.contains(p))
    }

    /// Renders the verdict as a single-line JSON object (NDJSON-ready).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        match self.txn {
            Some(t) => {
                let _ = write!(s, "\"txn\": {}", t.0);
            }
            None => s.push_str("\"txn\": null"),
        }
        let _ = write!(s, ", \"final\": {}", self.is_final);
        let _ = write!(s, ", \"committed\": {}", self.committed);
        match self.strongest_ansi {
            Some(l) => {
                let _ = write!(s, ", \"strongest_ansi\": \"{l}\"");
            }
            None => s.push_str(", \"strongest_ansi\": null"),
        }
        for (key, kinds) in [("fired", &self.fired), ("new", &self.new_fired)] {
            let _ = write!(s, ", \"{key}\": [");
            for (i, k) in kinds.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{k}\"");
            }
            s.push(']');
        }
        match &self.witness {
            Some(w) => {
                let _ = write!(s, ", \"witness\": \"{}\"", esc(w));
            }
            None => s.push_str(", \"witness\": null"),
        }
        match &self.witness_id {
            Some(id) => {
                let _ = write!(s, ", \"witness_id\": \"{}\"", esc(id));
            }
            None => s.push_str(", \"witness_id\": null"),
        }
        match &self.cycle {
            Some(c) => {
                s.push_str(", \"cycle\": [");
                for (i, e) in c.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(
                        s,
                        "{{\"from\": {}, \"to\": {}, \"label\": \"{}\", \"via\": \"{}\"}}",
                        e.from.0,
                        e.to.0,
                        if e.anti { "rw" } else { "ww/wr" },
                        esc(&e.via)
                    );
                }
                s.push(']');
            }
            None => s.push_str(", \"cycle\": null"),
        }
        let _ = write!(
            s,
            ", \"pruned\": {}, \"stale_refs\": {}, \"live_txns\": {}}}",
            self.pruned_txns, self.stale_refs, self.live_txns
        );
        s
    }
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum Status {
    #[default]
    Active,
    Committed,
    Aborted,
}

/// A read buffered on its (still-active) reader until the reader's
/// terminal event decides whether it produces conflicts at all.
#[derive(Debug, Clone, Copy)]
struct BufferedRead {
    object: ObjectId,
    version: VersionId,
    via_predicate: bool,
    /// Whether this read holds a `refs` pin on its writer.
    counted: bool,
    /// True when the writer was already pruned (or never seen) at
    /// ingest time; resolves to a `stale_refs` tick, never an edge.
    stale: bool,
}

/// A committed reader whose read of a still-active writer's version is
/// parked on that writer until the writer's terminal event.
#[derive(Debug, Clone, Copy)]
struct PendingRead {
    reader: TxnId,
    object: ObjectId,
    seq: u32,
    via_predicate: bool,
}

#[derive(Debug, Default)]
struct TxnState {
    status: Status,
    begin_clock: u64,
    terminal_clock: u64,
    reads: Vec<BufferedRead>,
    /// Last (= highest) write seq per object; kept after the terminal
    /// event for G1a/G1b checks against late-committing readers.
    writes: HashMap<ObjectId, u32>,
    /// Committed readers waiting for this (active) writer's fate.
    pending_readers: Vec<PendingRead>,
    /// Installed versions not yet superseded by a later install.
    unsuperseded: u32,
    /// Buffered or pending reads by live transactions that reference
    /// this transaction as a writer.
    refs: u32,
    /// This (committed) transaction's own reads parked on still-active
    /// writers.
    awaiting: u32,
    /// How many version-order anchors this committed reader occupies,
    /// each of which will emit an rw edge when a successor installs.
    registered: u32,
    /// Clock of the latest install superseding one of this
    /// transaction's versions; prunable only once every active
    /// transaction began after it.
    prune_after: u64,
}

#[derive(Debug)]
struct Entry {
    txn: TxnId,
    readers: Vec<TxnId>,
}

#[derive(Debug, Default)]
struct ObjectState {
    /// Number of versions pruned off the front of `entries`.
    base: usize,
    /// Committed versions in install (= commit) order.
    entries: VecDeque<Entry>,
    /// Absolute position (`base`-inclusive) of each installer.
    pos_of: HashMap<TxnId, usize>,
    /// Committed readers anchored before the first version.
    init_readers: Vec<TxnId>,
}

/// Which phenomena have latched, with the first witness of each.
#[derive(Debug, Default)]
struct Fired {
    mask: u8,
    witnesses: Vec<(PhenomenonKind, String)>,
    /// Cycle provenance captured at first fire, per phenomenon.
    cycles: Vec<(PhenomenonKind, Vec<CycleEdgeProv>)>,
}

const ONLINE_KINDS: [PhenomenonKind; 6] = [
    PhenomenonKind::G0,
    PhenomenonKind::G1a,
    PhenomenonKind::G1b,
    PhenomenonKind::G1c,
    PhenomenonKind::G2Item,
    PhenomenonKind::G2,
];

fn kind_bit(k: PhenomenonKind) -> u8 {
    match k {
        PhenomenonKind::G0 => 1,
        PhenomenonKind::G1a => 2,
        PhenomenonKind::G1b => 4,
        PhenomenonKind::G1c => 8,
        PhenomenonKind::G2Item => 16,
        PhenomenonKind::G2 => 32,
        _ => 0,
    }
}

fn kind_from_bit(b: u8) -> Option<PhenomenonKind> {
    ONLINE_KINDS.iter().copied().find(|&k| kind_bit(k) == b)
}

impl Fired {
    fn has(&self, k: PhenomenonKind) -> bool {
        self.mask & kind_bit(k) != 0
    }

    fn set(&mut self, k: PhenomenonKind, witness: String) -> bool {
        if self.has(k) {
            return false;
        }
        self.mask |= kind_bit(k);
        self.witnesses.push((k, witness));
        true
    }

    fn set_cycle(&mut self, k: PhenomenonKind, cycle: Vec<CycleEdgeProv>) {
        if !cycle.is_empty() && !self.cycles.iter().any(|(ck, _)| *ck == k) {
            self.cycles.push((k, cycle));
        }
    }

    fn cycle_of(&self, k: PhenomenonKind) -> Option<&Vec<CycleEdgeProv>> {
        self.cycles.iter().find(|(ck, _)| *ck == k).map(|(_, c)| c)
    }

    fn kinds(&self) -> Vec<PhenomenonKind> {
        ONLINE_KINDS
            .iter()
            .copied()
            .filter(|&k| self.has(k))
            .collect()
    }
}

type Dag = IncrementalDag<TxnId, EdgeMask>;

/// One DSG edge discovered while resolving a commit, queued for
/// batched application to the cycle graphs (see
/// [`OnlineChecker::apply_edge_plan`]).
#[derive(Debug, Clone, Copy)]
enum PlannedEdge {
    /// Write dependency `from → to`: `to` overwrote `from`'s version
    /// of `object`.
    Ww {
        from: TxnId,
        to: TxnId,
        object: ObjectId,
    },
    /// Read dependency `from → to`: `to` read `version` of `object`
    /// written by `from`.
    Wr {
        from: TxnId,
        to: TxnId,
        object: ObjectId,
        version: VersionId,
    },
    /// Item anti-dependency `from → to`: `to` overwrote a version
    /// of `object` that `from` read.
    Anti {
        from: TxnId,
        to: TxnId,
        object: ObjectId,
    },
}

/// The streaming checker. See the crate docs for scope and semantics.
#[derive(Debug, Default)]
pub struct OnlineChecker {
    clock: u64,
    txns: HashMap<TxnId, TxnState>,
    active: HashSet<TxnId>,
    objects: HashMap<ObjectId, ObjectState>,
    /// ww edges only — a cycle here is G0. Dropped once G0 latches.
    ww: Option<Dag>,
    /// ww + wr — a cycle here is G1c. Dropped once G1c latches.
    dep: Option<Dag>,
    /// ww + wr + rw — a component with an internal anti edge is
    /// G2/G2-item. Dropped once both latch.
    full: Option<Dag>,
    fired: Fired,
    /// Per-edge provenance side map: the concrete operations behind
    /// each live DSG edge. Maintained only while `provenance` is on
    /// and at least one graph is still live; entries touching a pruned
    /// transaction are merged into contraction shortcuts, then purged.
    prov: ProvMap<(TxnId, TxnId), ProvChain>,
    /// Successors per source node of `prov` keys — lets a GC prune
    /// purge a node's entries in O(degree) instead of scanning the map.
    prov_out: ProvMap<TxnId, Vec<TxnId>>,
    /// Predecessors per target node of `prov` keys.
    prov_in: ProvMap<TxnId, Vec<TxnId>>,
    /// Master switch for edge provenance (off by default; see E16 for
    /// the measured overhead).
    provenance: bool,
    /// Telemetry sampling period: every Nth ingested event gets full
    /// span/phase attribution (apply → graph insert → verdict → GC).
    /// 0 (the default) disables per-event telemetry entirely; E17
    /// measures the sampled plane's ingest overhead.
    telemetry_every: u32,
    /// Events left until the next sampled one (countdown avoids a
    /// per-event division on the ingest hot path).
    telemetry_countdown: u32,
    /// Whether the event currently being ingested is sampled.
    sampled_now: bool,
    gc: GcConfig,
    committed: u64,
    pruned_txns: u64,
    stale_refs: u64,
    events_since_gc: u64,
    /// Reorder counts of already-dropped graphs.
    reorders_dropped: u64,
    reorders_reported: u64,
    /// The current commit's edge plan, in sequential discovery order.
    /// Always empty between events (so it never needs snapshotting);
    /// held on the checker only to reuse its allocation across
    /// commits.
    plan: Vec<PlannedEdge>,
    /// Per-graph batch buffers for [`Self::apply_edge_plan`], reused
    /// across commits like `plan`.
    batch_ww: Vec<(TxnId, TxnId, EdgeMask)>,
    batch_dep: Vec<(TxnId, TxnId, EdgeMask)>,
    batch_full: Vec<(TxnId, TxnId, EdgeMask)>,
}

impl OnlineChecker {
    /// A checker with default GC (enabled, interval 64).
    pub fn new() -> OnlineChecker {
        OnlineChecker::with_gc(GcConfig::default())
    }

    /// A checker with an explicit GC policy.
    pub fn with_gc(gc: GcConfig) -> OnlineChecker {
        OnlineChecker {
            ww: Some(IncrementalDag::new()),
            dep: Some(IncrementalDag::new()),
            full: Some(IncrementalDag::new()),
            gc,
            ..OnlineChecker::default()
        }
    }

    /// Turns edge-provenance tracking on or off. Off by default: E16
    /// measures the bookkeeping at roughly 18% of ingest time on
    /// conflict-heavy workloads, above the 10% budget for an
    /// always-on feature. Tools that exist to explain violations
    /// (`adya-check --stream`) turn it on; with it off, violating
    /// verdicts carry `cycle: null` instead of the per-edge inducing
    /// operations.
    pub fn set_provenance(&mut self, on: bool) {
        self.provenance = on;
        if !on {
            self.prov.clear();
            self.prov_out.clear();
            self.prov_in.clear();
        }
    }

    /// Whether edge provenance is being tracked.
    pub fn provenance_enabled(&self) -> bool {
        self.provenance
    }

    /// Turns sampled per-event telemetry on (`every` ≥ 1: every Nth
    /// event is attributed phase by phase — apply span, graph-insert
    /// and cycle-materialization histograms, verdict and GC child
    /// spans — into the global obs registry) or off (`every` = 0, the
    /// default). Sampling exists for the same reason provenance is
    /// opt-in: E17 holds the fully-on plane to ≤10% ingest overhead,
    /// and per-event spans alone would not fit that budget.
    pub fn set_telemetry_sampling(&mut self, every: u32) {
        self.telemetry_every = every;
    }

    /// The telemetry sampling period (0 = off).
    pub fn telemetry_sampling(&self) -> u32 {
        self.telemetry_every
    }

    /// Events between the GC low watermark (the earliest begin of any
    /// live transaction) and the current event clock: how far behind
    /// the stream the collector's pruning horizon sits. Zero when no
    /// transaction is active.
    pub fn watermark_staleness(&self) -> u64 {
        let watermark = self
            .active
            .iter()
            .map(|t| self.txns[t].begin_clock)
            .min()
            .unwrap_or(self.clock);
        self.clock - watermark
    }

    /// Approximate heap footprint of the provenance side maps, in
    /// bytes (capacity-based, so it reflects reserved memory, not just
    /// live entries). Zero when provenance is off.
    pub fn provenance_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut bytes =
            self.prov.capacity() * (size_of::<(TxnId, TxnId)>() + size_of::<ProvChain>());
        for c in self.prov.values() {
            if let ProvChain::Many(v) = c {
                bytes += v.capacity() * size_of::<ProvStep>();
            }
        }
        for side in [&self.prov_out, &self.prov_in] {
            bytes += side.capacity() * (size_of::<TxnId>() + size_of::<Vec<TxnId>>());
            for v in side.values() {
                bytes += v.capacity() * size_of::<TxnId>();
            }
        }
        bytes
    }

    /// Events ingested so far.
    pub fn events(&self) -> u64 {
        self.clock
    }

    /// Transactions currently held in memory.
    pub fn live_txns(&self) -> usize {
        self.txns.len()
    }

    /// Transactions pruned by the GC so far.
    pub fn pruned_txns(&self) -> u64 {
        self.pruned_txns
    }

    /// Reads that referenced a pruned or never-seen writer.
    pub fn stale_refs(&self) -> u64 {
        self.stale_refs
    }

    /// Every phenomenon fired so far (latched).
    pub fn fired_kinds(&self) -> Vec<PhenomenonKind> {
        self.fired.kinds()
    }

    /// Strongest ANSI-chain level the committed prefix satisfies.
    pub fn strongest_ansi(&self) -> Option<IsolationLevel> {
        use PhenomenonKind::*;
        let f = |k| self.fired.has(k);
        if !f(G1a) && !f(G1b) && !f(G1c) && !f(G2) {
            Some(IsolationLevel::PL3)
        } else if !f(G1a) && !f(G1b) && !f(G1c) && !f(G2Item) {
            Some(IsolationLevel::PL299)
        } else if !f(G1a) && !f(G1b) && !f(G1c) {
            Some(IsolationLevel::PL2)
        } else if !f(G0) {
            Some(IsolationLevel::PL1)
        } else {
            None
        }
    }

    /// Feeds one event; returns a [`Verdict`] when the event is a
    /// commit. Events of the initialization transaction are ignored.
    pub fn ingest(&mut self, event: &Event) -> Option<Verdict> {
        if event.txn().is_init() {
            return None;
        }
        self.clock += 1;
        adya_obs::counter!("online.ingest_events").inc();
        self.sampled_now = if self.telemetry_every == 0 {
            false
        } else if self.telemetry_countdown == 0 {
            self.telemetry_countdown = self.telemetry_every - 1;
            true
        } else {
            self.telemetry_countdown -= 1;
            false
        };
        let _apply_span = self.sampled_now.then(|| adya_obs::span!("online.apply_ns"));
        let verdict = match event {
            Event::Begin(t) => {
                self.ensure_txn(*t);
                None
            }
            Event::Write(w) => {
                self.on_write(w.txn, w.object, w.seq);
                None
            }
            Event::Read(r) => {
                self.on_read(r.txn, r.object, r.version, false);
                None
            }
            Event::PredicateRead(p) => {
                for &(o, v) in &p.vset {
                    self.on_read(p.txn, o, v, true);
                }
                None
            }
            Event::Commit(t) => Some(self.on_commit(*t)),
            Event::Abort(t) => {
                self.on_abort(*t);
                None
            }
        };
        self.maybe_gc();
        self.sync_reorder_counter();
        verdict
    }

    /// Feeds a batch of events in order, returning the verdict of
    /// every commit in the batch. Emits the *identical* verdict stream
    /// that per-event [`ingest`] calls would: batching here buys the
    /// pipeline one application-stage call per batch (instead of one
    /// lock acquisition per event), and each commit inside the batch
    /// already applies its DSG edges through the amortized per-graph
    /// [`IncrementalDag::insert_edges`] path.
    ///
    /// [`ingest`]: OnlineChecker::ingest
    pub fn ingest_batch(&mut self, events: &[Event]) -> Vec<Verdict> {
        let mut out = Vec::new();
        for ev in events {
            if let Some(v) = self.ingest(ev) {
                out.push(v);
            }
        }
        out
    }

    /// Completes the stream: still-active transactions are aborted (in
    /// ascending id order — the paper's completion rule) and the final
    /// verdict over the whole stream is returned.
    pub fn finish(&mut self) -> Verdict {
        let mut open: Vec<TxnId> = self.active.iter().copied().collect();
        open.sort_unstable();
        for t in open {
            self.ingest(&Event::Abort(t));
        }
        self.run_gc();
        let mut v = self.verdict(None, &[]);
        v.is_final = true;
        v
    }

    fn ensure_txn(&mut self, t: TxnId) {
        if self.txns.contains_key(&t) {
            return;
        }
        self.txns.insert(
            t,
            TxnState {
                begin_clock: self.clock,
                ..TxnState::default()
            },
        );
        self.active.insert(t);
    }

    fn on_write(&mut self, t: TxnId, o: ObjectId, seq: u32) {
        self.ensure_txn(t);
        let txn = self.txns.get_mut(&t).expect("just ensured");
        if txn.status != Status::Active {
            return; // write after terminal: ill-formed, ignore
        }
        let e = txn.writes.entry(o).or_insert(0);
        *e = (*e).max(seq);
    }

    fn on_read(&mut self, t: TxnId, o: ObjectId, v: VersionId, via_predicate: bool) {
        self.ensure_txn(t);
        if self.txns[&t].status != Status::Active {
            return;
        }
        let mut counted = false;
        let mut stale = false;
        if !v.is_init() && v.txn != t {
            match self.txns.get_mut(&v.txn) {
                Some(w) => {
                    w.refs += 1;
                    counted = true;
                }
                None => stale = true,
            }
        }
        self.txns
            .get_mut(&t)
            .expect("just ensured")
            .reads
            .push(BufferedRead {
                object: o,
                version: v,
                via_predicate,
                counted,
                stale,
            });
    }

    fn on_commit(&mut self, t: TxnId) -> Verdict {
        let started = Instant::now();
        let before = self.fired.mask;
        self.ensure_txn(t);
        if self.txns[&t].status != Status::Active {
            return self.verdict(Some(t), &[]);
        }
        {
            let txn = self.txns.get_mut(&t).expect("ensured");
            txn.status = Status::Committed;
            txn.terminal_clock = self.clock;
        }
        self.active.remove(&t);
        self.committed += 1;

        let _verdict_span = self
            .sampled_now
            .then(|| adya_obs::span!("online.verdict_ns"));
        self.install_writes(t);
        let reads = std::mem::take(&mut self.txns.get_mut(&t).expect("ensured").reads);
        for br in reads {
            self.resolve_read(t, br);
        }
        let pending = std::mem::take(&mut self.txns.get_mut(&t).expect("ensured").pending_readers);
        for pr in pending {
            self.resolve_pending(t, pr);
        }
        self.apply_edge_plan();

        let new_bits = self.fired.mask & !before;
        let v = self.verdict(
            Some(t),
            &ONLINE_KINDS
                .iter()
                .copied()
                .filter(|&k| new_bits & kind_bit(k) != 0)
                .collect::<Vec<_>>(),
        );
        adya_obs::histogram!("online.verdict_latency").record(started.elapsed().as_nanos() as u64);
        v
    }

    /// Installs `t`'s final versions in object-id order: appends the
    /// entry, adds the ww edge from the previous installer, and
    /// resolves readers anchored at the previous tip into rw edges.
    fn install_writes(&mut self, t: TxnId) {
        let mut objs: Vec<ObjectId> = self.txns[&t].writes.keys().copied().collect();
        objs.sort_unstable_by_key(|o| o.0);
        for o in objs {
            let clock = self.clock;
            let obj = self.objects.entry(o).or_default();
            let (prev, resolved) = match obj.entries.back_mut() {
                Some(last) => (Some(last.txn), std::mem::take(&mut last.readers)),
                None => (None, std::mem::take(&mut obj.init_readers)),
            };
            obj.entries.push_back(Entry {
                txn: t,
                readers: Vec::new(),
            });
            let pos = obj.base + obj.entries.len() - 1;
            obj.pos_of.insert(t, pos);
            if let Some(p) = prev {
                let w = self.txns.get_mut(&p).expect("installed entry implies live");
                w.unsuperseded -= 1;
                w.prune_after = w.prune_after.max(clock);
                self.add_ww(p, t, o);
            }
            for r in resolved {
                self.txns
                    .get_mut(&r)
                    .expect("registered reader is live")
                    .registered -= 1;
                if r != t {
                    self.add_anti(r, t, o);
                }
            }
            self.txns.get_mut(&t).expect("committing txn").unsuperseded += 1;
        }
    }

    /// Resolves one buffered read of the just-committed reader `t`.
    fn resolve_read(&mut self, t: TxnId, br: BufferedRead) {
        if br.stale {
            self.stale_refs += 1;
            return;
        }
        let (o, v) = (br.object, br.version);
        if v.is_init() {
            if br.via_predicate {
                return; // vset entries carry no edges
            }
            let obj = self.objects.entry(o).or_default();
            if obj.base > 0 {
                // The init version's successor was pruned; the rw edge
                // it would anchor is unknowable.
                self.stale_refs += 1;
                return;
            }
            match obj.entries.front().map(|e| e.txn) {
                Some(succ) => {
                    if succ != t {
                        self.add_anti(t, succ, o);
                    }
                }
                None => {
                    obj.init_readers.push(t);
                    self.txns.get_mut(&t).expect("committing txn").registered += 1;
                }
            }
            return;
        }
        if v.txn == t {
            // Own read: no read-dependency, no G1a/G1b, but it anchors
            // at the own entry exactly like the batch checker's
            // `order_anchor`, so a later overwrite emits t → successor.
            if br.via_predicate {
                return;
            }
            self.anchor_reader(t, o, v.txn);
            return;
        }
        let status = match self.txns.get(&v.txn) {
            Some(w) => w.status,
            None => {
                self.stale_refs += 1; // writer pruned since ingest — defensive
                return;
            }
        };
        match status {
            Status::Active => {
                self.txns
                    .get_mut(&v.txn)
                    .expect("checked above")
                    .pending_readers
                    .push(PendingRead {
                        reader: t,
                        object: o,
                        seq: v.seq,
                        via_predicate: br.via_predicate,
                    });
                self.txns.get_mut(&t).expect("committing txn").awaiting += 1;
                // The `refs` pin stays held until the writer resolves.
            }
            Status::Aborted => {
                let w = self.txns.get_mut(&v.txn).expect("checked above");
                if br.counted {
                    w.refs -= 1;
                }
                let final_seq = w.writes.get(&o).copied();
                self.fire_g1a(t, o, v, br.via_predicate);
                match final_seq {
                    Some(fs) if fs != v.seq => self.fire_g1b(t, o, v, fs, br.via_predicate),
                    Some(_) => {}
                    None => self.stale_refs += 1, // read of a never-written version
                }
            }
            Status::Committed => {
                let w = self.txns.get_mut(&v.txn).expect("checked above");
                if br.counted {
                    w.refs -= 1;
                }
                let Some(final_seq) = w.writes.get(&o).copied() else {
                    self.stale_refs += 1;
                    return;
                };
                if v.seq != final_seq {
                    self.fire_g1b(t, o, v, final_seq, br.via_predicate);
                }
                if br.via_predicate {
                    return;
                }
                self.add_wr(v.txn, t, o, v);
                self.anchor_reader(t, o, v.txn);
            }
        }
    }

    /// Anchors committed reader `t` at `writer`'s installed version of
    /// `o`: emit the rw edge to the successor if one exists, otherwise
    /// register at the entry to await one.
    fn anchor_reader(&mut self, t: TxnId, o: ObjectId, writer: TxnId) {
        let obj = self.objects.get_mut(&o).expect("writer installed on o");
        let pos = *obj.pos_of.get(&writer).expect("committed writer has entry");
        let idx = pos - obj.base;
        if idx + 1 < obj.entries.len() {
            let succ = obj.entries[idx + 1].txn;
            if succ != t {
                self.add_anti(t, succ, o);
            }
        } else {
            obj.entries[idx].readers.push(t);
            self.txns.get_mut(&t).expect("committed reader").registered += 1;
        }
    }

    /// Resolves readers parked on writer `t`, which just committed.
    fn resolve_pending(&mut self, t: TxnId, pr: PendingRead) {
        self.txns
            .get_mut(&pr.reader)
            .expect("pending reader is pinned")
            .awaiting -= 1;
        {
            let w = self.txns.get_mut(&t).expect("committing txn");
            w.refs -= 1;
        }
        let final_seq = self.txns[&t].writes[&pr.object];
        if pr.seq != final_seq {
            self.fire_g1b(
                pr.reader,
                pr.object,
                VersionId::new(t, pr.seq),
                final_seq,
                pr.via_predicate,
            );
        }
        if pr.via_predicate {
            return;
        }
        self.add_wr(t, pr.reader, pr.object, VersionId::new(t, pr.seq));
        self.anchor_reader(pr.reader, pr.object, t);
    }

    fn on_abort(&mut self, t: TxnId) {
        self.ensure_txn(t);
        if self.txns[&t].status != Status::Active {
            return;
        }
        {
            let txn = self.txns.get_mut(&t).expect("ensured");
            txn.status = Status::Aborted;
            txn.terminal_clock = self.clock;
        }
        self.active.remove(&t);
        // Its own buffered reads die with it: release the writer pins.
        let reads = std::mem::take(&mut self.txns.get_mut(&t).expect("ensured").reads);
        for br in reads {
            if br.counted {
                self.txns
                    .get_mut(&br.version.txn)
                    .expect("pinned writer is live")
                    .refs -= 1;
            }
        }
        // Committed readers that observed its versions read aborted
        // data: G1a now, G1b too if the version wasn't the last one.
        let pending = std::mem::take(&mut self.txns.get_mut(&t).expect("ensured").pending_readers);
        for pr in pending {
            self.txns
                .get_mut(&pr.reader)
                .expect("pending reader")
                .awaiting -= 1;
            self.txns.get_mut(&t).expect("ensured").refs -= 1;
            let v = VersionId::new(t, pr.seq);
            self.fire_g1a(pr.reader, pr.object, v, pr.via_predicate);
            let final_seq = self.txns[&t].writes[&pr.object];
            if pr.seq != final_seq {
                self.fire_g1b(pr.reader, pr.object, v, final_seq, pr.via_predicate);
            }
        }
    }

    // ------------------------------------------------------------------
    // Phenomena
    // ------------------------------------------------------------------

    fn fire_g1a(&mut self, reader: TxnId, o: ObjectId, v: VersionId, via_predicate: bool) {
        let via = if via_predicate {
            " (via predicate)"
        } else {
            ""
        };
        let w = format!(
            "T{} read aborted version {o}[{v}] of T{}{via}",
            reader.0, v.txn.0
        );
        self.fired.set(PhenomenonKind::G1a, w);
    }

    fn fire_g1b(
        &mut self,
        reader: TxnId,
        o: ObjectId,
        v: VersionId,
        final_seq: u32,
        via_predicate: bool,
    ) {
        let via = if via_predicate {
            " (via predicate)"
        } else {
            ""
        };
        let w = format!(
            "T{} read intermediate version {o}[{v}] of T{} (final seq {final_seq}){via}",
            reader.0, v.txn.0
        );
        self.fired.set(PhenomenonKind::G1b, w);
    }

    fn cycle_string(witness: &[(TxnId, TxnId, EdgeMask)]) -> String {
        let mut s = String::new();
        for (i, (a, b, m)) in witness.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let lbl = if m.has_item_anti() { "rw" } else { "ww/wr" };
            let _ = write!(s, "T{} -{lbl}-> T{}", a.0, b.0);
        }
        s
    }

    // ------------------------------------------------------------------
    // Incremental graph maintenance
    // ------------------------------------------------------------------

    /// Remembers one inducing operation for the edge `from -> to`.
    /// Callers gate on the provenance flag and on edge freshness (see
    /// [`Self::record_if_fresh`]); self-loops never get here because
    /// the graphs report them as duplicates.
    fn record_prov(&mut self, from: TxnId, to: TxnId, step: ProvStep) {
        match self.prov.entry((from, to)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut().push(step),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.prov_out.entry(from).or_default().push(to);
                self.prov_in.entry(to).or_default().push(from);
                e.insert(ProvChain::One(step));
            }
        }
    }

    /// Inserts a provenance chain for a key known to be absent,
    /// keeping the per-node indexes in step.
    fn insert_prov_chain(&mut self, a: TxnId, b: TxnId, chain: ProvChain) {
        self.prov_out.entry(a).or_default().push(b);
        self.prov_in.entry(b).or_default().push(a);
        self.prov.insert((a, b), chain);
    }

    /// Purges every provenance entry touching `id` in O(degree),
    /// using the node indexes instead of a full-map scan.
    fn purge_prov_node(&mut self, id: TxnId) {
        for x in self.prov_out.remove(&id).unwrap_or_default() {
            self.prov.remove(&(id, x));
            if let Some(l) = self.prov_in.get_mut(&x) {
                l.retain(|&t| t != id);
            }
        }
        for x in self.prov_in.remove(&id).unwrap_or_default() {
            self.prov.remove(&(x, id));
            if let Some(l) = self.prov_out.get_mut(&x) {
                l.retain(|&t| t != id);
            }
        }
    }

    /// The provenance-annotated form of a just-detected witness cycle.
    fn cycle_prov(&self, witness: &[(TxnId, TxnId, EdgeMask)]) -> Vec<CycleEdgeProv> {
        if !self.provenance {
            return Vec::new();
        }
        witness
            .iter()
            .map(|&(a, b, m)| CycleEdgeProv {
                from: a,
                to: b,
                anti: m.has_item_anti(),
                via: self
                    .prov
                    .get(&(a, b))
                    .map(|c| render_chain(c.steps()))
                    .unwrap_or_default(),
            })
            .collect()
    }

    /// Queues a write dependency discovered during commit resolution.
    /// All three `add_*` methods only *plan* edges now; the batch is
    /// applied by [`Self::apply_edge_plan`] at the end of the commit,
    /// with results replayed in exactly this discovery order.
    fn add_ww(&mut self, from: TxnId, to: TxnId, object: ObjectId) {
        self.plan.push(PlannedEdge::Ww { from, to, object });
    }

    fn add_wr(&mut self, from: TxnId, to: TxnId, object: ObjectId, version: VersionId) {
        self.plan.push(PlannedEdge::Wr {
            from,
            to,
            object,
            version,
        });
    }

    fn add_anti(&mut self, from: TxnId, to: TxnId, object: ObjectId) {
        self.plan.push(PlannedEdge::Anti { from, to, object });
    }

    /// Applies the commit's planned edges: one [`IncrementalDag::
    /// insert_edges`] batch per live cycle graph — amortizing
    /// Pearce–Kelly traversal buffers across the whole commit instead
    /// of allocating per edge — followed by a walk over the per-edge
    /// results that replays provenance recording and phenomenon
    /// latching in exactly the order the per-edge path used.
    ///
    /// Equivalence with the historical edge-at-a-time path: batched
    /// insertion is state-identical per graph (see `insert_edges`),
    /// provenance/latch processing happens walk-side in plan order,
    /// and when a latch drops a graph mid-plan the rest of that
    /// graph's batch results are discarded — the sequential path would
    /// never have inserted those edges, and the extra inserts can't be
    /// observed because the graph is freed within the same event
    /// either way.
    fn apply_edge_plan(&mut self) {
        if self.plan.is_empty() {
            return;
        }
        let plan = std::mem::take(&mut self.plan);
        self.batch_ww.clear();
        self.batch_dep.clear();
        self.batch_full.clear();
        for pe in &plan {
            match *pe {
                PlannedEdge::Ww { from, to, .. } => {
                    self.batch_ww.push((from, to, EdgeMask::DEP));
                    self.batch_dep.push((from, to, EdgeMask::DEP));
                    self.batch_full.push((from, to, EdgeMask::DEP));
                }
                PlannedEdge::Wr { from, to, .. } => {
                    self.batch_dep.push((from, to, EdgeMask::DEP));
                    self.batch_full.push((from, to, EdgeMask::DEP));
                }
                PlannedEdge::Anti { from, to, .. } => {
                    self.batch_full.push((from, to, EdgeMask::ANTI_ITEM));
                }
            }
        }
        let insert_t0 = self.sampled_now.then(Instant::now);
        let res_ww = match self.ww.as_mut() {
            Some(g) => Some(g.insert_edges(&self.batch_ww)),
            None => None,
        };
        let res_dep = match self.dep.as_mut() {
            Some(g) => Some(g.insert_edges(&self.batch_dep)),
            None => None,
        };
        let res_full = match self.full.as_mut() {
            Some(g) => Some(g.insert_edges(&self.batch_full)),
            None => None,
        };
        if let Some(t0) = insert_t0 {
            adya_obs::histogram!("online.graph_insert_ns").record(t0.elapsed().as_nanos() as u64);
        }
        let (mut iw, mut id, mut ifl) = (0usize, 0usize, 0usize);
        let mut ww_live = res_ww.is_some();
        let mut dep_live = res_dep.is_some();
        let mut full_live = res_full.is_some();
        for pe in &plan {
            match *pe {
                PlannedEdge::Ww { from, to, object } => {
                    let mut step = if self.provenance {
                        self.txns
                            .get(&from)
                            .and_then(|t| t.writes.get(&object))
                            .map(|&seq| ProvStep {
                                kind: PROV_WW,
                                object,
                                version: VersionId::new(from, seq),
                            })
                    } else {
                        None
                    };
                    let r = res_ww.as_ref().map(|v| &v[iw]);
                    iw += 1;
                    if ww_live {
                        let r = r.expect("ww batch result exists while graph is live");
                        self.record_if_fresh(!matches!(r, Insert::Duplicate), from, to, &mut step);
                        if let Insert::CycleFormed(info) = r {
                            let t0 = Instant::now();
                            let w = format!("write cycle: {}", Self::cycle_string(&info.witness));
                            let cyc = self.cycle_prov(&info.witness);
                            if self.fired.set(PhenomenonKind::G0, w) {
                                self.fired.set_cycle(PhenomenonKind::G0, cyc);
                            }
                            self.drop_graph_ww();
                            ww_live = false;
                            adya_obs::histogram!("online.cycle_check_ns")
                                .record(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    self.walk_dep(
                        res_dep.as_deref(),
                        &mut id,
                        &mut dep_live,
                        from,
                        to,
                        &mut step,
                    );
                    self.walk_full(
                        res_full.as_deref(),
                        &mut ifl,
                        &mut full_live,
                        from,
                        to,
                        EdgeMask::DEP,
                        &mut step,
                    );
                }
                PlannedEdge::Wr {
                    from,
                    to,
                    object,
                    version,
                } => {
                    let mut step = self.provenance.then_some(ProvStep {
                        kind: PROV_WR,
                        object,
                        version,
                    });
                    self.walk_dep(
                        res_dep.as_deref(),
                        &mut id,
                        &mut dep_live,
                        from,
                        to,
                        &mut step,
                    );
                    self.walk_full(
                        res_full.as_deref(),
                        &mut ifl,
                        &mut full_live,
                        from,
                        to,
                        EdgeMask::DEP,
                        &mut step,
                    );
                }
                PlannedEdge::Anti { from, to, object } => {
                    let mut step = if self.provenance {
                        self.txns
                            .get(&to)
                            .and_then(|t| t.writes.get(&object))
                            .map(|&seq| ProvStep {
                                kind: PROV_RW,
                                object,
                                version: VersionId::new(to, seq),
                            })
                    } else {
                        None
                    };
                    self.walk_full(
                        res_full.as_deref(),
                        &mut ifl,
                        &mut full_live,
                        from,
                        to,
                        EdgeMask::ANTI_ITEM,
                        &mut step,
                    );
                }
            }
        }
        self.plan = plan;
        self.plan.clear();
    }

    /// Replays one planned edge's dep-graph result: provenance first
    /// (matching the historical `add_dep_edge` order), then the G1c
    /// latch. `live` goes false once the graph is dropped mid-plan,
    /// after which the remaining batch results are skipped.
    #[allow(clippy::too_many_arguments)]
    fn walk_dep(
        &mut self,
        res: Option<&[Insert<TxnId, EdgeMask>]>,
        idx: &mut usize,
        live: &mut bool,
        from: TxnId,
        to: TxnId,
        step: &mut Option<ProvStep>,
    ) {
        let r = res.map(|v| &v[*idx]);
        *idx += 1;
        if !*live {
            return;
        }
        let r = r.expect("dep batch result exists while graph is live");
        self.record_if_fresh(!matches!(r, Insert::Duplicate), from, to, step);
        if let Insert::CycleFormed(info) = r {
            let t0 = Instant::now();
            let w = format!("dependency cycle: {}", Self::cycle_string(&info.witness));
            let cyc = self.cycle_prov(&info.witness);
            if self.fired.set(PhenomenonKind::G1c, w) {
                self.fired.set_cycle(PhenomenonKind::G1c, cyc);
            }
            self.drop_graph_dep();
            *live = false;
            adya_obs::histogram!("online.cycle_check_ns").record(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Replays one planned edge's full-graph result: provenance, then
    /// the G2/G2-item latches (cycle with an anti edge, or an anti
    /// edge landing inside an existing component).
    #[allow(clippy::too_many_arguments)]
    fn walk_full(
        &mut self,
        res: Option<&[Insert<TxnId, EdgeMask>]>,
        idx: &mut usize,
        live: &mut bool,
        from: TxnId,
        to: TxnId,
        mask: EdgeMask,
        step: &mut Option<ProvStep>,
    ) {
        let r = res.map(|v| &v[*idx]);
        *idx += 1;
        if !*live {
            return;
        }
        let r = r.expect("full batch result exists while graph is live");
        self.record_if_fresh(!matches!(r, Insert::Duplicate), from, to, step);
        match r {
            Insert::CycleFormed(info) => {
                let t0 = Instant::now();
                let anti = info
                    .intra_edges
                    .iter()
                    .find(|(_, _, m)| m.has_item_anti())
                    .copied();
                if let Some((a, b, _)) = anti {
                    let w = format!(
                        "anti-dependency cycle through T{} -rw-> T{}: {}",
                        a.0,
                        b.0,
                        Self::cycle_string(&info.witness)
                    );
                    let cyc = self.cycle_prov(&info.witness);
                    if self.fired.set(PhenomenonKind::G2Item, w.clone()) {
                        self.fired.set_cycle(PhenomenonKind::G2Item, cyc.clone());
                    }
                    if self.fired.set(PhenomenonKind::G2, w) {
                        self.fired.set_cycle(PhenomenonKind::G2, cyc);
                    }
                    self.drop_graph_full_if_done();
                    if self.full.is_none() {
                        *live = false;
                    }
                }
                adya_obs::histogram!("online.cycle_check_ns")
                    .record(t0.elapsed().as_nanos() as u64);
            }
            Insert::IntraComponent if mask.has_item_anti() => {
                let w = format!(
                    "anti-dependency edge T{} -rw-> T{} inside a dependency cycle",
                    from.0, to.0
                );
                let cyc = self.cycle_prov(&[(from, to, mask)]);
                if self.fired.set(PhenomenonKind::G2Item, w.clone()) {
                    self.fired.set_cycle(PhenomenonKind::G2Item, cyc.clone());
                }
                if self.fired.set(PhenomenonKind::G2, w) {
                    self.fired.set_cycle(PhenomenonKind::G2, cyc);
                }
                self.drop_graph_full_if_done();
                if self.full.is_none() {
                    *live = false;
                }
            }
            _ => {}
        }
    }

    /// Consumes `step` into the provenance map if this insert was the
    /// edge's first appearance in a live graph. The freshness gate is
    /// what keeps provenance cheap: repeated conflicts on an existing
    /// edge skip the side-map entirely (first operation wins), and the
    /// graph's own dedup check already paid for the answer.
    fn record_if_fresh(
        &mut self,
        fresh: bool,
        from: TxnId,
        to: TxnId,
        step: &mut Option<ProvStep>,
    ) {
        if fresh {
            if let Some(st) = step.take() {
                self.record_prov(from, to, st);
            }
        }
    }

    fn drop_graph_ww(&mut self) {
        if let Some(g) = self.ww.take() {
            self.reorders_dropped += g.reorders();
        }
        self.drop_prov_if_unused();
    }

    fn drop_graph_dep(&mut self) {
        if let Some(g) = self.dep.take() {
            self.reorders_dropped += g.reorders();
        }
        self.drop_prov_if_unused();
    }

    fn drop_graph_full_if_done(&mut self) {
        if self.fired.has(PhenomenonKind::G2) && self.fired.has(PhenomenonKind::G2Item) {
            if let Some(g) = self.full.take() {
                self.reorders_dropped += g.reorders();
            }
            self.drop_prov_if_unused();
        }
    }

    /// Once every cycle graph has latched and been freed, no future
    /// cycle can fire, so the provenance side map is dead weight.
    fn drop_prov_if_unused(&mut self) {
        if self.ww.is_none() && self.dep.is_none() && self.full.is_none() {
            self.prov.clear();
            self.prov_out.clear();
            self.prov_in.clear();
        }
    }

    fn sync_reorder_counter(&mut self) {
        let total = self.reorders_dropped
            + self.ww.as_ref().map_or(0, |g| g.reorders())
            + self.dep.as_ref().map_or(0, |g| g.reorders())
            + self.full.as_ref().map_or(0, |g| g.reorders());
        if total > self.reorders_reported {
            adya_obs::counter!("online.pk_reorders").add(total - self.reorders_reported);
            self.reorders_reported = total;
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    fn maybe_gc(&mut self) {
        if !self.gc.enabled {
            return;
        }
        self.events_since_gc += 1;
        if self.events_since_gc < self.gc.interval {
            return;
        }
        self.events_since_gc = 0;
        let _gc_span = (self.telemetry_every != 0).then(|| adya_obs::span!("online.gc_ns"));
        self.run_gc();
    }

    /// One collection: prune every settled transaction below the
    /// low watermark, repeating while progress is made (pruning one
    /// front entry can move the next candidate's entry to the front).
    fn run_gc(&mut self) {
        if !self.gc.enabled {
            return;
        }
        let watermark = self
            .active
            .iter()
            .map(|t| self.txns[t].begin_clock)
            .min()
            .unwrap_or(self.clock);
        loop {
            // Candidates are visited in id order: pruning mutates the
            // incremental graphs (contraction shortcuts), so the visit
            // order must not depend on hash-map iteration order or two
            // runs of the same stream could diverge in graph internals
            // — and with them the snapshot bytes and witness paths.
            let mut candidates: Vec<TxnId> = self
                .txns
                .iter()
                .filter(|(_, t)| {
                    t.status != Status::Active
                        && t.refs == 0
                        && t.awaiting == 0
                        && t.registered == 0
                        && t.pending_readers.is_empty()
                })
                .map(|(&id, _)| id)
                .collect();
            candidates.sort_unstable();
            let mut progress = 0usize;
            for id in candidates {
                if self.try_prune(id, watermark) {
                    progress += 1;
                }
            }
            if progress == 0 {
                break;
            }
        }
    }

    fn try_prune(&mut self, id: TxnId, watermark: u64) -> bool {
        let t = &self.txns[&id];
        match t.status {
            Status::Active => return false,
            Status::Aborted => {
                if t.terminal_clock > watermark {
                    return false;
                }
            }
            Status::Committed => {
                if t.unsuperseded != 0 || t.prune_after > watermark {
                    return false;
                }
                // Prefix rule: only ever prune the oldest version of an
                // object, so a surviving predecessor always implies its
                // successor (the target of any future rw edge) survives.
                for o in t.writes.keys() {
                    let obj = &self.objects[o];
                    if obj.pos_of[&id] != obj.base {
                        return false;
                    }
                }
            }
        }
        // Never disturb a condensed cycle component (those nodes are
        // the evidence for latched phenomena; the whole graph is freed
        // when its phenomenon latches).
        for g in [&mut self.ww, &mut self.dep, &mut self.full]
            .into_iter()
            .flatten()
        {
            if g.contains(id) && !g.is_removable(id) {
                return false;
            }
        }
        // Contraction shortcuts replace paths through `id`; each one
        // inherits the provenance chain of both halves so a later
        // cycle through the shortcut can still cite concrete
        // operations. Shortcut order is deterministic (adjacency
        // order), so the merged chains — and with them the snapshot
        // bytes — are too.
        let mut shortcuts: Vec<(TxnId, TxnId)> = Vec::new();
        for g in [&mut self.ww, &mut self.dep, &mut self.full]
            .into_iter()
            .flatten()
        {
            let ok = g.remove_node_contract_report(id, EdgeMask::combine, |a, b, _| {
                if !shortcuts.contains(&(a, b)) {
                    shortcuts.push((a, b));
                }
            });
            debug_assert!(ok, "removability checked above");
        }
        if self.provenance {
            for (a, b) in shortcuts {
                if self.prov.contains_key(&(a, b)) {
                    continue; // a direct edge already explains a -> b
                }
                let mut chain: Vec<ProvStep> = self
                    .prov
                    .get(&(a, id))
                    .map(|c| c.steps().to_vec())
                    .unwrap_or_default();
                if let Some(tail) = self.prov.get(&(id, b)) {
                    for st in tail.steps() {
                        if chain.len() >= PROV_CAP {
                            break;
                        }
                        if !chain.contains(st) {
                            chain.push(*st);
                        }
                    }
                }
                if !chain.is_empty() {
                    self.insert_prov_chain(a, b, ProvChain::from_steps(chain));
                }
            }
        }
        self.purge_prov_node(id);
        let t = self.txns.remove(&id).expect("candidate exists");
        if t.status == Status::Committed {
            // Aborted writes were never installed; only committed ones
            // have entries to retire.
            for o in t.writes.keys() {
                let obj = self.objects.get_mut(o).expect("entry exists");
                let e = obj.entries.pop_front().expect("prefix rule");
                debug_assert_eq!(e.txn, id);
                debug_assert!(e.readers.is_empty(), "superseded entries have no readers");
                obj.base += 1;
                obj.pos_of.remove(&id);
            }
        }
        self.pruned_txns += 1;
        adya_obs::counter!("online.gc_pruned").inc();
        true
    }

    // ------------------------------------------------------------------
    // Crash/restore snapshots
    // ------------------------------------------------------------------

    /// Freezes the checker's complete state — clocks, transaction and
    /// object tables, all three incremental graphs, latched phenomena
    /// and GC policy — into a checksummed byte image.
    ///
    /// The round trip through [`restore`] is exact: the revived
    /// checker produces verdicts byte-identical to the original
    /// continuing uninterrupted, which is what lets a crashed checking
    /// process resume from its last snapshot plus the surviving tail
    /// of the event log. Two checkers in equal states produce equal
    /// images (all hash-order-dependent fields are serialized sorted),
    /// so snapshot bytes can also *prove* state equality in tests.
    ///
    /// [`restore`]: OnlineChecker::restore
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.u64(self.clock);
        e.bool(self.gc.enabled);
        e.u64(self.gc.interval);
        for v in [
            self.committed,
            self.pruned_txns,
            self.stale_refs,
            self.events_since_gc,
            self.reorders_dropped,
            self.reorders_reported,
        ] {
            e.u64(v);
        }
        e.u8(self.fired.mask);
        e.len(self.fired.witnesses.len());
        for (k, w) in &self.fired.witnesses {
            e.u8(kind_bit(*k));
            e.str(w);
        }
        e.len(self.fired.cycles.len());
        for (k, cyc) in &self.fired.cycles {
            e.u8(kind_bit(*k));
            e.len(cyc.len());
            for edge in cyc {
                e.u32(edge.from.0);
                e.u32(edge.to.0);
                e.bool(edge.anti);
                e.str(&edge.via);
            }
        }
        e.bool(self.provenance);
        let mut prov_keys: Vec<(TxnId, TxnId)> = self.prov.keys().copied().collect();
        prov_keys.sort_unstable();
        e.len(prov_keys.len());
        for key in prov_keys {
            e.u32(key.0 .0);
            e.u32(key.1 .0);
            let chain = self.prov[&key].steps();
            e.len(chain.len());
            for st in chain {
                e.u8(st.kind);
                e.u32(st.object.0);
                e.u32(st.version.txn.0);
                e.u32(st.version.seq);
            }
        }
        let mut txn_ids: Vec<TxnId> = self.txns.keys().copied().collect();
        txn_ids.sort_unstable();
        e.len(txn_ids.len());
        for id in txn_ids {
            let t = &self.txns[&id];
            e.u32(id.0);
            e.u8(match t.status {
                Status::Active => 0,
                Status::Committed => 1,
                Status::Aborted => 2,
            });
            e.u64(t.begin_clock);
            e.u64(t.terminal_clock);
            e.len(t.reads.len());
            for r in &t.reads {
                e.u32(r.object.0);
                e.u32(r.version.txn.0);
                e.u32(r.version.seq);
                e.u8(r.via_predicate as u8 | (r.counted as u8) << 1 | (r.stale as u8) << 2);
            }
            let mut writes: Vec<(ObjectId, u32)> = t.writes.iter().map(|(&o, &s)| (o, s)).collect();
            writes.sort_unstable();
            e.len(writes.len());
            for (o, s) in writes {
                e.u32(o.0);
                e.u32(s);
            }
            e.len(t.pending_readers.len());
            for p in &t.pending_readers {
                e.u32(p.reader.0);
                e.u32(p.object.0);
                e.u32(p.seq);
                e.bool(p.via_predicate);
            }
            for v in [t.unsuperseded, t.refs, t.awaiting, t.registered] {
                e.u32(v);
            }
            e.u64(t.prune_after);
        }
        let mut obj_ids: Vec<ObjectId> = self.objects.keys().copied().collect();
        obj_ids.sort_unstable();
        e.len(obj_ids.len());
        for id in obj_ids {
            let o = &self.objects[&id];
            e.u32(id.0);
            e.u64(o.base as u64);
            e.len(o.entries.len());
            for entry in &o.entries {
                e.u32(entry.txn.0);
                e.len(entry.readers.len());
                for r in &entry.readers {
                    e.u32(r.0);
                }
            }
            e.len(o.init_readers.len());
            for r in &o.init_readers {
                e.u32(r.0);
            }
        }
        for g in [&self.ww, &self.dep, &self.full] {
            match g {
                None => e.bool(false),
                Some(g) => {
                    e.bool(true);
                    enc_dag(&mut e, g);
                }
            }
        }
        let payload = e.into_bytes();
        let mut out = Vec::with_capacity(SNAP_MAGIC.len() + 4 + payload.len());
        out.extend_from_slice(&SNAP_MAGIC);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Revives a checker from [`snapshot`] bytes.
    ///
    /// [`snapshot`]: OnlineChecker::snapshot
    pub fn restore(bytes: &[u8]) -> Result<OnlineChecker, SnapshotError> {
        let header = SNAP_MAGIC.len() + 4;
        if bytes.len() < header || bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let crc = u32::from_le_bytes(bytes[SNAP_MAGIC.len()..header].try_into().unwrap());
        let payload = &bytes[header..];
        if crc32(payload) != crc {
            return Err(SnapshotError::Checksum);
        }
        let mut d = Dec::new(payload);
        let mut c = OnlineChecker {
            clock: d.u64()?,
            gc: GcConfig {
                enabled: d.bool()?,
                interval: d.u64()?,
            },
            ..OnlineChecker::default()
        };
        c.committed = d.u64()?;
        c.pruned_txns = d.u64()?;
        c.stale_refs = d.u64()?;
        c.events_since_gc = d.u64()?;
        c.reorders_dropped = d.u64()?;
        c.reorders_reported = d.u64()?;
        c.fired.mask = d.u8()?;
        let nw = d.len()?;
        for _ in 0..nw {
            let bit = d.u8()?;
            let k = kind_from_bit(bit)
                .ok_or_else(|| WireError::Malformed(format!("phenomenon bit {bit}")))?;
            c.fired.witnesses.push((k, d.str()?));
        }
        let nc = d.len()?;
        for _ in 0..nc {
            let bit = d.u8()?;
            let k = kind_from_bit(bit)
                .ok_or_else(|| WireError::Malformed(format!("cycle phenomenon bit {bit}")))?;
            let ne = d.len()?;
            let mut edges = Vec::with_capacity(ne);
            for _ in 0..ne {
                edges.push(CycleEdgeProv {
                    from: TxnId(d.u32()?),
                    to: TxnId(d.u32()?),
                    anti: d.bool()?,
                    via: d.str()?,
                });
            }
            c.fired.cycles.push((k, edges));
        }
        c.provenance = d.bool()?;
        let np = d.len()?;
        for _ in 0..np {
            let a = TxnId(d.u32()?);
            let b = TxnId(d.u32()?);
            let n = d.len()?;
            let mut chain = Vec::with_capacity(n);
            for _ in 0..n {
                let kind = d.u8()?;
                if kind > PROV_RW {
                    return Err(WireError::Malformed(format!("prov step kind {kind}")).into());
                }
                chain.push(ProvStep {
                    kind,
                    object: ObjectId(d.u32()?),
                    version: VersionId {
                        txn: TxnId(d.u32()?),
                        seq: d.u32()?,
                    },
                });
            }
            // Rebuild the node indexes alongside the map itself; keys
            // in a well-formed image are unique, so a plain push is a
            // faithful reconstruction.
            c.prov_out.entry(a).or_default().push(b);
            c.prov_in.entry(b).or_default().push(a);
            c.prov.insert((a, b), ProvChain::from_steps(chain));
        }
        let nt = d.len()?;
        for _ in 0..nt {
            let id = TxnId(d.u32()?);
            let status = match d.u8()? {
                0 => Status::Active,
                1 => Status::Committed,
                2 => Status::Aborted,
                s => return Err(WireError::Malformed(format!("txn status {s}")).into()),
            };
            let begin_clock = d.u64()?;
            let terminal_clock = d.u64()?;
            let nr = d.len()?;
            let mut reads = Vec::with_capacity(nr);
            for _ in 0..nr {
                let object = ObjectId(d.u32()?);
                let vtxn = TxnId(d.u32()?);
                let vseq = d.u32()?;
                let flags = d.u8()?;
                if flags > 7 {
                    return Err(WireError::Malformed(format!("read flags {flags}")).into());
                }
                reads.push(BufferedRead {
                    object,
                    version: VersionId {
                        txn: vtxn,
                        seq: vseq,
                    },
                    via_predicate: flags & 1 != 0,
                    counted: flags & 2 != 0,
                    stale: flags & 4 != 0,
                });
            }
            let nws = d.len()?;
            let mut writes = HashMap::with_capacity(nws);
            for _ in 0..nws {
                let o = ObjectId(d.u32()?);
                let s = d.u32()?;
                writes.insert(o, s);
            }
            let np = d.len()?;
            let mut pending_readers = Vec::with_capacity(np);
            for _ in 0..np {
                pending_readers.push(PendingRead {
                    reader: TxnId(d.u32()?),
                    object: ObjectId(d.u32()?),
                    seq: d.u32()?,
                    via_predicate: d.bool()?,
                });
            }
            let t = TxnState {
                status,
                begin_clock,
                terminal_clock,
                reads,
                writes,
                pending_readers,
                unsuperseded: d.u32()?,
                refs: d.u32()?,
                awaiting: d.u32()?,
                registered: d.u32()?,
                prune_after: d.u64()?,
            };
            if status == Status::Active {
                c.active.insert(id);
            }
            c.txns.insert(id, t);
        }
        let no = d.len()?;
        for _ in 0..no {
            let id = ObjectId(d.u32()?);
            let base = d.u64()? as usize;
            let ne = d.len()?;
            let mut entries = VecDeque::with_capacity(ne);
            let mut pos_of = HashMap::with_capacity(ne);
            for i in 0..ne {
                let txn = TxnId(d.u32()?);
                let nr = d.len()?;
                let mut readers = Vec::with_capacity(nr);
                for _ in 0..nr {
                    readers.push(TxnId(d.u32()?));
                }
                pos_of.insert(txn, base + i);
                entries.push_back(Entry { txn, readers });
            }
            let ni = d.len()?;
            let mut init_readers = Vec::with_capacity(ni);
            for _ in 0..ni {
                init_readers.push(TxnId(d.u32()?));
            }
            c.objects.insert(
                id,
                ObjectState {
                    base,
                    entries,
                    pos_of,
                    init_readers,
                },
            );
        }
        for slot in [&mut c.ww, &mut c.dep, &mut c.full] {
            *slot = if d.bool()? {
                Some(dec_dag(&mut d)?)
            } else {
                None
            };
        }
        if d.remaining() != 0 {
            return Err(WireError::Malformed(format!(
                "{} trailing bytes after snapshot",
                d.remaining()
            ))
            .into());
        }
        Ok(c)
    }

    fn verdict(&self, txn: Option<TxnId>, new_fired: &[PhenomenonKind]) -> Verdict {
        let witness = new_fired.first().and_then(|k| {
            self.fired
                .witnesses
                .iter()
                .find(|(fk, _)| fk == k)
                .map(|(_, w)| w.clone())
        });
        let cycle = new_fired
            .first()
            .and_then(|k| self.fired.cycle_of(*k).cloned());
        let witness_id = new_fired.first().map(|k| {
            let nodes: Vec<u64> = cycle
                .as_deref()
                .map(|c| c.iter().map(|e| u64::from(e.from.0)).collect())
                .unwrap_or_default();
            adya_obs::witness_id(&k.to_string(), &nodes, witness.as_deref().unwrap_or(""))
        });
        Verdict {
            txn,
            committed: self.committed,
            strongest_ansi: self.strongest_ansi(),
            fired: self.fired.kinds(),
            new_fired: new_fired.to_vec(),
            witness,
            witness_id,
            cycle,
            pruned_txns: self.pruned_txns,
            stale_refs: self.stale_refs,
            live_txns: self.txns.len(),
            is_final: false,
        }
    }
}

/// First 8 bytes of every checker snapshot. `\x02` added the fired
/// cycle provenance, the provenance flag and the per-edge side map;
/// `\x01` images are rejected as [`SnapshotError::BadMagic`].
const SNAP_MAGIC: [u8; 8] = *b"ADYACKP\x02";

/// Why [`OnlineChecker::restore`] rejected a byte image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with the snapshot magic.
    BadMagic,
    /// The payload checksum failed (torn or corrupted snapshot).
    Checksum,
    /// The payload parsed wrongly (truncated or impossible values).
    Wire(WireError),
}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Wire(e)
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a checker snapshot (bad magic)"),
            SnapshotError::Checksum => write!(f, "snapshot failed its checksum"),
            SnapshotError::Wire(e) => write!(f, "snapshot payload: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn enc_dag(e: &mut Enc, g: &Dag) {
    let p = g.to_parts();
    e.len(p.slots.len());
    for s in &p.slots {
        e.u64(s.parent as u64);
        e.bool(s.live);
        e.u64(s.ord);
        e.u32(s.members);
        for edges in [&s.out, &s.inc] {
            e.len(edges.len());
            for &(slot, src, dst, label) in edges {
                e.u64(slot as u64);
                e.u32(src.0);
                e.u32(dst.0);
                e.u8(label.0);
            }
        }
    }
    e.len(p.index.len());
    for &(k, s) in &p.index {
        e.u32(k.0);
        e.u64(s as u64);
    }
    e.len(p.free.len());
    for &s in &p.free {
        e.u64(s as u64);
    }
    e.len(p.seen.len());
    for &(a, b, l) in &p.seen {
        e.u32(a.0);
        e.u32(b.0);
        e.u8(l.0);
    }
    e.u64(p.next_ord);
    e.u64(p.reorders);
    e.u64(p.merges);
}

fn dec_dag(d: &mut Dec<'_>) -> Result<Dag, WireError> {
    let ns = d.len()?;
    let mut slots = Vec::with_capacity(ns);
    for _ in 0..ns {
        let parent = d.u64()? as usize;
        let live = d.bool()?;
        let ord = d.u64()?;
        let members = d.u32()?;
        let mut lists = [Vec::new(), Vec::new()];
        for list in &mut lists {
            let n = d.len()?;
            list.reserve(n);
            for _ in 0..n {
                let slot = d.u64()? as usize;
                let src = TxnId(d.u32()?);
                let dst = TxnId(d.u32()?);
                let label = EdgeMask(d.u8()?);
                list.push((slot, src, dst, label));
            }
        }
        let [out, inc] = lists;
        slots.push(SlotParts {
            parent,
            live,
            ord,
            members,
            out,
            inc,
        });
    }
    let ni = d.len()?;
    let mut index = Vec::with_capacity(ni);
    for _ in 0..ni {
        let k = TxnId(d.u32()?);
        let s = d.u64()? as usize;
        index.push((k, s));
    }
    let nf = d.len()?;
    let mut free = Vec::with_capacity(nf);
    for _ in 0..nf {
        free.push(d.u64()? as usize);
    }
    let nseen = d.len()?;
    let mut seen = Vec::with_capacity(nseen);
    for _ in 0..nseen {
        let a = TxnId(d.u32()?);
        let b = TxnId(d.u32()?);
        let l = EdgeMask(d.u8()?);
        seen.push((a, b, l));
    }
    let next_ord = d.u64()?;
    let reorders = d.u64()?;
    let merges = d.u64()?;
    Ok(IncrementalDag::from_parts(DagParts {
        slots,
        index,
        free,
        seen,
        next_ord,
        reorders,
        merges,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::{ReadEvent, VersionKind, WriteEvent};

    fn w(t: u32, o: u32, seq: u32) -> Event {
        Event::Write(WriteEvent {
            txn: TxnId(t),
            object: ObjectId(o),
            seq,
            kind: VersionKind::Visible,
            value: None,
        })
    }

    fn r(t: u32, o: u32, writer: u32, seq: u32) -> Event {
        Event::Read(ReadEvent {
            txn: TxnId(t),
            object: ObjectId(o),
            version: VersionId::new(TxnId(writer), seq),
            through_cursor: false,
        })
    }

    fn rinit(t: u32, o: u32) -> Event {
        Event::Read(ReadEvent {
            txn: TxnId(t),
            object: ObjectId(o),
            version: VersionId::INIT,
            through_cursor: false,
        })
    }

    fn feed(c: &mut OnlineChecker, evs: &[Event]) -> Vec<Verdict> {
        evs.iter().filter_map(|e| c.ingest(e)).collect()
    }

    #[test]
    fn clean_serial_history_is_pl3() {
        let mut c = OnlineChecker::new();
        let vs = feed(
            &mut c,
            &[
                Event::Begin(TxnId(1)),
                w(1, 0, 1),
                Event::Commit(TxnId(1)),
                Event::Begin(TxnId(2)),
                r(2, 0, 1, 1),
                w(2, 0, 1),
                Event::Commit(TxnId(2)),
            ],
        );
        assert_eq!(vs.len(), 2);
        assert_eq!(vs[1].strongest_ansi, Some(IsolationLevel::PL3));
        assert!(vs[1].fired.is_empty());
        let end = c.finish();
        assert_eq!(end.strongest_ansi, Some(IsolationLevel::PL3));
    }

    #[test]
    fn aborted_read_is_g1a_and_caps_at_pl1() {
        let mut c = OnlineChecker::new();
        feed(
            &mut c,
            &[
                Event::Begin(TxnId(1)),
                w(1, 0, 1),
                Event::Begin(TxnId(2)),
                r(2, 0, 1, 1),
                Event::Commit(TxnId(2)),
                Event::Abort(TxnId(1)),
            ],
        );
        let end = c.finish();
        assert_eq!(end.fired, vec![PhenomenonKind::G1a]);
        assert_eq!(end.strongest_ansi, Some(IsolationLevel::PL1));
    }

    #[test]
    fn intermediate_read_is_g1b() {
        let mut c = OnlineChecker::new();
        feed(
            &mut c,
            &[
                Event::Begin(TxnId(1)),
                w(1, 0, 1),
                Event::Begin(TxnId(2)),
                r(2, 0, 1, 1),
                Event::Commit(TxnId(2)),
                w(1, 0, 2),
                Event::Commit(TxnId(1)),
            ],
        );
        let end = c.finish();
        assert_eq!(end.fired, vec![PhenomenonKind::G1b]);
    }

    #[test]
    fn mutual_dirty_reads_are_g1c() {
        // T1 and T2 read each other's uncommitted writes; both commit.
        let mut c = OnlineChecker::new();
        feed(
            &mut c,
            &[
                Event::Begin(TxnId(1)),
                Event::Begin(TxnId(2)),
                w(1, 0, 1),
                w(2, 1, 1),
                r(2, 0, 1, 1),
                r(1, 1, 2, 1),
                Event::Commit(TxnId(1)),
                Event::Commit(TxnId(2)),
            ],
        );
        let end = c.finish();
        assert!(end.fired.contains(&PhenomenonKind::G1c), "{:?}", end.fired);
        assert_eq!(end.strongest_ansi, Some(IsolationLevel::PL1));
    }

    #[test]
    fn write_skew_is_g2_item() {
        // Classic write skew: T1 reads x-init writes y, T2 reads
        // y-init writes x. rw edges both ways.
        let mut c = OnlineChecker::new();
        feed(
            &mut c,
            &[
                Event::Begin(TxnId(1)),
                Event::Begin(TxnId(2)),
                rinit(1, 0),
                rinit(2, 1),
                w(1, 1, 1),
                w(2, 0, 1),
                Event::Commit(TxnId(1)),
                Event::Commit(TxnId(2)),
            ],
        );
        let end = c.finish();
        assert!(
            end.fired.contains(&PhenomenonKind::G2Item),
            "{:?}",
            end.fired
        );
        assert!(end.fired.contains(&PhenomenonKind::G2));
        assert_eq!(end.strongest_ansi, Some(IsolationLevel::PL2));
    }

    #[test]
    fn lost_update_read_modify_write_is_g2_item() {
        // T1 and T2 both read x-init then write x: the later installer
        // receives an rw edge from the other's anchored read.
        let mut c = OnlineChecker::new();
        feed(
            &mut c,
            &[
                Event::Begin(TxnId(1)),
                Event::Begin(TxnId(2)),
                rinit(1, 0),
                rinit(2, 0),
                w(1, 0, 1),
                Event::Commit(TxnId(1)),
                w(2, 0, 1),
                Event::Commit(TxnId(2)),
            ],
        );
        let end = c.finish();
        assert!(
            end.fired.contains(&PhenomenonKind::G2Item),
            "{:?}",
            end.fired
        );
    }

    #[test]
    fn gc_prunes_a_long_serial_stream_and_keeps_the_verdict() {
        let mut c = OnlineChecker::with_gc(GcConfig {
            enabled: true,
            interval: 1,
        });
        let mut peak = 0usize;
        for i in 1..=500u32 {
            c.ingest(&Event::Begin(TxnId(i)));
            if i > 1 {
                c.ingest(&r(i, 0, i - 1, 1));
            }
            c.ingest(&w(i, 0, 1));
            let v = c.ingest(&Event::Commit(TxnId(i))).unwrap();
            assert_eq!(v.strongest_ansi, Some(IsolationLevel::PL3));
            assert_eq!(v.stale_refs, 0);
            peak = peak.max(c.live_txns());
        }
        let end = c.finish();
        assert!(end.pruned_txns > 450, "pruned {}", end.pruned_txns);
        assert!(peak < 10, "memory not bounded: peak {peak} txns live");
        assert_eq!(end.strongest_ansi, Some(IsolationLevel::PL3));
        assert_eq!(end.stale_refs, 0);
    }

    #[test]
    fn gc_never_loses_a_cycle_through_a_pruned_interior_node() {
        // T3 -wr-> T1 -rw-> T2 with T1 prunable; a later path back from
        // T2 to T3 must still be reported as a cycle (contraction).
        let mut c = OnlineChecker::with_gc(GcConfig {
            enabled: true,
            interval: 1,
        });
        feed(
            &mut c,
            &[
                // T3 writes y and commits; T1 reads it, reads x-init,
                // and commits read-only.
                Event::Begin(TxnId(3)),
                w(3, 1, 1),
                Event::Begin(TxnId(5)),
                r(5, 1, 3, 1), // T5 buffers a dirty read of y3 (keeps T3 referenced)
                Event::Commit(TxnId(3)),
                Event::Begin(TxnId(1)),
                r(1, 1, 3, 1),
                rinit(1, 0),
                Event::Commit(TxnId(1)),
                // T2 overwrites x: rw T1 -> T2, then T1 becomes prunable.
                Event::Begin(TxnId(2)),
                w(2, 0, 1),
                Event::Commit(TxnId(2)),
                // Churn so GC definitely runs.
                Event::Begin(TxnId(9)),
                Event::Commit(TxnId(9)),
                // Close the loop: T5 read y3 before T3's commit?  No —
                // T5 reads T2's x (wr T2->T5) and writes y: rw T5->?
                r(5, 0, 2, 1),
                w(5, 1, 1),
                Event::Commit(TxnId(5)),
            ],
        );
        // Edges: wr T3->T1, rw T1->T2 (may be contracted into T3->T2
        // when T1 prunes), wr T3->T5, wr T2->T5, ww T3->T5 (y), and
        // T5's own-read anchoring. The cycle check here: T5 read y3
        // then overwrote y, and read x2 — rw edges close T2->T5 and
        // T5 anchored at y3 -> successor is T5 itself (skipped).
        // What must hold: the checker did prune T1 yet still knows
        // every dependency path that ran through it.
        let end = c.finish();
        assert!(end.pruned_txns > 0, "T1 should have been pruned");
        assert_eq!(end.stale_refs, 0);
    }

    #[test]
    fn violating_verdict_carries_cycle_provenance() {
        // Write skew: the G2-item verdict must name the rw edges and
        // the concrete overwriting versions behind them.
        let mut c = OnlineChecker::new();
        c.set_provenance(true);
        let vs = feed(
            &mut c,
            &[
                Event::Begin(TxnId(1)),
                Event::Begin(TxnId(2)),
                rinit(1, 0),
                rinit(2, 1),
                w(1, 1, 1),
                w(2, 0, 1),
                Event::Commit(TxnId(1)),
                Event::Commit(TxnId(2)),
            ],
        );
        let fire = vs
            .iter()
            .find(|v| !v.new_fired.is_empty())
            .expect("G2 fires at a commit");
        let cycle = fire.cycle.as_ref().expect("cycle provenance attached");
        assert_eq!(cycle.len(), 2, "{cycle:?}");
        assert!(cycle.iter().all(|e| e.anti), "{cycle:?}");
        assert!(
            cycle.iter().any(|e| e.via.contains("rw obj0[2]")),
            "{cycle:?}"
        );
        assert!(
            cycle.iter().any(|e| e.via.contains("rw obj1[1]")),
            "{cycle:?}"
        );
        let j = fire.to_json();
        assert!(j.contains("\"cycle\": [{"), "{j}");
        assert!(j.contains("\"label\": \"rw\""), "{j}");
    }

    #[test]
    fn provenance_off_yields_null_cycle() {
        // Off is the default; this pins that no cycle field appears.
        let mut c = OnlineChecker::new();
        let vs = feed(
            &mut c,
            &[
                Event::Begin(TxnId(1)),
                Event::Begin(TxnId(2)),
                rinit(1, 0),
                rinit(2, 1),
                w(1, 1, 1),
                w(2, 0, 1),
                Event::Commit(TxnId(1)),
                Event::Commit(TxnId(2)),
            ],
        );
        let fire = vs.iter().find(|v| !v.new_fired.is_empty()).unwrap();
        assert!(fire.cycle.is_none());
        assert!(fire.to_json().contains("\"cycle\": null"));
    }

    #[test]
    fn provenance_survives_gc_contraction() {
        // T1 -wr-> T2 -rw-> T3 with the interior read-only T2 pruned:
        // contraction leaves a shortcut T1 -> T3 whose provenance
        // chain concatenates both halves. A cycle closed through that
        // shortcut later must still cite the pruned transaction's
        // operations.
        let mut c = OnlineChecker::with_gc(GcConfig {
            enabled: true,
            interval: 1,
        });
        c.set_provenance(true);
        feed(
            &mut c,
            &[
                Event::Begin(TxnId(5)), // early reader, kept open
                rinit(5, 1),            // buffers y-init
                Event::Begin(TxnId(1)),
                w(1, 1, 1), // installs y[1]
                Event::Commit(TxnId(1)),
                Event::Begin(TxnId(2)),
                r(2, 1, 1, 1), // wr T1 -> T2; anchors at the y tip
                rinit(2, 0),   // anchors at x-init
                Event::Commit(TxnId(2)),
                Event::Begin(TxnId(3)),
                w(3, 0, 1), // installs x[3]: rw T2 -> T3
                Event::Commit(TxnId(3)),
                Event::Begin(TxnId(6)),
                w(6, 1, 1), // installs y[6]: releases T2's y anchor (rw T2 -> T6)
                Event::Commit(TxnId(6)),
                Event::Begin(TxnId(9)), // churn so the GC prunes T2
                Event::Commit(TxnId(9)),
            ],
        );
        assert!(c.pruned_txns() > 0, "T2 pruned");
        // Close the loop: T5 reads x[3:1] (wr T3 -> T5) and its parked
        // y-init read becomes rw T5 -> T1. With the shortcut
        // T1 -> T3 the full graph now has a cycle containing an anti
        // edge: G2-item.
        let vs = feed(&mut c, &[r(5, 0, 3, 1), Event::Commit(TxnId(5))]);
        let fire = vs
            .iter()
            .find(|v| v.new_fired.contains(&PhenomenonKind::G2Item))
            .expect("cycle through the shortcut fires G2-item");
        let cycle = fire.cycle.as_ref().expect("provenance attached");
        let shortcut = cycle
            .iter()
            .find(|e| e.from == TxnId(1) && e.to == TxnId(3))
            .expect("witness routes through the contraction shortcut");
        assert!(
            shortcut.via.contains("wr obj1[1]"),
            "pruned T2's read lost: {shortcut:?}"
        );
        assert!(
            shortcut.via.contains("rw obj0[3]"),
            "pruned T2's anti-dependency lost: {shortcut:?}"
        );
        assert_eq!(c.finish().stale_refs, 0);
    }

    #[test]
    fn verdict_json_shape() {
        let mut c = OnlineChecker::new();
        let vs = feed(
            &mut c,
            &[Event::Begin(TxnId(1)), w(1, 0, 1), Event::Commit(TxnId(1))],
        );
        let j = vs[0].to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"txn\": 1"));
        assert!(j.contains("\"strongest_ansi\": \"PL-3\""));
        assert!(!j.contains('\n'));
    }

    /// A stream exercising every state the snapshot must carry:
    /// buffered and pending reads, aborts (G1a), intermediate reads
    /// (G1b), write cycles, anti-dependencies, and enough churn for
    /// the GC to prune and contract.
    fn eventful_stream() -> Vec<Event> {
        let mut evs = vec![
            Event::Begin(TxnId(1)),
            Event::Begin(TxnId(2)),
            w(1, 0, 1),
            w(2, 1, 1),
            r(2, 0, 1, 1),
            r(1, 1, 2, 1),
            Event::Commit(TxnId(1)),
            Event::Commit(TxnId(2)),
            Event::Begin(TxnId(3)),
            Event::Begin(TxnId(4)),
            rinit(3, 2),
            rinit(4, 3),
            w(3, 3, 1),
            w(4, 2, 1),
            Event::Commit(TxnId(3)),
            Event::Commit(TxnId(4)),
            Event::Begin(TxnId(5)),
            w(5, 0, 1),
            r(5, 0, 5, 1),
            Event::Abort(TxnId(5)),
        ];
        for i in 6..30u32 {
            evs.push(Event::Begin(TxnId(i)));
            evs.push(r(i, 4, i.saturating_sub(1).max(6), 1));
            evs.push(w(i, 4, 1));
            evs.push(Event::Commit(TxnId(i)));
        }
        evs
    }

    #[test]
    fn snapshot_restore_round_trips_at_every_prefix() {
        let evs = eventful_stream();
        for cut in 0..=evs.len() {
            // Original run, snapshotted at `cut`.
            let mut a = OnlineChecker::with_gc(GcConfig {
                enabled: true,
                interval: 1,
            });
            // Provenance on so the snapshot carries a live side map.
            a.set_provenance(true);
            let mut verdicts_a: Vec<String> = Vec::new();
            for e in &evs[..cut] {
                if let Some(v) = a.ingest(e) {
                    verdicts_a.push(v.to_json());
                }
            }
            let snap = a.snapshot();
            let mut b = OnlineChecker::restore(&snap).expect("restore");
            assert_eq!(b.snapshot(), snap, "re-snapshot differs at cut {cut}");
            // Continue both over the tail: verdict streams and final
            // snapshots must be byte-identical.
            let mut verdicts_b = verdicts_a.clone();
            for e in &evs[cut..] {
                let va = a.ingest(e);
                let vb = b.ingest(e);
                if let Some(v) = va {
                    verdicts_a.push(v.to_json());
                }
                if let Some(v) = vb {
                    verdicts_b.push(v.to_json());
                }
            }
            verdicts_a.push(a.finish().to_json());
            verdicts_b.push(b.finish().to_json());
            assert_eq!(verdicts_a, verdicts_b, "verdicts diverged at cut {cut}");
            assert_eq!(
                a.snapshot(),
                b.snapshot(),
                "final states diverged at cut {cut}"
            );
        }
    }

    #[test]
    fn snapshot_rejects_damage() {
        let mut c = OnlineChecker::new();
        feed(
            &mut c,
            &[Event::Begin(TxnId(1)), w(1, 0, 1), Event::Commit(TxnId(1))],
        );
        let snap = c.snapshot();
        assert_eq!(
            OnlineChecker::restore(b"junk").err(),
            Some(SnapshotError::BadMagic)
        );
        let mut flipped = snap.clone();
        let n = flipped.len();
        flipped[n - 1] ^= 0xFF;
        assert_eq!(
            OnlineChecker::restore(&flipped).err(),
            Some(SnapshotError::Checksum)
        );
        let truncated = &snap[..snap.len() - 4];
        assert!(OnlineChecker::restore(truncated).is_err());
        assert!(OnlineChecker::restore(&snap).is_ok());
    }

    #[test]
    fn satisfies_follows_proscriptions() {
        let mut c = OnlineChecker::new();
        feed(
            &mut c,
            &[
                Event::Begin(TxnId(1)),
                w(1, 0, 1),
                Event::Begin(TxnId(2)),
                r(2, 0, 1, 1),
                Event::Commit(TxnId(2)),
                Event::Abort(TxnId(1)),
            ],
        );
        let end = c.finish();
        assert!(end.satisfies(IsolationLevel::PL1));
        assert!(!end.satisfies(IsolationLevel::PL2));
        assert!(!end.satisfies(IsolationLevel::PL3));
    }
}

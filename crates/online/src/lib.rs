//! Streaming incremental isolation checking.
//!
//! The batch checker in `adya-core` needs a complete, finalized
//! [`History`](adya_history::History) before it can say anything. This
//! crate checks isolation *while the history is still happening*: an
//! [`OnlineChecker`] ingests [`Event`](adya_history::Event)s one at a
//! time, maintains the Direct Serialization Graph incrementally with
//! Pearce–Kelly topological-order maintenance (falling back to a
//! targeted component search only on an order violation), and emits a
//! [`Verdict`] at every commit: the strongest ANSI-chain level (PL-1,
//! PL-2, PL-2.99, PL-3) the committed prefix still satisfies, plus the
//! offending phenomenon and a witness when a new one fires.
//!
//! A low-watermark garbage collector keeps memory bounded on unbounded
//! streams: a committed transaction is pruned once no live transaction
//! can form a *new* edge to it — its versions are superseded before
//! every active transaction began, no buffered or pending read
//! references it, and it is not waiting as an anchored reader. Its
//! graph node is removed with reachability-preserving contraction, so
//! pruning never loses a future cycle. Reads that reference an
//! already-pruned version are counted in [`Verdict::stale_refs`] —
//! verdicts are flagged, never silently weakened.
//!
//! Scope and fidelity relative to the batch checker:
//!
//! * Versions are installed at commit time in commit order, so the
//!   online DSG matches the batch DSG for histories whose version
//!   order is the default (commit order of final writes). Engines that
//!   install explicit out-of-commit-order version orders (MVTO/MVCC
//!   time-travel) may diverge; the batch checker remains the arbiter
//!   there.
//! * Predicate-read version sets feed G1a/G1b detection but produce no
//!   predicate dependency edges (match tables don't exist online), so
//!   the ANSI chain is checked with item conflicts plus predicate
//!   aborted/intermediate reads.
//!
//! Crash recovery: events can be persisted in a checksummed binary log
//! ([`EventLogWriter`]) whose reader distinguishes a torn tail (the
//! writer died mid-append; truncate and resume) from mid-file
//! corruption, and the checker itself can be frozen to bytes with
//! [`OnlineChecker::snapshot`] and revived with
//! [`OnlineChecker::restore`] — the restored checker continues the
//! stream with verdicts byte-identical to an uninterrupted run.
//!
//! ```
//! use adya_history::{Event, ReadEvent, TxnId, ObjectId, VersionId};
//! use adya_online::OnlineChecker;
//!
//! let mut c = OnlineChecker::new();
//! let (t1, t2, x) = (TxnId(1), TxnId(2), ObjectId(0));
//! c.ingest(&Event::Begin(t1));
//! c.ingest(&Event::Write(adya_history::WriteEvent {
//!     txn: t1, object: x, seq: 1,
//!     kind: adya_history::VersionKind::Visible, value: None,
//! }));
//! c.ingest(&Event::Begin(t2));
//! // Dirty read of T1's version…
//! c.ingest(&Event::Read(ReadEvent {
//!     txn: t2, object: x, version: VersionId::new(t1, 1), through_cursor: false,
//! }));
//! let v2 = c.ingest(&Event::Commit(t2)).unwrap();
//! assert!(v2.fired.is_empty()); // writer still running: verdict defers
//! // …and the writer aborts: aborted read, G1a.
//! c.ingest(&Event::Abort(t1));
//! let end = c.finish();
//! assert_eq!(end.fired, vec![adya_core::PhenomenonKind::G1a]);
//! ```

#![warn(missing_docs)]

mod checker;
mod feed;
pub mod monitor;
pub mod pipeline;
pub mod wire;

pub use checker::{CycleEdgeProv, GcConfig, OnlineChecker, SnapshotError, Verdict};
pub use feed::{encode_log, EventLogReader, EventLogWriter, LogError, StreamParser, LOG_MAGIC};
pub use monitor::{CheckerMonitor, Exemplar, HealthPolicy};
pub use pipeline::{EventPipeline, PipelineCloser, PipelineConfig, PipelineStats};

//! Seeded crash-point property test of [`SessionLog`]: a random token
//! stream under random (small) rotation and snapshot cadences is cut
//! at a random point — optionally with a torn partial record appended,
//! the disk image a kill -9 mid-append leaves — and recovery must
//! round-trip: exact record count, replayed verdict tail byte-identical
//! to the uninterrupted run, the torn tail truncated at its exact good
//! byte, and the continued stream (including a second recovery)
//! indistinguishable from one that never crashed.

use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use adya_history::ObjectId;
use adya_online::{GcConfig, OnlineChecker, StreamParser};
use adya_serve::{LogConfig, SessionLog};
use proptest::prelude::*;

/// A deterministic, version-correct token stream: interleaved begins,
/// reads of the last committed writer, writes and commits over five
/// objects (digit-free names — write targets must not look versioned).
fn token_stream(txns: u64) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut last_writer = [None::<u64>; 5];
    let obj = |i: usize| (b'a' + i as u8) as char;
    for t in 1..=txns {
        let wobj = (t as usize * 7) % 5;
        let robj = (t as usize * 3) % 5;
        tokens.push(format!("b{t}"));
        if let Some(w) = last_writer[robj] {
            tokens.push(format!("r{t}(k{}{w})", obj(robj)));
        }
        tokens.push(format!("w{t}(k{},{t})", obj(wobj)));
        tokens.push(format!("c{t}"));
        last_writer[wobj] = Some(t);
    }
    tokens
}

/// The live side of a session: mirrors `Session::apply_line`'s
/// durability ordering (names, then the event, snapshot on cadence).
struct Rig {
    log: SessionLog,
    parser: StreamParser,
    checker: OnlineChecker,
    verdicts: Vec<String>,
}

impl Rig {
    fn apply(&mut self, tok: &str) {
        let known = self.parser.interned();
        let ev = self.parser.parse_token(tok).expect("valid token");
        let fresh: Vec<String> = (known..self.parser.interned())
            .map(|i| self.parser.object_name(ObjectId(i as u32)).to_string())
            .collect();
        self.log
            .append_names(fresh.iter().map(String::as_str))
            .expect("append names");
        self.log.append(&ev).expect("append event");
        if let Some(v) = self.checker.ingest(&ev) {
            self.verdicts.push(v.to_json());
        }
        if self.log.snapshot_due() {
            self.log
                .write_snapshot(
                    &self.checker,
                    &self.parser,
                    self.verdicts.len() as u64,
                    0,
                    &self.verdicts,
                )
                .expect("snapshot");
        }
    }
}

/// The open (highest-numbered) segment file in a session directory.
fn open_segment(dir: &Path) -> PathBuf {
    let mut best = None::<(u64, PathBuf)>;
    for entry in fs::read_dir(dir).expect("read session dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(n) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            if best.as_ref().is_none_or(|(b, _)| n > *b) {
                best = Some((n, entry.path()));
            }
        }
    }
    best.expect("at least one segment").1
}

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adya-log-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn crash_point_round_trips_rotation_compaction_and_torn_tails(
        rotate in 2u64..8,
        snapshot in 2u64..10,
        txns in 4u64..24,
        crash_frac in 0u64..1000,
        torn in 0usize..8,
    ) {
        let cfg = LogConfig {
            rotate_events: rotate,
            snapshot_every: snapshot,
            ..LogConfig::default()
        };
        let tokens = token_stream(txns);
        let crash_at = 1 + (crash_frac as usize * (tokens.len() - 1)) / 1000;

        // The uninterrupted reference run.
        let mut ref_parser = StreamParser::new();
        let mut ref_checker = OnlineChecker::with_gc(GcConfig::default());
        let mut ref_verdicts = Vec::new();
        for tok in &tokens {
            if let Some(v) = ref_checker.ingest(&ref_parser.parse_token(tok).expect("token")) {
                ref_verdicts.push(v.to_json());
            }
        }
        let ref_final = ref_checker.finish().to_json();

        // Live run up to the crash point, then drop (kill): appends
        // reached the OS, nothing else is promised.
        let dir = tmp(&format!("{rotate}-{snapshot}-{txns}-{crash_frac}-{torn}"));
        let mut rig = Rig {
            log: SessionLog::create(&dir, cfg, None).expect("create"),
            parser: StreamParser::new(),
            checker: OnlineChecker::with_gc(GcConfig::default()),
            verdicts: Vec::new(),
        };
        for tok in &tokens[..crash_at] {
            rig.apply(tok);
        }
        let crash_verdicts = rig.verdicts.len();
        drop(rig);

        // A kill mid-append leaves a torn partial record: any 1..8
        // trailing bytes cannot form a complete [len][crc] header, so
        // the reader reports a torn tail, never corruption.
        let seg = open_segment(&dir);
        let good_len = fs::metadata(&seg).expect("seg meta").len();
        if torn > 0 {
            let mut f = OpenOptions::new().append(true).open(&seg).expect("open seg");
            f.write_all(&vec![0xFF; torn]).expect("tear");
        }

        let r = SessionLog::recover(&dir, cfg, GcConfig::default(), false, None)
            .expect("recovery must succeed");
        prop_assert_eq!(r.log.records(), crash_at as u64, "exact record count");
        prop_assert_eq!(r.truncated.is_some(), torn > 0, "torn tail reported iff torn");
        prop_assert_eq!(
            fs::metadata(&seg).expect("seg meta").len(),
            good_len,
            "truncated at the exact good byte"
        );
        prop_assert_eq!(
            &r.replayed[..],
            &ref_verdicts[r.replay_base as usize..crash_verdicts],
            "replayed verdict tail diverged from the uninterrupted run"
        );

        // Continue the stream on the recovered state: the remaining
        // verdicts and the final line must be byte-identical.
        let mut rig = Rig {
            log: r.log,
            parser: r.parser,
            checker: r.checker,
            verdicts: ref_verdicts[..crash_verdicts].to_vec(),
        };
        for tok in &tokens[crash_at..] {
            rig.apply(tok);
        }
        prop_assert_eq!(&rig.verdicts, &ref_verdicts, "continued stream diverged");
        prop_assert_eq!(rig.checker.finish().to_json(), ref_final, "final verdict diverged");

        // And a second, clean recovery of the healed image still works.
        let records = rig.log.records();
        drop(rig);
        let r2 = SessionLog::recover(&dir, cfg, GcConfig::default(), false, None)
            .expect("second recovery");
        prop_assert_eq!(r2.log.records(), records);
        prop_assert!(r2.truncated.is_none(), "healed image must not re-report a tear");
        fs::remove_dir_all(&dir).ok();
    }
}

//! The replication plane: leader-side streaming of durable session-log
//! mutations to follower nodes, and the follower-side state machine
//! that applies them.
//!
//! The unit of replication is the *file mutation*, not the event: a
//! [`SessionLog`] publishes every byte it makes durable — segment
//! appends, name side-log appends, snapshot puts, compaction removes —
//! through a [`LogPublisher`] into the hub's bounded in-memory ring.
//! One sender thread per follower drains the ring over the NDJSON
//! protocol (`append`/`put`/`remove` frames, hex payloads, CRC-32
//! verified before anything touches the follower's disk) and issues
//! `repl_flush` durability barriers the follower acks once its own
//! [`FsyncPolicy`] says the bytes are safe.
//!
//! Mirroring files byte-for-byte (instead of replaying events through
//! a second checker) is what makes promotion trivial and exact: a
//! snapshot records the byte offset of the open segment it was taken
//! at, so the follower's directory must be *the same bytes* for
//! [`SessionLog::recover`] to work unchanged — and when it is, the
//! promoted follower resumes every session with a verdict stream
//! byte-identical to the dead leader's, by the same snapshot+replay
//! invariant that already covers kill -9 restarts.
//!
//! Catch-up: on (re)connect the sender records the ring's next
//! sequence number, asks the follower for its durable file inventory
//! per session (`replicate`), and ships exactly the missing byte
//! suffixes — the same segment-walk shape recovery uses. Ring
//! mutations published while the walk ran overlap the shipped bytes;
//! the follower's append is idempotent by offset (a replayed prefix is
//! skipped, only the novel suffix is written), so the overlap is
//! harmless. A sender that falls so far behind that its next sequence
//! number was evicted from the ring simply redoes the walk.
//!
//! Lag accounting: the hub tracks per-session published totals
//! (records, bytes) and per-follower acked totals installed at every
//! barrier; the difference is the per-session replication lag exported
//! as `sli.repl_lag_records`/`sli.repl_lag_bytes` gauges, and the
//! worst acknowledged lag across followers is what `/health` compares
//! against `--repl-lag-max`.

use std::collections::HashMap;
use std::fs::{self, OpenOptions};
use std::io::{self, BufRead, BufReader, Seek, SeekFrom, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use adya_obs::{json::esc, labeled, trace::Stage, TracePlane};
use adya_online::{wire, EventLogReader};

use crate::log::{FsyncPolicy, SNAP_MAGIC};
use crate::proto;

/// Largest payload shipped in one `append` frame during catch-up.
const CHUNK: usize = 64 * 1024;
/// Ring eviction thresholds: payload bytes and mutation count.
const RING_MAX_BYTES: usize = 16 * 1024 * 1024;
const RING_MAX_LEN: usize = 32 * 1024;
/// Mutations drained per barrier.
const BATCH: usize = 256;
/// How long a sender waits for one follower reply before declaring the
/// connection dead. Generous: a barrier after a large catch-up may sit
/// behind megabytes of follower fsync work.
const REPLY_DEADLINE: Duration = Duration::from_secs(30);

/// Replication role/topology configuration for a server.
#[derive(Debug, Clone, Default)]
pub struct ReplConfig {
    /// Follower addresses this node (as leader) streams to.
    pub followers: Vec<String>,
    /// Start as a follower: refuse client frames with `not_leader`
    /// until promoted.
    pub follower: bool,
    /// Client-facing address handed to followers for `not_leader`
    /// redirects; defaults to the bound listen address.
    pub advertise: Option<String>,
    /// `/health` turns 503 when the worst acknowledged per-session
    /// replication lag (in records) exceeds this.
    pub lag_max: Option<u64>,
}

/// Per-session replication totals: event records and payload bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Durable event records published.
    pub records: u64,
    /// Durable payload bytes published (appends + puts).
    pub bytes: u64,
}

#[derive(Debug, Clone)]
enum MutKind {
    Append {
        file: String,
        off: u64,
        crc: u32,
        bytes: Arc<[u8]>,
        records: u64,
    },
    Put {
        file: String,
        crc: u32,
        bytes: Arc<[u8]>,
    },
    Remove {
        file: String,
    },
}

#[derive(Debug, Clone)]
struct Mutation {
    seq: u64,
    session: Arc<str>,
    kind: MutKind,
    /// Trace id of the sampled event record an append carries; set
    /// only when the leader's trace plane propagates contexts, so a
    /// `Some` always goes on the wire.
    trace: Option<u64>,
}

impl Mutation {
    fn payload_len(&self) -> usize {
        match &self.kind {
            MutKind::Append { bytes, .. } | MutKind::Put { bytes, .. } => bytes.len(),
            MutKind::Remove { .. } => 0,
        }
    }

    fn frame(&self) -> String {
        let s = esc(&self.session);
        match &self.kind {
            MutKind::Append {
                file,
                off,
                crc,
                bytes,
                ..
            } => {
                let trace = match self.trace {
                    Some(id) => format!(", \"trace\": \"{}\"", adya_obs::fmt_trace_id(id)),
                    None => String::new(),
                };
                format!(
                    "{{\"op\": \"append\", \"session\": \"{s}\", \"file\": \"{file}\", \
                     \"off\": {off}, \"crc\": {crc}, \"hex\": \"{}\"{trace}}}",
                    proto::encode_hex(bytes)
                )
            }
            MutKind::Put { file, crc, bytes } => format!(
                "{{\"op\": \"put\", \"session\": \"{s}\", \"file\": \"{file}\", \
                 \"crc\": {crc}, \"hex\": \"{}\"}}",
                proto::encode_hex(bytes)
            ),
            MutKind::Remove { file } => {
                format!("{{\"op\": \"remove\", \"session\": \"{s}\", \"file\": \"{file}\"}}")
            }
        }
    }
}

struct HubState {
    ring: std::collections::VecDeque<Mutation>,
    /// Sequence number the next published mutation gets.
    next_seq: u64,
    /// Sequence number of `ring.front()` (== `next_seq` when empty).
    base_seq: u64,
    /// Sum of ring payload bytes, for eviction.
    ring_bytes: usize,
    /// Per-session published totals since hub start.
    published: HashMap<String, Totals>,
}

enum RingRead {
    Batch(Vec<Mutation>),
    /// The cursor's mutations were evicted; redo the disk catch-up.
    Evicted,
}

/// Leader-side replication: the mutation ring plus one sender thread
/// per configured follower.
pub struct ReplicationHub {
    state: Mutex<HubState>,
    cv: Condvar,
    data_dir: PathBuf,
    followers: Vec<String>,
    advertise: String,
    node: String,
    lag_max: Option<u64>,
    connected: AtomicUsize,
    /// Per-follower totals acknowledged at its last durability barrier.
    acked: Mutex<HashMap<String, HashMap<String, Totals>>>,
    /// Leader trace plane: sender threads stamp `replicate` at frame
    /// send and `ack` at barrier acknowledgement for traced mutations.
    trace: Option<Arc<TracePlane>>,
    stop: AtomicBool,
    threads: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl ReplicationHub {
    /// Starts the hub: one sender thread per follower, reconnecting
    /// forever until [`ReplicationHub::stop`]. When `trace` is set,
    /// traced appends carry their trace id on the wire and the sender
    /// stamps the replication stages against that plane.
    pub fn start(
        data_dir: PathBuf,
        followers: Vec<String>,
        advertise: String,
        node: String,
        lag_max: Option<u64>,
        trace: Option<Arc<TracePlane>>,
    ) -> Arc<ReplicationHub> {
        let hub = Arc::new(ReplicationHub {
            state: Mutex::new(HubState {
                ring: std::collections::VecDeque::new(),
                next_seq: 0,
                base_seq: 0,
                ring_bytes: 0,
                published: HashMap::new(),
            }),
            cv: Condvar::new(),
            data_dir,
            followers: followers.clone(),
            advertise,
            node,
            lag_max,
            connected: AtomicUsize::new(0),
            acked: Mutex::new(HashMap::new()),
            trace,
            stop: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
        });
        let mut threads = hub.threads.lock().unwrap();
        for addr in followers {
            let hub2 = Arc::clone(&hub);
            if let Ok(t) = thread::Builder::new()
                .name(format!("repl-send-{addr}"))
                .spawn(move || hub2.sender_loop(&addr))
            {
                threads.push(t);
            }
        }
        drop(threads);
        hub
    }

    /// A publishing handle bound to one session.
    pub fn publisher(self: &Arc<ReplicationHub>, session: &str) -> LogPublisher {
        LogPublisher {
            hub: Arc::clone(self),
            session: Arc::from(session),
        }
    }

    /// Stops every sender thread and joins them. Idempotent.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
        self.cv.notify_all();
        let mut threads = self.threads.lock().unwrap();
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Configured and currently-connected follower counts.
    pub fn connectivity(&self) -> (usize, usize) {
        (self.followers.len(), self.connected.load(Ordering::Relaxed))
    }

    /// Worst acknowledged per-session lag across all configured
    /// followers, as `(records, bytes)` behind. A follower that never
    /// acked counts everything published as lag — disconnection *is*
    /// lag.
    pub fn lag_summary(&self) -> (u64, u64) {
        let st = self.state.lock().unwrap();
        let acked = self.acked.lock().unwrap();
        let (mut rec, mut bytes) = (0u64, 0u64);
        for f in &self.followers {
            let am = acked.get(f);
            for (s, tot) in &st.published {
                let a = am.and_then(|m| m.get(s)).copied().unwrap_or_default();
                rec = rec.max(tot.records.saturating_sub(a.records));
                bytes = bytes.max(tot.bytes.saturating_sub(a.bytes));
            }
        }
        (rec, bytes)
    }

    /// `true` when acknowledged lag exceeds the configured ceiling.
    pub fn unhealthy(&self) -> bool {
        self.lag_max.is_some_and(|max| self.lag_summary().0 > max)
    }

    /// The `replication` object embedded in the fleet `/health` doc.
    pub fn health_json(&self) -> String {
        let (followers, connected) = self.connectivity();
        let (rec, bytes) = self.lag_summary();
        format!(
            "{{\"followers\": {followers}, \"connected\": {connected}, \
             \"max_lag_records\": {rec}, \"max_lag_bytes\": {bytes}}}"
        )
    }

    fn publish(&self, session: &Arc<str>, kind: MutKind, trace: Option<u64>) {
        let mut st = self.state.lock().unwrap();
        let m = Mutation {
            seq: st.next_seq,
            session: Arc::clone(session),
            kind,
            trace,
        };
        st.next_seq += 1;
        let t = st.published.entry(session.to_string()).or_default();
        if let MutKind::Append { records, bytes, .. } = &m.kind {
            t.records += records;
            t.bytes += bytes.len() as u64;
        } else if let MutKind::Put { bytes, .. } = &m.kind {
            t.bytes += bytes.len() as u64;
        }
        st.ring_bytes += m.payload_len();
        st.ring.push_back(m);
        while st.ring.len() > RING_MAX_LEN || st.ring_bytes > RING_MAX_BYTES {
            let evicted = st.ring.pop_front().expect("ring nonempty");
            st.ring_bytes -= evicted.payload_len();
            st.base_seq += 1;
            adya_obs::counter!("serve.repl_ring_evictions").inc();
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Returns the batch of mutations at `cursor`, waiting briefly for
    /// new ones; an empty batch is a heartbeat tick.
    fn take_from(&self, cursor: u64) -> RingRead {
        let mut st = self.state.lock().unwrap();
        if cursor < st.base_seq {
            return RingRead::Evicted;
        }
        if cursor >= st.next_seq {
            let (guard, _) = self
                .cv
                .wait_timeout(st, Duration::from_millis(400))
                .unwrap();
            st = guard;
            if cursor < st.base_seq {
                return RingRead::Evicted;
            }
        }
        let start = (cursor - st.base_seq) as usize;
        RingRead::Batch(st.ring.iter().skip(start).take(BATCH).cloned().collect())
    }

    fn sender_loop(self: &Arc<ReplicationHub>, addr: &str) {
        let g_conn = adya_obs::global().gauge(&labeled(
            "sli.repl_follower_connected",
            &[("follower", addr)],
        ));
        while !self.stop.load(Ordering::Relaxed) {
            let stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(_) => {
                    adya_obs::counter!("serve.repl_connect_failures").inc();
                    thread::sleep(Duration::from_millis(250));
                    continue;
                }
            };
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
            let Ok(clone) = stream.try_clone() else {
                continue;
            };
            let mut reader = BufReader::new(clone);
            let mut w = stream;
            self.connected.fetch_add(1, Ordering::Relaxed);
            g_conn.set(1);
            adya_obs::gauge!("sli.repl_followers_connected")
                .set(self.connected.load(Ordering::Relaxed) as i64);
            let _ = self.feed(&mut w, &mut reader, addr);
            g_conn.set(0);
            self.connected.fetch_sub(1, Ordering::Relaxed);
            adya_obs::gauge!("sli.repl_followers_connected")
                .set(self.connected.load(Ordering::Relaxed) as i64);
            thread::sleep(Duration::from_millis(200));
        }
    }

    /// Drives one follower connection: hello, catch-up walk, then ring
    /// streaming with durability barriers, until an error or stop.
    fn feed(&self, w: &mut TcpStream, r: &mut BufReader<TcpStream>, addr: &str) -> io::Result<()> {
        writeln!(
            w,
            "{{\"op\": \"repl_hello\", \"node\": \"{}\", \"advertise\": \"{}\"}}",
            esc(&self.node),
            esc(&self.advertise)
        )?;
        let hello = self.read_reply(r)?;
        if json_str_field(&hello, "ok") != Some("repl_hello") {
            return Err(bad_reply("repl_hello", &hello));
        }
        let rtt = adya_obs::global().histogram("sli.repl_ack_rtt_us");
        // Trace ids of traced mutations sent since the last barrier:
        // their `ack` stamp lands when that barrier is acknowledged.
        let mut in_flight: Vec<u64> = Vec::new();
        loop {
            let (mut cursor, mut sent) = self.catch_up(w, r, addr)?;
            in_flight.clear();
            loop {
                if self.stop.load(Ordering::Relaxed) {
                    return Ok(());
                }
                let batch = match self.take_from(cursor) {
                    RingRead::Evicted => {
                        adya_obs::counter!("serve.repl_catchups").inc();
                        break; // redo the disk walk on this connection
                    }
                    RingRead::Batch(b) => b,
                };
                for m in &batch {
                    writeln!(w, "{}", m.frame())?;
                    if let (Some(plane), Some(id)) = (&self.trace, m.trace) {
                        plane.stamp(id, Stage::Replicate);
                        in_flight.push(id);
                    }
                    let t = sent.entry(m.session.to_string()).or_default();
                    if let MutKind::Append { records, bytes, .. } = &m.kind {
                        t.records += records;
                        t.bytes += bytes.len() as u64;
                    } else if let MutKind::Put { bytes, .. } = &m.kind {
                        t.bytes += bytes.len() as u64;
                    }
                    cursor = m.seq + 1;
                }
                // Barrier (doubles as the idle heartbeat): the ack
                // means everything sent so far is durable on the
                // follower under its fsync policy.
                let t0 = Instant::now();
                self.barrier(w, r, cursor)?;
                rtt.record(t0.elapsed().as_micros() as u64);
                if let Some(plane) = &self.trace {
                    for id in in_flight.drain(..) {
                        plane.stamp(id, Stage::Ack);
                    }
                }
                self.install_acked(addr, &sent);
            }
        }
    }

    fn barrier(&self, w: &mut TcpStream, r: &mut BufReader<TcpStream>, seq: u64) -> io::Result<()> {
        writeln!(w, "{{\"op\": \"repl_flush\", \"seq\": {seq}}}")?;
        let line = self.read_reply(r)?;
        if json_u64_field(&line, "ack") != Some(seq) {
            return Err(bad_reply("ack", &line));
        }
        Ok(())
    }

    /// Ships every byte the follower's inventory says it is missing.
    /// Returns the ring cursor to stream from plus the published
    /// totals the walk covers (installed as the acked baseline).
    fn catch_up(
        &self,
        w: &mut TcpStream,
        r: &mut BufReader<TcpStream>,
        addr: &str,
    ) -> io::Result<(u64, HashMap<String, Totals>)> {
        // Recorded *before* reading any file: mutations published
        // while the walk runs are replayed from the ring afterwards;
        // the overlap with freshly-read file bytes is resolved by the
        // follower's idempotent-by-offset append.
        let (from_seq, published) = {
            let st = self.state.lock().unwrap();
            (st.next_seq, st.published.clone())
        };
        for session in list_sessions(&self.data_dir)? {
            writeln!(w, "{{\"op\": \"replicate\", \"session\": \"{session}\"}}")?;
            let reply = self.read_reply(r)?;
            if json_str_field(&reply, "ok") != Some("replicate") {
                return Err(bad_reply("replicate", &reply));
            }
            let listing = json_str_field(&reply, "files").unwrap_or("");
            let inv: HashMap<String, u64> = proto::parse_inventory(listing)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?
                .into_iter()
                .collect();
            let dir = self.data_dir.join(&session);
            let local = scan_replica_files(&dir)?;
            for (file, _) in &local {
                let path = dir.join(file);
                // The file may grow (or vanish, for snapshots racing
                // compaction) between the listing and this read.
                let data = match fs::read(&path) {
                    Ok(d) => d,
                    Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                    Err(e) => return Err(e),
                };
                if proto::is_append_file(file) {
                    let have = match inv.get(file) {
                        Some(&h) if h <= data.len() as u64 => h as usize,
                        Some(_) => {
                            // Follower holds more than we do: divergent
                            // history (e.g. it outlived a wider tail).
                            // Reship from scratch.
                            writeln!(
                                w,
                                "{{\"op\": \"remove\", \"session\": \"{session}\", \
                                 \"file\": \"{file}\"}}"
                            )?;
                            0
                        }
                        None => 0,
                    };
                    for chunk_start in (have..data.len()).step_by(CHUNK) {
                        let chunk = &data[chunk_start..data.len().min(chunk_start + CHUNK)];
                        writeln!(
                            w,
                            "{{\"op\": \"append\", \"session\": \"{session}\", \
                             \"file\": \"{file}\", \"off\": {chunk_start}, \"crc\": {}, \
                             \"hex\": \"{}\"}}",
                            wire::crc32(chunk),
                            proto::encode_hex(chunk)
                        )?;
                    }
                } else if inv.get(file) != Some(&(data.len() as u64)) {
                    writeln!(
                        w,
                        "{{\"op\": \"put\", \"session\": \"{session}\", \"file\": \"{file}\", \
                         \"crc\": {}, \"hex\": \"{}\"}}",
                        wire::crc32(&data),
                        proto::encode_hex(&data)
                    )?;
                }
            }
            // Files the leader compacted away while the follower was
            // gone. Removed last, so a follower killed mid-walk never
            // loses coverage it cannot yet replace.
            for file in inv.keys() {
                if !local.iter().any(|(f, _)| f == file) {
                    writeln!(
                        w,
                        "{{\"op\": \"remove\", \"session\": \"{session}\", \
                         \"file\": \"{file}\"}}"
                    )?;
                }
            }
        }
        self.barrier(w, r, from_seq)?;
        self.install_acked(addr, &published);
        Ok((from_seq, published))
    }

    fn install_acked(&self, addr: &str, sent: &HashMap<String, Totals>) {
        self.acked
            .lock()
            .unwrap()
            .insert(addr.to_string(), sent.clone());
        let st = self.state.lock().unwrap();
        let reg = adya_obs::global();
        for (session, tot) in &st.published {
            let a = sent.get(session).copied().unwrap_or_default();
            let labels = [("session", session.as_str()), ("follower", addr)];
            reg.gauge(&labeled("sli.repl_lag_records", &labels))
                .set(tot.records.saturating_sub(a.records) as i64);
            reg.gauge(&labeled("sli.repl_lag_bytes", &labels))
                .set(tot.bytes.saturating_sub(a.bytes) as i64);
        }
    }

    /// Reads one reply line, tolerating the 100ms poll timeout, up to
    /// [`REPLY_DEADLINE`]; checks the stop flag between polls.
    fn read_reply(&self, r: &mut BufReader<TcpStream>) -> io::Result<String> {
        let deadline = Instant::now() + REPLY_DEADLINE;
        let mut buf = Vec::new();
        loop {
            match r.read_until(b'\n', &mut buf) {
                Ok(0) if buf.is_empty() => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "follower closed the connection",
                    ))
                }
                Ok(0) => {}
                Ok(_) if buf.ends_with(b"\n") => {
                    let line = String::from_utf8_lossy(&buf).trim().to_string();
                    return Ok(line);
                }
                Ok(_) => continue,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut => {}
                Err(e) => return Err(e),
            }
            if self.stop.load(Ordering::Relaxed) {
                return Err(io::Error::new(io::ErrorKind::Interrupted, "hub stopping"));
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "follower reply deadline exceeded",
                ));
            }
        }
    }
}

impl Drop for ReplicationHub {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.cv.notify_all();
        for t in self.threads.lock().unwrap().drain(..) {
            let _ = t.join();
        }
    }
}

fn bad_reply(expected: &str, line: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("follower did not {expected}: {line}"),
    )
}

/// Session subdirectories of the data root, valid names only.
fn list_sessions(data_dir: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(data_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let Some(name) = entry.file_name().to_str().map(str::to_string) else {
            continue;
        };
        if proto::validate_session_name(&name).is_ok() {
            out.push(name);
        }
    }
    out.sort();
    Ok(out)
}

/// `(name, len)` for every replicable file in a session directory, in
/// ship order: name side-logs, then segments ascending, then
/// snapshots, then the `closed` marker — so a peer killed at any
/// prefix of the stream still holds a recoverable directory.
fn scan_replica_files(dir: &Path) -> io::Result<Vec<(String, u64)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let Some(name) = entry.file_name().to_str().map(str::to_string) else {
            continue;
        };
        if proto::validate_replica_file(&name).is_ok() {
            out.push((name, entry.metadata()?.len()));
        }
    }
    let class = |name: &str| {
        if name.starts_with("names") {
            0
        } else if name.starts_with("seg-") {
            1
        } else if name.starts_with("snap-") {
            2
        } else {
            3
        }
    };
    let number = |name: &str| -> u64 {
        name.split(['-', '.'])
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    };
    out.sort_by_key(|(a, _)| (class(a), number(a)));
    Ok(out)
}

/// Extracts `"key": "<value>"` from a flat reply line.
fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    Some(&rest[..rest.find('"')?])
}

/// Extracts `"key": <uint>` from a flat reply line.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\": ");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// A [`SessionLog`]'s handle for publishing its durable mutations into
/// the hub ring.
///
/// [`SessionLog`]: crate::log::SessionLog
#[derive(Clone)]
pub struct LogPublisher {
    hub: Arc<ReplicationHub>,
    session: Arc<str>,
}

impl std::fmt::Debug for LogPublisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LogPublisher({})", self.session)
    }
}

impl LogPublisher {
    /// Bytes appended at `off` of `file`; `records` is how many event
    /// records they carry (0 for name side-log bytes).
    pub fn append(&self, file: &str, off: u64, bytes: &[u8], records: u64) {
        self.append_traced(file, off, bytes, records, None);
    }

    /// [`append`](LogPublisher::append) carrying the trace id of the
    /// sampled event record, so the replication stages of that event
    /// are stamped on both ends of the link.
    pub fn append_traced(
        &self,
        file: &str,
        off: u64,
        bytes: &[u8],
        records: u64,
        trace: Option<u64>,
    ) {
        self.hub.publish(
            &self.session,
            MutKind::Append {
                file: file.to_string(),
                off,
                crc: wire::crc32(bytes),
                bytes: Arc::from(bytes),
                records,
            },
            trace,
        );
    }

    /// Whole-file replacement (snapshots, `closed`, truncation repair).
    pub fn put(&self, file: &str, bytes: &[u8]) {
        self.hub.publish(
            &self.session,
            MutKind::Put {
                file: file.to_string(),
                crc: wire::crc32(bytes),
                bytes: Arc::from(bytes),
            },
            None,
        );
    }

    /// File deleted by compaction.
    pub fn remove(&self, file: &str) {
        self.hub.publish(
            &self.session,
            MutKind::Remove {
                file: file.to_string(),
            },
            None,
        );
    }
}

/// Why a follower refused a replication frame.
#[derive(Debug)]
pub enum SinkError {
    /// The frame is wrong (CRC mismatch, offset gap): the leader must
    /// reconnect and catch up. Nothing was written.
    Reject(String),
    /// Local disk trouble: this follower can no longer promise
    /// durability on this connection.
    Io(io::Error),
}

impl From<io::Error> for SinkError {
    fn from(e: io::Error) -> SinkError {
        SinkError::Io(e)
    }
}

/// Follower-side state machine: applies `append`/`put`/`remove`
/// frames under this node's [`FsyncPolicy`] and answers inventory
/// requests after sanitizing its own torn tails.
#[derive(Debug)]
pub struct ReplicaSink {
    data_dir: PathBuf,
    fsync: FsyncPolicy,
    /// Paths written since the last durability barrier (fsynced there
    /// under [`FsyncPolicy::Interval`]).
    dirty: Vec<PathBuf>,
}

impl ReplicaSink {
    /// A sink writing under `data_dir` with the node's fsync policy.
    pub fn new(data_dir: PathBuf, fsync: FsyncPolicy) -> ReplicaSink {
        ReplicaSink {
            data_dir,
            fsync,
            dirty: Vec::new(),
        }
    }

    /// Answers a `replicate` request: sanitizes the session directory
    /// (truncating torn tails a kill -9 of *this* process left, so the
    /// reported lengths are trustworthy append offsets) and returns
    /// the durable file inventory.
    pub fn inventory(&mut self, session: &str) -> io::Result<Vec<(String, u64)>> {
        let dir = self.data_dir.join(session);
        fs::create_dir_all(&dir)?;
        sanitize_session_dir(&dir)?;
        let mut files = scan_replica_files(&dir)?;
        files.sort();
        Ok(files)
    }

    /// Applies one `append`: CRC-verified, idempotent by offset (a
    /// replayed prefix is skipped; only the novel suffix is written),
    /// and gap-refusing (an offset beyond the durable length means
    /// this follower missed bytes and must be caught up).
    pub fn append(
        &mut self,
        session: &str,
        file: &str,
        off: u64,
        crc: u32,
        data: &[u8],
    ) -> Result<(), SinkError> {
        if wire::crc32(data) != crc {
            return Err(SinkError::Reject(format!("crc mismatch on {file}")));
        }
        let dir = self.data_dir.join(session);
        fs::create_dir_all(&dir)?;
        let path = dir.join(file);
        let mut f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = f.metadata()?.len();
        if off > len {
            return Err(SinkError::Reject(format!(
                "gap: append at {off} but {file} holds {len} bytes"
            )));
        }
        let skip = (len - off) as usize;
        if skip >= data.len() {
            return Ok(()); // full replay of already-durable bytes
        }
        f.seek(SeekFrom::Start(len))?;
        f.write_all(&data[skip..])?;
        if matches!(self.fsync, FsyncPolicy::Always) {
            f.sync_data()?;
        } else if !self.dirty.contains(&path) {
            self.dirty.push(path);
        }
        Ok(())
    }

    /// Applies one `put`: CRC-verified, atomic via tmp + rename.
    pub fn put(
        &mut self,
        session: &str,
        file: &str,
        crc: u32,
        data: &[u8],
    ) -> Result<(), SinkError> {
        if wire::crc32(data) != crc {
            return Err(SinkError::Reject(format!("crc mismatch on {file}")));
        }
        let dir = self.data_dir.join(session);
        fs::create_dir_all(&dir)?;
        let tmp = dir.join(".put.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(data)?;
            if !matches!(self.fsync, FsyncPolicy::Never) {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, dir.join(file))?;
        Ok(())
    }

    /// Applies one `remove`; a missing file is fine (never shipped, or
    /// already removed by a replayed frame).
    pub fn remove(&mut self, session: &str, file: &str) -> io::Result<()> {
        match fs::remove_file(self.data_dir.join(session).join(file)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Durability barrier: make everything since the last barrier as
    /// durable as the fsync policy promises, then the caller acks.
    pub fn flush(&mut self) -> io::Result<()> {
        if matches!(self.fsync, FsyncPolicy::Interval) {
            for path in &self.dirty {
                match fs::File::open(path) {
                    Ok(f) => f.sync_data()?,
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
        self.dirty.clear();
        Ok(())
    }
}

/// Heals the marks a kill -9 of the *follower* leaves: torn segment
/// tails truncated at the last intact record boundary, partial name
/// lines truncated at the last newline, undecodable snapshots and
/// stray tmp files deleted. After this, every reported length is a
/// safe append offset.
fn sanitize_session_dir(dir: &Path) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let Some(name) = entry.file_name().to_str().map(str::to_string) else {
            continue;
        };
        let path = dir.join(&name);
        if name.ends_with(".tmp") {
            let _ = fs::remove_file(&path);
            continue;
        }
        if proto::validate_replica_file(&name).is_err() {
            continue;
        }
        if name.starts_with("seg-") {
            let buf = fs::read(&path)?;
            let good = intact_log_prefix(&buf);
            if good < buf.len() {
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(good as u64)?;
                adya_obs::counter!("serve.repl_sanitized_tails").inc();
            }
        } else if name.starts_with("names") {
            let buf = fs::read(&path)?;
            if buf.last().is_some_and(|&b| b != b'\n') {
                let good = buf.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(good as u64)?;
                adya_obs::counter!("serve.repl_sanitized_tails").inc();
            }
        } else if name.starts_with("snap-") && !snapshot_container_ok(&fs::read(&path)?) {
            let _ = fs::remove_file(&path);
        }
    }
    Ok(())
}

/// Longest prefix of a segment file that parses as intact records; 0
/// when even the header is damaged (the leader reships from scratch).
fn intact_log_prefix(buf: &[u8]) -> usize {
    let Ok(mut reader) = EventLogReader::open(buf) else {
        return 0;
    };
    let mut good = reader.offset();
    loop {
        match reader.next() {
            Some(Ok(_)) => good = reader.offset(),
            Some(Err(_)) | None => return good,
        }
    }
}

/// Cheap container validation: magic, declared length, CRC — without
/// decoding the checker state inside.
fn snapshot_container_ok(bytes: &[u8]) -> bool {
    if bytes.len() < 16 || bytes[..8] != SNAP_MAGIC {
        return false;
    }
    let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    bytes.len() == 16 + len && wire::crc32(&bytes[16..]) == crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("adya-replica-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sink_append_is_idempotent_by_offset_and_refuses_gaps() {
        let dir = tmp("sink-append");
        let mut sink = ReplicaSink::new(dir.clone(), FsyncPolicy::Never);
        let payload = b"hello records";
        let crc = wire::crc32(payload);
        sink.append("s1", "seg-0.log", 0, crc, payload).unwrap();
        // Full replay: skipped, file unchanged.
        sink.append("s1", "seg-0.log", 0, crc, payload).unwrap();
        assert_eq!(fs::read(dir.join("s1/seg-0.log")).unwrap(), payload);
        // Overlapping replay: only the novel suffix lands.
        let wider = b"hello records and more";
        sink.append("s1", "seg-0.log", 0, wire::crc32(wider), wider)
            .unwrap();
        assert_eq!(fs::read(dir.join("s1/seg-0.log")).unwrap(), wider);
        // A gap means missed bytes: refused, nothing written.
        let e = sink
            .append("s1", "seg-0.log", 100, wire::crc32(b"x"), b"x")
            .unwrap_err();
        assert!(matches!(e, SinkError::Reject(_)));
        // A wrong checksum never touches disk.
        let e = sink
            .append("s1", "seg-0.log", 22, 0xbad, b"tail")
            .unwrap_err();
        assert!(matches!(e, SinkError::Reject(_)));
        assert_eq!(fs::read(dir.join("s1/seg-0.log")).unwrap(), wider);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sink_put_is_atomic_and_remove_is_idempotent() {
        let dir = tmp("sink-put");
        let mut sink = ReplicaSink::new(dir.clone(), FsyncPolicy::Never);
        sink.put("s1", "closed", wire::crc32(b"fin"), b"fin")
            .unwrap();
        assert_eq!(fs::read(dir.join("s1/closed")).unwrap(), b"fin");
        sink.remove("s1", "closed").unwrap();
        sink.remove("s1", "closed").unwrap(); // second remove: fine
        assert!(!dir.join("s1/closed").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inventory_sanitizes_torn_tails_before_reporting_lengths() {
        let dir = tmp("sink-sanitize");
        let mut sink = ReplicaSink::new(dir.clone(), FsyncPolicy::Never);
        // An intact one-record segment, then torn extra bytes — the
        // half-written append of a killed follower.
        let log = adya_online::encode_log(&[adya_history::Event::Begin(adya_history::TxnId(1))]);
        let good_len = log.len() as u64;
        let mut torn = log.clone();
        torn.extend_from_slice(&[9, 0, 0, 0, 1, 2]);
        fs::create_dir_all(dir.join("s1")).unwrap();
        fs::write(dir.join("s1/seg-0.log"), &torn).unwrap();
        fs::write(dir.join("s1/names-0.log"), b"x\npartial-nam").unwrap();
        fs::write(dir.join("s1/snap-1.snap"), b"garbage").unwrap();
        fs::write(dir.join("s1/.put.tmp"), b"stray").unwrap();
        let inv = sink.inventory("s1").unwrap();
        assert_eq!(
            inv,
            vec![
                ("names-0.log".to_string(), 2),
                ("seg-0.log".to_string(), good_len),
            ]
        );
        assert!(!dir.join("s1/snap-1.snap").exists());
        assert!(!dir.join("s1/.put.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hub_ring_streams_evicts_and_accounts_lag() {
        let dir = tmp("hub-ring");
        let hub = ReplicationHub::start(
            dir.clone(),
            Vec::new(), // no sender threads: drive the ring directly
            "127.0.0.1:0".into(),
            "test".into(),
            Some(0),
            None,
        );
        let p = hub.publisher("s1");
        p.append("seg-0.log", 0, b"abcd", 1);
        p.put("snap-4.snap", b"snap");
        p.remove("seg-0.log");
        match hub.take_from(0) {
            RingRead::Batch(b) => {
                assert_eq!(b.len(), 3);
                assert!(b[0].frame().contains("\"op\": \"append\""));
                assert!(b[1].frame().contains("\"op\": \"put\""));
                assert!(b[2].frame().contains("\"op\": \"remove\""));
                assert_eq!((b[0].seq, b[1].seq, b[2].seq), (0, 1, 2));
            }
            RingRead::Evicted => panic!("nothing evicted yet"),
        }
        // With no follower configured there is no lag to report…
        assert_eq!(hub.lag_summary(), (0, 0));
        // …but published totals accumulated.
        let st = hub.state.lock().unwrap();
        assert_eq!(
            st.published["s1"],
            Totals {
                records: 1,
                bytes: 8
            }
        );
        drop(st);
        // Force eviction past the ring bound.
        for _ in 0..(RING_MAX_LEN + 10) {
            p.append("seg-0.log", 0, b"x", 0);
        }
        assert!(matches!(hub.take_from(0), RingRead::Evicted));
        hub.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traced_appends_carry_their_id_on_the_wire() {
        let dir = tmp("hub-trace");
        let hub = ReplicationHub::start(
            dir.clone(),
            Vec::new(),
            "127.0.0.1:0".into(),
            "test".into(),
            None,
            Some(Arc::new(TracePlane::new("test", "leader"))),
        );
        let p = hub.publisher("s1");
        let id = adya_obs::trace_id("s1", 32);
        p.append_traced("seg-0.log", 8, b"rec", 1, Some(id));
        p.append("seg-0.log", 11, b"rec", 1); // untraced
        match hub.take_from(0) {
            RingRead::Batch(b) => {
                let wire_id = format!("\"trace\": \"{}\"", adya_obs::fmt_trace_id(id));
                assert!(b[0].frame().contains(&wire_id), "{}", b[0].frame());
                assert!(!b[1].frame().contains("trace"), "{}", b[1].frame());
                // The annotated frame still parses, id intact.
                match proto::parse_frame(&b[0].frame()).unwrap() {
                    crate::proto::ClientFrame::ReplAppend { trace, .. } => {
                        assert_eq!(trace, Some(id));
                    }
                    other => panic!("parsed as {other:?}"),
                }
            }
            RingRead::Evicted => panic!("nothing evicted"),
        }
        hub.stop();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disconnected_follower_counts_published_work_as_lag() {
        let dir = tmp("hub-lag");
        let hub = ReplicationHub::start(
            dir.clone(),
            vec!["127.0.0.1:1".into()], // reserved port: never connects
            "127.0.0.1:0".into(),
            "test".into(),
            Some(0),
            None,
        );
        assert!(!hub.unhealthy(), "no published work, no lag");
        hub.publisher("s1").append("seg-0.log", 0, b"abcdef", 2);
        let (rec, bytes) = hub.lag_summary();
        assert_eq!((rec, bytes), (2, 6));
        assert!(hub.unhealthy(), "lag 2 > max 0");
        let health = hub.health_json();
        assert!(health.contains("\"max_lag_records\": 2"), "{health}");
        hub.stop();
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! One checker session: an [`OnlineChecker`] + [`StreamParser`] pair
//! bound to a [`SessionLog`], with the durability ordering that makes
//! resumed verdict streams byte-identical.
//!
//! The invariant: *an event is durable before its effects are
//! observable.* `apply_line` parses a whole line first (against a
//! scratch parser, so a bad token poisons nothing), persists any newly
//! interned names, then per event: append to the log, consult the tap
//! crash plane, ingest, emit. A kill anywhere leaves the log a prefix
//! of the applied stream, and recovery replays exactly the suffix the
//! client never saw.
//!
//! Verdict replay window: the session keeps in memory every verdict
//! line since the last snapshot (`recent`). A resuming client that has
//! consumed at least the pre-snapshot verdicts — which it must have,
//! or it was gone for longer than a whole snapshot interval — gets the
//! missing tail re-sent verbatim. The snapshot cadence is therefore
//! also the replay-window bound, which is what keeps the window from
//! growing without bound on long streams.

use std::path::Path;
use std::sync::Arc;

use adya_faults::TapCrashPlane;
use adya_history::Event;
use adya_obs::{labeled, trace::Stage, Counter, Gauge, TracePlane};
use adya_online::{GcConfig, OnlineChecker, PipelineConfig, StreamParser};

use crate::log::{LogConfig, RecoverError, SessionLog};
use crate::replica::LogPublisher;

/// Checker + durability configuration shared by every session of a
/// server.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionConfig {
    /// Rotation/snapshot cadence.
    pub log: LogConfig,
    /// Watermark GC policy for each session's checker.
    pub gc: GcConfig,
    /// Track cycle provenance in verdicts.
    pub provenance: bool,
    /// Ingest shape: `pipeline.max_batch` bounds how many events of a
    /// line are logged ahead and applied through the checker's batched
    /// path in one go.
    pub pipeline: PipelineConfig,
}

/// Why a line could not be applied.
#[derive(Debug)]
pub enum ApplyError {
    /// A token failed to parse; nothing from the line was applied.
    Parse(String),
    /// The session is closed; its final verdict line is attached.
    Closed(String),
    /// Durability failure — the session can no longer promise
    /// recovery, so the connection must drop.
    Io(std::io::Error),
}

/// Why a resume was refused.
#[derive(Debug)]
pub enum ResumeError {
    /// Closed session; the final verdict line is attached.
    Closed(String),
    /// The client claims fewer verdicts than the replay window holds:
    /// it missed more than one snapshot interval of output.
    Unrecoverable {
        /// Oldest replayable verdict index.
        base: u64,
    },
    /// The client claims more verdicts than are durable.
    Ahead {
        /// Total durable verdicts.
        durable: u64,
    },
}

/// A live (attached or parked) checker session.
pub struct Session {
    name: String,
    checker: OnlineChecker,
    parser: StreamParser,
    log: SessionLog,
    /// Total commit verdicts emitted over the session's life.
    verdicts: u64,
    /// Verdict index of `recent[0]`.
    recent_base: u64,
    /// The replay window: every verdict line since the *previous*
    /// snapshot (not just the last one — see [`Session::snapshot`]).
    recent: Vec<String>,
    /// Verdict count when the last snapshot was written.
    last_snap_verdicts: u64,
    /// Largest event batch logged ahead and applied through
    /// [`OnlineChecker::ingest_batch`] in one go.
    batch: usize,
    /// Final verdict line once closed.
    closed: Option<String>,
    /// A connection currently owns this session.
    pub attached: bool,
    /// Torn-tail healing notice from recovery, reported once on the
    /// next resume.
    pub truncated: Option<String>,
    /// Per-verdict latency provenance: sampled events (by dense
    /// durable record number) are stamped through every stage of
    /// `apply_line`, and their ids ride the replication frames. Set
    /// via [`Session::set_trace`] — `SessionConfig` stays `Copy`.
    trace: Option<Arc<TracePlane>>,
    m_events: Arc<Counter>,
    m_verdicts: Arc<Counter>,
    m_staleness: Arc<Gauge>,
    m_live: Arc<Gauge>,
}

impl Session {
    fn metrics(name: &str) -> (Arc<Counter>, Arc<Counter>, Arc<Gauge>, Arc<Gauge>) {
        let reg = adya_obs::global();
        let l = |base: &str| labeled(base, &[("session", name)]);
        (
            reg.counter(&l("serve.session_events")),
            reg.counter(&l("serve.session_verdicts")),
            reg.gauge(&l("sli.session_watermark_staleness")),
            reg.gauge(&l("sli.session_live_txns")),
        )
    }

    /// Creates a brand-new durable session under `data_dir`. When
    /// `repl` is set, every durable byte the log writes is mirrored to
    /// the replication hub.
    pub fn create(
        data_dir: &Path,
        name: &str,
        cfg: SessionConfig,
        repl: Option<LogPublisher>,
    ) -> std::io::Result<Session> {
        let log = SessionLog::create(&data_dir.join(name), cfg.log, repl)?;
        let mut checker = OnlineChecker::with_gc(cfg.gc);
        checker.set_provenance(cfg.provenance);
        let (m_events, m_verdicts, m_staleness, m_live) = Session::metrics(name);
        Ok(Session {
            name: name.to_string(),
            checker,
            parser: StreamParser::new(),
            log,
            verdicts: 0,
            recent_base: 0,
            recent: Vec::new(),
            last_snap_verdicts: 0,
            batch: cfg.pipeline.max_batch.max(1),
            closed: None,
            attached: false,
            truncated: None,
            trace: None,
            m_events,
            m_verdicts,
            m_staleness,
            m_live,
        })
    }

    /// Recovers a session from its directory: snapshot + log tail,
    /// with the replayed verdict tail as the initial replay window.
    pub fn recover(
        data_dir: &Path,
        name: &str,
        cfg: SessionConfig,
        repl: Option<LogPublisher>,
    ) -> Result<Session, RecoverError> {
        let r = SessionLog::recover(&data_dir.join(name), cfg.log, cfg.gc, cfg.provenance, repl)?;
        let (m_events, m_verdicts, m_staleness, m_live) = Session::metrics(name);
        adya_obs::counter!("serve.recoveries").inc();
        Ok(Session {
            name: name.to_string(),
            checker: r.checker,
            parser: r.parser,
            log: r.log,
            verdicts: r.verdicts,
            recent_base: r.replay_base,
            recent: r.replayed,
            last_snap_verdicts: r.snap_verdicts,
            batch: cfg.pipeline.max_batch.max(1),
            closed: r.closed,
            attached: false,
            truncated: r.truncated,
            trace: None,
            m_events,
            m_verdicts,
            m_staleness,
            m_live,
        })
    }

    /// The session's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total durable event records.
    pub fn records(&self) -> u64 {
        self.log.records()
    }

    /// Total commit verdicts emitted.
    pub fn verdicts(&self) -> u64 {
        self.verdicts
    }

    /// The final verdict line, once closed.
    pub fn closed(&self) -> Option<&str> {
        self.closed.as_deref()
    }

    /// Enables latency-provenance stamping: events sampled by the
    /// plane's cadence (over their dense durable record numbers, so
    /// leader and follower derive identical ids from the replicated
    /// stream) are stamped at every `apply_line` stage, and their ids
    /// are handed to the replication publisher for cross-node joins.
    pub fn set_trace(&mut self, plane: Arc<TracePlane>) {
        self.trace = Some(plane);
    }

    /// Applies one line of whitespace-separated event tokens,
    /// returning the verdict lines it produced, in order, each paired
    /// with the trace id of its commit event when that event was
    /// sampled for latency provenance (`None` otherwise — and always
    /// `None` when tracing is off). Verdict lines themselves stay
    /// canonical; the id is for wire-level annotation only. All-or-
    /// nothing per line: a parse error applies none of it.
    pub fn apply_line(
        &mut self,
        line: &str,
        tap: &TapCrashPlane,
    ) -> Result<Vec<(Option<u64>, String)>, ApplyError> {
        if let Some(fin) = &self.closed {
            return Err(ApplyError::Closed(fin.clone()));
        }
        let mut scratch = self.parser.clone();
        let mut events = Vec::new();
        // One optional trace id per event, parallel to `events`. Ids
        // key off the dense durable record number, so a follower
        // replaying the same records derives the same ids.
        let mut traced: Vec<Option<u64>> = Vec::new();
        let base = self.log.records();
        for tok in line.split_whitespace() {
            events.push(scratch.parse_token(tok).map_err(ApplyError::Parse)?);
            traced.push(match &self.trace {
                Some(plane) => {
                    let seq = base + (events.len() as u64 - 1);
                    if plane.sampled(seq) {
                        let id = adya_obs::trace_id(&self.name, seq);
                        plane.stamp(id, Stage::Tap);
                        Some(id)
                    } else {
                        None
                    }
                }
                None => None,
            });
        }
        // Names first: recovery re-interns before replaying events.
        let known = self.parser.interned();
        self.log
            .append_names(
                (known..scratch.interned())
                    .map(|i| scratch.object_name(adya_history::ObjectId(i as u32))),
            )
            .map_err(ApplyError::Io)?;
        self.parser = scratch;
        let mut out = Vec::new();
        // Log ahead per batch, then apply through the checker's
        // batched path: the durability invariant only needs the log to
        // stay a (superset) prefix of the *observed* stream, and batch
        // application makes it durable-then-observable a whole batch
        // at a time. A crash anywhere still leaves every emitted
        // verdict's event durable, and recovery replays the rest.
        let mut idx = 0usize;
        for chunk in events.chunks(self.batch) {
            let ids = &traced[idx..idx + chunk.len()];
            idx += chunk.len();
            if let Some(plane) = &self.trace {
                // The serve path has no real ring/sequencer hop — the
                // line buffer plays both roles — so `ring` and `seq`
                // bracket batch formation.
                for id in ids.iter().flatten() {
                    plane.stamp(*id, Stage::Ring);
                    plane.stamp(*id, Stage::Seq);
                }
            }
            for (ev, tid) in chunk.iter().zip(ids) {
                self.log.append_traced(ev, *tid).map_err(ApplyError::Io)?;
                if let (Some(plane), Some(id)) = (&self.trace, tid) {
                    plane.stamp(*id, Stage::Log);
                }
                // Tap-side crash point: the event is durable, its
                // effects are not — the exact window recovery must
                // close.
                if tap.crash_due(ev.is_terminal()) {
                    std::process::abort();
                }
                self.m_events.inc();
            }
            let verdicts = self.checker.ingest_batch(chunk);
            if let Some(plane) = &self.trace {
                for id in ids.iter().flatten() {
                    plane.stamp(*id, Stage::Apply);
                }
            }
            // Commit verdicts pair 1:1, in order, with the chunk's
            // non-init commit events — that is `ingest`'s contract.
            let mut commit_ids = chunk.iter().zip(ids).filter_map(|(ev, tid)| match ev {
                Event::Commit(t) if !t.is_init() => Some(*tid),
                _ => None,
            });
            for v in verdicts {
                let tid = commit_ids.next().flatten();
                if let (Some(plane), Some(id)) = (&self.trace, tid) {
                    plane.stamp(id, Stage::Verdict);
                }
                self.verdicts += 1;
                let line = v.to_json();
                self.recent.push(line.clone());
                out.push((tid, line));
                self.m_verdicts.inc();
            }
        }
        if self.log.snapshot_due() {
            self.snapshot().map_err(ApplyError::Io)?;
        }
        self.m_staleness
            .set(self.checker.watermark_staleness() as i64);
        self.m_live.set(self.checker.live_txns() as i64);
        Ok(out)
    }

    /// Writes a snapshot now: the post-GC checker state is what lands
    /// on disk, so the watermark GC bounds both the snapshot and
    /// (through compaction) the log. The current replay window rides
    /// inside the snapshot, and the in-memory window is then trimmed
    /// to start at the *previous* snapshot's verdict count — so both
    /// the durable and live windows always reach one full snapshot
    /// interval back. A client killed at the worst moment (this
    /// snapshot durable, its triggering verdicts never delivered) can
    /// therefore still resume: its verdict count cannot be older than
    /// the previous snapshot, because those verdicts were delivered
    /// before the line that triggered this one was accepted.
    pub fn snapshot(&mut self) -> std::io::Result<()> {
        self.log.write_snapshot(
            &self.checker,
            &self.parser,
            self.verdicts,
            self.recent_base,
            &self.recent,
        )?;
        let keep_from = (self.last_snap_verdicts - self.recent_base) as usize;
        self.recent.drain(..keep_from);
        self.recent_base = self.last_snap_verdicts;
        self.last_snap_verdicts = self.verdicts;
        self.m_staleness
            .set(self.checker.watermark_staleness() as i64);
        adya_obs::counter!("serve.snapshots").inc();
        Ok(())
    }

    /// Validates a resume at `have` client-held verdicts and returns
    /// `(records, total_verdicts, lines_to_replay)`.
    pub fn resume(&mut self, have: u64) -> Result<(u64, u64, Vec<String>), ResumeError> {
        if let Some(fin) = &self.closed {
            return Err(ResumeError::Closed(fin.clone()));
        }
        if have < self.recent_base {
            return Err(ResumeError::Unrecoverable {
                base: self.recent_base,
            });
        }
        if have > self.verdicts {
            return Err(ResumeError::Ahead {
                durable: self.verdicts,
            });
        }
        let replay = self.recent[(have - self.recent_base) as usize..].to_vec();
        Ok((self.log.records(), self.verdicts, replay))
    }

    /// Closes the session: snapshot, final verdict, durable `closed`
    /// marker. Returns the final verdict line.
    pub fn close(&mut self) -> std::io::Result<String> {
        if let Some(fin) = &self.closed {
            return Ok(fin.clone());
        }
        self.snapshot()?;
        let fin = self.checker.finish().to_json();
        self.log.mark_closed(&fin)?;
        self.closed = Some(fin.clone());
        adya_obs::counter!("serve.closes").inc();
        Ok(fin)
    }

    /// Parks the session (connection gone): best-effort snapshot so a
    /// later restart replays little. The full in-memory replay window
    /// is stored with it and kept live — the departed client may not
    /// have read its last verdicts, and both a live resume and a
    /// post-restart resume must still be able to re-send them.
    pub fn park(&mut self) {
        if self.closed.is_none() {
            let wrote = self.log.write_snapshot(
                &self.checker,
                &self.parser,
                self.verdicts,
                self.recent_base,
                &self.recent,
            );
            // Advance the trim marker only if the snapshot is actually
            // durable: advancing past a failed write would let the next
            // successful snapshot() trim the replay window beyond
            // verdicts no snapshot ever captured, making a resume
            // within one interval spuriously unrecoverable.
            if wrote.is_ok() {
                self.last_snap_verdicts = self.verdicts;
            }
        }
        self.attached = false;
    }

    /// One fleet-health JSON object for this session.
    pub fn health_entry(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"session\": \"{}\", \"records\": {}, \"verdicts\": {}, \"attached\": {}, \
             \"closed\": {}, \"live_txns\": {}, \"staleness\": {}, \"stale_refs\": {}",
            adya_obs::json::esc(&self.name),
            self.log.records(),
            self.verdicts,
            self.attached,
            self.closed.is_some(),
            self.checker.live_txns(),
            self.checker.watermark_staleness(),
            self.checker.stale_refs(),
        );
        match self.checker.strongest_ansi() {
            Some(l) => {
                let _ = write!(s, ", \"strongest_ansi\": \"{l}\"}}");
            }
            None => s.push_str(", \"strongest_ansi\": null}"),
        }
        s
    }
}

//! `adya-serve`: a durable, multi-tenant checker-as-a-service.
//!
//! This crate hosts many concurrent [`OnlineChecker`] *sessions*
//! behind one socket server (TCP and optionally unix), std only,
//! thread-per-connection. Each session pairs a checker with a durable
//! event log — segment files rotated on a record cadence, compacted
//! against periodic snapshots of the post-GC checker state — so that
//! killing the server at any instant and restarting it recovers every
//! session from snapshot + log tail with a **byte-identical resumed
//! verdict stream**: the client re-sends what the server never logged,
//! the server re-sends what the client never read, and the
//! concatenation equals the uninterrupted run.
//!
//! The wire protocol is the existing NDJSON event/verdict framing from
//! `adya-check --stream`, extended with a small session-control
//! vocabulary ([`proto`]): `hello` to create, `resume` to re-attach
//! (with the client's verdict count for exactly-once replay), `close`
//! to finish, plus structured errors and `closing` frames. The obs
//! plane rides on the same port: a connection whose first line is an
//! HTTP request gets `/metrics` (with per-session SLI labels) or the
//! fleet `/health` document instead.
//!
//! Replication ([`replica`]): a leader ships every durable log byte to
//! follower nodes over the same NDJSON protocol (`repl_hello` /
//! `replicate` / `append` / `put` / `remove` / `repl_flush`→`ack`), so
//! a follower's data directory is byte-identical and recovery works on
//! it unchanged. A follower promoted by operator `promote` frame — or
//! by client failover after leader death — resumes every session with
//! the same byte-identical verdict stream a local restart would.
//!
//! Module map:
//! - [`log`] — segmented event log, snapshots, compaction, recovery
//!   (including exact-offset torn-tail truncation).
//! - [`session`] — one checker session and its durability ordering.
//! - [`Server`] — accept loops, connection protocol, obs plane.
//! - [`proto`] — control-frame parsing and rendering.
//! - [`replica`] — replication hub (leader side), follower sink, lag
//!   accounting.
//! - [`shutdown`] — process-wide SIGINT/SIGTERM latch for graceful
//!   drains.
//!
//! [`OnlineChecker`]: adya_online::OnlineChecker

pub mod log;
pub mod proto;
pub mod replica;
pub mod session;
pub mod shutdown;

mod server;

pub use log::{FsyncPolicy, LogConfig, RecoverError, Recovered, SessionLog};
pub use proto::ClientFrame;
pub use replica::{LogPublisher, ReplConfig, ReplicaSink, ReplicationHub};
pub use server::{ServeConfig, Server};
pub use session::{ApplyError, ResumeError, Session, SessionConfig};

//! The multi-tenant server: accept loops, the per-connection NDJSON
//! protocol, and the obs plane mounted on the same port.
//!
//! Transport follows the `ObsServer` idiom from `crates/obs`: a
//! nonblocking listener polled against a stop flag every 25ms, one
//! thread per connection, std only. A connection speaks either the
//! session protocol (NDJSON control frames + event tokens) or plain
//! HTTP — the server peeks at the first line and treats `GET …` as a
//! scrape, so `/metrics` and `/health` work on the same address a
//! client streams events to.
//!
//! Sessions are shared state: a registry of [`SessionSlot`]s by name.
//! A session is *attached* while one connection owns it — the
//! connection thread checks the `Session` out of its slot and works on
//! it with no lock held, so per-session ingest never serializes on a
//! registry-visible mutex during checker work, and `/metrics` and
//! `/health` (which read each slot's cached health entry) never stall
//! behind a long apply. A second `hello`/`resume` for the same name is
//! refused with `session_busy` rather than interleaving two clients'
//! streams. Detach (EOF, error, idle deadline, shutdown) parks the
//! session — snapshot to disk, replay window kept, checked back into
//! its slot — ready for the next resume or a restart. The idle
//! deadline is what guarantees a half-open peer cannot pin its session
//! attached forever.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use adya_faults::{TapCrashConfig, TapCrashPlane};
use adya_obs::{trace::Stage, TracePlane};

use crate::proto::{self, ClientFrame};
use crate::replica::{LogPublisher, ReplConfig, ReplicaSink, ReplicationHub, SinkError};
use crate::session::{ApplyError, ResumeError, Session, SessionConfig};

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Root directory holding one subdirectory per session.
    pub data_dir: PathBuf,
    /// Per-session checker/durability settings.
    pub session: SessionConfig,
    /// Tap-side crash schedule (tests/soak only; default never).
    pub tap: TapCrashConfig,
    /// Connections that make no read progress for this long are
    /// detached (their session parked): a half-open peer — one that
    /// vanished without a FIN — must not pin its session forever.
    pub idle_timeout: Duration,
    /// Replication role and topology.
    pub repl: ReplConfig,
    /// This node's name in trace lanes and `/metrics` labels.
    pub node: String,
    /// Per-verdict latency provenance: stamp sampled events through
    /// every ingest stage, carry their trace ids on replication
    /// frames, and offer trace-annotated verdict lines to clients
    /// that opt in. Off by default — zero stamping work.
    pub trace_propagate: bool,
    /// Provenance sampling cadence (1-in-N events by durable record
    /// number).
    pub trace_sample: u64,
}

impl ServeConfig {
    /// A server storing sessions under `data_dir`, defaults elsewhere.
    pub fn new(data_dir: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            data_dir: data_dir.into(),
            session: SessionConfig::default(),
            tap: TapCrashConfig::default(),
            idle_timeout: Duration::from_secs(60),
            repl: ReplConfig::default(),
            node: "node0".to_string(),
            trace_propagate: false,
            trace_sample: adya_obs::trace::DEFAULT_TRACE_SAMPLE,
        }
    }
}

/// One registry entry. The `Session` itself is *checked out* of the
/// slot by the owning connection thread while attached (`parked` is
/// `None`), so ingest holds no registry-visible lock during checker
/// work; scrapes read the cached `health` entry instead of touching
/// the session.
struct SessionSlot {
    /// The session, present while no connection owns it.
    parked: Mutex<Option<Box<Session>>>,
    /// Cached fleet-health entry, refreshed by the owning connection
    /// thread after every applied line and at check-in.
    health: Mutex<String>,
}

impl SessionSlot {
    /// A slot whose session is immediately checked out by the creator.
    fn new_attached(session: &Session) -> SessionSlot {
        SessionSlot {
            parked: Mutex::new(None),
            health: Mutex::new(session.health_entry()),
        }
    }

    /// A slot holding a parked session.
    fn new_parked(session: Box<Session>) -> SessionSlot {
        let health = Mutex::new(session.health_entry());
        SessionSlot {
            parked: Mutex::new(Some(session)),
            health,
        }
    }

    /// Checks the session out for exclusive use; `None` means another
    /// connection owns it.
    fn checkout(&self) -> Option<Box<Session>> {
        self.parked.lock().unwrap().take()
    }

    /// Returns the session to the slot, refreshing the health cache.
    fn checkin(&self, session: Box<Session>) {
        *self.health.lock().unwrap() = session.health_entry();
        *self.parked.lock().unwrap() = Some(session);
    }

    /// Refreshes the cached health entry for a checked-out session.
    fn refresh_health(&self, session: &Session) {
        *self.health.lock().unwrap() = session.health_entry();
    }
}

/// A connection's checked-out session plus the slot to return it to.
struct Attached {
    slot: Arc<SessionSlot>,
    session: Box<Session>,
}

/// Mutable per-connection state threaded through dispatch.
#[derive(Default)]
struct ConnState {
    /// The checked-out session, once this connection sent a
    /// successful `hello`/`resume`.
    attached: Option<Attached>,
    /// The follower-side replication sink, present once this
    /// connection sent `repl_hello` (it is then a leader's sender,
    /// not a client).
    sink: Option<ReplicaSink>,
    /// The client asked for trace-annotated verdict lines
    /// (`"trace": "on"` in its hello/resume). Honored only when the
    /// server itself runs with `--trace-propagate`.
    client_trace: bool,
    /// Follower side: trace ids carried by `append` frames since the
    /// last `repl_flush` barrier; the barrier's fsync stamps them
    /// `ack` — the moment the write became durable here, which is
    /// what the leader's own `ack` stamp (barrier reply received)
    /// brackets from the other side.
    pending_trace: Vec<u64>,
}

struct Inner {
    cfg: ServeConfig,
    sessions: Mutex<HashMap<String, Arc<SessionSlot>>>,
    /// Session names whose disk recovery is in flight. Claiming a name
    /// here lets [`Session::recover`] run without the `sessions` lock,
    /// so one slow recovery cannot stall `/metrics`, `/health` or
    /// other connections' hellos and resumes.
    recovering: Mutex<HashSet<String>>,
    tap: TapCrashPlane,
    conns: AtomicUsize,
    stop: AtomicBool,
    /// `true` while this node refuses client frames with `not_leader`.
    /// Cleared by a `promote` frame, never set again: promotion is a
    /// one-way door for a process lifetime.
    follower: AtomicBool,
    /// Where the leader said it lives (its advertise address), for
    /// `not_leader` redirects. Set by each `repl_hello`.
    leader_hint: Mutex<Option<String>>,
    /// Leader-side replication fan-out; `None` on followers and on
    /// leaders with no followers configured.
    hub: Option<Arc<ReplicationHub>>,
    /// Latency-provenance stamping plane, present only under
    /// `--trace-propagate`. Shared with every session (tap → verdict
    /// stages), the hub senders (replicate/ack stages) and — on a
    /// follower — the replica sink path.
    trace: Option<Arc<TracePlane>>,
}

impl Inner {
    /// A replication publishing handle for session `name`, when this
    /// node leads a replica set.
    fn publisher(&self, name: &str) -> Option<LogPublisher> {
        self.hub.as_ref().map(|h| h.publisher(name))
    }
}

/// The running server: accept loops plus shared session registry.
pub struct Server {
    inner: Arc<Inner>,
    tcp_addr: SocketAddr,
    unix_path: Option<PathBuf>,
    accept_threads: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `tcp` (e.g. `127.0.0.1:0`) and optionally a unix socket
    /// path, and starts accepting.
    pub fn bind(tcp: &str, unix: Option<&Path>, cfg: ServeConfig) -> io::Result<Server> {
        std::fs::create_dir_all(&cfg.data_dir)?;
        let tap = TapCrashPlane::new(cfg.tap);
        // Bind before building the hub: the advertise address handed to
        // followers defaults to the real bound address (`:0` resolved).
        let listener = TcpListener::bind(tcp)?;
        listener.set_nonblocking(true)?;
        let tcp_addr = listener.local_addr()?;
        let trace = cfg.trace_propagate.then(|| {
            let role = if cfg.repl.follower {
                "follower"
            } else {
                "leader"
            };
            let plane = Arc::new(TracePlane::new(&cfg.node, role));
            plane.set_sample_every(cfg.trace_sample);
            plane
        });
        let hub = if !cfg.repl.follower && !cfg.repl.followers.is_empty() {
            let advertise = cfg
                .repl
                .advertise
                .clone()
                .unwrap_or_else(|| tcp_addr.to_string());
            Some(ReplicationHub::start(
                cfg.data_dir.clone(),
                cfg.repl.followers.clone(),
                advertise.clone(),
                advertise,
                cfg.repl.lag_max,
                trace.clone(),
            ))
        } else {
            None
        };
        let follower = AtomicBool::new(cfg.repl.follower);
        let inner = Arc::new(Inner {
            cfg,
            sessions: Mutex::new(HashMap::new()),
            recovering: Mutex::new(HashSet::new()),
            tap,
            conns: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            follower,
            leader_hint: Mutex::new(None),
            hub,
            trace,
        });
        let mut accept_threads = vec![{
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name("serve-accept-tcp".into())
                .spawn(move || loop {
                    if inner.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    match listener.accept() {
                        Ok((stream, _)) => spawn_conn(Box::new(stream), Arc::clone(&inner)),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(25));
                        }
                        Err(_) => thread::sleep(Duration::from_millis(25)),
                    }
                })?
        }];
        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = unix {
            // A stale socket file from a killed predecessor would make
            // bind fail; recovery-after-kill is the whole point here.
            let _ = std::fs::remove_file(path);
            let ul = UnixListener::bind(path)?;
            ul.set_nonblocking(true)?;
            unix_path = Some(path.to_path_buf());
            let inner = Arc::clone(&inner);
            accept_threads.push(
                thread::Builder::new()
                    .name("serve-accept-unix".into())
                    .spawn(move || loop {
                        if inner.stop.load(Ordering::Relaxed) {
                            return;
                        }
                        match ul.accept() {
                            Ok((stream, _)) => spawn_conn(Box::new(stream), Arc::clone(&inner)),
                            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                thread::sleep(Duration::from_millis(25));
                            }
                            Err(_) => thread::sleep(Duration::from_millis(25)),
                        }
                    })?,
            );
        }
        #[cfg(not(unix))]
        let _ = unix;
        Ok(Server {
            inner,
            tcp_addr,
            unix_path,
            accept_threads,
        })
    }

    /// The bound TCP address (real port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.tcp_addr
    }

    /// Events seen by the tap crash plane (for reports).
    pub fn tap_stats(&self) -> adya_faults::TapCrashStats {
        self.inner.tap.stats()
    }

    /// Graceful shutdown: stop accepting, let every connection send
    /// its `closing` frame and park its session, then write a final
    /// snapshot for every session still open. Idempotent.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        // Connections poll the stop flag at their read timeout; give
        // them a bounded window to drain.
        let deadline = Instant::now() + Duration::from_secs(5);
        while self.inner.conns.load(Ordering::Relaxed) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        let slots: Vec<_> = self
            .inner
            .sessions
            .lock()
            .unwrap()
            .values()
            .cloned()
            .collect();
        for slot in slots {
            // A session still checked out past the drain deadline is
            // parked by its own connection thread when it exits.
            if let Some(mut s) = slot.checkout() {
                s.park();
                slot.checkin(s);
            }
        }
        // Stop the replication senders after the final park snapshots
        // have been published, so followers get them too.
        if let Some(hub) = &self.inner.hub {
            hub.stop();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A byte stream a connection can be served on: TCP or unix.
trait Conn: Read + Write + Send {
    fn split(&self) -> io::Result<Box<dyn Read + Send>>;
    fn set_timeouts(&self) -> io::Result<()>;
}

impl Conn for TcpStream {
    fn split(&self) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn set_timeouts(&self) -> io::Result<()> {
        self.set_read_timeout(Some(Duration::from_millis(100)))?;
        self.set_write_timeout(Some(Duration::from_secs(5)))
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn split(&self) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
    fn set_timeouts(&self) -> io::Result<()> {
        self.set_read_timeout(Some(Duration::from_millis(100)))?;
        self.set_write_timeout(Some(Duration::from_secs(5)))
    }
}

fn spawn_conn(stream: Box<dyn Conn>, inner: Arc<Inner>) {
    inner.conns.fetch_add(1, Ordering::Relaxed);
    adya_obs::gauge!("serve.connections").add(1);
    let _ = thread::Builder::new()
        .name("serve-conn".into())
        .spawn(move || {
            handle_conn(stream, &inner);
            adya_obs::gauge!("serve.connections").add(-1);
            inner.conns.fetch_sub(1, Ordering::Relaxed);
        });
}

/// Serves one connection to completion.
fn handle_conn(mut stream: Box<dyn Conn>, inner: &Inner) {
    if stream.set_timeouts().is_err() {
        return;
    }
    let mut reader = match stream.split() {
        Ok(r) => BufReader::new(r),
        Err(_) => return,
    };
    let mut conn = ConnState::default();
    // Raw bytes, not read_line: its UTF-8 guard truncates everything a
    // timed-out call appended when the partial line ends mid-codepoint,
    // silently dropping bytes of a multi-byte object name split across
    // the poll boundary. read_until keeps partial bytes in `buf`.
    let mut buf: Vec<u8> = Vec::new();
    let mut last_progress = Instant::now();
    let why_closing;
    loop {
        if inner.stop.load(Ordering::Relaxed) {
            why_closing = "shutdown";
            break;
        }
        let len_before = buf.len();
        match reader.read_until(b'\n', &mut buf) {
            // Timeout with a partial (or no) line buffered: poll stop,
            // check the idle deadline, keep accumulating.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if buf.len() > len_before {
                    last_progress = Instant::now();
                } else if last_progress.elapsed() >= inner.cfg.idle_timeout {
                    // A half-open peer (vanished without a FIN) would
                    // otherwise hold its session attached forever,
                    // turning every resume into session_busy until a
                    // server restart.
                    why_closing = "idle";
                    break;
                }
                continue;
            }
            Err(_) => {
                why_closing = "detach";
                break;
            }
            Ok(0) if buf.is_empty() => {
                why_closing = "detach";
                break;
            }
            Ok(_) => {
                last_progress = Instant::now();
                // read_until stops short of the delimiter only at EOF.
                let at_eof = !buf.ends_with(b"\n");
                let outcome = dispatch_bytes(&buf, &mut stream, &mut conn, inner, &mut reader);
                buf.clear();
                match outcome {
                    LineOutcome::Continue => {}
                    LineOutcome::End => {
                        detach(&mut conn.attached);
                        return;
                    }
                }
                if at_eof {
                    why_closing = "detach";
                    break;
                }
            }
        }
    }
    let (name, events, verdicts) = match &conn.attached {
        Some(a) => (
            Some(a.session.name().to_string()),
            a.session.records(),
            a.session.verdicts(),
        ),
        None => (None, 0, 0),
    };
    let _ = writeln!(
        stream,
        "{}",
        proto::closing_frame(why_closing, name.as_deref(), events, verdicts)
    );
    let _ = stream.flush();
    detach(&mut conn.attached);
}

fn detach(attached: &mut Option<Attached>) {
    if let Some(mut a) = attached.take() {
        a.session.park();
        a.slot.checkin(a.session);
    }
}

enum LineOutcome {
    Continue,
    End,
}

/// Validates one raw line as UTF-8 and dispatches it. A line that is
/// not UTF-8 is rejected loudly instead of being applied mangled.
fn dispatch_bytes(
    raw: &[u8],
    stream: &mut Box<dyn Conn>,
    conn: &mut ConnState,
    inner: &Inner,
    reader: &mut BufReader<Box<dyn Read + Send>>,
) -> LineOutcome {
    match std::str::from_utf8(raw) {
        Ok(line) => dispatch_line(line, stream, conn, inner, reader),
        Err(_) => {
            adya_obs::counter!("serve.parse_errors").inc();
            let _ = writeln!(
                stream,
                "{}",
                proto::error_frame("parse", "line is not valid UTF-8")
            );
            LineOutcome::Continue
        }
    }
}

fn dispatch_line(
    raw: &str,
    stream: &mut Box<dyn Conn>,
    conn: &mut ConnState,
    inner: &Inner,
    reader: &mut BufReader<Box<dyn Read + Send>>,
) -> LineOutcome {
    let line = raw.trim();
    if line.is_empty() {
        return LineOutcome::Continue;
    }
    // First line of an HTTP scrape: same port, different protocol.
    if conn.attached.is_none() && (line.starts_with("GET ") || line.starts_with("HEAD ")) {
        serve_http(line, stream, reader, inner);
        return LineOutcome::End;
    }
    if line.starts_with('{') {
        return dispatch_frame(line, stream, conn, inner);
    }
    // Event tokens. The session is checked out by this thread: the
    // whole apply — log, crash plane, batched checker application —
    // runs with no lock held.
    let Some(a) = conn.attached.as_mut() else {
        let _ = writeln!(
            stream,
            "{}",
            proto::error_frame("not_attached", "send a hello or resume frame first")
        );
        return LineOutcome::Continue;
    };
    let result = a.session.apply_line(line, &inner.tap);
    a.slot.refresh_health(&a.session);
    match result {
        Ok(verdicts) => {
            // Wire-only annotation: the canonical verdict bytes are
            // prefixed with the trace id for opted-in clients; the
            // durable log and replay window never see the prefix.
            let annotate = conn.client_trace && inner.trace.is_some();
            for (tid, v) in verdicts {
                let wrote = match tid {
                    Some(id) if annotate => writeln!(
                        stream,
                        "{{\"trace\": \"{}\", {}",
                        adya_obs::fmt_trace_id(id),
                        &v[1..]
                    ),
                    _ => writeln!(stream, "{v}"),
                };
                if wrote.is_err() {
                    return LineOutcome::End;
                }
            }
            LineOutcome::Continue
        }
        Err(ApplyError::Parse(detail)) => {
            adya_obs::counter!("serve.parse_errors").inc();
            let _ = writeln!(stream, "{}", proto::error_frame("parse", &detail));
            LineOutcome::Continue
        }
        Err(ApplyError::Closed(fin)) => {
            let _ = writeln!(stream, "{}", proto::error_frame("session_closed", &fin));
            LineOutcome::Continue
        }
        Err(ApplyError::Io(e)) => {
            let _ = writeln!(
                stream,
                "{}",
                proto::error_frame("io", &format!("durability failure: {e}"))
            );
            LineOutcome::End
        }
    }
}

fn dispatch_frame(
    line: &str,
    stream: &mut Box<dyn Conn>,
    conn: &mut ConnState,
    inner: &Inner,
) -> LineOutcome {
    let frame = match proto::parse_frame(line) {
        Ok(f) => f,
        Err(detail) => {
            let _ = writeln!(stream, "{}", proto::error_frame("bad_frame", &detail));
            return LineOutcome::Continue;
        }
    };
    // A follower serves only the replication vocabulary (plus scrapes
    // and `promote`): client frames are redirected at the last leader
    // this node heard from.
    if inner.follower.load(Ordering::Relaxed)
        && matches!(
            frame,
            ClientFrame::Hello { .. } | ClientFrame::Resume { .. } | ClientFrame::Close
        )
    {
        let hint = inner.leader_hint.lock().unwrap().clone();
        let _ = writeln!(stream, "{}", proto::not_leader_frame(hint.as_deref()));
        return LineOutcome::Continue;
    }
    match frame {
        ClientFrame::Hello {
            session: name,
            trace: want_trace,
        } => {
            if attached_guard(conn, stream) {
                return LineOutcome::Continue;
            }
            let mut sessions = inner.sessions.lock().unwrap();
            if sessions.contains_key(&name) || inner.cfg.data_dir.join(&name).exists() {
                let _ = writeln!(
                    stream,
                    "{}",
                    proto::error_frame("session_exists", "use resume to re-attach")
                );
                return LineOutcome::Continue;
            }
            match Session::create(
                &inner.cfg.data_dir,
                &name,
                inner.cfg.session,
                inner.publisher(&name),
            ) {
                Ok(mut s) => {
                    s.attached = true;
                    if let Some(plane) = &inner.trace {
                        s.set_trace(Arc::clone(plane));
                    }
                    conn.client_trace = want_trace;
                    let slot = Arc::new(SessionSlot::new_attached(&s));
                    sessions.insert(name.clone(), Arc::clone(&slot));
                    adya_obs::counter!("serve.hellos").inc();
                    adya_obs::gauge!("serve.sessions").set(sessions.len() as i64);
                    drop(sessions);
                    conn.attached = Some(Attached {
                        slot,
                        session: Box::new(s),
                    });
                    let _ = writeln!(stream, "{}", proto::ok_frame("hello", &name, 0, 0, 0));
                    LineOutcome::Continue
                }
                Err(e) => {
                    let _ = writeln!(
                        stream,
                        "{}",
                        proto::error_frame("io", &format!("cannot create session: {e}"))
                    );
                    LineOutcome::Continue
                }
            }
        }
        ClientFrame::Resume {
            session: name,
            verdicts: have,
            trace: want_trace,
        } => {
            if attached_guard(conn, stream) {
                return LineOutcome::Continue;
            }
            let Some(slot) = lookup_or_recover(inner, &name, stream) else {
                return LineOutcome::Continue;
            };
            // Checking the session out is the attachment claim: if the
            // slot is empty another connection owns it right now.
            let Some(mut s) = slot.checkout() else {
                let _ = writeln!(
                    stream,
                    "{}",
                    proto::error_frame("session_busy", "another connection owns this session")
                );
                return LineOutcome::Continue;
            };
            // A torn tail healed during recovery is reported with the
            // adya-check truncated_input vocabulary, then the resume
            // proceeds — the log was truncated at the exact good byte.
            if let Some(detail) = s.truncated.take() {
                let _ = writeln!(stream, "{}", proto::error_frame("truncated_input", &detail));
            }
            match s.resume(have) {
                Ok((events, verdicts, replay)) => {
                    s.attached = true;
                    if let Some(plane) = &inner.trace {
                        s.set_trace(Arc::clone(plane));
                    }
                    conn.client_trace = want_trace;
                    slot.refresh_health(&s);
                    conn.attached = Some(Attached { slot, session: s });
                    adya_obs::counter!("serve.resumes").inc();
                    let _ = writeln!(
                        stream,
                        "{}",
                        proto::ok_frame("resume", &name, events, verdicts, replay.len() as u64)
                    );
                    for v in replay {
                        let _ = writeln!(stream, "{v}");
                    }
                    LineOutcome::Continue
                }
                Err(e) => {
                    let frame = match e {
                        ResumeError::Closed(fin) => proto::error_frame("session_closed", &fin),
                        ResumeError::Unrecoverable { base } => proto::error_frame(
                            "verdicts_unrecoverable",
                            &format!("replay window starts at verdict {base}"),
                        ),
                        // Structured: the client truncates its ledger
                        // to `durable` and re-sends the token suffix —
                        // the failover path after a promotion that
                        // lost acknowledged-but-unreplicated verdicts.
                        ResumeError::Ahead { durable } => {
                            proto::verdicts_ahead_frame(have, durable)
                        }
                    };
                    let _ = writeln!(stream, "{frame}");
                    // A refused resume mutated nothing worth snapshotting:
                    // return the session to the slot without parking.
                    slot.checkin(s);
                    LineOutcome::Continue
                }
            }
        }
        ClientFrame::Close => {
            let Some(a) = conn.attached.as_mut() else {
                let _ = writeln!(
                    stream,
                    "{}",
                    proto::error_frame("not_attached", "nothing to close")
                );
                return LineOutcome::Continue;
            };
            match a.session.close() {
                Ok(fin) => {
                    let name = a.session.name().to_string();
                    let (events, verdicts) = (a.session.records(), a.session.verdicts());
                    a.session.attached = false;
                    let _ = writeln!(stream, "{fin}");
                    let _ = writeln!(
                        stream,
                        "{}",
                        proto::closing_frame("close", Some(&name), events, verdicts)
                    );
                    let _ = stream.flush();
                    let a = conn.attached.take().expect("attached checked above");
                    a.slot.checkin(a.session);
                    LineOutcome::End
                }
                Err(e) => {
                    let _ = writeln!(
                        stream,
                        "{}",
                        proto::error_frame("io", &format!("close failed: {e}"))
                    );
                    LineOutcome::End
                }
            }
        }
        ClientFrame::Promote => {
            // One-way and idempotent: an operator (or a failing-over
            // client) turns this follower into the leader. Nothing to
            // recover eagerly — sessions lazy-load on first resume,
            // exactly like a restart.
            if inner.follower.swap(false, Ordering::Relaxed) {
                inner.leader_hint.lock().unwrap().take();
                if let Some(plane) = &inner.trace {
                    plane.set_role("leader");
                }
                adya_obs::counter!("serve.promotions").inc();
            }
            let _ = writeln!(stream, "{{\"ok\": \"promote\"}}");
            LineOutcome::Continue
        }
        ClientFrame::ReplHello { node, advertise } => {
            if !inner.follower.load(Ordering::Relaxed) {
                let _ = writeln!(
                    stream,
                    "{}",
                    proto::error_frame("not_follower", "this node is a leader")
                );
                return LineOutcome::Continue;
            }
            if let Some(addr) = advertise {
                *inner.leader_hint.lock().unwrap() = Some(addr);
            }
            conn.sink = Some(ReplicaSink::new(
                inner.cfg.data_dir.clone(),
                inner.cfg.session.log.fsync,
            ));
            adya_obs::counter!("serve.repl_hellos").inc();
            let _ = writeln!(
                stream,
                "{{\"ok\": \"repl_hello\", \"node\": \"{}\"}}",
                adya_obs::json::esc(&node)
            );
            LineOutcome::Continue
        }
        ClientFrame::Replicate { session } => {
            let Some(sink) = conn.sink.as_mut() else {
                return not_replicating(stream);
            };
            match sink.inventory(&session) {
                Ok(files) => {
                    let _ = writeln!(stream, "{}", proto::inventory_frame(&session, &files));
                    LineOutcome::Continue
                }
                Err(e) => {
                    let _ = writeln!(
                        stream,
                        "{}",
                        proto::error_frame("io", &format!("inventory failed: {e}"))
                    );
                    LineOutcome::End
                }
            }
        }
        ClientFrame::ReplAppend {
            session,
            file,
            off,
            crc,
            data,
            trace,
        } => {
            let Some(sink) = conn.sink.as_mut() else {
                return not_replicating(stream);
            };
            // No per-mutation reply: durability is acknowledged at the
            // next `repl_flush` barrier. A reject makes the leader
            // reconnect and redo catch-up from the real inventory.
            match sink.append(&session, &file, off, crc, &data) {
                Ok(()) => {
                    // The leader sampled this record: stamp its
                    // arrival here and remember it for the barrier's
                    // `ack` stamp. Ids key off the durable record
                    // number, so both nodes agree on them.
                    if let (Some(plane), Some(id)) = (&inner.trace, trace) {
                        plane.stamp(id, Stage::Replicate);
                        conn.pending_trace.push(id);
                    }
                    LineOutcome::Continue
                }
                Err(SinkError::Reject(detail)) => {
                    let _ = writeln!(stream, "{}", proto::error_frame("repl_reject", &detail));
                    LineOutcome::Continue
                }
                Err(SinkError::Io(e)) => {
                    let _ = writeln!(
                        stream,
                        "{}",
                        proto::error_frame("io", &format!("replica append failed: {e}"))
                    );
                    LineOutcome::End
                }
            }
        }
        ClientFrame::ReplPut {
            session,
            file,
            crc,
            data,
        } => {
            let Some(sink) = conn.sink.as_mut() else {
                return not_replicating(stream);
            };
            match sink.put(&session, &file, crc, &data) {
                Ok(()) => LineOutcome::Continue,
                Err(SinkError::Reject(detail)) => {
                    let _ = writeln!(stream, "{}", proto::error_frame("repl_reject", &detail));
                    LineOutcome::Continue
                }
                Err(SinkError::Io(e)) => {
                    let _ = writeln!(
                        stream,
                        "{}",
                        proto::error_frame("io", &format!("replica put failed: {e}"))
                    );
                    LineOutcome::End
                }
            }
        }
        ClientFrame::ReplRemove { session, file } => {
            let Some(sink) = conn.sink.as_mut() else {
                return not_replicating(stream);
            };
            match sink.remove(&session, &file) {
                Ok(()) => LineOutcome::Continue,
                Err(e) => {
                    let _ = writeln!(
                        stream,
                        "{}",
                        proto::error_frame("io", &format!("replica remove failed: {e}"))
                    );
                    LineOutcome::End
                }
            }
        }
        ClientFrame::ReplFlush { seq } => {
            let Some(sink) = conn.sink.as_mut() else {
                return not_replicating(stream);
            };
            match sink.flush() {
                Ok(()) => {
                    // Everything since the last barrier is durable on
                    // this replica: stamp the follower-side `ack`.
                    if let Some(plane) = &inner.trace {
                        for id in conn.pending_trace.drain(..) {
                            plane.stamp(id, Stage::Ack);
                        }
                    } else {
                        conn.pending_trace.clear();
                    }
                    let _ = writeln!(stream, "{}", proto::ack_frame(seq));
                    let _ = stream.flush();
                    LineOutcome::Continue
                }
                Err(e) => {
                    let _ = writeln!(
                        stream,
                        "{}",
                        proto::error_frame("io", &format!("replica fsync failed: {e}"))
                    );
                    LineOutcome::End
                }
            }
        }
    }
}

/// Writes `already_attached` and reports whether this connection
/// already owns a session (one session per connection).
fn attached_guard(conn: &ConnState, stream: &mut Box<dyn Conn>) -> bool {
    if conn.attached.is_some() {
        let _ = writeln!(
            stream,
            "{}",
            proto::error_frame("already_attached", "one session per connection")
        );
        return true;
    }
    false
}

/// Rejects a replication mutation on a connection that never sent
/// `repl_hello`.
fn not_replicating(stream: &mut Box<dyn Conn>) -> LineOutcome {
    let _ = writeln!(
        stream,
        "{}",
        proto::error_frame("not_replicating", "send a repl_hello frame first")
    );
    LineOutcome::Continue
}

/// Finds `name` in the registry, or recovers it from disk and
/// registers it. The (potentially slow) snapshot read + log-tail
/// replay runs with *no* lock on the registry — only a per-name claim
/// in `recovering` — so a fleet of post-restart resumes recovers in
/// parallel and never stalls `/metrics`, `/health` or other
/// connections. A concurrent resume for the same name gets
/// `session_busy`, which clients retry with backoff. On failure the
/// error frame has already been written; the caller just continues.
fn lookup_or_recover(
    inner: &Inner,
    name: &str,
    stream: &mut Box<dyn Conn>,
) -> Option<Arc<SessionSlot>> {
    if let Some(s) = inner.sessions.lock().unwrap().get(name) {
        return Some(Arc::clone(s));
    }
    if !inner.cfg.data_dir.join(name).is_dir() {
        let _ = writeln!(stream, "{}", proto::error_frame("unknown_session", name));
        return None;
    }
    if !inner.recovering.lock().unwrap().insert(name.to_string()) {
        let _ = writeln!(
            stream,
            "{}",
            proto::error_frame("session_busy", "recovery in progress")
        );
        return None;
    }
    // Recheck under the claim: another connection may have finished
    // this recovery between our registry miss and the claim.
    if let Some(s) = inner.sessions.lock().unwrap().get(name) {
        inner.recovering.lock().unwrap().remove(name);
        return Some(Arc::clone(s));
    }
    let recovered = Session::recover(
        &inner.cfg.data_dir,
        name,
        inner.cfg.session,
        inner.publisher(name),
    );
    let result = match recovered {
        Ok(s) => {
            let slot = Arc::new(SessionSlot::new_parked(Box::new(s)));
            let mut sessions = inner.sessions.lock().unwrap();
            sessions.insert(name.to_string(), Arc::clone(&slot));
            adya_obs::gauge!("serve.sessions").set(sessions.len() as i64);
            Some(slot)
        }
        Err(e) => {
            let _ = writeln!(stream, "{}", proto::error_frame("corrupt", &e.to_string()));
            None
        }
    };
    inner.recovering.lock().unwrap().remove(name);
    result
}

/// Serves one HTTP request on a connection that opened with `GET`.
fn serve_http(
    request_line: &str,
    stream: &mut Box<dyn Conn>,
    reader: &mut BufReader<Box<dyn Read + Send>>,
    inner: &Inner,
) {
    // Drain headers.
    loop {
        let mut h = String::new();
        match reader.read_line(&mut h) {
            Ok(0) => break,
            Ok(_) if h == "\r\n" || h == "\n" => break,
            Ok(_) => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    let target = request_line.split_whitespace().nth(1).unwrap_or("");
    let path = target.split('?').next().unwrap_or(target);
    let role = if inner.follower.load(Ordering::Relaxed) {
        "follower"
    } else {
        "leader"
    };
    let resp = match path {
        // Fleet-wide scrapes aggregate many nodes: every series
        // carries this node's identity and current role.
        "/metrics" => adya_obs::Response::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            adya_obs::global()
                .snapshot()
                .to_prometheus_labeled(&[("node", &inner.cfg.node), ("role", role)]),
        ),
        // The span-level Chrome trace, with this node's latency-
        // provenance segment embedded under `"provenance"` when
        // tracing is on — `adya-check trace-merge` joins segments
        // from several nodes into one cross-node timeline.
        "/trace" => {
            let reg = adya_obs::global();
            let chrome = adya_obs::chrome_trace(&reg.span_records(), reg.spans_dropped());
            adya_obs::Response::json(match &inner.trace {
                Some(plane) => adya_obs::attach_provenance(&chrome, &plane.segment_json()),
                None => chrome,
            })
        }
        "/health" => {
            let draining = inner.stop.load(Ordering::Relaxed);
            // Acknowledged follower lag past --repl-lag-max is a
            // health failure: the durability promise is degraded even
            // though the leader itself is fine.
            let lagging = inner.hub.as_ref().is_some_and(|h| h.unhealthy());
            let body = fleet_health(inner, draining, lagging);
            if draining || lagging {
                adya_obs::Response {
                    status: 503,
                    content_type: "application/json",
                    body: body.into_bytes(),
                }
            } else {
                adya_obs::Response::json(body)
            }
        }
        _ => adya_obs::Response::status(404, "not found\n"),
    };
    let reason = match resp.status {
        200 => "OK",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason,
        resp.content_type,
        resp.body.len()
    );
    if stream.write_all(head.as_bytes()).is_ok() {
        let _ = stream.write_all(&resp.body);
    }
    let _ = stream.flush();
}

/// The fleet `/health` document: one entry per live session.
fn fleet_health(inner: &Inner, draining: bool, lagging: bool) -> String {
    let sessions = inner.sessions.lock().unwrap();
    let mut entries = Vec::with_capacity(sessions.len());
    let mut names: Vec<_> = sessions.keys().cloned().collect();
    names.sort();
    for name in &names {
        // The slot caches each session's health entry so a scrape never
        // contends with (or waits behind) a checked-out session's
        // ingest work.
        entries.push(sessions[name].health.lock().unwrap().clone());
    }
    let role = if inner.follower.load(Ordering::Relaxed) {
        "follower"
    } else {
        "leader"
    };
    let replication = match &inner.hub {
        Some(h) => h.health_json(),
        None => "null".to_string(),
    };
    format!(
        "{{\"healthy\": {}, \"draining\": {draining}, \"role\": \"{role}\", \
         \"replication\": {replication}, \"sessions\": [{}], \"connections\": {}}}",
        !draining && !lagging,
        entries.join(", "),
        inner.conns.load(Ordering::Relaxed),
    )
}

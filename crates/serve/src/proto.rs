//! The session-control vocabulary layered over the NDJSON
//! event/verdict framing.
//!
//! One line = one frame. Lines beginning with `{` are control frames;
//! every other non-empty line is whitespace-separated event tokens in
//! the `adya-check --stream` text notation. The server answers with
//! NDJSON only: `ok` acks, verdict lines ([`Verdict::to_json`]),
//! structured `error` frames (the `truncated_input` vocabulary of
//! `adya-check` exit code 3), and a `closing` frame as the last line
//! of every orderly connection end.
//!
//! Client frames:
//!
//! ```text
//! {"op": "hello", "session": "tenant-1"}
//! {"op": "resume", "session": "tenant-1", "verdicts": 12}
//! {"op": "close"}
//! {"op": "promote"}
//! ```
//!
//! `hello` and `resume` accept an optional `"trace": "on"` field: a
//! tracing-enabled server (`--trace-propagate`) then prefixes each
//! *live* verdict line it sends on that connection with the verdict's
//! trace id — `{"trace": "t0123…", <canonical verdict fields>}` — so a
//! client can measure per-verdict round trips. The durable verdict
//! stream and all replayed lines stay canonical (byte-identical with
//! tracing on or off); the annotation is a wire-only prefix the client
//! strips before ledgering.
//!
//! Replication frames (leader → follower, same NDJSON transport; the
//! binary log payloads ride as hex with a CRC-32 the follower verifies
//! before anything touches disk):
//!
//! ```text
//! {"op": "repl_hello", "node": "…", "advertise": "host:port"}
//! {"op": "replicate", "session": "tenant-1"}
//! {"op": "append", "session": "…", "file": "seg-0.log", "off": N, "crc": C, "hex": "…"}
//! {"op": "put", "session": "…", "file": "snap-8.snap", "crc": C, "hex": "…"}
//! {"op": "remove", "session": "…", "file": "seg-0.log"}
//! {"op": "repl_flush", "seq": S}        → {"ack": S} once durable
//! ```
//!
//! An `append` carrying a sampled event record may add
//! `"trace": "t<16 hex>"` — the event's trace id — which the follower
//! stamps into its own trace plane (`replicate` at receipt, `ack` at
//! the next durability barrier) so a merged trace shows both lanes.
//! Nodes without tracing ignore the field (unknown fields always
//! parse), keeping mixed-version replica sets compatible.
//!
//! The control parser is deliberately tiny: flat objects, string /
//! unsigned-integer values, no nesting — exactly the vocabulary above,
//! rejected loudly otherwise.
//!
//! [`Verdict::to_json`]: adya_online::Verdict::to_json

use adya_obs::json::esc;

/// A parsed client control frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientFrame {
    /// Open a brand-new session.
    Hello {
        /// Session name (also the on-disk directory name).
        session: String,
        /// Client opted into per-verdict trace-id annotation.
        trace: bool,
    },
    /// Re-attach to a durable session. `verdicts` is how many commit
    /// verdict lines the client has already received; the server
    /// re-sends everything after that.
    Resume {
        /// Session name.
        session: String,
        /// Commit-verdict lines already delivered to this client.
        verdicts: u64,
        /// Client opted into per-verdict trace-id annotation.
        trace: bool,
    },
    /// Finish the session: final verdict, then a `closing` frame.
    Close,
    /// Turn this follower into the leader (operator frame, or a
    /// client failing over after leader death). Idempotent.
    Promote,
    /// A leader introducing itself on a replication connection.
    ReplHello {
        /// Leader's self-chosen node name (diagnostics only).
        node: String,
        /// Leader's client-facing address, handed back to clients in
        /// `not_leader` redirects.
        advertise: Option<String>,
    },
    /// Open (or re-open) the replication stream for one session; the
    /// follower answers with its durable file inventory.
    Replicate {
        /// Session name.
        session: String,
    },
    /// Append `data` at byte offset `off` of a session file. The
    /// follower verifies `crc` and that `off` matches its durable
    /// length (smaller offsets are idempotent replays, skipped).
    ReplAppend {
        /// Session name.
        session: String,
        /// Target file (validated: `seg-*.log`, `names*.log` only).
        file: String,
        /// Byte offset the payload starts at.
        off: u64,
        /// CRC-32 of the payload.
        crc: u32,
        /// The payload.
        data: Vec<u8>,
        /// Trace id of the sampled event record this append carries,
        /// for cross-node provenance stamping.
        trace: Option<u64>,
    },
    /// Atomically replace a whole session file (snapshots, `closed`).
    ReplPut {
        /// Session name.
        session: String,
        /// Target file (validated: `snap-*.snap`, `names*.log`,
        /// `closed`).
        file: String,
        /// CRC-32 of the payload.
        crc: u32,
        /// The payload.
        data: Vec<u8>,
    },
    /// Delete a session file the leader compacted away.
    ReplRemove {
        /// Session name.
        session: String,
        /// Target file.
        file: String,
    },
    /// Durability barrier: the follower answers `{"ack": seq}` once
    /// everything before it is durable under its fsync policy.
    ReplFlush {
        /// The leader's mutation sequence number.
        seq: u64,
    },
}

/// Parses one `{`-prefixed control line.
pub fn parse_frame(line: &str) -> Result<ClientFrame, String> {
    let fields = parse_flat_object(line)?;
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let op = match get("op") {
        Some(JsonValue::Str(op)) => op.as_str(),
        _ => return Err("control frame is missing a string \"op\"".into()),
    };
    let session = || -> Result<String, String> {
        match get("session") {
            Some(JsonValue::Str(s)) => validate_session_name(s).map(|()| s.clone()),
            _ => Err(format!("{op:?} frame is missing a string \"session\"")),
        }
    };
    let str_of = |key: &str| -> Result<String, String> {
        match get(key) {
            Some(JsonValue::Str(s)) => Ok(s.clone()),
            _ => Err(format!("{op:?} frame is missing a string \"{key}\"")),
        }
    };
    let num_of = |key: &str| -> Result<u64, String> {
        match get(key) {
            Some(JsonValue::Num(n)) => Ok(*n),
            _ => Err(format!("{op:?} frame is missing an unsigned \"{key}\"")),
        }
    };
    let file = || -> Result<String, String> {
        let f = str_of("file")?;
        validate_replica_file(&f)?;
        Ok(f)
    };
    let payload = || -> Result<(u32, Vec<u8>), String> {
        let crc = num_of("crc")?;
        let crc = u32::try_from(crc).map_err(|_| "\"crc\" exceeds 32 bits".to_string())?;
        Ok((crc, decode_hex(&str_of("hex")?)?))
    };
    // Optional `"trace": "on"` opt-in (hello/resume).
    let trace_opt_in = || -> Result<bool, String> {
        match get("trace") {
            None => Ok(false),
            Some(JsonValue::Str(s)) if s == "on" => Ok(true),
            Some(JsonValue::Str(s)) if s == "off" => Ok(false),
            _ => Err("\"trace\" must be \"on\" or \"off\"".into()),
        }
    };
    // Optional `"trace": "t<hex>"` id (replication appends).
    let trace_id = || -> Result<Option<u64>, String> {
        match get("trace") {
            None => Ok(None),
            Some(JsonValue::Str(s)) => adya_obs::parse_trace_id(s)
                .map(Some)
                .ok_or_else(|| format!("bad trace id {s:?}")),
            _ => Err("\"trace\" must be a t-prefixed hex string".into()),
        }
    };
    match op {
        "hello" => Ok(ClientFrame::Hello {
            session: session()?,
            trace: trace_opt_in()?,
        }),
        "resume" => {
            let verdicts = match get("verdicts") {
                Some(JsonValue::Num(n)) => *n,
                None => 0,
                _ => return Err("\"verdicts\" must be an unsigned integer".into()),
            };
            Ok(ClientFrame::Resume {
                session: session()?,
                verdicts,
                trace: trace_opt_in()?,
            })
        }
        "close" => Ok(ClientFrame::Close),
        "promote" => Ok(ClientFrame::Promote),
        "repl_hello" => Ok(ClientFrame::ReplHello {
            node: str_of("node").unwrap_or_else(|_| "leader".into()),
            advertise: str_of("advertise").ok(),
        }),
        "replicate" => Ok(ClientFrame::Replicate {
            session: session()?,
        }),
        "append" => {
            let (crc, data) = payload()?;
            let file = file()?;
            if !is_append_file(&file) {
                return Err(format!("{file:?} is not appendable"));
            }
            Ok(ClientFrame::ReplAppend {
                session: session()?,
                file,
                off: num_of("off")?,
                crc,
                data,
                trace: trace_id()?,
            })
        }
        "put" => {
            let (crc, data) = payload()?;
            Ok(ClientFrame::ReplPut {
                session: session()?,
                file: file()?,
                crc,
                data,
            })
        }
        "remove" => Ok(ClientFrame::ReplRemove {
            session: session()?,
            file: file()?,
        }),
        "repl_flush" => Ok(ClientFrame::ReplFlush {
            seq: num_of("seq")?,
        }),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Session names become directory names, so they are restricted to a
/// conservative portable set and may not start with a dot.
pub fn validate_session_name(name: &str) -> Result<(), String> {
    let ok_char = |c: char| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.');
    if name.is_empty() || name.len() > 64 {
        return Err("session names are 1..=64 characters".into());
    }
    if name.starts_with('.') || !name.chars().all(ok_char) {
        return Err(format!(
            "bad session name {name:?}: use [A-Za-z0-9._-], no leading dot"
        ));
    }
    Ok(())
}

/// Replication may only touch the exact file shapes [`SessionLog`]
/// produces; anything else from a peer — however well-formed its JSON —
/// is rejected before it can name a path.
///
/// [`SessionLog`]: crate::log::SessionLog
pub fn validate_replica_file(name: &str) -> Result<(), String> {
    let numbered = |prefix: &str, suffix: &str| {
        name.strip_prefix(prefix)
            .and_then(|s| s.strip_suffix(suffix))
            .is_some_and(|mid| !mid.is_empty() && mid.bytes().all(|b| b.is_ascii_digit()))
    };
    if name == "closed"
        || name == "names.log"
        || numbered("seg-", ".log")
        || numbered("names-", ".log")
        || numbered("snap-", ".snap")
    {
        Ok(())
    } else {
        Err(format!("{name:?} is not a session log file"))
    }
}

/// `true` for the append-only session files (segments and the name
/// side-log); snapshots and `closed` are whole-file replacements.
pub fn is_append_file(name: &str) -> bool {
    name.ends_with(".log")
}

/// Lowercase hex of `bytes`, for replication payloads.
pub fn encode_hex(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(HEX[(b >> 4) as usize] as char);
        s.push(HEX[(b & 0xf) as usize] as char);
    }
    s
}

/// Decodes a replication hex payload; malformed input is an error,
/// never a panic — it arrives off the network.
pub fn decode_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("hex payload has odd length".into());
    }
    let nib = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(format!("bad hex byte {:?}", c as char)),
        }
    };
    let b = s.as_bytes();
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        out.push((nib(pair[0])? << 4) | nib(pair[1])?);
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum JsonValue {
    Str(String),
    Num(u64),
}

/// Parses `{"k": "v", "n": 3}` — flat, strings and unsigned ints only.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut out = Vec::new();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    if chars.next() != Some('{') {
        return Err("control frames are JSON objects".into());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            _ if out.is_empty() => return Err("expected a key or '}'".into()),
            _ => return Err("expected a key".into()),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(d as u64))
                        .ok_or("integer overflow")?;
                    chars.next();
                }
                JsonValue::Num(n)
            }
            _ => return Err(format!("unsupported value for key {key:?}")),
        };
        out.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            _ => return Err("expected ',' or '}'".into()),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing bytes after control frame".into());
    }
    Ok(out)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected a string".into());
    }
    let mut s = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(s),
            Some('\\') => match chars.next() {
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                Some('n') => s.push('\n'),
                Some('t') => s.push('\t'),
                other => return Err(format!("unsupported escape {other:?}")),
            },
            Some(c) => s.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

// ---------------------------------------------------------------------
// Server → client frames
// ---------------------------------------------------------------------

/// Ack for a successful `hello`/`resume`. `events` is the number of
/// durable event records (the client resends its token stream from
/// that index); `verdicts` is the number of durable commit verdicts;
/// `replay` is how many verdict lines follow this ack immediately.
pub fn ok_frame(op: &str, session: &str, events: u64, verdicts: u64, replay: u64) -> String {
    format!(
        "{{\"ok\": \"{}\", \"session\": \"{}\", \"events\": {events}, \
         \"verdicts\": {verdicts}, \"replay\": {replay}}}",
        esc(op),
        esc(session),
    )
}

/// A structured error frame. `code` is machine-readable (the
/// `truncated_input` vocabulary plus the session-control codes);
/// `detail` is for humans.
pub fn error_frame(code: &str, detail: &str) -> String {
    format!(
        "{{\"error\": \"{}\", \"detail\": \"{}\"}}",
        esc(code),
        esc(detail)
    )
}

/// Durability ack for a `repl_flush` barrier.
pub fn ack_frame(seq: u64) -> String {
    format!("{{\"ack\": {seq}}}")
}

/// Follower's answer to `replicate`: its durable file inventory for
/// the session, encoded as one `name:len,name:len` string so it stays
/// inside the flat string/uint frame vocabulary. Absent files are
/// simply not listed — the leader ships anything missing in full.
pub fn inventory_frame(session: &str, files: &[(String, u64)]) -> String {
    let listing = files
        .iter()
        .map(|(name, len)| format!("{name}:{len}"))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"ok\": \"replicate\", \"session\": \"{}\", \"files\": \"{}\"}}",
        esc(session),
        esc(&listing),
    )
}

/// Parses the `files` listing of an [`inventory_frame`] back into
/// `(name, len)` pairs; file names are re-validated — the follower is
/// a network peer too.
pub fn parse_inventory(listing: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for part in listing.split(',').filter(|p| !p.is_empty()) {
        let (name, len) = part
            .rsplit_once(':')
            .ok_or_else(|| format!("inventory entry {part:?} has no ':'"))?;
        validate_replica_file(name)?;
        let len = len
            .parse::<u64>()
            .map_err(|_| format!("inventory entry {part:?} has a bad length"))?;
        out.push((name.to_string(), len));
    }
    Ok(out)
}

/// Refusal sent by a follower to ordinary client frames. `leader` is
/// the advertised address of the node this follower last replicated
/// from, when known — clients redirect there first.
pub fn not_leader_frame(leader: Option<&str>) -> String {
    match leader {
        Some(addr) => format!(
            "{{\"error\": \"not_leader\", \"detail\": \"this node is a follower\", \
             \"leader\": \"{}\"}}",
            esc(addr)
        ),
        None => error_frame("not_leader", "this node is a follower"),
    }
}

/// Refusal for a resume whose verdict ledger is ahead of this node's
/// durable history (a freshly promoted follower that was lagging).
/// `durable` tells the client how many commit verdicts this node can
/// stand behind; the client truncates its ledger to that count and
/// re-sends the suffix of its token stream.
pub fn verdicts_ahead_frame(have: u64, durable: u64) -> String {
    format!(
        "{{\"error\": \"verdicts_ahead\", \"detail\": \"client holds {have} verdicts, \
         server has {durable} durable\", \"durable\": {durable}}}"
    )
}

/// The last frame of an orderly connection end. `why` is `close`
/// (client asked), `detach` (client went away; session stays durable),
/// `idle` (no read progress past the idle deadline; session parked) or
/// `shutdown` (server is draining).
pub fn closing_frame(why: &str, session: Option<&str>, events: u64, verdicts: u64) -> String {
    let session = match session {
        Some(s) => format!("\"{}\"", esc(s)),
        None => "null".into(),
    };
    format!(
        "{{\"closing\": \"{}\", \"session\": {session}, \"events\": {events}, \
         \"verdicts\": {verdicts}}}",
        esc(why),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_frames() {
        assert_eq!(
            parse_frame("{\"op\": \"hello\", \"session\": \"t1\"}").unwrap(),
            ClientFrame::Hello {
                session: "t1".into(),
                trace: false,
            }
        );
        assert_eq!(
            parse_frame("{\"op\":\"resume\",\"session\":\"t1\",\"verdicts\":12}").unwrap(),
            ClientFrame::Resume {
                session: "t1".into(),
                verdicts: 12,
                trace: false,
            }
        );
        // verdicts defaults to 0.
        assert_eq!(
            parse_frame("{\"op\":\"resume\",\"session\":\"x\"}").unwrap(),
            ClientFrame::Resume {
                session: "x".into(),
                verdicts: 0,
                trace: false,
            }
        );
        assert_eq!(
            parse_frame("{\"op\":\"close\"}").unwrap(),
            ClientFrame::Close
        );
    }

    #[test]
    fn rejects_malformed_frames() {
        for bad in [
            "{",
            "{}",
            "{\"op\": \"hello\"}",                        // no session
            "{\"op\": \"nope\", \"session\": \"x\"}",     // unknown op
            "{\"op\": \"hello\", \"session\": \"../x\"}", // path escape
            "{\"op\": \"hello\", \"session\": \".x\"}",   // leading dot
            "{\"op\": \"hello\", \"session\": \"\"}",     // empty
            "{\"op\": \"close\"} trailing",
            "{\"op\": 3}",
            "not json",
        ] {
            assert!(parse_frame(bad).is_err(), "{bad}");
        }
        let long = format!("{{\"op\":\"hello\",\"session\":\"{}\"}}", "a".repeat(65));
        assert!(parse_frame(&long).is_err());
    }

    #[test]
    fn frames_render_as_single_lines() {
        for s in [
            ok_frame("resume", "t1", 7, 3, 1),
            error_frame("truncated_input", "torn tail after byte 91"),
            closing_frame("shutdown", Some("t1"), 7, 3),
            closing_frame("detach", None, 0, 0),
        ] {
            assert!(!s.contains('\n'), "{s}");
            assert!(s.starts_with('{') && s.ends_with('}'), "{s}");
        }
        assert!(ok_frame("hello", "t", 0, 0, 0).contains("\"ok\": \"hello\""));
        assert!(closing_frame("close", Some("t"), 1, 2).contains("\"closing\": \"close\""));
    }

    #[test]
    fn parses_replication_frames() {
        assert_eq!(
            parse_frame("{\"op\": \"promote\"}").unwrap(),
            ClientFrame::Promote
        );
        assert_eq!(
            parse_frame("{\"op\": \"repl_hello\", \"node\": \"n1\", \"advertise\": \"h:1\"}")
                .unwrap(),
            ClientFrame::ReplHello {
                node: "n1".into(),
                advertise: Some("h:1".into()),
            }
        );
        assert_eq!(
            parse_frame("{\"op\": \"replicate\", \"session\": \"t1\"}").unwrap(),
            ClientFrame::Replicate {
                session: "t1".into()
            }
        );
        let hex = encode_hex(b"\x00\xff magic");
        let append = format!(
            "{{\"op\": \"append\", \"session\": \"t1\", \"file\": \"seg-0.log\", \
             \"off\": 32, \"crc\": 7, \"hex\": \"{hex}\"}}"
        );
        assert_eq!(
            parse_frame(&append).unwrap(),
            ClientFrame::ReplAppend {
                session: "t1".into(),
                file: "seg-0.log".into(),
                off: 32,
                crc: 7,
                data: b"\x00\xff magic".to_vec(),
                trace: None,
            }
        );
        assert_eq!(
            parse_frame(
                "{\"op\": \"put\", \"session\": \"t1\", \"file\": \"snap-8.snap\", \
                 \"crc\": 0, \"hex\": \"\"}"
            )
            .unwrap(),
            ClientFrame::ReplPut {
                session: "t1".into(),
                file: "snap-8.snap".into(),
                crc: 0,
                data: Vec::new(),
            }
        );
        assert_eq!(
            parse_frame("{\"op\": \"remove\", \"session\": \"t1\", \"file\": \"seg-0.log\"}")
                .unwrap(),
            ClientFrame::ReplRemove {
                session: "t1".into(),
                file: "seg-0.log".into(),
            }
        );
        assert_eq!(
            parse_frame("{\"op\": \"repl_flush\", \"seq\": 41}").unwrap(),
            ClientFrame::ReplFlush { seq: 41 }
        );
    }

    #[test]
    fn trace_fields_parse_and_reject_garbage() {
        assert_eq!(
            parse_frame("{\"op\": \"hello\", \"session\": \"t1\", \"trace\": \"on\"}").unwrap(),
            ClientFrame::Hello {
                session: "t1".into(),
                trace: true,
            }
        );
        assert_eq!(
            parse_frame("{\"op\": \"resume\", \"session\": \"t1\", \"trace\": \"off\"}").unwrap(),
            ClientFrame::Resume {
                session: "t1".into(),
                verdicts: 0,
                trace: false,
            }
        );
        let id = adya_obs::trace_id("t1", 32);
        let append = format!(
            "{{\"op\": \"append\", \"session\": \"t1\", \"file\": \"seg-0.log\", \
             \"off\": 8, \"crc\": {}, \"hex\": \"00\", \"trace\": \"{}\"}}",
            adya_online::wire::crc32(&[0]),
            adya_obs::fmt_trace_id(id)
        );
        match parse_frame(&append).unwrap() {
            ClientFrame::ReplAppend { trace, .. } => assert_eq!(trace, Some(id)),
            other => panic!("parsed as {other:?}"),
        }
        for bad in [
            "{\"op\": \"hello\", \"session\": \"t1\", \"trace\": \"loud\"}",
            "{\"op\": \"hello\", \"session\": \"t1\", \"trace\": 1}",
            "{\"op\": \"append\", \"session\": \"t1\", \"file\": \"seg-0.log\", \
             \"off\": 0, \"crc\": 0, \"hex\": \"\", \"trace\": \"zebra\"}",
        ] {
            assert!(parse_frame(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn rejects_malicious_replication_frames() {
        for bad in [
            // Path escapes and non-log files must die in the parser.
            "{\"op\": \"remove\", \"session\": \"t\", \"file\": \"../seg-0.log\"}",
            "{\"op\": \"remove\", \"session\": \"t\", \"file\": \"/etc/passwd\"}",
            "{\"op\": \"remove\", \"session\": \"t\", \"file\": \"seg-x.log\"}",
            "{\"op\": \"put\", \"session\": \"t\", \"file\": \"evil\", \"crc\": 0, \"hex\": \"\"}",
            // Snapshots are put-only, never appended.
            "{\"op\": \"append\", \"session\": \"t\", \"file\": \"snap-1.snap\", \
             \"off\": 0, \"crc\": 0, \"hex\": \"\"}",
            // Bad hex, odd hex, oversized crc.
            "{\"op\": \"put\", \"session\": \"t\", \"file\": \"closed\", \"crc\": 0, \
             \"hex\": \"zz\"}",
            "{\"op\": \"put\", \"session\": \"t\", \"file\": \"closed\", \"crc\": 0, \
             \"hex\": \"abc\"}",
            "{\"op\": \"put\", \"session\": \"t\", \"file\": \"closed\", \
             \"crc\": 4294967296, \"hex\": \"\"}",
            "{\"op\": \"repl_flush\"}",
        ] {
            assert!(parse_frame(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn replica_file_vocabulary() {
        for good in [
            "seg-0.log",
            "seg-1024.log",
            "names.log",
            "names-0.log",
            "names-77.log",
            "snap-8.snap",
            "closed",
        ] {
            assert!(validate_replica_file(good).is_ok(), "{good}");
        }
        for bad in ["seg-.log", "snap-.snap", "names-.log", "seg-0.snap", ""] {
            assert!(validate_replica_file(bad).is_err(), "{bad}");
        }
        assert!(is_append_file("seg-0.log") && is_append_file("names-3.log"));
        assert!(!is_append_file("snap-8.snap") && !is_append_file("closed"));
    }

    #[test]
    fn hex_round_trips() {
        for bytes in [&b""[..], b"\x00", b"\xff\x00\x7f", b"adya"] {
            assert_eq!(decode_hex(&encode_hex(bytes)).unwrap(), bytes);
        }
        assert_eq!(
            decode_hex("DEADbeef").unwrap(),
            vec![0xde, 0xad, 0xbe, 0xef]
        );
    }

    #[test]
    fn inventory_round_trips() {
        let files = vec![("seg-0.log".to_string(), 91), ("names.log".to_string(), 0)];
        let frame = inventory_frame("t1", &files);
        let fields = super::parse_flat_object(&frame).unwrap();
        let listing = fields
            .iter()
            .find_map(|(k, v)| match (k.as_str(), v) {
                ("files", JsonValue::Str(s)) => Some(s.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(parse_inventory(&listing).unwrap(), files);
        assert_eq!(parse_inventory("").unwrap(), Vec::new());
        assert!(parse_inventory("../x:3").is_err());
        assert!(parse_inventory("seg-0.log").is_err());
    }
}

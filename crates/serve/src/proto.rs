//! The session-control vocabulary layered over the NDJSON
//! event/verdict framing.
//!
//! One line = one frame. Lines beginning with `{` are control frames;
//! every other non-empty line is whitespace-separated event tokens in
//! the `adya-check --stream` text notation. The server answers with
//! NDJSON only: `ok` acks, verdict lines ([`Verdict::to_json`]),
//! structured `error` frames (the `truncated_input` vocabulary of
//! `adya-check` exit code 3), and a `closing` frame as the last line
//! of every orderly connection end.
//!
//! Client frames:
//!
//! ```text
//! {"op": "hello", "session": "tenant-1"}
//! {"op": "resume", "session": "tenant-1", "verdicts": 12}
//! {"op": "close"}
//! ```
//!
//! The control parser is deliberately tiny: flat objects, string /
//! unsigned-integer values, no nesting — exactly the vocabulary above,
//! rejected loudly otherwise.
//!
//! [`Verdict::to_json`]: adya_online::Verdict::to_json

use adya_obs::json::esc;

/// A parsed client control frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientFrame {
    /// Open a brand-new session.
    Hello {
        /// Session name (also the on-disk directory name).
        session: String,
    },
    /// Re-attach to a durable session. `verdicts` is how many commit
    /// verdict lines the client has already received; the server
    /// re-sends everything after that.
    Resume {
        /// Session name.
        session: String,
        /// Commit-verdict lines already delivered to this client.
        verdicts: u64,
    },
    /// Finish the session: final verdict, then a `closing` frame.
    Close,
}

/// Parses one `{`-prefixed control line.
pub fn parse_frame(line: &str) -> Result<ClientFrame, String> {
    let fields = parse_flat_object(line)?;
    let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    let op = match get("op") {
        Some(JsonValue::Str(op)) => op.as_str(),
        _ => return Err("control frame is missing a string \"op\"".into()),
    };
    let session = || -> Result<String, String> {
        match get("session") {
            Some(JsonValue::Str(s)) => validate_session_name(s).map(|()| s.clone()),
            _ => Err(format!("{op:?} frame is missing a string \"session\"")),
        }
    };
    match op {
        "hello" => Ok(ClientFrame::Hello {
            session: session()?,
        }),
        "resume" => {
            let verdicts = match get("verdicts") {
                Some(JsonValue::Num(n)) => *n,
                None => 0,
                _ => return Err("\"verdicts\" must be an unsigned integer".into()),
            };
            Ok(ClientFrame::Resume {
                session: session()?,
                verdicts,
            })
        }
        "close" => Ok(ClientFrame::Close),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Session names become directory names, so they are restricted to a
/// conservative portable set and may not start with a dot.
pub fn validate_session_name(name: &str) -> Result<(), String> {
    let ok_char = |c: char| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.');
    if name.is_empty() || name.len() > 64 {
        return Err("session names are 1..=64 characters".into());
    }
    if name.starts_with('.') || !name.chars().all(ok_char) {
        return Err(format!(
            "bad session name {name:?}: use [A-Za-z0-9._-], no leading dot"
        ));
    }
    Ok(())
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum JsonValue {
    Str(String),
    Num(u64),
}

/// Parses `{"k": "v", "n": 3}` — flat, strings and unsigned ints only.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut out = Vec::new();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::Chars>| {
        while chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
    };
    if chars.next() != Some('{') {
        return Err("control frames are JSON objects".into());
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some('"') => {}
            _ if out.is_empty() => return Err("expected a key or '}'".into()),
            _ => return Err("expected a key".into()),
        }
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => JsonValue::Str(parse_string(&mut chars)?),
            Some(c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(d as u64))
                        .ok_or("integer overflow")?;
                    chars.next();
                }
                JsonValue::Num(n)
            }
            _ => return Err(format!("unsupported value for key {key:?}")),
        };
        out.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            _ => return Err("expected ',' or '}'".into()),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing bytes after control frame".into());
    }
    Ok(out)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected a string".into());
    }
    let mut s = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(s),
            Some('\\') => match chars.next() {
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                Some('n') => s.push('\n'),
                Some('t') => s.push('\t'),
                other => return Err(format!("unsupported escape {other:?}")),
            },
            Some(c) => s.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

// ---------------------------------------------------------------------
// Server → client frames
// ---------------------------------------------------------------------

/// Ack for a successful `hello`/`resume`. `events` is the number of
/// durable event records (the client resends its token stream from
/// that index); `verdicts` is the number of durable commit verdicts;
/// `replay` is how many verdict lines follow this ack immediately.
pub fn ok_frame(op: &str, session: &str, events: u64, verdicts: u64, replay: u64) -> String {
    format!(
        "{{\"ok\": \"{}\", \"session\": \"{}\", \"events\": {events}, \
         \"verdicts\": {verdicts}, \"replay\": {replay}}}",
        esc(op),
        esc(session),
    )
}

/// A structured error frame. `code` is machine-readable (the
/// `truncated_input` vocabulary plus the session-control codes);
/// `detail` is for humans.
pub fn error_frame(code: &str, detail: &str) -> String {
    format!(
        "{{\"error\": \"{}\", \"detail\": \"{}\"}}",
        esc(code),
        esc(detail)
    )
}

/// The last frame of an orderly connection end. `why` is `close`
/// (client asked), `detach` (client went away; session stays durable),
/// `idle` (no read progress past the idle deadline; session parked) or
/// `shutdown` (server is draining).
pub fn closing_frame(why: &str, session: Option<&str>, events: u64, verdicts: u64) -> String {
    let session = match session {
        Some(s) => format!("\"{}\"", esc(s)),
        None => "null".into(),
    };
    format!(
        "{{\"closing\": \"{}\", \"session\": {session}, \"events\": {events}, \
         \"verdicts\": {verdicts}}}",
        esc(why),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_frames() {
        assert_eq!(
            parse_frame("{\"op\": \"hello\", \"session\": \"t1\"}").unwrap(),
            ClientFrame::Hello {
                session: "t1".into()
            }
        );
        assert_eq!(
            parse_frame("{\"op\":\"resume\",\"session\":\"t1\",\"verdicts\":12}").unwrap(),
            ClientFrame::Resume {
                session: "t1".into(),
                verdicts: 12
            }
        );
        // verdicts defaults to 0.
        assert_eq!(
            parse_frame("{\"op\":\"resume\",\"session\":\"x\"}").unwrap(),
            ClientFrame::Resume {
                session: "x".into(),
                verdicts: 0
            }
        );
        assert_eq!(
            parse_frame("{\"op\":\"close\"}").unwrap(),
            ClientFrame::Close
        );
    }

    #[test]
    fn rejects_malformed_frames() {
        for bad in [
            "{",
            "{}",
            "{\"op\": \"hello\"}",                        // no session
            "{\"op\": \"nope\", \"session\": \"x\"}",     // unknown op
            "{\"op\": \"hello\", \"session\": \"../x\"}", // path escape
            "{\"op\": \"hello\", \"session\": \".x\"}",   // leading dot
            "{\"op\": \"hello\", \"session\": \"\"}",     // empty
            "{\"op\": \"close\"} trailing",
            "{\"op\": 3}",
            "not json",
        ] {
            assert!(parse_frame(bad).is_err(), "{bad}");
        }
        let long = format!("{{\"op\":\"hello\",\"session\":\"{}\"}}", "a".repeat(65));
        assert!(parse_frame(&long).is_err());
    }

    #[test]
    fn frames_render_as_single_lines() {
        for s in [
            ok_frame("resume", "t1", 7, 3, 1),
            error_frame("truncated_input", "torn tail after byte 91"),
            closing_frame("shutdown", Some("t1"), 7, 3),
            closing_frame("detach", None, 0, 0),
        ] {
            assert!(!s.contains('\n'), "{s}");
            assert!(s.starts_with('{') && s.ends_with('}'), "{s}");
        }
        assert!(ok_frame("hello", "t", 0, 0, 0).contains("\"ok\": \"hello\""));
        assert!(closing_frame("close", Some("t"), 1, 2).contains("\"closing\": \"close\""));
    }
}

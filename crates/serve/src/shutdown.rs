//! Graceful-shutdown signal flag, std-only.
//!
//! `SIGTERM`/`SIGINT` (ctrl-c) set a process-wide atomic that long
//! loops poll; nothing else happens in the handler, which keeps it
//! async-signal-safe (one relaxed store). A *second* signal restores
//! the default disposition first, so a stuck shutdown can still be
//! killed the ordinary way.
//!
//! The registration goes through the C `signal` function directly —
//! the libc symbol is always linked — because pulling in a signal
//! crate is out of bounds for this workspace. On non-Unix targets
//! installation is a no-op and the flag simply never trips.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sys {
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
    pub const SIG_DFL: usize = 0;

    extern "C" {
        pub fn signal(signum: i32, handler: usize) -> usize;
    }

    pub extern "C" fn on_signal(signum: i32) {
        // Re-arm to the default disposition so a second signal of the
        // same kind terminates immediately instead of being swallowed.
        unsafe {
            signal(signum, SIG_DFL);
        }
        super::REQUESTED.store(true, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Installs the SIGTERM/SIGINT handlers. Idempotent; safe to call from
/// any binary that wants [`requested`] to mean something.
pub fn install() {
    #[cfg(unix)]
    unsafe {
        let handler = sys::on_signal as extern "C" fn(i32) as *const () as usize;
        sys::signal(sys::SIGINT, handler);
        sys::signal(sys::SIGTERM, handler);
    }
}

/// True once a shutdown signal has arrived (or [`request`] was called).
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Trips the flag programmatically (tests, or an in-process trigger).
pub fn request() {
    REQUESTED.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_trips_the_flag() {
        install();
        request();
        assert!(requested());
    }
}

//! The durable per-session store: a segmented binary event log plus
//! periodic whole-session snapshots, with compaction keyed off the
//! snapshot horizon.
//!
//! On disk a session is a directory:
//!
//! ```text
//! <data>/<session>/
//!   seg-0.log        events 0..      (EventLogWriter format)
//!   seg-4096.log     events 4096..   (rotated every rotate_events)
//!   snap-6000.snap   checker+parser state after event 6000
//!   names-17.log     interned object names from id 17, one per line
//!   closed           final verdict line, present once closed
//! ```
//!
//! A segment is named by the index of its first event record. A
//! snapshot freezes the [`OnlineChecker`] and [`StreamParser`] after
//! its named record count *and remembers the exact byte offset in the
//! open segment*, so recovery is `restore(snapshot) + replay from that
//! byte` — no rescan of already-consumed records. Every closed segment
//! whose records all precede the snapshot horizon is deleted right
//! after the snapshot lands (the open segment never is); because the
//! checker snapshot serializes the *post-GC* state, the watermark GC
//! is what bounds both the snapshot size and, through this horizon,
//! the bytes the log retains.
//!
//! The name side-log exists because the binary event log stores
//! resolved [`ObjectId`](adya_history::ObjectId)s: replaying the tail
//! rebuilds the parser's write counters, but the name→id interning
//! that future *text* tokens depend on has to be persisted separately.
//! It is folded into compaction: each `names-<base>.log` holds the
//! names of ids `base..`, and because a snapshot's serialized parser
//! already carries every name interned before it, the side-log rotates
//! to a fresh empty `names-<interned>.log` at snapshot time and the
//! older files are deleted — a session that cycles object names
//! forever keeps at most one snapshot interval of names on disk.
//! (Legacy `names.log` files are read as `base = 0` and migrate to the
//! rotated scheme at their first snapshot.)
//!
//! Durability model ([`FsyncPolicy`]): appends always go straight to
//! the OS (no userspace buffering), so a killed *process* loses at
//! most the record being written — the torn tail [`EventLogReader`]
//! detects and [`recover`](SessionLog::recover) truncates at the exact
//! `good_len` byte. Surviving an *OS* crash is what the policy tunes:
//! `always` fsyncs every append (durability window: the in-flight
//! record), the default `interval` fsyncs the open segment and name
//! log at each snapshot (window: everything since the last snapshot —
//! but snapshots, which delete log segments, are themselves always
//! synced before the rename that makes them current), and `never`
//! syncs nothing (window: whatever the OS had not written back).
//!
//! When a [`LogPublisher`] is attached, every durable byte is also
//! published to the replication hub as a file mutation — appends with
//! their exact offsets, snapshots and the `closed` marker as
//! whole-file puts, compaction as removes — so a follower's copy of
//! the directory is byte-identical and [`recover`](SessionLog::recover)
//! works on it unchanged after promotion.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use adya_history::Event;
use adya_online::{
    wire, EventLogReader, EventLogWriter, GcConfig, LogError, OnlineChecker, StreamParser,
    LOG_MAGIC,
};

use crate::replica::LogPublisher;

/// First 8 bytes of every session snapshot container.
pub const SNAP_MAGIC: [u8; 8] = *b"ADYASRV\x01";

/// When the log explicitly syncs its appends to stable storage. The
/// durability window each setting leaves open (on a leader or a
/// follower applying replicated bytes) is documented in the module
/// header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every append: survives OS crash at per-record cost.
    Always,
    /// fsync the open segment and name log at each snapshot (and every
    /// snapshot itself): a process kill loses nothing, an OS crash
    /// loses at most one snapshot interval.
    #[default]
    Interval,
    /// No explicit syncs at all, snapshots included.
    Never,
}

impl FsyncPolicy {
    /// Parses the `--fsync` CLI value.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "interval" => Ok(FsyncPolicy::Interval),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!(
                "--fsync must be always|interval|never, got {other}"
            )),
        }
    }
}

/// Rotation, snapshot cadence and sync policy for a [`SessionLog`].
#[derive(Debug, Clone, Copy)]
pub struct LogConfig {
    /// Start a new segment after this many event records.
    pub rotate_events: u64,
    /// Write a snapshot (and compact) every this many event records.
    pub snapshot_every: u64,
    /// Explicit-fsync policy.
    pub fsync: FsyncPolicy,
}

impl Default for LogConfig {
    fn default() -> LogConfig {
        LogConfig {
            rotate_events: 4096,
            snapshot_every: 1024,
            fsync: FsyncPolicy::Interval,
        }
    }
}

/// Failure while recovering a session directory.
#[derive(Debug)]
pub enum RecoverError {
    /// Filesystem trouble.
    Io(io::Error),
    /// The directory's contents cannot be trusted: mid-file log
    /// corruption, an unusable snapshot chain, or a broken segment
    /// chain. Recovery refuses to guess.
    Corrupt(String),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "session recovery i/o: {e}"),
            RecoverError::Corrupt(m) => write!(f, "session store corrupt: {m}"),
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> RecoverError {
        RecoverError::Io(e)
    }
}

/// The open, writable durable store of one session.
#[derive(Debug)]
pub struct SessionLog {
    dir: PathBuf,
    cfg: LogConfig,
    writer: EventLogWriter<File>,
    /// Second handle on the open segment, for explicit fsync.
    seg_sync: File,
    names: File,
    /// File name of the open name side-log (`names-<base>.log`, or a
    /// legacy `names.log` until its first rotation).
    names_file: String,
    /// Byte length of the open name side-log.
    names_len: u64,
    /// Id of the first name the open side-log holds.
    names_base: u64,
    /// Total durable event records across all segments.
    records: u64,
    /// First record index of the open segment.
    seg_start: u64,
    /// Byte length of the open segment (header included).
    seg_bytes: u64,
    /// Records at the last snapshot (0 when none yet).
    last_snap: u64,
    /// Replication handle; every durable mutation is mirrored here.
    repl: Option<LogPublisher>,
}

/// Everything [`SessionLog::recover`] reconstructs from a session
/// directory.
pub struct Recovered {
    /// The reopened, append-ready log.
    pub log: SessionLog,
    /// Checker state as of the last durable record.
    pub checker: OnlineChecker,
    /// Parser state as of the last durable record.
    pub parser: StreamParser,
    /// Total durable commit verdicts.
    pub verdicts: u64,
    /// Verdict count at the snapshot replay started from.
    pub snap_verdicts: u64,
    /// Oldest re-sendable verdict index: verdict lines with indices
    /// `replay_base..verdicts` are in `replayed`; anything older is
    /// gone (the client must have consumed it — the snapshot cadence
    /// bounds the replay window). The snapshot carries the verdict
    /// window that was live when it was written, so `replay_base`
    /// reaches one snapshot interval *behind* the snapshot itself —
    /// a client killed at the worst moment (snapshot written, its
    /// triggering verdicts never delivered) can still resume.
    pub replay_base: u64,
    /// Verdict lines re-sendable from `replay_base`, in order: the
    /// snapshot's stored window followed by the replayed tail.
    pub replayed: Vec<String>,
    /// `Some(detail)` when a torn tail was found and truncated at its
    /// exact `good_len` byte offset.
    pub truncated: Option<String>,
    /// The final verdict line when the session was closed in a
    /// previous life.
    pub closed: Option<String>,
    /// Events replayed from the log tail (after the snapshot).
    pub tail_events: u64,
}

impl SessionLog {
    /// Creates a brand-new session directory. Fails if it already
    /// exists — `hello` on an existing session must be a `resume`.
    pub fn create(
        dir: &Path,
        cfg: LogConfig,
        repl: Option<LogPublisher>,
    ) -> io::Result<SessionLog> {
        if let Some(parent) = dir.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::create_dir(dir)?;
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(dir.join("seg-0.log"))?;
        let seg_sync = file.try_clone()?;
        let writer = EventLogWriter::create(file)?;
        let names = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(dir.join("names-0.log"))?;
        if let Some(p) = &repl {
            p.append("seg-0.log", 0, &LOG_MAGIC, 0);
            p.put("names-0.log", b"");
        }
        Ok(SessionLog {
            dir: dir.to_path_buf(),
            cfg,
            writer,
            seg_sync,
            names,
            names_file: "names-0.log".into(),
            names_len: 0,
            names_base: 0,
            records: 0,
            seg_start: 0,
            seg_bytes: LOG_MAGIC.len() as u64,
            last_snap: 0,
            repl,
        })
    }

    /// Total durable event records.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Records in the open (not yet rotated) segment.
    pub fn open_segment_records(&self) -> u64 {
        self.records - self.seg_start
    }

    /// Appends newly interned object names (id order) to the name
    /// side-log. Call *before* appending the events that use them.
    pub fn append_names<'a>(&mut self, names: impl Iterator<Item = &'a str>) -> io::Result<()> {
        let mut buf = String::new();
        for n in names {
            buf.push_str(n);
            buf.push('\n');
        }
        if !buf.is_empty() {
            self.names.write_all(buf.as_bytes())?;
            if self.cfg.fsync == FsyncPolicy::Always {
                self.names.sync_data()?;
            }
            if let Some(p) = &self.repl {
                p.append(&self.names_file, self.names_len, buf.as_bytes(), 0);
            }
            self.names_len += buf.len() as u64;
        }
        Ok(())
    }

    /// Appends one event durably (reaches the OS before returning),
    /// rotating the segment afterwards when the cadence says so.
    pub fn append(&mut self, ev: &Event) -> io::Result<()> {
        self.append_traced(ev, None)
    }

    /// [`append`](SessionLog::append) carrying the event's trace id
    /// (sampled events only): the replication mutation for this record
    /// then propagates the id to followers.
    pub fn append_traced(&mut self, ev: &Event, trace: Option<u64>) -> io::Result<()> {
        let payload = wire::encode_event(ev);
        self.writer.append(ev)?;
        if self.cfg.fsync == FsyncPolicy::Always {
            self.seg_sync.sync_data()?;
        }
        if let Some(p) = &self.repl {
            // The exact record bytes the writer just produced:
            // [len u32 LE][crc32(payload) u32 LE][payload].
            let mut rec = Vec::with_capacity(8 + payload.len());
            rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            rec.extend_from_slice(&wire::crc32(&payload).to_le_bytes());
            rec.extend_from_slice(&payload);
            p.append_traced(
                &format!("seg-{}.log", self.seg_start),
                self.seg_bytes,
                &rec,
                1,
                trace,
            );
        }
        self.records += 1;
        self.seg_bytes += 8 + payload.len() as u64;
        if self.records - self.seg_start >= self.cfg.rotate_events {
            self.rotate()?;
        }
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(self.dir.join(format!("seg-{}.log", self.records)))?;
        let seg_sync = file.try_clone()?;
        // Swap the new segment in; the old file closes (and flushes)
        // when the old writer drops.
        let old = std::mem::replace(&mut self.writer, EventLogWriter::create(file)?);
        old.into_inner()?;
        self.seg_sync = seg_sync;
        self.seg_start = self.records;
        self.seg_bytes = LOG_MAGIC.len() as u64;
        if let Some(p) = &self.repl {
            p.append(&format!("seg-{}.log", self.seg_start), 0, &LOG_MAGIC, 0);
        }
        Ok(())
    }

    /// True when the snapshot cadence is due.
    pub fn snapshot_due(&self) -> bool {
        self.records - self.last_snap >= self.cfg.snapshot_every
    }

    /// Writes a snapshot of `checker` + `parser` (which must reflect
    /// exactly the `records` appended so far) and compacts: every
    /// older snapshot and every fully-covered closed segment is
    /// deleted. Returns the number of segments removed.
    ///
    /// `window` is the live verdict-replay window (`window_base` is
    /// the index of its first line); it rides inside the snapshot so
    /// recovery can re-send verdicts from *before* the snapshot —
    /// closing the race where the snapshot lands but the verdicts that
    /// triggered it never reach the client.
    pub fn write_snapshot(
        &mut self,
        checker: &OnlineChecker,
        parser: &StreamParser,
        verdicts: u64,
        window_base: u64,
        window: &[String],
    ) -> io::Result<usize> {
        let mut e = wire::Enc::new();
        e.u64(self.records);
        e.u64(verdicts);
        e.u64(self.seg_start);
        e.u64(self.seg_bytes);
        let parser_bytes = parser.snapshot();
        e.len(parser_bytes.len());
        e.bytes(&parser_bytes);
        let checker_bytes = checker.snapshot();
        e.len(checker_bytes.len());
        e.bytes(&checker_bytes);
        e.u64(window_base);
        e.len(window.len());
        for line in window {
            e.str(line);
        }
        let payload = e.into_bytes();

        let mut buf = Vec::with_capacity(payload.len() + 16);
        buf.extend_from_slice(&SNAP_MAGIC);
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&wire::crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&payload);

        // Under `always` every append is already synced; under
        // `interval` this is the moment the open files catch up with
        // stable storage, so the snapshot never outlives log bytes it
        // claims to cover.
        if self.cfg.fsync != FsyncPolicy::Never {
            self.seg_sync.sync_data()?;
            self.names.sync_data()?;
        }
        let tmp = self.dir.join("snap.tmp");
        let final_path = self.dir.join(format!("snap-{}.snap", self.records));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            if self.cfg.fsync != FsyncPolicy::Never {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, &final_path)?;
        if let Some(p) = &self.repl {
            p.put(&format!("snap-{}.snap", self.records), &buf);
        }
        self.last_snap = self.records;
        let removed = self.compact()?;
        self.rotate_names(parser.interned() as u64)?;
        Ok(removed)
    }

    /// Deletes snapshots older than the newest and closed segments
    /// fully covered by it. The open segment is never deleted.
    fn compact(&self) -> io::Result<usize> {
        let (mut segs, mut snaps) = scan_dir(&self.dir)?;
        segs.sort_unstable();
        snaps.sort_unstable();
        let Some(&newest) = snaps.last() else {
            return Ok(0);
        };
        for &n in &snaps[..snaps.len() - 1] {
            if fs::remove_file(self.dir.join(format!("snap-{n}.snap"))).is_ok() {
                if let Some(p) = &self.repl {
                    p.remove(&format!("snap-{n}.snap"));
                }
            }
        }
        let mut removed = 0;
        // A closed segment [start_i, start_{i+1}) is covered when its
        // records all precede the snapshot horizon.
        for pair in segs.windows(2) {
            if pair[1] <= newest {
                fs::remove_file(self.dir.join(format!("seg-{}.log", pair[0])))?;
                if let Some(p) = &self.repl {
                    p.remove(&format!("seg-{}.log", pair[0]));
                }
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Folds the name side-log into compaction: the snapshot that just
    /// landed serializes a parser that already knows every name
    /// interned so far (`interned`), so everything the side-log holds
    /// is redundant — rotate to a fresh empty `names-<interned>.log`
    /// and delete the older files. This is what bounds the side-log
    /// for sessions that cycle object names forever: at most one
    /// snapshot interval of names is ever on disk.
    fn rotate_names(&mut self, interned: u64) -> io::Result<()> {
        if self.names_len == 0 {
            return Ok(()); // nothing interned since the last rotation
        }
        let new_file = format!("names-{interned}.log");
        let names = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(self.dir.join(&new_file))?;
        if let Some(p) = &self.repl {
            p.put(&new_file, b"");
        }
        for (base, old) in scan_names(&self.dir)? {
            if base < interned {
                let _ = fs::remove_file(self.dir.join(&old));
                if let Some(p) = &self.repl {
                    p.remove(&old);
                }
            }
        }
        self.names = names;
        self.names_file = new_file;
        self.names_len = 0;
        self.names_base = interned;
        Ok(())
    }

    /// Marks the session closed: `final_line` (the `finish()` verdict)
    /// is durable and any later resume is refused with it.
    pub fn mark_closed(&self, final_line: &str) -> io::Result<()> {
        let tmp = self.dir.join("closed.tmp");
        fs::write(&tmp, final_line)?;
        fs::rename(tmp, self.dir.join("closed"))?;
        if let Some(p) = &self.repl {
            p.put("closed", final_line.as_bytes());
        }
        Ok(())
    }

    /// Reopens a session directory: newest valid snapshot, then replay
    /// of the log tail from the snapshot's exact byte offset. The
    /// revived checker/parser continue the stream with verdicts
    /// byte-identical to an uninterrupted run (the `adya-online`
    /// snapshot invariant, now per-session).
    pub fn recover(
        dir: &Path,
        cfg: LogConfig,
        gc: GcConfig,
        provenance: bool,
        repl: Option<LogPublisher>,
    ) -> Result<Recovered, RecoverError> {
        let (mut segs, mut snaps) = scan_dir(dir)?;
        segs.sort_unstable();
        snaps.sort_unstable();
        if segs.is_empty() {
            return Err(RecoverError::Corrupt(
                "no log segments (not a session directory)".into(),
            ));
        }

        // Newest decodable snapshot wins; damaged ones are skipped.
        let mut state = None;
        for &n in snaps.iter().rev() {
            let bytes = fs::read(dir.join(format!("snap-{n}.snap")))?;
            if let Some(s) = decode_snapshot(&bytes) {
                state = Some(s);
                break;
            }
        }
        let SnapState {
            records: snap_records,
            verdicts: snap_verdicts,
            seg_start: snap_seg,
            seg_off: snap_off,
            mut parser,
            mut checker,
            window_base,
            window,
        } = match state {
            Some(s) => s,
            None => SnapState {
                records: 0,
                verdicts: 0,
                seg_start: 0,
                seg_off: LOG_MAGIC.len() as u64,
                parser: StreamParser::new(),
                checker: {
                    let mut c = OnlineChecker::with_gc(gc);
                    c.set_provenance(provenance);
                    c
                },
                window_base: 0,
                window: Vec::new(),
            },
        };

        // Re-intern every name beyond the snapshot's table, in id
        // order, so post-recovery text tokens resolve identically.
        // Names live in base-offset side-log files; ids covered by the
        // snapshot's serialized table are skipped, and a gap between a
        // file's base and the next expected id means lost names —
        // recovery refuses to guess.
        let names_files = scan_names(dir)?;
        let mut next = parser.interned() as u64;
        for (base, fname) in &names_files {
            let path = dir.join(fname);
            let mut bytes = fs::read(&path)?;
            // A kill mid-write can leave a torn final line; truncate
            // it — its event was never durable, so the client will
            // re-send the token and the name will re-intern cleanly.
            if bytes.last().is_some_and(|&b| b != b'\n') {
                let good = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
                OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(good as u64)?;
                bytes.truncate(good);
                if let Some(p) = &repl {
                    p.put(fname, &bytes);
                }
            }
            let text = std::str::from_utf8(&bytes)
                .map_err(|_| RecoverError::Corrupt(format!("{fname} is not UTF-8")))?;
            for (j, name) in text.lines().enumerate() {
                let id = base + j as u64;
                if id < next {
                    continue;
                }
                if id > next {
                    return Err(RecoverError::Corrupt(format!(
                        "name side-log gap: expected id {next}, {fname} starts at {id}"
                    )));
                }
                let got = parser.intern(name);
                if u64::from(got.0) != id {
                    return Err(RecoverError::Corrupt(format!(
                        "{fname} line {j} interned as id {} (expected {id})",
                        got.0
                    )));
                }
                next += 1;
            }
        }

        let mut records = snap_records;
        let mut verdicts = snap_verdicts;
        let mut replayed = window;
        let mut truncated = None;
        let mut tail_events = 0u64;

        if !segs.contains(&snap_seg) {
            return Err(RecoverError::Corrupt(format!(
                "snapshot references missing segment seg-{snap_seg}.log"
            )));
        }

        let last_seg = *segs.last().expect("segs nonempty");
        for &start in &segs {
            if start < snap_seg {
                continue; // fully covered by the snapshot
            }
            let path = dir.join(format!("seg-{start}.log"));
            let buf = fs::read(&path)?;
            let mut reader = if start == snap_seg {
                EventLogReader::open_at(&buf, snap_off as usize)
            } else {
                if start != records {
                    return Err(RecoverError::Corrupt(format!(
                        "segment chain broken: seg-{start}.log but {records} records replayed"
                    )));
                }
                EventLogReader::open(&buf)
            }
            .map_err(|e| RecoverError::Corrupt(format!("seg-{start}.log: {e}")))?;
            loop {
                match reader.next() {
                    None => break,
                    Some(Ok(ev)) => {
                        records += 1;
                        tail_events += 1;
                        if let Some(v) = checker.ingest(&ev) {
                            verdicts += 1;
                            replayed.push(v.to_json());
                        }
                        if let Event::Write(w) = &ev {
                            parser.note_write(w.txn, w.object, w.seq);
                        }
                    }
                    Some(Err(LogError::TornTail { good_len, detail })) if start == last_seg => {
                        // The writer died mid-append: truncate at the
                        // exact intact-prefix byte and resume there.
                        // Published as a whole-file put: a follower
                        // holding the torn bytes must drop them too,
                        // or later appends would land after garbage.
                        OpenOptions::new()
                            .write(true)
                            .open(&path)?
                            .set_len(good_len as u64)?;
                        if let Some(p) = &repl {
                            p.put(&format!("seg-{start}.log"), &buf[..good_len]);
                        }
                        truncated = Some(format!(
                            "seg-{start}.log truncated to {good_len} bytes: {detail}"
                        ));
                        break;
                    }
                    Some(Err(e)) => {
                        return Err(RecoverError::Corrupt(format!("seg-{start}.log: {e}")));
                    }
                }
            }
        }

        let open_path = dir.join(format!("seg-{last_seg}.log"));
        let seg_bytes = fs::metadata(&open_path)?.len();
        let file = OpenOptions::new().append(true).open(&open_path)?;
        let seg_sync = file.try_clone()?;
        // The open names file is the newest-base side log; a directory
        // that predates name rotation may have none beyond the legacy
        // `names.log`, and a fresh post-rotation directory may have an
        // empty one — create the file if the scan found nothing.
        let (names_base, names_file) = match names_files.last() {
            Some((base, fname)) => (*base, fname.clone()),
            None => {
                let fname = format!("names-{next}.log");
                OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(dir.join(&fname))?;
                if let Some(p) = &repl {
                    p.put(&fname, b"");
                }
                (next, fname)
            }
        };
        let names_len = fs::metadata(dir.join(&names_file))?.len();
        let names = OpenOptions::new()
            .append(true)
            .open(dir.join(&names_file))?;
        let closed = match fs::read_to_string(dir.join("closed")) {
            Ok(s) => Some(s),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        Ok(Recovered {
            log: SessionLog {
                dir: dir.to_path_buf(),
                cfg,
                writer: EventLogWriter::append_to(file),
                seg_sync,
                names,
                names_file,
                names_len,
                names_base,
                records,
                seg_start: last_seg,
                seg_bytes,
                last_snap: snap_records,
                repl,
            },
            checker,
            parser,
            verdicts,
            snap_verdicts,
            replay_base: window_base,
            replayed,
            truncated,
            closed,
            tail_events,
        })
    }
}

/// Splits directory entries into segment starts and snapshot record
/// counts.
fn scan_dir(dir: &Path) -> io::Result<(Vec<u64>, Vec<u64>)> {
    let mut segs = Vec::new();
    let mut snaps = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(n) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse().ok())
        {
            segs.push(n);
        } else if let Some(n) = name
            .strip_prefix("snap-")
            .and_then(|s| s.strip_suffix(".snap"))
            .and_then(|s| s.parse().ok())
        {
            snaps.push(n);
        }
    }
    Ok((segs, snaps))
}

/// Lists name side-log files as `(base_id, file_name)` sorted by base.
/// The legacy un-rotated `names.log` (pre-compaction-folding layouts)
/// reads as base 0; it migrates to the rotated scheme at the first
/// snapshot after recovery.
fn scan_names(dir: &Path) -> io::Result<Vec<(u64, String)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if name == "names.log" {
            out.push((0, name.to_string()));
        } else if let Some(base) = name
            .strip_prefix("names-")
            .and_then(|s| s.strip_suffix(".log"))
            .and_then(|s| s.parse().ok())
        {
            out.push((base, name.to_string()));
        }
    }
    out.sort_unstable();
    Ok(out)
}

struct SnapState {
    records: u64,
    verdicts: u64,
    seg_start: u64,
    seg_off: u64,
    parser: StreamParser,
    checker: OnlineChecker,
    window_base: u64,
    window: Vec<String>,
}

/// Decodes a snapshot container; `None` when it cannot be trusted.
fn decode_snapshot(bytes: &[u8]) -> Option<SnapState> {
    if bytes.len() < 16 || bytes[..8] != SNAP_MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let payload = bytes.get(16..16 + len)?;
    if bytes.len() != 16 + len || wire::crc32(payload) != crc {
        return None;
    }
    let mut d = wire::Dec::new(payload);
    let records = d.u64().ok()?;
    let verdicts = d.u64().ok()?;
    let seg_start = d.u64().ok()?;
    let seg_off = d.u64().ok()?;
    let n = d.len().ok()?;
    let parser = StreamParser::restore(d.bytes(n).ok()?).ok()?;
    let n = d.len().ok()?;
    let checker = OnlineChecker::restore(d.bytes(n).ok()?).ok()?;
    let window_base = d.u64().ok()?;
    let n = d.len().ok()?;
    let mut window = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        window.push(d.str().ok()?);
    }
    if d.remaining() != 0 {
        return None;
    }
    Some(SnapState {
        records,
        verdicts,
        seg_start,
        seg_off,
        parser,
        checker,
        window_base,
        window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::ObjectId;

    struct Rig {
        log: SessionLog,
        parser: StreamParser,
        checker: OnlineChecker,
        verdicts: Vec<String>,
    }

    impl Rig {
        fn create(dir: &Path, cfg: LogConfig) -> Rig {
            Rig {
                log: SessionLog::create(dir, cfg, None).unwrap(),
                parser: StreamParser::new(),
                checker: OnlineChecker::new(),
                verdicts: Vec::new(),
            }
        }

        /// Mirrors `Session::apply_line`'s durability ordering.
        fn apply(&mut self, tokens: &str) {
            for tok in tokens.split_whitespace() {
                let known = self.parser.interned();
                let ev = self.parser.parse_token(tok).unwrap();
                let fresh: Vec<String> = (known..self.parser.interned())
                    .map(|i| self.parser.object_name(ObjectId(i as u32)).to_string())
                    .collect();
                self.log
                    .append_names(fresh.iter().map(|s| s.as_str()))
                    .unwrap();
                self.log.append(&ev).unwrap();
                if let Some(v) = self.checker.ingest(&ev) {
                    self.verdicts.push(v.to_json());
                }
            }
        }

        fn snapshot(&mut self) -> usize {
            self.log
                .write_snapshot(
                    &self.checker,
                    &self.parser,
                    self.verdicts.len() as u64,
                    0,
                    &self.verdicts,
                )
                .unwrap()
        }
    }

    fn files(dir: &Path) -> Vec<String> {
        let mut v: Vec<String> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        v.sort();
        v
    }

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adya-serve-log-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    const NINE: &str = "b1 w1(x,1) c1 b2 w2(y,1) c2 b3 r3(x1) c3";

    #[test]
    fn rotation_starts_a_new_segment_on_the_record_cadence() {
        let dir = tmp("rotate");
        let mut rig = Rig::create(
            &dir,
            LogConfig {
                rotate_events: 4,
                snapshot_every: u64::MAX,
                ..LogConfig::default()
            },
        );
        rig.apply(NINE); // 9 records: 4 + 4 + 1
        assert_eq!(rig.log.records(), 9);
        assert_eq!(rig.log.open_segment_records(), 1);
        assert_eq!(
            files(&dir),
            vec!["names-0.log", "seg-0.log", "seg-4.log", "seg-8.log"]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_deletes_exactly_the_covered_closed_segments() {
        let dir = tmp("compact");
        let cfg = LogConfig {
            rotate_events: 4,
            snapshot_every: u64::MAX,
            ..LogConfig::default()
        };
        let mut rig = Rig::create(&dir, cfg);
        rig.apply("b1 w1(x,1) c1 b2 w2(y,1)"); // 5 records: seg-0 closed, seg-4 open
        let removed = rig.snapshot(); // horizon 5 covers seg-0 (records 0..4)
        assert_eq!(removed, 1);
        // The name side-log rotated too: x and y are inside the
        // snapshot's parser, so names-0.log gave way to an empty
        // names-2.log.
        assert_eq!(files(&dir), vec!["names-2.log", "seg-4.log", "snap-5.snap"]);

        // A boundary snapshot: horizon exactly at a closed segment's
        // end. seg-4 holds records 4..8 and rotates at 8, so after 8
        // records the snapshot at 8 must delete it but keep the brand-
        // new empty seg-8.
        rig.apply("c2 b3 r3(x1)"); // records 6,7,8 → rotation at 8
        let removed = rig.snapshot();
        assert_eq!(removed, 1);
        assert_eq!(files(&dir), vec!["names-2.log", "seg-8.log", "snap-8.snap"]);

        // Older snapshots go too; the open segment never does.
        rig.apply("c3");
        let removed = rig.snapshot();
        assert_eq!(removed, 0);
        assert_eq!(files(&dir), vec!["names-2.log", "seg-8.log", "snap-9.snap"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn name_side_log_is_bounded_when_names_cycle() {
        let dir = tmp("names-bound");
        let cfg = LogConfig {
            rotate_events: 8,
            snapshot_every: 6,
            ..LogConfig::default()
        };
        let mut rig = Rig::create(&dir, cfg);
        let mut reference = Rig::create(&tmp("names-bound-ref"), cfg);
        // One stable object plus a session that never reuses a name:
        // ~640 bytes of names total, snapshotting every 6 records.
        // Write targets are digit-free; spell the index in letters.
        let key = |i: u32| {
            let spelled: String = format!("{i:04}")
                .bytes()
                .map(|b| (b'a' + (b - b'0')) as char)
                .collect();
            format!("key-{spelled}-cycled")
        };
        let mut stream = vec!["b1 w1(zz,1) c1".to_string()];
        for i in 0..40u32 {
            let t = i + 2;
            stream.push(format!("b{t} w{t}({},1) c{t}", key(i)));
        }
        for txn in &stream {
            rig.apply(txn);
            if rig.log.snapshot_due() {
                rig.snapshot();
            }
            reference.apply(txn);
        }
        assert_eq!(rig.parser.interned(), 41);

        // Without folding, the side-log would hold all 41 names. With
        // it, exactly one file remains and it holds at most what came
        // after the last snapshot.
        let names: Vec<String> = files(&dir)
            .into_iter()
            .filter(|f| f.starts_with("names"))
            .collect();
        assert_eq!(names.len(), 1, "side-log not folded: {names:?}");
        let len = fs::metadata(dir.join(&names[0])).unwrap().len();
        assert!(len < 200, "side-log grew unbounded: {len} bytes");

        // Recovery re-interns from the rotated file and the continued
        // stream resolves both the oldest and the newest names with
        // verdicts byte-identical to an uninterrupted run.
        let before = rig.verdicts.clone();
        drop(rig);
        let r = SessionLog::recover(&dir, cfg, GcConfig::default(), false, None).unwrap();
        assert_eq!(r.verdicts, before.len() as u64);
        let mut rig2 = Rig {
            log: r.log,
            parser: r.parser,
            checker: r.checker,
            verdicts: Vec::new(),
        };
        reference.verdicts.clear();
        let cont = format!("b99 r99(zz1) w99({},2) w99(fresh,1) c99", key(39));
        rig2.apply(&cont);
        reference.apply(&cont);
        assert_eq!(rig2.verdicts, reference.verdicts);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_replays_the_tail_with_byte_identical_verdicts() {
        let dir = tmp("recover");
        let cfg = LogConfig {
            rotate_events: 3,
            snapshot_every: 4,
            ..LogConfig::default()
        };
        let mut rig = Rig::create(&dir, cfg);
        rig.apply(NINE);
        if rig.log.snapshot_due() {
            rig.snapshot();
        }
        let before = rig.verdicts.clone();
        let records = rig.log.records();
        drop(rig); // "kill": nothing flushed beyond what append wrote

        let r = SessionLog::recover(&dir, cfg, GcConfig::default(), false, None).unwrap();
        assert_eq!(r.log.records(), records);
        assert!(r.truncated.is_none());
        assert!(r.closed.is_none());
        // Verdicts replayed from the tail must be byte-identical to
        // the uninterrupted run's suffix.
        assert_eq!(
            r.replayed,
            before[r.replay_base as usize..].to_vec(),
            "resumed verdict stream diverged"
        );

        // The revived parser still resolves old names: continuing the
        // stream with a text token against object `x` must produce the
        // same verdict an uninterrupted checker would.
        let mut rig2 = Rig {
            log: r.log,
            parser: r.parser,
            checker: r.checker,
            verdicts: Vec::new(),
        };
        let mut reference = Rig::create(&tmp("recover-ref"), cfg);
        reference.apply(NINE);
        reference.verdicts.clear();
        rig2.apply("b4 r4(x1) w4(x,2) c4");
        reference.apply("b4 r4(x1) w4(x,2) c4");
        assert_eq!(rig2.verdicts, reference.verdicts);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_at_the_exact_good_byte() {
        let dir = tmp("torn");
        let cfg = LogConfig {
            rotate_events: u64::MAX,
            snapshot_every: u64::MAX,
            ..LogConfig::default()
        };
        let mut rig = Rig::create(&dir, cfg);
        rig.apply("b1 w1(x,1) c1 b2 w2(x,2)");
        drop(rig);

        let path = dir.join("seg-0.log");
        let good_len = fs::metadata(&path).unwrap().len();
        // A record header promising more payload than exists: the torn
        // write of a killed process.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[40, 0, 0, 0, 0xde, 0xad]).unwrap();
        drop(f);

        let r = SessionLog::recover(&dir, cfg, GcConfig::default(), false, None).unwrap();
        assert_eq!(r.log.records(), 5);
        let detail = r.truncated.expect("torn tail must be reported");
        assert!(
            detail.contains(&format!("truncated to {good_len} bytes")),
            "{detail}"
        );
        assert_eq!(fs::metadata(&path).unwrap().len(), good_len);

        // The healed log accepts appends and recovers cleanly again.
        let mut rig = Rig {
            log: r.log,
            parser: r.parser,
            checker: r.checker,
            verdicts: Vec::new(),
        };
        rig.apply("c2");
        assert_eq!(rig.verdicts.len(), 1);
        drop(rig);
        let r = SessionLog::recover(&dir, cfg, GcConfig::default(), false, None).unwrap();
        assert_eq!(r.log.records(), 6);
        assert!(r.truncated.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_without_any_snapshot_replays_from_zero() {
        let dir = tmp("nosnap");
        let cfg = LogConfig {
            rotate_events: 4,
            snapshot_every: u64::MAX,
            ..LogConfig::default()
        };
        let mut rig = Rig::create(&dir, cfg);
        rig.apply(NINE);
        let before = rig.verdicts.clone();
        drop(rig);
        let r = SessionLog::recover(&dir, cfg, GcConfig::default(), false, None).unwrap();
        assert_eq!(r.replay_base, 0);
        assert_eq!(r.replayed, before);
        assert_eq!(r.tail_events, 9);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn closed_marker_survives_recovery() {
        let dir = tmp("closed");
        let cfg = LogConfig::default();
        let mut rig = Rig::create(&dir, cfg);
        rig.apply("b1 w1(x,1) c1");
        let fin = rig.checker.finish().to_json();
        rig.log.mark_closed(&fin).unwrap();
        drop(rig);
        let r = SessionLog::recover(&dir, cfg, GcConfig::default(), false, None).unwrap();
        assert_eq!(r.closed.as_deref(), Some(fin.as_str()));
        fs::remove_dir_all(&dir).unwrap();
    }
}

//! Detectors for the preventative phenomena P0–P3.

use std::fmt;

use adya_history::{Event, History, ObjectId, PredicateId, TxnId};

/// Discriminants of the preventative phenomena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PKind {
    /// Dirty write.
    P0,
    /// Dirty read.
    P1,
    /// Fuzzy / non-repeatable read.
    P2,
    /// Phantom.
    P3,
}

impl fmt::Display for PKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PKind::P0 => write!(f, "P0"),
            PKind::P1 => write!(f, "P1"),
            PKind::P2 => write!(f, "P2"),
            PKind::P3 => write!(f, "P3"),
        }
    }
}

/// A detected preventative phenomenon: `t2`'s operation at event
/// `second` conflicts with `t1`'s earlier operation at event `first`,
/// and `t1` was still uncommitted at that point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PPhenomenon {
    /// Which pattern matched.
    pub kind: PKind,
    /// The transaction holding the (conceptual) long lock.
    pub t1: TxnId,
    /// The transaction that operated inside T1's window.
    pub t2: TxnId,
    /// The conflicting object (for P3: the object whose modification
    /// changed the predicate's result).
    pub object: ObjectId,
    /// The predicate, for P3.
    pub predicate: Option<PredicateId>,
    /// Event index of T1's operation.
    pub first: usize,
    /// Event index of T2's conflicting operation.
    pub second: usize,
}

impl fmt::Display for PPhenomenon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} op at #{} inside uncommitted window of {} (op at #{})",
            self.kind, self.t2, self.second, self.t1, self.first
        )
    }
}

/// End (commit/abort) event index of `t` in `h`.
fn end_of(h: &History, t: TxnId) -> usize {
    h.txn(t).map(|i| i.end_event).unwrap_or(usize::MAX)
}

/// Generic two-op window scan: find `(first_op by T1, second_op by T2)`
/// with `first < second < end(T1)` and `T1 != T2`.
fn window_scan(
    h: &History,
    kind: PKind,
    first_ops: impl Fn(&Event) -> Option<(TxnId, ObjectId)>,
    second_ops: impl Fn(&Event) -> Option<(TxnId, ObjectId)>,
) -> Option<PPhenomenon> {
    let events = h.events();
    for (i, e1) in events.iter().enumerate() {
        let Some((t1, obj)) = first_ops(e1) else {
            continue;
        };
        let end1 = end_of(h, t1);
        for (j, e2) in events.iter().enumerate().skip(i + 1) {
            if j >= end1 {
                break;
            }
            let Some((t2, obj2)) = second_ops(e2) else {
                continue;
            };
            if t2 != t1 && obj2 == obj {
                return Some(PPhenomenon {
                    kind,
                    t1,
                    t2,
                    object: obj,
                    predicate: None,
                    first: i,
                    second: j,
                });
            }
        }
    }
    None
}

fn write_of(e: &Event) -> Option<(TxnId, ObjectId)> {
    e.as_write().map(|w| (w.txn, w.object))
}

fn read_of(e: &Event) -> Option<(TxnId, ObjectId)> {
    e.as_read().map(|r| (r.txn, r.object))
}

/// P0 — *dirty write*: `w1[x] … w2[x]` before T1's commit or abort.
pub fn p0(h: &History) -> Option<PPhenomenon> {
    window_scan(h, PKind::P0, write_of, write_of)
}

/// P1 — *dirty read*: `w1[x] … r2[x]` before T1's commit or abort.
/// Any read of `x` counts, whichever version it observed — this is the
/// lock-conflict reading that makes P1 reject multi-version schemes.
pub fn p1(h: &History) -> Option<PPhenomenon> {
    window_scan(h, PKind::P1, write_of, read_of)
}

/// P2 — *fuzzy read*: `r1[x] … w2[x]` before T1's commit or abort.
pub fn p2(h: &History) -> Option<PPhenomenon> {
    window_scan(h, PKind::P2, read_of, write_of)
}

/// P3 — *phantom*: `r1[P] … w2[y in P]` before T1's commit or abort.
///
/// `w2[y in P]` is interpreted with lock semantics: T2 writes an
/// object of one of P's relations whose before- **or** after-image
/// satisfies P (dead/unborn images never do). Deletions of matching
/// rows and insertions of rows into P count; updates that neither
/// enter nor leave P do not.
pub fn p3(h: &History) -> Option<PPhenomenon> {
    let events = h.events();
    for (i, e1) in events.iter().enumerate() {
        let Some(pr) = e1.as_predicate_read() else {
            continue;
        };
        let t1 = pr.txn;
        let pid = pr.predicate;
        let Some(pinfo) = h.predicate(pid) else {
            continue;
        };
        let end1 = end_of(h, t1);
        for (j, e2) in events.iter().enumerate().skip(i + 1) {
            if j >= end1 {
                break;
            }
            let Some(w) = e2.as_write() else {
                continue;
            };
            if w.txn == t1 {
                continue;
            }
            let in_rels = h
                .object(w.object)
                .is_some_and(|o| pinfo.relations.contains(&o.relation));
            if !in_rels {
                continue;
            }
            // After-image matches?
            let after = h.matches(pid, w.object, w.version());
            // Before-image: the writer's previous version if it wrote
            // the object before, else the latest version installed at
            // or before event j — lock semantics approximates this as
            // "any earlier version of the object matching P".
            let before = earlier_version_matches(h, pid, w.object, j);
            if after || before {
                return Some(PPhenomenon {
                    kind: PKind::P3,
                    t1,
                    t2: w.txn,
                    object: w.object,
                    predicate: Some(pid),
                    first: i,
                    second: j,
                });
            }
        }
    }
    None
}

/// True if any version of `object` written (or preloaded) before event
/// `before_ix` matches `pid`.
fn earlier_version_matches(
    h: &History,
    pid: PredicateId,
    object: ObjectId,
    before_ix: usize,
) -> bool {
    if h.matches(pid, object, adya_history::VersionId::INIT) {
        return true;
    }
    h.events()[..before_ix]
        .iter()
        .filter_map(Event::as_write)
        .filter(|w| w.object == object)
        .any(|w| h.matches(pid, object, w.version()))
}

/// Detects every preventative phenomenon present, one witness per
/// kind.
pub fn detect_all_p(h: &History) -> Vec<PPhenomenon> {
    [p0(h), p1(h), p2(h), p3(h)].into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::{parse_history, HistoryBuilder, Value};

    #[test]
    fn p0_on_overlapping_writes() {
        let h = parse_history("w1(x,1) w2(x,2) c1 c2").unwrap();
        let p = p0(&h).expect("P0");
        assert_eq!((p.t1, p.t2), (TxnId(1), TxnId(2)));
    }

    #[test]
    fn p0_absent_when_serial() {
        let h = parse_history("w1(x,1) c1 w2(x,2) c2").unwrap();
        assert!(p0(&h).is_none());
    }

    #[test]
    fn p1_fires_even_for_reads_of_old_versions() {
        // T2 reads the *initial* version while T1's write is pending —
        // harmless in a multi-version world, still P1.
        let h = parse_history("w1(x,1) r2(xinit,0) c1 c2").unwrap();
        assert!(p1(&h).is_some());
        // The generalized checker is unbothered.
        // (asserted over in adya-core's tests; here just P-side)
    }

    #[test]
    fn p1_absent_after_commit() {
        let h = parse_history("w1(x,1) c1 r2(x1) c2").unwrap();
        assert!(p1(&h).is_none());
    }

    #[test]
    fn p2_on_write_under_read() {
        let h = parse_history("r1(xinit,5) w2(x,9) c2 c1").unwrap();
        let p = p2(&h).expect("P2");
        assert_eq!((p.t1, p.t2), (TxnId(1), TxnId(2)));
    }

    #[test]
    fn p2_absent_when_reader_finished() {
        let h = parse_history("r1(xinit,5) c1 w2(x,9) c2").unwrap();
        assert!(p2(&h).is_none());
    }

    #[test]
    fn p3_on_insert_into_predicate() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let rel = b.relation("Emp");
        let x = b.preloaded_object_in("x", rel, Value::str("Sales"));
        let z = b.object_in("z", rel);
        let p = b.predicate("Dept=Sales", &[rel]);
        b.predicate_read_versions(t1, p, vec![(x, adya_history::VersionId::INIT)]);
        b.write(t2, z, Value::str("Sales"));
        b.commit(t2);
        b.commit(t1);
        b.derive_matches(p, |v| v == &Value::str("Sales"));
        let h = b.build().unwrap();
        let ph = p3(&h).expect("P3");
        assert_eq!(ph.kind, PKind::P3);
        assert_eq!(ph.predicate, Some(p));
    }

    #[test]
    fn p3_ignores_irrelevant_writes() {
        // T2 writes a non-matching row to a non-matching value inside
        // T1's window: no phantom.
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let rel = b.relation("Emp");
        let x = b.preloaded_object_in("x", rel, Value::str("Sales"));
        let z = b.preloaded_object_in("z", rel, Value::str("Legal"));
        let p = b.predicate("Dept=Sales", &[rel]);
        b.predicate_read_versions(
            t1,
            p,
            vec![
                (x, adya_history::VersionId::INIT),
                (z, adya_history::VersionId::INIT),
            ],
        );
        b.write(t2, z, Value::str("Shipping"));
        b.commit(t2);
        b.commit(t1);
        b.derive_matches(p, |v| v == &Value::str("Sales"));
        let h = b.build().unwrap();
        assert!(p3(&h).is_none());
    }

    #[test]
    fn p3_on_delete_of_matching_row() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let rel = b.relation("Emp");
        let x = b.preloaded_object_in("x", rel, Value::str("Sales"));
        let p = b.predicate("Dept=Sales", &[rel]);
        b.predicate_read_versions(t1, p, vec![(x, adya_history::VersionId::INIT)]);
        b.delete(t2, x);
        b.commit(t2);
        b.commit(t1);
        b.derive_matches(p, |v| v == &Value::str("Sales"));
        let h = b.build().unwrap();
        assert!(p3(&h).is_some(), "delete of matching row is a phantom");
    }

    #[test]
    fn detect_all_reports_each_once() {
        let h = parse_history("w1(x,1) w2(x,2) r2(x2) c1 c2").unwrap();
        let ps = detect_all_p(&h);
        let kinds: Vec<PKind> = ps.iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PKind::P0));
        assert!(!kinds.contains(&PKind::P3));
    }

    #[test]
    fn display_mentions_both_txns() {
        let h = parse_history("w1(x,1) w2(x,2) c1 c2").unwrap();
        let s = p0(&h).unwrap().to_string();
        assert!(s.contains("T1") && s.contains("T2") && s.starts_with("P0"));
    }
}

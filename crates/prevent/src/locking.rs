//! The locking isolation levels of Figure 1, as admissibility checks.

use std::fmt;

use adya_history::History;

use crate::phenomena::{p0, p1, p2, p3, PKind, PPhenomenon};

/// A row of Figure 1: a locking level defined by the preventative
/// phenomena it proscribes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockingLevel {
    /// Degree 0 — short write locks only; proscribes nothing.
    Degree0,
    /// Degree 1 = Locking READ UNCOMMITTED — long write locks;
    /// proscribes P0.
    ReadUncommitted,
    /// Degree 2 = Locking READ COMMITTED — long write locks, short
    /// read locks; proscribes P0, P1.
    ReadCommitted,
    /// Locking REPEATABLE READ — long write and data-item read locks,
    /// short phantom read locks; proscribes P0, P1, P2.
    RepeatableRead,
    /// Degree 3 = Locking SERIALIZABLE — long read/write item and
    /// predicate locks; proscribes P0, P1, P2, P3.
    Serializable,
}

impl LockingLevel {
    /// All rows of Figure 1, weakest first.
    pub const ALL: [LockingLevel; 5] = [
        LockingLevel::Degree0,
        LockingLevel::ReadUncommitted,
        LockingLevel::ReadCommitted,
        LockingLevel::RepeatableRead,
        LockingLevel::Serializable,
    ];

    /// The preventative phenomena this level proscribes (the
    /// "Proscribed Phenomena" column of Figure 1).
    pub fn proscribes(self) -> &'static [PKind] {
        match self {
            LockingLevel::Degree0 => &[],
            LockingLevel::ReadUncommitted => &[PKind::P0],
            LockingLevel::ReadCommitted => &[PKind::P0, PKind::P1],
            LockingLevel::RepeatableRead => &[PKind::P0, PKind::P1, PKind::P2],
            LockingLevel::Serializable => &[PKind::P0, PKind::P1, PKind::P2, PKind::P3],
        }
    }
}

impl fmt::Display for LockingLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockingLevel::Degree0 => write!(f, "Degree 0"),
            LockingLevel::ReadUncommitted => write!(f, "Locking READ UNCOMMITTED"),
            LockingLevel::ReadCommitted => write!(f, "Locking READ COMMITTED"),
            LockingLevel::RepeatableRead => write!(f, "Locking REPEATABLE READ"),
            LockingLevel::Serializable => write!(f, "Locking SERIALIZABLE"),
        }
    }
}

/// The verdict of the preventative check at one level.
#[derive(Debug, Clone)]
pub struct LockingCheck {
    /// The level checked.
    pub level: LockingLevel,
    /// Proscribed phenomena that occurred.
    pub violations: Vec<PPhenomenon>,
}

impl LockingCheck {
    /// True if the history would be admitted by a lock-based
    /// implementation at this level.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for LockingCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            write!(f, "{}: admitted", self.level)
        } else {
            write!(f, "{}: rejected —", self.level)?;
            for v in &self.violations {
                write!(f, " [{v}]")?;
            }
            Ok(())
        }
    }
}

/// Checks whether `h` is admitted at `level` under the preventative
/// interpretation (Figure 1).
pub fn check_locking(h: &History, level: LockingLevel) -> LockingCheck {
    let violations = level
        .proscribes()
        .iter()
        .filter_map(|k| match k {
            PKind::P0 => p0(h),
            PKind::P1 => p1(h),
            PKind::P2 => p2(h),
            PKind::P3 => p3(h),
        })
        .collect();
    LockingCheck { level, violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::parse_history;

    #[test]
    fn figure1_proscription_sets() {
        assert_eq!(LockingLevel::Degree0.proscribes(), &[] as &[PKind]);
        assert_eq!(LockingLevel::ReadUncommitted.proscribes(), &[PKind::P0]);
        assert_eq!(
            LockingLevel::Serializable.proscribes(),
            &[PKind::P0, PKind::P1, PKind::P2, PKind::P3]
        );
    }

    #[test]
    fn monotone_rejection_along_the_chain() {
        // A dirty read: admitted at Degree 0 and READ UNCOMMITTED,
        // rejected from READ COMMITTED up.
        let h = parse_history("w1(x,1) r2(x1) c1 c2").unwrap();
        assert!(check_locking(&h, LockingLevel::Degree0).ok());
        assert!(check_locking(&h, LockingLevel::ReadUncommitted).ok());
        assert!(!check_locking(&h, LockingLevel::ReadCommitted).ok());
        assert!(!check_locking(&h, LockingLevel::RepeatableRead).ok());
        assert!(!check_locking(&h, LockingLevel::Serializable).ok());
    }

    #[test]
    fn serial_history_admitted_everywhere() {
        let h = parse_history("w1(x,1) c1 r2(x1) w2(x,2) c2").unwrap();
        for l in LockingLevel::ALL {
            assert!(check_locking(&h, l).ok(), "serial must pass {l}");
        }
    }

    #[test]
    fn display_verdicts() {
        let h = parse_history("w1(x,1) w2(x,2) c1 c2").unwrap();
        let c = check_locking(&h, LockingLevel::ReadUncommitted);
        assert!(c.to_string().contains("rejected"));
        assert!(c.to_string().contains("P0"));
    }
}

//! The *preventative* baseline: phenomena P0–P3 of Berenson et al.
//! ("A Critique of ANSI SQL Isolation Levels", SIGMOD 1995), which §2–3
//! of the Adya/Liskov/O'Neil paper analyzes and generalizes.
//!
//! The preventative phenomena are patterns over single-object event
//! sequences:
//!
//! ```text
//! P0: w1[x] … w2[x] …            (c1 or a1)
//! P1: w1[x] … r2[x] …            (c1 or a1)
//! P2: r1[x] … w2[x] …            (c1 or a1)
//! P3: r1[P] … w2[y in P] …       (c1 or a1)
//! ```
//!
//! i.e. a conflicting operation by `T2` occurring while `T1` is still
//! uncommitted — exactly the situations a long-lock implementation
//! *prevents*. Note that P1/P2 do not care which *version* was read:
//! `T2` reading an **old committed** version of `x` while `T1` holds an
//! uncommitted write still matches P1, which is precisely why the
//! preventative definitions exclude multi-version and optimistic
//! implementations (§3 of the paper).
//!
//! This crate detects P0–P3 over the same [`adya_history::History`]
//! values the generalized checker consumes, so the two approaches can
//! be compared mechanically: the paper's claim that the G-definitions
//! are strictly more permissive becomes an executable experiment
//! (`adya-bench`, experiments E7/E11).

#![warn(missing_docs)]

mod locking;
mod phenomena;

pub use locking::{check_locking, LockingCheck, LockingLevel};
pub use phenomena::{detect_all_p, p0, p1, p2, p3, PKind, PPhenomenon};

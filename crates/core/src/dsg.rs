//! The Direct Serialization Graph (Definition 7).

use adya_graph::{Cycle, DiGraph, DotOptions};
use adya_history::{History, TxnId};

use crate::conflicts::{direct_conflicts, Conflict, DepKind};

/// The Direct Serialization Graph of a history: one node per committed
/// transaction, edges for the direct conflicts of Figure 2.
///
/// A `Dsg` keeps both the deduplicated graph (for cycle analysis) and
/// the full conflict list with provenance (for explanations). The
/// paper's figures omit `Tinit`, and so does this graph — `Tinit`
/// could only ever have outgoing edges, so it can never participate in
/// a cycle and its omission is sound.
#[derive(Debug, Clone)]
pub struct Dsg {
    graph: DiGraph<TxnId, DepKind>,
    conflicts: Vec<Conflict>,
}

impl Dsg {
    /// Builds the DSG of `h`.
    pub fn build(h: &History) -> Dsg {
        let conflicts = direct_conflicts(h);
        let mut graph = DiGraph::with_capacity(h.committed_txns().count());
        for t in h.committed_txns() {
            graph.add_node(t);
        }
        for c in &conflicts {
            graph.add_edge_dedup(c.from, c.to, c.kind);
        }
        Dsg { graph, conflicts }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph<TxnId, DepKind> {
        &self.graph
    }

    /// Every direct conflict with provenance (may contain several
    /// conflicts per graph edge — one per object/predicate involved).
    pub fn conflicts(&self) -> &[Conflict] {
        &self.conflicts
    }

    /// True if some `from → to` edge of the given kind exists.
    pub fn has_edge(&self, from: TxnId, to: TxnId, kind: DepKind) -> bool {
        self.graph.has_edge_where(&from, &to, |&k| k == kind)
    }

    /// The conflicts that induced the `from → to` edge of the given
    /// kind — the edge's provenance. A deduplicated graph edge maps
    /// back to one conflict per object/predicate involved, in the
    /// deterministic order [`conflicts`] lists them.
    ///
    /// [`conflicts`]: Dsg::conflicts
    pub fn provenance(&self, from: TxnId, to: TxnId, kind: DepKind) -> Vec<&Conflict> {
        self.conflicts
            .iter()
            .filter(|c| c.from == from && c.to == to && c.kind == kind)
            .collect()
    }

    /// The conflicts behind every `from → to` edge regardless of kind,
    /// in deterministic order.
    pub fn edge_provenance(&self, from: TxnId, to: TxnId) -> Vec<&Conflict> {
        self.conflicts
            .iter()
            .filter(|c| c.from == from && c.to == to)
            .collect()
    }

    /// A cycle of only write-dependency edges (the G0 shape).
    pub fn write_cycle(&self) -> Option<Cycle<TxnId, DepKind>> {
        self.graph.find_cycle(|k| k.is_write_dep(), |_| true)
    }

    /// A cycle of only dependency edges (the G1c shape).
    pub fn dependency_cycle(&self) -> Option<Cycle<TxnId, DepKind>> {
        self.graph.find_cycle(|k| k.is_dependency(), |_| true)
    }

    /// A cycle with at least one anti-dependency edge (the G2 shape).
    pub fn anti_cycle(&self) -> Option<Cycle<TxnId, DepKind>> {
        self.graph.find_cycle(|_| true, |k| k.is_anti())
    }

    /// A cycle with at least one *item* anti-dependency edge (the
    /// G2-item shape).
    pub fn item_anti_cycle(&self) -> Option<Cycle<TxnId, DepKind>> {
        self.graph.find_cycle(|_| true, |k| k.is_item_anti())
    }

    /// A cycle with *exactly one* anti-dependency edge (the G-single
    /// shape of PL-2+, Adya's thesis §4.2).
    pub fn single_anti_cycle(&self) -> Option<Cycle<TxnId, DepKind>> {
        self.graph
            .find_cycle_exactly_one(|k| k.is_anti(), |k| k.is_dependency())
    }

    /// Any cycle at all (acyclicity ⇔ conflict-serializability once
    /// G1a/G1b are also absent).
    pub fn any_cycle(&self) -> Option<Cycle<TxnId, DepKind>> {
        self.graph.find_cycle(|_| true, |_| true)
    }

    /// True if the DSG is acyclic.
    pub fn is_acyclic(&self) -> bool {
        self.graph.is_acyclic()
    }

    /// An equivalent serial order of the committed transactions, when
    /// the DSG is acyclic.
    pub fn serial_order(&self) -> Option<Vec<TxnId>> {
        self.graph
            .topo_order()
            .map(|ixs| ixs.into_iter().map(|ix| *self.graph.node(ix)).collect())
    }

    /// True if `order` is an equivalent serial order: it lists every
    /// committed transaction exactly once and every DSG edge points
    /// forward in it.
    pub fn is_valid_serial_order(&self, order: &[TxnId]) -> bool {
        if order.len() != self.graph.node_count() {
            return false;
        }
        let pos: std::collections::HashMap<TxnId, usize> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        if pos.len() != order.len() {
            return false;
        }
        self.graph
            .edges()
            .all(|e| match (pos.get(e.from), pos.get(e.to)) {
                (Some(a), Some(b)) => a < b,
                _ => false,
            })
    }

    /// Graphviz DOT rendering (cf. Figures 3–5).
    pub fn to_dot(&self, name: &str) -> String {
        self.graph.to_dot(&DotOptions {
            name: name.to_string(),
            left_to_right: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::parse_history;

    /// H_serial of §4.4.4 (Figure 3).
    fn h_serial() -> History {
        parse_history(
            "w1(z,1) w1(x,1) w1(y,1) w3(x,3) c1 r2(x1) w2(y,2) c2 r3(y2) w3(z,3) c3 \
             [x1 << x3, y1 << y2, z1 << z3]",
        )
        .unwrap()
    }

    #[test]
    fn figure3_edge_set_exact() {
        let dsg = Dsg::build(&h_serial());
        let (t1, t2, t3) = (TxnId(1), TxnId(2), TxnId(3));
        // Figure 3: T1 -wr-> T2, T1 -ww-> T3, T1 -rw? no: edges are
        // T1->T2 wr, T2->T3 wr and rw? Let's assert the paper's set:
        // T1 -wr-> T2 (T2 reads x1), T1 -ww-> T3 (x1 << x3),
        // T1 -ww-> T2 (y1 << y2), T2 -wr-> T3 (T3 reads y2),
        // T2 -rw-> T3 (T2 read x1, T3 installs x3),
        // T1 -ww-> T3 (z1 << z3).
        assert!(dsg.has_edge(t1, t2, DepKind::ItemReadDep));
        assert!(dsg.has_edge(t1, t2, DepKind::WriteDep));
        assert!(dsg.has_edge(t1, t3, DepKind::WriteDep));
        assert!(dsg.has_edge(t2, t3, DepKind::ItemReadDep));
        assert!(dsg.has_edge(t2, t3, DepKind::ItemAntiDep));
        // No reverse edges.
        assert!(!dsg.has_edge(t2, t1, DepKind::WriteDep));
        assert!(!dsg.has_edge(t3, t1, DepKind::WriteDep));
        assert!(!dsg.has_edge(t3, t2, DepKind::ItemReadDep));
    }

    #[test]
    fn figure3_is_acyclic_and_serializes_t1_t2_t3() {
        let dsg = Dsg::build(&h_serial());
        assert!(dsg.is_acyclic());
        let order = dsg.serial_order().unwrap();
        assert_eq!(order, vec![TxnId(1), TxnId(2), TxnId(3)]);
    }

    #[test]
    fn figure4_wcycle() {
        // H_wcycle of §5.1 (Figure 4): pure write-dependency cycle.
        let h =
            parse_history("w1(x,2) w2(x,5) w2(y,5) c2 w1(y,8) c1 [x1 << x2, y2 << y1]").unwrap();
        let dsg = Dsg::build(&h);
        let cyc = dsg.write_cycle().expect("G0 cycle");
        assert_eq!(cyc.len(), 2);
        assert!(cyc.edges().iter().all(|e| e.label.is_write_dep()));
    }

    #[test]
    fn dedup_keeps_graph_small() {
        // Two reads of the same version produce one wr edge but two
        // conflict records.
        let h = parse_history("w1(x,1) w1(y,2) c1 r2(x1) r2(y1) c2").unwrap();
        let dsg = Dsg::build(&h);
        assert_eq!(dsg.graph().edge_count(), 1);
        assert_eq!(
            dsg.conflicts()
                .iter()
                .filter(|c| c.kind == DepKind::ItemReadDep)
                .count(),
            2
        );
    }

    #[test]
    fn provenance_maps_edges_back_to_conflicts() {
        let h = parse_history("w1(x,1) w1(y,2) c1 r2(x1) r2(y1) c2").unwrap();
        let dsg = Dsg::build(&h);
        let prov = dsg.provenance(TxnId(1), TxnId(2), DepKind::ItemReadDep);
        assert_eq!(prov.len(), 2, "one conflict per object read");
        let objects: Vec<_> = prov.iter().map(|c| c.object.unwrap().0).collect();
        assert_eq!(objects, vec![0, 1]);
        assert!(prov.iter().all(|c| c.version.is_some()));
        // No such edge, no provenance.
        assert!(dsg
            .provenance(TxnId(2), TxnId(1), DepKind::ItemReadDep)
            .is_empty());
        assert_eq!(dsg.edge_provenance(TxnId(1), TxnId(2)).len(), 2);
    }

    #[test]
    fn dot_output_mentions_transactions() {
        let dsg = Dsg::build(&h_serial());
        let dot = dsg.to_dot("Hserial");
        assert!(dot.contains("T1") && dot.contains("T2") && dot.contains("T3"));
        assert!(dot.contains("ww") && dot.contains("wr"));
    }
}

//! The Start-ordered Serialization Graph, used by the Snapshot
//! Isolation extension level (Adya's thesis §4.3; the ICDE paper
//! points to it in §6 as one of the commercial levels its approach
//! covers).

use adya_graph::{Cycle, DiGraph, DotOptions};
use adya_history::{History, TxnId};

use crate::conflicts::DepKind;
use crate::dsg::Dsg;

/// The SSG of a history: the DSG plus a **start-dependency** edge
/// `Ti -s-> Tj` whenever Ti's commit time-precedes Tj's begin.
///
/// Time-precedence is taken from event positions: an explicit `Begin`
/// event when recorded, the transaction's first event otherwise. Under
/// Snapshot Isolation every read/write-dependency must coincide with a
/// start-dependency (G-SIa), and no cycle may have exactly one
/// anti-dependency edge (G-SIb).
#[derive(Debug, Clone)]
pub struct Ssg {
    graph: DiGraph<TxnId, DepKind>,
}

impl Ssg {
    /// Builds the SSG of `h`, reusing an already-built DSG.
    pub fn build(h: &History, dsg: &Dsg) -> Ssg {
        let mut graph = dsg.graph().clone();
        let committed: Vec<TxnId> = h.committed_txns().collect();
        for &ti in &committed {
            let ci = h.txn(ti).expect("committed txn exists").end_event;
            for &tj in &committed {
                if ti == tj {
                    continue;
                }
                let bj = h.txn(tj).expect("committed txn exists").begin_point();
                if ci < bj {
                    graph.add_edge_dedup(ti, tj, DepKind::StartDep);
                }
            }
        }
        Ssg { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph<TxnId, DepKind> {
        &self.graph
    }

    /// G-SIa witness: a read/write-dependency edge `Ti → Tj` **not**
    /// accompanied by a start-dependency `Ti -s-> Tj` (i.e. Tj
    /// depends on a transaction that had not committed before Tj
    /// began).
    pub fn interference_edge(&self) -> Option<(TxnId, TxnId, DepKind)> {
        for e in self.graph.edges() {
            if !e.label.is_dependency() {
                continue;
            }
            if !self
                .graph
                .has_edge_where(e.from, e.to, |&k| k == DepKind::StartDep)
            {
                return Some((*e.from, *e.to, *e.label));
            }
        }
        None
    }

    /// G-SIb witness: an SSG cycle with exactly one anti-dependency
    /// edge (start- and read/write-dependencies on the path).
    pub fn missed_effects_cycle(&self) -> Option<Cycle<TxnId, DepKind>> {
        self.graph
            .find_cycle_exactly_one(|k| k.is_anti(), |k| !k.is_anti())
    }

    /// Graphviz DOT rendering.
    pub fn to_dot(&self, name: &str) -> String {
        self.graph.to_dot(&DotOptions {
            name: name.to_string(),
            left_to_right: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::parse_history;

    fn ssg_of(input: &str) -> Ssg {
        let h = parse_history(input).unwrap();
        let dsg = Dsg::build(&h);
        Ssg::build(&h, &dsg)
    }

    #[test]
    fn start_dep_added_for_serial_txns() {
        let ssg = ssg_of("b1 w1(x,1) c1 b2 r2(x1) c2");
        assert!(ssg
            .graph()
            .has_edge_where(&TxnId(1), &TxnId(2), |&k| k == DepKind::StartDep));
        assert!(ssg.interference_edge().is_none());
    }

    #[test]
    fn concurrent_read_dependency_is_interference() {
        // T2 begins before T1 commits yet reads T1's write: G-SIa.
        let ssg = ssg_of("b1 b2 w1(x,1) c1 r2(x1) c2");
        let (from, to, kind) = ssg.interference_edge().expect("G-SIa");
        assert_eq!((from, to), (TxnId(1), TxnId(2)));
        assert!(kind.is_dependency());
    }

    #[test]
    fn write_skew_is_missed_effects() {
        // Classic SI write skew: both read both objects, each writes
        // one. Two anti-dependency edges — this is NOT G-SIb (not
        // exactly one anti edge in its only cycle), so SI admits it.
        let ssg = ssg_of(
            "b1 b2 r1(xinit,5) r1(yinit,5) r2(xinit,5) r2(yinit,5) \
             w1(x,1) w2(y,1) c1 c2",
        );
        assert!(ssg.interference_edge().is_none());
        assert!(ssg.missed_effects_cycle().is_none());
    }

    #[test]
    fn single_anti_cycle_is_missed_effects() {
        // T1 reads x_init then T2 overwrites x and commits before...
        // make T2 also read something T1 wrote: T1 -wr-> ... simpler:
        // T2 reads y1 (dep T1->T2), T1 read x_init overwritten by T2
        // (anti T1->T2)? That's not a cycle. Build: T1 -rw-> T2 and
        // T2 -s-> T1: T2 commits before T1 begins? Impossible with
        // T1 reading before. Use dependency path back:
        // b1 r1(xinit) c1 ; b2 w2(x) c2 gives T1 -rw-> T2 and
        // T1 -s-> T2 (no cycle). Add T3? Simplest G-SIb: T1 -rw-> T2,
        // T2 -s-> T1 requires c2 < b1: then T1 must read the version
        // T2 overwrote — T1 reads x_init *after* T2 installed x2:
        // legal in a multi-version world.
        let h = parse_history("b2 w2(x,9) c2 b1 r1(xinit,5) c1").unwrap();
        let dsg = Dsg::build(&h);
        let ssg = Ssg::build(&h, &dsg);
        let cyc = ssg.missed_effects_cycle().expect("G-SIb");
        assert_eq!(cyc.count_labels(|k| k.is_anti()), 1);
    }
}

//! The portable isolation levels (§5, Figure 6) and the extension
//! levels of Adya's thesis, as checkable predicates over histories.

use std::fmt;

use adya_history::History;

use crate::dsg::Dsg;
use crate::phenomena::{self, Phenomenon, PhenomenonKind};
use crate::ssg::Ssg;

/// An isolation level defined by the phenomena it proscribes.
///
/// The ANSI chain is `PL-1 ⊂ PL-2 ⊂ PL-2.99 ⊂ PL-3` (§5); the
/// extension levels slot in as `PL-2 ⊂ PL-CS ⊂ …`, `PL-2 ⊂ PL-2+ ⊂
/// PL-SI` and `PL-2+ ⊂ PL-3` — see [`IsolationLevel::implies`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsolationLevel {
    /// Proscribes G0 — writes are completely isolated (§5.1).
    PL1,
    /// Proscribes G1 (= G1a ∧ G1b ∧ G1c) — no dirty reads (§5.2).
    PL2,
    /// Cursor Stability: PL-2 plus no G-cursor — protects
    /// read-modify-write through a cursor from lost updates (thesis
    /// §4.2; mentioned in §1/§6 of the paper).
    PLCS,
    /// Monotonic Atomic View: PL-2 plus no G-monotonic — other
    /// transactions' effects become visible atomically (thesis §4.2).
    PLMAV,
    /// PL-2+: PL-2 plus no G-single — the weakest level guaranteeing
    /// consistent reads (thesis §4.2; §1/§6 of the paper).
    PL2Plus,
    /// REPEATABLE READ analogue: PL-2 plus no G2-item (§5.4).
    PL299,
    /// Snapshot Isolation: PL-2 plus no G-SIa/G-SIb (thesis §4.3;
    /// §1/§6 of the paper).
    PLSI,
    /// Full (conflict-)serializability: PL-2 plus no G2 (§5.3).
    PL3,
}

impl IsolationLevel {
    /// All levels, in report order (weakest first along the ANSI
    /// chain, extensions in between).
    pub const ALL: [IsolationLevel; 8] = [
        IsolationLevel::PL1,
        IsolationLevel::PL2,
        IsolationLevel::PLCS,
        IsolationLevel::PLMAV,
        IsolationLevel::PL2Plus,
        IsolationLevel::PL299,
        IsolationLevel::PLSI,
        IsolationLevel::PL3,
    ];

    /// The ANSI chain of §5, weakest first.
    pub const ANSI: [IsolationLevel; 4] = [
        IsolationLevel::PL1,
        IsolationLevel::PL2,
        IsolationLevel::PL299,
        IsolationLevel::PL3,
    ];

    /// The phenomena this level proscribes (Figure 6, extended).
    pub fn proscribes(self) -> &'static [PhenomenonKind] {
        use PhenomenonKind::*;
        match self {
            IsolationLevel::PL1 => &[G0],
            IsolationLevel::PL2 => &[G1a, G1b, G1c],
            IsolationLevel::PLCS => &[G1a, G1b, G1c, GCursor],
            IsolationLevel::PLMAV => &[G1a, G1b, G1c, GMonotonic],
            IsolationLevel::PL2Plus => &[G1a, G1b, G1c, GSingle],
            IsolationLevel::PL299 => &[G1a, G1b, G1c, G2Item],
            IsolationLevel::PLSI => &[G1a, G1b, G1c, GSIa, GSIb],
            IsolationLevel::PL3 => &[G1a, G1b, G1c, G2],
        }
    }

    /// True if satisfying `self` logically implies satisfying
    /// `weaker` — the level lattice of Adya's thesis (Figure 4-5
    /// there): every level above PL-1 implies PL-1 (G1c includes G0),
    /// PL-3 implies all but PL-SI and PL-CS's cursor clause…
    /// conservatively encoded from the proscription sets:
    /// `self ⊒ weaker` iff every phenomenon `weaker` proscribes is
    /// implied-proscribed by `self`'s set.
    pub fn implies(self, weaker: IsolationLevel) -> bool {
        weaker
            .proscribes()
            .iter()
            .all(|p| self.implied_proscribed(*p))
    }

    /// True if proscribing `self`'s set rules out phenomenon `p`:
    /// directly, or through the known implications
    /// `¬G1c ⇒ ¬G0`, `¬G2 ⇒ ¬G2-item ∧ ¬G-single ∧ ¬G-cursor`,
    /// `¬G2-item ⇒ ¬G-cursor`, `¬G-single ⇒ ¬G-cursor(single)`… only
    /// implications that hold for *all* histories are encoded.
    fn implied_proscribed(self, p: PhenomenonKind) -> bool {
        use PhenomenonKind::*;
        let set = self.proscribes();
        if set.contains(&p) {
            return true;
        }
        match p {
            // Any dependency cycle (G0 ⊆ G1c).
            G0 => set.contains(&G1c),
            // Any cycle with an item anti-dep is a cycle with an
            // anti-dep.
            G2Item => set.contains(&G2),
            // A single-anti DSG cycle is an anti cycle, and also an
            // SSG cycle with a single anti edge (DSG ⊆ SSG).
            GSingle => set.contains(&G2) || set.contains(&GSIb),
            // A cursor-labeled cycle is an item-anti cycle, hence also
            // an anti cycle.
            GCursor => set.contains(&G2) || set.contains(&G2Item),
            // A G-monotonic USG cycle folds to a DSG cycle with at
            // most one anti edge: G1c (zero) or G-single (one). Every
            // level proscribing G-single here also proscribes G1c.
            GMonotonic => set.contains(&GSingle) || set.contains(&G2) || set.contains(&GSIb),
            _ => false,
        }
    }
}

impl fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsolationLevel::PL1 => write!(f, "PL-1"),
            IsolationLevel::PL2 => write!(f, "PL-2"),
            IsolationLevel::PLCS => write!(f, "PL-CS"),
            IsolationLevel::PLMAV => write!(f, "PL-MAV"),
            IsolationLevel::PL2Plus => write!(f, "PL-2+"),
            IsolationLevel::PL299 => write!(f, "PL-2.99"),
            IsolationLevel::PLSI => write!(f, "PL-SI"),
            IsolationLevel::PL3 => write!(f, "PL-3"),
        }
    }
}

/// The verdict of checking one history against one level.
#[derive(Debug, Clone)]
pub struct LevelCheck {
    /// The level checked.
    pub level: IsolationLevel,
    /// The proscribed phenomena that occurred (empty ⇒ the history is
    /// admitted at this level).
    pub violations: Vec<Phenomenon>,
}

impl LevelCheck {
    /// True if the history satisfies the level.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for LevelCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            write!(f, "{}: ok", self.level)
        } else {
            write!(f, "{}: violated —", self.level)?;
            for v in &self.violations {
                write!(f, " [{v}]")?;
            }
            Ok(())
        }
    }
}

/// Detects one phenomenon kind against prebuilt graphs.
fn detect(
    h: &History,
    dsg: &Dsg,
    ssg: &mut Option<Ssg>,
    kind: PhenomenonKind,
) -> Option<Phenomenon> {
    use PhenomenonKind::*;
    let mut need_ssg = || -> Ssg { ssg.take().unwrap_or_else(|| Ssg::build(h, dsg)) };
    match kind {
        G0 => phenomena::g0(dsg),
        G1a => phenomena::g1a(h),
        G1b => phenomena::g1b(h),
        G1c => phenomena::g1c(dsg),
        G2Item => phenomena::g2_item(dsg),
        G2 => phenomena::g2(dsg),
        GSingle => phenomena::g_single(dsg),
        GSIa => {
            let s = need_ssg();
            let r = phenomena::g_sia(&s);
            *ssg = Some(s);
            r
        }
        GSIb => {
            let s = need_ssg();
            let r = phenomena::g_sib(&s);
            *ssg = Some(s);
            r
        }
        GCursor => phenomena::g_cursor(h, dsg),
        GMonotonic => phenomena::g_mav(h),
    }
}

/// Checks whether `h` is admitted at `level` (Figure 6): runs exactly
/// the detectors for the level's proscribed phenomena.
pub fn check_level(h: &History, level: IsolationLevel) -> LevelCheck {
    let dsg = Dsg::build(h);
    let mut ssg = None;
    check_with(h, &dsg, &mut ssg, level)
}

fn check_with(h: &History, dsg: &Dsg, ssg: &mut Option<Ssg>, level: IsolationLevel) -> LevelCheck {
    let violations = level
        .proscribes()
        .iter()
        .filter_map(|&k| detect(h, dsg, ssg, k))
        .collect();
    LevelCheck { level, violations }
}

/// The full classification of a history against every level.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// One check per level, in [`IsolationLevel::ALL`] order.
    pub checks: Vec<LevelCheck>,
}

impl LevelReport {
    /// True if the history is admitted at `level`.
    pub fn satisfies(&self, level: IsolationLevel) -> bool {
        self.checks
            .iter()
            .find(|c| c.level == level)
            .is_some_and(LevelCheck::ok)
    }

    /// The strongest satisfied level of the ANSI chain
    /// (PL-1 → PL-2 → PL-2.99 → PL-3), or `None` if even PL-1 is
    /// violated (a "degree 0" history).
    pub fn strongest_ansi(&self) -> Option<IsolationLevel> {
        IsolationLevel::ANSI
            .iter()
            .rev()
            .copied()
            .find(|&l| self.satisfies(l))
    }

    /// Every satisfied level, in report order.
    pub fn satisfied(&self) -> Vec<IsolationLevel> {
        self.checks
            .iter()
            .filter(|c| c.ok())
            .map(|c| c.level)
            .collect()
    }
}

impl fmt::Display for LevelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Classifies `h` against every level, building the serialization
/// graphs once.
pub fn classify(h: &History) -> LevelReport {
    let dsg = Dsg::build(h);
    let mut ssg = None;
    let checks = IsolationLevel::ALL
        .iter()
        .map(|&l| check_with(h, &dsg, &mut ssg, l))
        .collect();
    LevelReport { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::parse_history;

    #[test]
    fn serial_history_satisfies_everything() {
        let h = parse_history("b1 w1(x,1) c1 b2 r2(x1) w2(x,2) c2").unwrap();
        let r = classify(&h);
        for l in IsolationLevel::ALL {
            assert!(r.satisfies(l), "serial history must satisfy {l}");
        }
        assert_eq!(r.strongest_ansi(), Some(IsolationLevel::PL3));
    }

    #[test]
    fn wcycle_fails_even_pl1() {
        let h =
            parse_history("w1(x,2) w2(x,5) w2(y,5) c2 w1(y,8) c1 [x1 << x2, y2 << y1]").unwrap();
        let r = classify(&h);
        assert!(!r.satisfies(IsolationLevel::PL1));
        assert_eq!(r.strongest_ansi(), None);
    }

    #[test]
    fn dirty_read_cycle_is_pl1_not_pl2() {
        // Circular information flow via reads only.
        let h = parse_history("w1(x,1) w2(y,2) r1(y2) r2(x1) c1 c2").unwrap();
        let r = classify(&h);
        assert!(r.satisfies(IsolationLevel::PL1));
        assert!(!r.satisfies(IsolationLevel::PL2));
        assert_eq!(r.strongest_ansi(), Some(IsolationLevel::PL1));
    }

    #[test]
    fn read_skew_is_pl2_not_pl3() {
        // H2 of §3: single anti-dependency cycle.
        let h = parse_history("r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9) c2")
            .unwrap();
        let r = classify(&h);
        assert!(r.satisfies(IsolationLevel::PL2));
        assert!(!r.satisfies(IsolationLevel::PL2Plus), "G-single fires");
        assert!(!r.satisfies(IsolationLevel::PL299), "item anti cycle");
        assert!(!r.satisfies(IsolationLevel::PL3));
        assert_eq!(r.strongest_ansi(), Some(IsolationLevel::PL2));
    }

    #[test]
    fn write_skew_passes_si_fails_pl3() {
        let h = parse_history(
            "b1 b2 r1(xinit,5) r1(yinit,5) r2(xinit,5) r2(yinit,5) \
             w1(x,1) w2(y,1) c1 c2",
        )
        .unwrap();
        let r = classify(&h);
        assert!(r.satisfies(IsolationLevel::PLSI), "SI admits write skew");
        assert!(!r.satisfies(IsolationLevel::PL3));
        // The write-skew cycle has two anti-dependency edges
        // (T1 -rw-> T2 on y, T2 -rw-> T1 on x), so G-single does not
        // fire: both transactions read a consistent snapshot.
        assert!(r.satisfies(IsolationLevel::PL2Plus));
    }

    #[test]
    fn lattice_implications_hold() {
        use IsolationLevel::*;
        assert!(PL3.implies(PL299));
        assert!(PL3.implies(PL2Plus));
        assert!(PL3.implies(PLMAV));
        assert!(PL2Plus.implies(PLMAV));
        assert!(PLSI.implies(PLMAV));
        assert!(PLMAV.implies(PL2));
        assert!(!PLMAV.implies(PL2Plus));
        assert!(!PL299.implies(PLMAV), "2.99 does not proscribe G-single");
        assert!(PL3.implies(PLCS));
        assert!(PL3.implies(PL2));
        assert!(PL3.implies(PL1));
        assert!(PL299.implies(PL2));
        assert!(PL2Plus.implies(PL2));
        assert!(PLSI.implies(PL2));
        assert!(PL2.implies(PL1));
        assert!(!PL2.implies(PL3));
        assert!(!PL299.implies(PLSI));
        assert!(!PL1.implies(PL2));
    }

    #[test]
    fn display_report() {
        let h = parse_history("w1(x,1) c1").unwrap();
        let r = classify(&h);
        let s = r.to_string();
        assert!(s.contains("PL-3: ok"));
    }
}

//! One-call full analysis of a history.

use std::fmt;

use adya_graph::CycleEdge;
use adya_history::{History, TxnId};
use adya_obs::Registry;

use crate::conflicts::{Conflict, DepKind};
use crate::dsg::Dsg;
use crate::levels::{classify, LevelReport};
use crate::mixing::{check_mixing, MixingReport};
use crate::phenomena::{detect_all, Phenomenon};

/// Everything the checker can say about one history: the DSG, every
/// phenomenon present (with witnesses), the verdict at every level,
/// and the mixed-level verdict.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The direct serialization graph.
    pub dsg: Dsg,
    /// One witness per phenomenon kind present.
    pub phenomena: Vec<Phenomenon>,
    /// Per-level verdicts.
    pub levels: LevelReport,
    /// Definition 9 on the recorded per-transaction levels.
    pub mixing: MixingReport,
}

impl Analysis {
    /// Per-edge provenance of `p`'s DSG witness cycle: each cycle edge
    /// paired with the direct conflicts that induced it (one per
    /// object/predicate, in deterministic order). Empty for the
    /// non-cycle phenomena (G1a, G1b, G-SIa, G-monotonic).
    pub fn cycle_provenance<'a>(
        &'a self,
        p: &'a Phenomenon,
    ) -> Vec<(&'a CycleEdge<TxnId, DepKind>, Vec<&'a Conflict>)> {
        match p.cycle() {
            Some(c) => c
                .edges()
                .iter()
                .map(|e| (e, self.dsg.provenance(e.from, e.to, e.label)))
                .collect(),
            None => Vec::new(),
        }
    }
}

/// Analyzes `h` fully.
///
/// ```
/// use adya_core::analyze;
/// use adya_history::parse_history;
///
/// let h = parse_history("w1(x,1) c1 r2(x1) c2").unwrap();
/// let a = analyze(&h);
/// assert!(a.phenomena.is_empty());
/// assert!(a.mixing.is_correct());
/// ```
pub fn analyze(h: &History) -> Analysis {
    analyze_in(h, adya_obs::global())
}

/// [`analyze`], recording per-phase timings, graph-shape stats and
/// phenomenon hit counters into `reg`.
///
/// Metric names (all under the `checker.` prefix): phase latencies as
/// histograms `checker.phase.{dsg_build,detect_all,classify,mixing,
/// total}_ns`; graph shape as gauges `checker.dsg.{nodes,edges,sccs,
/// max_scc}` and `checker.history.{txns,committed}`; one counter
/// `checker.phenomena.<kind>` per detected phenomenon kind; plus a
/// `checker.analyses` run counter.
pub fn analyze_in(h: &History, reg: &Registry) -> Analysis {
    let total = reg.span("checker.phase.total_ns");
    let dsg = reg.time("checker.phase.dsg_build_ns", || Dsg::build(h));
    let phenomena = reg.time("checker.phase.detect_all_ns", || detect_all(h));
    let levels = reg.time("checker.phase.classify_ns", || classify(h));
    let mixing = reg.time("checker.phase.mixing_ns", || check_mixing(h));
    total.stop();

    reg.counter("checker.analyses").inc();
    let g = dsg.graph();
    reg.gauge("checker.dsg.nodes").set(g.node_count() as i64);
    reg.gauge("checker.dsg.edges").set(g.edge_count() as i64);
    let sccs = g.sccs();
    reg.gauge("checker.dsg.sccs").set(sccs.len() as i64);
    let max_scc = sccs.iter().map(Vec::len).max().unwrap_or(0);
    reg.gauge("checker.dsg.max_scc").set(max_scc as i64);
    reg.gauge("checker.history.txns")
        .set(h.txns().count() as i64);
    reg.gauge("checker.history.committed")
        .set(h.committed_txns().count() as i64);
    for p in &phenomena {
        reg.counter(&format!("checker.phenomena.{}", p.kind()))
            .inc();
    }

    Analysis {
        dsg,
        phenomena,
        levels,
        mixing,
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DSG: {} committed txns, {} edges",
            self.dsg.graph().node_count(),
            self.dsg.graph().edge_count()
        )?;
        if self.phenomena.is_empty() {
            writeln!(f, "phenomena: none")?;
        } else {
            writeln!(f, "phenomena:")?;
            for p in &self.phenomena {
                writeln!(f, "  {p}")?;
            }
        }
        writeln!(f, "{}", self.levels)?;
        write!(f, "mixing: {}", self.mixing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IsolationLevel;
    use adya_history::parse_history;

    #[test]
    fn clean_history_analysis() {
        let h = parse_history("w1(x,1) c1 r2(x1) c2").unwrap();
        let a = analyze(&h);
        assert!(a.phenomena.is_empty());
        assert!(a.levels.satisfies(IsolationLevel::PL3));
        assert!(a.dsg.is_acyclic());
        let s = a.to_string();
        assert!(s.contains("phenomena: none"));
        assert!(s.contains("mixing-correct"));
    }

    #[test]
    fn dirty_analysis_lists_phenomena() {
        let h = parse_history("w1(x,1) r2(x1) a1 c2").unwrap();
        let a = analyze(&h);
        assert!(!a.phenomena.is_empty());
        assert!(a.to_string().contains("G1a"));
    }

    #[test]
    fn cycle_provenance_cites_conflicts_per_edge() {
        // H_wcycle (§5.1): every G0 edge must map back to a ww
        // conflict on a concrete object/version.
        let h =
            parse_history("w1(x,2) w2(x,5) w2(y,5) c2 w1(y,8) c1 [x1 << x2, y2 << y1]").unwrap();
        let a = analyze(&h);
        let g0 = a
            .phenomena
            .iter()
            .find(|p| p.kind() == crate::PhenomenonKind::G0)
            .expect("G0 present");
        let prov = a.cycle_provenance(g0);
        assert_eq!(prov.len(), 2);
        for (edge, conflicts) in &prov {
            assert!(!conflicts.is_empty(), "edge {edge:?} has no provenance");
            for c in conflicts {
                assert_eq!(c.from, edge.from);
                assert_eq!(c.to, edge.to);
                assert!(c.object.is_some() && c.version.is_some());
            }
        }
        // Non-cycle phenomena have no DSG cycle provenance.
        let h2 = parse_history("w1(x,1) r2(x1) a1 c2").unwrap();
        let a2 = analyze(&h2);
        let g1a = &a2.phenomena[0];
        assert!(g1a.cycle().is_none());
        assert!(a2.cycle_provenance(g1a).is_empty());
    }
}

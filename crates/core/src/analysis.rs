//! One-call full analysis of a history.

use std::fmt;

use adya_history::History;

use crate::dsg::Dsg;
use crate::levels::{classify, LevelReport};
use crate::mixing::{check_mixing, MixingReport};
use crate::phenomena::{detect_all, Phenomenon};

/// Everything the checker can say about one history: the DSG, every
/// phenomenon present (with witnesses), the verdict at every level,
/// and the mixed-level verdict.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The direct serialization graph.
    pub dsg: Dsg,
    /// One witness per phenomenon kind present.
    pub phenomena: Vec<Phenomenon>,
    /// Per-level verdicts.
    pub levels: LevelReport,
    /// Definition 9 on the recorded per-transaction levels.
    pub mixing: MixingReport,
}

/// Analyzes `h` fully.
///
/// ```
/// use adya_core::analyze;
/// use adya_history::parse_history;
///
/// let h = parse_history("w1(x,1) c1 r2(x1) c2").unwrap();
/// let a = analyze(&h);
/// assert!(a.phenomena.is_empty());
/// assert!(a.mixing.is_correct());
/// ```
pub fn analyze(h: &History) -> Analysis {
    Analysis {
        dsg: Dsg::build(h),
        phenomena: detect_all(h),
        levels: classify(h),
        mixing: check_mixing(h),
    }
}

impl fmt::Display for Analysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DSG: {} committed txns, {} edges",
            self.dsg.graph().node_count(),
            self.dsg.graph().edge_count()
        )?;
        if self.phenomena.is_empty() {
            writeln!(f, "phenomena: none")?;
        } else {
            writeln!(f, "phenomena:")?;
            for p in &self.phenomena {
                writeln!(f, "  {p}")?;
            }
        }
        writeln!(f, "{}", self.levels)?;
        write!(f, "mixing: {}", self.mixing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IsolationLevel;
    use adya_history::parse_history;

    #[test]
    fn clean_history_analysis() {
        let h = parse_history("w1(x,1) c1 r2(x1) c2").unwrap();
        let a = analyze(&h);
        assert!(a.phenomena.is_empty());
        assert!(a.levels.satisfies(IsolationLevel::PL3));
        assert!(a.dsg.is_acyclic());
        let s = a.to_string();
        assert!(s.contains("phenomena: none"));
        assert!(s.contains("mixing-correct"));
    }

    #[test]
    fn dirty_analysis_lists_phenomena() {
        let h = parse_history("w1(x,1) r2(x1) a1 c2").unwrap();
        let a = analyze(&h);
        assert!(!a.phenomena.is_empty());
        assert!(a.to_string().contains("G1a"));
    }
}

//! The Unfolded Serialization Graph and the G-monotonic phenomenon
//! (PL-MAV, *Monotonic Atomic View* — Adya's thesis §4.2; the ICDE
//! paper points to the thesis for the additional levels its approach
//! covers).
//!
//! PL-MAV strengthens PL-2 with *atomic visibility*: once a
//! transaction has observed any effect of a committed transaction Tj,
//! its subsequent reads must observe **all** of Tj's effects. The DSG
//! cannot express "subsequent": it has one node per transaction. The
//! USG therefore **unfolds** the transaction under scrutiny into one
//! node per read/write event, chained by order edges; G-monotonic is a
//! USG cycle with exactly one anti-dependency edge, emanating from one
//! of the unfolded transaction's *read* nodes.
//!
//! Example (non-monotonic read):
//!
//! ```text
//!   r_i(x_j)  --order-->  r_i(y_old)
//!      ▲                      |
//!      | wr                   | rw        (exactly one anti edge)
//!      Tj  <------------------+
//! ```
//!
//! Ti read Tj's `x` and *later* read a pre-Tj version of `y` — a cycle
//! once order edges are present, invisible to the folded DSG when the
//! two anti/read dependencies are the only conflicts.

use std::fmt;

use adya_graph::{Cycle, DiGraph};
use adya_history::{Event, History, TxnId, VersionId};

use crate::conflicts::{direct_conflicts, Conflict, DepKind};

/// A node of the unfolded graph: either a whole (other) transaction or
/// one read/write action of the unfolded transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UsgNode {
    /// A committed transaction other than the unfolded one.
    Txn(TxnId),
    /// One event (by index) of the unfolded transaction.
    Action(TxnId, usize),
}

impl fmt::Display for UsgNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UsgNode::Txn(t) => write!(f, "{t}"),
            UsgNode::Action(t, e) => write!(f, "{t}@{e}"),
        }
    }
}

/// Edge labels of the USG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UsgEdge {
    /// A read/write dependency (or an anti-dependency not rooted at a
    /// read node of the unfolded transaction).
    Dep(DepKind),
    /// Program-order edge between consecutive actions of the unfolded
    /// transaction.
    Order,
    /// An anti-dependency out of one of the unfolded transaction's
    /// read nodes — the edge kind G-monotonic counts.
    ReadAnti,
}

impl fmt::Display for UsgEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UsgEdge::Dep(k) => write!(f, "{k}"),
            UsgEdge::Order => write!(f, "order"),
            UsgEdge::ReadAnti => write!(f, "rw*"),
        }
    }
}

/// Builds USG(H, ti) and searches for a G-monotonic cycle: exactly one
/// anti-dependency edge, from one of ti's read nodes, the rest
/// dependency/order edges.
fn g_monotonic_for(
    h: &History,
    conflicts: &[Conflict],
    ti: TxnId,
) -> Option<Cycle<UsgNode, String>> {
    let mut g: DiGraph<UsgNode, UsgEdge> = DiGraph::new();

    // Order edges chain ti's read/write actions.
    let mut prev: Option<usize> = None;
    for (ix, e) in h.events().iter().enumerate() {
        if e.txn() != ti {
            continue;
        }
        let is_action = matches!(
            e,
            Event::Read(_) | Event::Write(_) | Event::PredicateRead(_)
        );
        if !is_action {
            continue;
        }
        if let Some(p) = prev {
            g.add_edge_dedup(
                UsgNode::Action(ti, p),
                UsgNode::Action(ti, ix),
                UsgEdge::Order,
            );
        } else {
            g.add_node(UsgNode::Action(ti, ix));
        }
        prev = Some(ix);
    }

    // Map each of ti's conflicts to the event it arose at. Conflicts
    // between other transactions keep their folded Txn nodes.
    // To attach ti's conflicts to specific actions we re-derive them
    // positionally: reads at their read events, write-related edges at
    // ti's last write event of the object.
    let mut last_write_of: std::collections::HashMap<adya_history::ObjectId, usize> =
        std::collections::HashMap::new();
    for (ix, e) in h.events().iter().enumerate() {
        if e.txn() == ti {
            if let Some(w) = e.as_write() {
                last_write_of.insert(w.object, ix);
            }
        }
    }
    // Read events of ti, by (object, version) — a conflict may match
    // several reads; attach to each.
    let mut reads_at: std::collections::HashMap<(adya_history::ObjectId, VersionId), Vec<usize>> =
        Default::default();
    for (ix, r) in h.reads_of(ti) {
        reads_at.entry((r.object, r.version)).or_default().push(ix);
    }
    let pred_reads: Vec<usize> = h.predicate_reads_of(ti).map(|(ix, _)| ix).collect();

    for c in conflicts.iter().cloned() {
        match (c.from == ti, c.to == ti) {
            (false, false) => {
                g.add_edge_dedup(
                    UsgNode::Txn(c.from),
                    UsgNode::Txn(c.to),
                    UsgEdge::Dep(c.kind),
                );
            }
            (true, false) => {
                // Edge out of ti: attach at the responsible action.
                let nodes: Vec<UsgNode> = match c.kind {
                    DepKind::ItemAntiDep => {
                        // ti read some version that c.to overwrote; the
                        // conflict records the overwriting version —
                        // attach at every read of that object.
                        let obj = c.object.expect("item conflicts carry objects");
                        reads_at
                            .iter()
                            .filter(|((o, _), _)| *o == obj)
                            .flat_map(|(_, ixs)| ixs.iter().copied())
                            .map(|ix| UsgNode::Action(ti, ix))
                            .collect()
                    }
                    DepKind::PredAntiDep => pred_reads
                        .iter()
                        .map(|&ix| UsgNode::Action(ti, ix))
                        .collect(),
                    _ => {
                        // ww / wr out of ti: rooted at its writes.
                        let obj = c.object.expect("carries object");
                        last_write_of
                            .get(&obj)
                            .map(|&ix| UsgNode::Action(ti, ix))
                            .into_iter()
                            .collect()
                    }
                };
                let label = if c.kind.is_anti() {
                    match c.kind {
                        DepKind::ItemAntiDep | DepKind::PredAntiDep => UsgEdge::ReadAnti,
                        _ => UsgEdge::Dep(c.kind),
                    }
                } else {
                    UsgEdge::Dep(c.kind)
                };
                for n in nodes {
                    g.add_edge_dedup(n, UsgNode::Txn(c.to), label);
                }
            }
            (false, true) => {
                // Edge into ti: reads attach at read events, writes at
                // ti's write of the object.
                let nodes: Vec<UsgNode> = match c.kind {
                    DepKind::ItemReadDep => {
                        let obj = c.object.expect("carries object");
                        let ver = c.version.expect("read deps carry versions");
                        reads_at
                            .get(&(obj, ver))
                            .map(|ixs| ixs.iter().map(|&ix| UsgNode::Action(ti, ix)).collect())
                            .unwrap_or_default()
                    }
                    DepKind::PredReadDep => pred_reads
                        .iter()
                        .map(|&ix| UsgNode::Action(ti, ix))
                        .collect(),
                    _ => {
                        let obj = c.object.expect("carries object");
                        last_write_of
                            .get(&obj)
                            .map(|&ix| UsgNode::Action(ti, ix))
                            .into_iter()
                            .collect()
                    }
                };
                for n in nodes {
                    g.add_edge_dedup(UsgNode::Txn(c.from), n, UsgEdge::Dep(c.kind));
                }
            }
            (true, true) => unreachable!("no self-conflicts"),
        }
    }

    g.find_cycle_exactly_one(
        |l| *l == UsgEdge::ReadAnti,
        |l| matches!(l, UsgEdge::Dep(k) if !k.is_anti()) || *l == UsgEdge::Order,
    )
    .map(|c| {
        // Re-label into display strings for the public witness type.
        let mut out: DiGraph<UsgNode, String> = DiGraph::new();
        for e in c.edges() {
            out.add_edge(e.from, e.to, e.label.to_string());
        }
        out.find_cycle(|_| true, |_| true)
            .expect("relabelled cycle persists")
    })
}

/// G-monotonic — *Monotonic Atomic View* violations: for some
/// committed transaction, USG(H, Ti) has a cycle with exactly one
/// anti-dependency edge rooted at one of Ti's read nodes.
pub fn g_monotonic(h: &History) -> Option<(TxnId, Cycle<UsgNode, String>)> {
    // The conflict set is shared by every per-transaction unfolding;
    // deriving it once keeps PL-MAV checking linear in transactions.
    let conflicts = direct_conflicts(h);
    for ti in h.committed_txns() {
        if let Some(c) = g_monotonic_for(h, &conflicts, ti) {
            return Some((ti, c));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::parse_history;

    #[test]
    fn non_monotonic_read_detected() {
        // T2 reads T1's new x, then the OLD y — it saw part of T1's
        // effects and then a pre-T1 state.
        let h = parse_history("r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(x1,1) r2(yinit,5) c2")
            .unwrap();
        let (t, cyc) = g_monotonic(&h).expect("G-monotonic");
        assert_eq!(t, adya_history::TxnId(2));
        assert_eq!(cyc.count_labels(|l| l == "rw*"), 1);
    }

    #[test]
    fn other_order_is_monotonic() {
        // Old y first, then T1's new x: reads only ever move forward.
        let h = parse_history("r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(yinit,5) r2(x1,1) c2")
            .unwrap();
        assert!(g_monotonic(&h).is_none(), "H1-style history is MAV");
    }

    #[test]
    fn clean_serial_history_is_monotonic() {
        let h = parse_history("w1(x,1) c1 r2(x1) w2(x,2) c2").unwrap();
        assert!(g_monotonic(&h).is_none());
    }

    #[test]
    fn write_skew_is_monotonic() {
        let h =
            parse_history("r1(xinit,5) r1(yinit,5) r2(xinit,5) r2(yinit,5) w1(x,1) w2(y,1) c1 c2")
                .unwrap();
        assert!(g_monotonic(&h).is_none(), "write skew reads a snapshot");
    }
}

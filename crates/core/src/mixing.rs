//! Mixed-level histories: the Mixed Serialization Graph and
//! mixing-correctness (§5.5, Definition 9 and the Mixing Theorem).

use std::fmt;

use adya_graph::{Cycle, DiGraph, DotOptions};
use adya_history::{History, RequestedLevel, TxnId};

use crate::conflicts::{direct_conflicts, DepKind};
use crate::phenomena::{g1a_where, g1b_where, Phenomenon};

/// The Mixed Serialization Graph: nodes are committed transactions,
/// and a direct conflict becomes an edge only when it is **relevant**
/// at the level of the transaction it guards (§5.5):
///
/// * write-dependencies matter at every level — always edges;
/// * read-dependencies matter to readers at PL-2 and above — edges
///   into such nodes;
/// * anti-dependencies matter to readers at PL-3 — edges out of PL-3
///   nodes; *item* anti-dependencies already matter at PL-2.99 —
///   edges out of PL-2.99 nodes too.
///
/// These are exactly the paper's obligatory conflicts: a lower-level
/// writer that overwrites a PL-3 reader's data still gets the edge,
/// because the conflict is relevant at the (higher) reader's level.
#[derive(Debug, Clone)]
pub struct Msg {
    graph: DiGraph<TxnId, DepKind>,
}

impl Msg {
    /// Builds the MSG of `h` from the per-transaction requested levels
    /// recorded in the history.
    pub fn build(h: &History) -> Msg {
        let mut graph = DiGraph::with_capacity(h.committed_txns().count());
        for t in h.committed_txns() {
            graph.add_node(t);
        }
        for c in direct_conflicts(h) {
            let relevant = match c.kind {
                DepKind::WriteDep => true,
                DepKind::ItemReadDep | DepKind::PredReadDep => h.level(c.to) >= RequestedLevel::PL2,
                DepKind::ItemAntiDep => h.level(c.from) >= RequestedLevel::PL299,
                DepKind::PredAntiDep => h.level(c.from) >= RequestedLevel::PL3,
                DepKind::StartDep => false,
            };
            if relevant {
                graph.add_edge_dedup(c.from, c.to, c.kind);
            }
        }
        Msg { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph<TxnId, DepKind> {
        &self.graph
    }

    /// Any cycle in the MSG.
    pub fn cycle(&self) -> Option<Cycle<TxnId, DepKind>> {
        self.graph.find_cycle(|_| true, |_| true)
    }

    /// Graphviz DOT rendering.
    pub fn to_dot(&self, name: &str) -> String {
        self.graph.to_dot(&DotOptions {
            name: name.to_string(),
            left_to_right: true,
        })
    }
}

/// The outcome of Definition 9 on a history.
#[derive(Debug, Clone)]
pub struct MixingReport {
    /// A cycle in the MSG, if any.
    pub msg_cycle: Option<Cycle<TxnId, DepKind>>,
    /// G1a/G1b occurrences whose reader runs at PL-2 or above.
    pub g1_violations: Vec<Phenomenon>,
}

impl MixingReport {
    /// True if the history is mixing-correct: the MSG is acyclic and
    /// G1a/G1b do not occur for PL-2 and PL-3 transactions.
    pub fn is_correct(&self) -> bool {
        self.msg_cycle.is_none() && self.g1_violations.is_empty()
    }
}

impl fmt::Display for MixingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_correct() {
            return write!(f, "mixing-correct");
        }
        write!(f, "not mixing-correct:")?;
        if let Some(c) = &self.msg_cycle {
            write!(f, " MSG cycle {c};")?;
        }
        for v in &self.g1_violations {
            write!(f, " [{v}]")?;
        }
        Ok(())
    }
}

/// Checks Definition 9: `H` is mixing-correct iff `MSG(H)` is acyclic
/// and phenomena G1a and G1b do not occur for PL-2 and PL-3 (and
/// PL-2.99) transactions.
pub fn check_mixing(h: &History) -> MixingReport {
    let msg = Msg::build(h);
    let mut g1_violations: Vec<Phenomenon> = Vec::new();
    // Detect G1a/G1b among PL-2+ readers only: a PL-1 reader's dirty
    // read is permitted and must not mask a later high-level reader's
    // violation.
    let high = |t| h.level(t) >= RequestedLevel::PL2;
    if let Some(p) = g1a_where(h, high) {
        g1_violations.push(p);
    }
    if let Some(p) = g1b_where(h, high) {
        g1_violations.push(p);
    }
    MixingReport {
        msg_cycle: msg.cycle(),
        g1_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::{HistoryBuilder, Value};

    /// Read skew where the reader runs at PL-2 only: the
    /// anti-dependency out of the PL-2 reader is not an MSG edge, so
    /// the mix is correct.
    #[test]
    fn low_level_reader_relaxes_the_graph() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        b.txn_level(t2, RequestedLevel::PL2);
        let x = b.preloaded_object("x", Value::Int(5));
        let y = b.preloaded_object("y", Value::Int(5));
        b.read_init(t2, x);
        b.read_init(t1, x);
        b.write(t1, x, Value::Int(1));
        b.read_init(t1, y);
        b.write(t1, y, Value::Int(9));
        b.commit(t1);
        b.read(t2, y, t1);
        b.commit(t2);
        let h = b.build().unwrap();
        let rep = check_mixing(&h);
        assert!(rep.is_correct(), "{rep}");
    }

    /// The same history with the reader at PL-3 is not mixing-correct:
    /// the anti-dependency edge is obligatory and closes a cycle.
    #[test]
    fn pl3_reader_makes_read_skew_incorrect() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        b.txn_level(t2, RequestedLevel::PL3);
        let x = b.preloaded_object("x", Value::Int(5));
        let y = b.preloaded_object("y", Value::Int(5));
        b.read_init(t2, x);
        b.read_init(t1, x);
        b.write(t1, x, Value::Int(1));
        b.read_init(t1, y);
        b.write(t1, y, Value::Int(9));
        b.commit(t1);
        b.read(t2, y, t1);
        b.commit(t2);
        let h = b.build().unwrap();
        let rep = check_mixing(&h);
        assert!(!rep.is_correct());
        assert!(rep.msg_cycle.is_some());
    }

    /// A PL-1 transaction's dirty read does not break the mix; a PL-2
    /// transaction's dirty (aborted) read does.
    #[test]
    fn g1_checked_only_for_high_level_readers() {
        // PL-1 reader of an aborted write: fine.
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        b.txn_level(t2, RequestedLevel::PL1);
        let x = b.object("x");
        b.write(t1, x, Value::Int(1));
        b.read(t2, x, t1);
        b.abort(t1);
        b.commit(t2);
        let h = b.build().unwrap();
        assert!(check_mixing(&h).is_correct());

        // Same, reader at PL-2: G1a violation.
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        b.txn_level(t2, RequestedLevel::PL2);
        let x = b.object("x");
        b.write(t1, x, Value::Int(1));
        b.read(t2, x, t1);
        b.abort(t1);
        b.commit(t2);
        let h = b.build().unwrap();
        let rep = check_mixing(&h);
        assert!(!rep.is_correct());
        assert_eq!(rep.g1_violations.len(), 1);
    }

    /// Regression: an early PL-1 dirty read must not mask a later
    /// PL-3 dirty read (the detector used to return only the first
    /// occurrence over all readers).
    #[test]
    fn low_level_dirty_read_does_not_mask_high_level_one() {
        let mut b = HistoryBuilder::new();
        let (t1, t2, t3) = (b.txn(1), b.txn(2), b.txn(3));
        b.txn_level(t2, RequestedLevel::PL1); // reads dirty first
        b.txn_level(t3, RequestedLevel::PL3); // reads dirty later
        let x = b.object("x");
        b.write(t1, x, Value::Int(1));
        b.read(t2, x, t1); // PL-1 reader: allowed
        b.commit(t2);
        b.read(t3, x, t1); // PL-3 reader of soon-aborted data
        b.abort(t1);
        b.commit(t3);
        let h = b.build().unwrap();
        let rep = check_mixing(&h);
        assert!(!rep.is_correct(), "PL-3 G1a must be detected: {rep}");
    }

    /// Write-dependencies are edges regardless of level: a G0 cycle
    /// between two PL-1 transactions is never mixing-correct.
    #[test]
    fn write_cycle_breaks_any_mix() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        b.txn_level(t1, RequestedLevel::PL1);
        b.txn_level(t2, RequestedLevel::PL1);
        let x = b.object("x");
        let y = b.object("y");
        b.write(t1, x, Value::Int(2));
        b.write(t2, x, Value::Int(5));
        b.write(t2, y, Value::Int(5));
        b.commit(t2);
        b.write(t1, y, Value::Int(8));
        b.commit(t1);
        b.version_order_by_txn(x, &[t1, t2]);
        b.version_order_by_txn(y, &[t2, t1]);
        let h = b.build().unwrap();
        assert!(!check_mixing(&h).is_correct());
    }

    /// An all-PL-3 history: mixing-correctness coincides with PL-3
    /// acceptance (the MSG equals the DSG).
    #[test]
    fn all_pl3_msg_equals_dsg() {
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let x = b.preloaded_object("x", Value::Int(5));
        b.read_init(t1, x);
        b.write(t2, x, Value::Int(9));
        b.commit(t2);
        b.commit(t1);
        let h = b.build().unwrap();
        let msg = Msg::build(&h);
        let dsg = crate::Dsg::build(&h);
        assert_eq!(msg.graph().edge_count(), dsg.graph().edge_count());
    }

    #[test]
    fn report_display() {
        let mut b = HistoryBuilder::new();
        let t1 = b.txn(1);
        b.commit(t1);
        let h = b.build().unwrap();
        assert_eq!(check_mixing(&h).to_string(), "mixing-correct");
    }
}

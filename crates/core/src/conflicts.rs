//! Direct conflicts between committed transactions (§4.4,
//! Definitions 2–6 and Figure 2).

use std::fmt;

use adya_history::{History, ObjectId, PredicateId, TxnId, VersionId};

/// The kind of a direct conflict edge `Ti → Tj` ("Tj conflicts on
/// Ti"), exactly the notation of Figure 2 plus the start-dependency
/// used by the Snapshot Isolation extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// `ww`: Ti installs `x_i` and Tj installs x's next version
    /// (Definition 6, *directly write-depends*).
    WriteDep,
    /// `wr` (item): Ti installs `x_i` and Tj reads `x_i`
    /// (Definition 3, *directly item-read-depends*).
    ItemReadDep,
    /// `wr` (predicate): Ti installs the latest version at-or-before
    /// Tj's version-set selection that *changes the matches* of Tj's
    /// predicate read (Definition 3, *directly
    /// predicate-read-depends*).
    PredReadDep,
    /// `rw` (item): Ti reads `x_h` and Tj installs x's next version
    /// (Definition 5, *directly item-anti-depends*).
    ItemAntiDep,
    /// `rw` (predicate): Tj overwrites Ti's predicate read — installs
    /// a *later* version of some selected object that changes the
    /// matches (Definitions 4–5, *directly predicate-anti-depends*).
    PredAntiDep,
    /// `s`: Ti's commit time-precedes Tj's begin. Not a conflict of
    /// the ICDE paper's DSG; used only by the start-ordered graph of
    /// the Snapshot Isolation extension (Adya's thesis, §4.3).
    StartDep,
}

impl DepKind {
    /// True for the *dependency* kinds (read- or write-dependencies) —
    /// the edges Definition 8 ("depends") ranges over.
    pub fn is_dependency(self) -> bool {
        matches!(
            self,
            DepKind::WriteDep | DepKind::ItemReadDep | DepKind::PredReadDep
        )
    }

    /// True for anti-dependencies (item or predicate).
    pub fn is_anti(self) -> bool {
        matches!(self, DepKind::ItemAntiDep | DepKind::PredAntiDep)
    }

    /// True for the item anti-dependency (the G2-item discriminator).
    pub fn is_item_anti(self) -> bool {
        self == DepKind::ItemAntiDep
    }

    /// True for read-dependencies (item or predicate).
    pub fn is_read_dep(self) -> bool {
        matches!(self, DepKind::ItemReadDep | DepKind::PredReadDep)
    }

    /// True for the write-dependency.
    pub fn is_write_dep(self) -> bool {
        self == DepKind::WriteDep
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DepKind::WriteDep => write!(f, "ww"),
            DepKind::ItemReadDep => write!(f, "wr"),
            DepKind::PredReadDep => write!(f, "wr(pred)"),
            DepKind::ItemAntiDep => write!(f, "rw"),
            DepKind::PredAntiDep => write!(f, "rw(pred)"),
            DepKind::StartDep => write!(f, "s"),
        }
    }
}

/// One direct conflict with its provenance, for explanations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The depended-on transaction Ti.
    pub from: TxnId,
    /// The depending transaction Tj.
    pub to: TxnId,
    /// Edge kind.
    pub kind: DepKind,
    /// The object the conflict arose on (`None` for start-deps).
    pub object: Option<ObjectId>,
    /// The version involved: the version read/installed by `from`
    /// (dependencies) or the overwriting version installed by `to`
    /// (anti-dependencies).
    pub version: Option<VersionId>,
    /// The predicate, for predicate conflicts.
    pub predicate: Option<PredicateId>,
}

impl Conflict {
    fn item(from: TxnId, to: TxnId, kind: DepKind, object: ObjectId, version: VersionId) -> Self {
        Conflict {
            from,
            to,
            kind,
            object: Some(object),
            version: Some(version),
            predicate: None,
        }
    }

    fn pred(
        from: TxnId,
        to: TxnId,
        kind: DepKind,
        object: ObjectId,
        version: VersionId,
        predicate: PredicateId,
    ) -> Self {
        Conflict {
            from,
            to,
            kind,
            object: Some(object),
            version: Some(version),
            predicate: Some(predicate),
        }
    }
}

/// Derives every direct conflict of `h` between committed transactions
/// (Figure 2). `Tinit` never participates: it has no incoming edges by
/// construction, so it cannot be part of any cycle, and the paper's
/// DSG figures omit it.
pub fn direct_conflicts(h: &History) -> Vec<Conflict> {
    let mut out = Vec::new();
    write_dependencies(h, &mut out);
    item_read_dependencies(h, &mut out);
    item_anti_dependencies(h, &mut out);
    predicate_dependencies(h, &mut out);
    out
}

/// `ww`: consecutive committed versions in each object's version
/// order.
fn write_dependencies(h: &History, out: &mut Vec<Conflict>) {
    for (obj, _) in h.objects() {
        let order = h.version_order(obj);
        for pair in order.windows(2) {
            let (prev, next) = (pair[0], pair[1]);
            if prev.txn.is_init() {
                continue; // edges out of Tinit are omitted
            }
            debug_assert!(!next.txn.is_init());
            if prev.txn != next.txn {
                out.push(Conflict::item(
                    prev.txn,
                    next.txn,
                    DepKind::WriteDep,
                    obj,
                    prev,
                ));
            }
        }
    }
}

/// `wr` (item): committed Tj read a version installed by committed
/// Ti. Reads of intermediate versions of committed transactions also
/// read-depend on the writer (they additionally trigger G1b).
fn item_read_dependencies(h: &History, out: &mut Vec<Conflict>) {
    for tj in h.committed_txns().collect::<Vec<_>>() {
        for (_, read) in h.reads_of(tj) {
            let ti = read.version.txn;
            if ti.is_init() || ti == tj || !h.is_committed(ti) {
                continue;
            }
            out.push(Conflict::item(
                ti,
                tj,
                DepKind::ItemReadDep,
                read.object,
                read.version,
            ));
        }
    }
}

/// `rw` (item): committed Ti read version `x_k`; the installer of x's
/// next committed version directly item-anti-depends… i.e. the edge
/// runs from the reader Ti to the overwriter Tj.
fn item_anti_dependencies(h: &History, out: &mut Vec<Conflict>) {
    for ti in h.committed_txns().collect::<Vec<_>>() {
        for (_, read) in h.reads_of(ti) {
            let Some(anchor) = order_anchor(h, read.object, read.version) else {
                continue; // dirty read of a never-committed version: G1a territory
            };
            let Some(next) = h.next_version(read.object, anchor) else {
                continue; // read the latest committed version
            };
            let tj = next.txn;
            if tj == ti {
                continue;
            }
            out.push(Conflict::item(
                ti,
                tj,
                DepKind::ItemAntiDep,
                read.object,
                next,
            ));
        }
    }
}

/// Maps a read version to its position in the committed order: the
/// version itself when committed-final, the writer's final committed
/// version when the read observed an intermediate version (a G1b
/// situation, anchored at the writer's install), `None` when the
/// writer never committed. Shared with the phenomenon detectors.
pub(crate) fn order_anchor(h: &History, object: ObjectId, version: VersionId) -> Option<VersionId> {
    if h.order_index(object, version).is_some() {
        return Some(version);
    }
    if !h.is_committed(version.txn) {
        return None;
    }
    let final_seq = h.final_seq(version.txn, object)?;
    let fin = VersionId::new(version.txn, final_seq);
    h.order_index(object, fin).map(|_| fin)
}

/// `wr`/`rw` (predicate): for each predicate read of a committed
/// transaction and each object in its resolved version set,
///
/// * the **latest** match-changing version at-or-before the selected
///   version creates a predicate-read-dependency (Definition 3 — "we
///   use the latest transaction where a change to Vset(P) occurs"),
/// * **every** later match-changing version overwrites the read and
///   creates a predicate-anti-dependency (Definition 4).
fn predicate_dependencies(h: &History, out: &mut Vec<Conflict>) {
    for tj in h.committed_txns().collect::<Vec<_>>() {
        for (_, pread) in h.predicate_reads_of(tj) {
            let pid = pread.predicate;
            for (obj, selected) in h.resolve_vset(pread) {
                let Some(anchor) = order_anchor(h, obj, selected) else {
                    continue; // dirty version-set entry: flagged by G1a/G1b
                };
                let pos = h
                    .order_index(obj, anchor)
                    .expect("anchor is committed by construction");
                let order = h.version_order(obj);
                // Read-dependency: latest change at or before `pos`.
                for &v in order[..=pos].iter().rev() {
                    if h.changes_matches(pid, obj, v) {
                        if !v.txn.is_init() && v.txn != tj {
                            out.push(Conflict::pred(v.txn, tj, DepKind::PredReadDep, obj, v, pid));
                        }
                        break;
                    }
                }
                // Anti-dependencies: every later change.
                for &v in &order[pos + 1..] {
                    if h.changes_matches(pid, obj, v) && v.txn != tj {
                        out.push(Conflict::pred(tj, v.txn, DepKind::PredAntiDep, obj, v, pid));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::{parse_history, HistoryBuilder, Value};

    fn kinds_between(cs: &[Conflict], from: u32, to: u32) -> Vec<DepKind> {
        cs.iter()
            .filter(|c| c.from == TxnId(from) && c.to == TxnId(to))
            .map(|c| c.kind)
            .collect()
    }

    #[test]
    fn ww_follows_version_order_not_commit_order() {
        // H_write_order: version order x2 << x1 although c1 < c2.
        let h =
            parse_history("w1(x) w2(x) w2(y) c1 c2 r3(x1) w3(x) w4(y) a4 a3 [x2 << x1]").unwrap();
        let cs = direct_conflicts(&h);
        assert_eq!(kinds_between(&cs, 2, 1), vec![DepKind::WriteDep]);
        assert!(kinds_between(&cs, 1, 2).is_empty());
    }

    #[test]
    fn wr_from_committed_writer_to_reader() {
        let h = parse_history("w1(x,1) c1 r2(x1) c2").unwrap();
        let cs = direct_conflicts(&h);
        assert_eq!(kinds_between(&cs, 1, 2), vec![DepKind::ItemReadDep]);
    }

    #[test]
    fn no_wr_edge_for_aborted_writer_or_reader() {
        // Aborted writer: no edge (G1a's job).
        let h = parse_history("w1(x,1) r2(x1) a1 c2").unwrap();
        assert!(direct_conflicts(&h).is_empty());
        // Aborted reader: not a DSG node.
        let h = parse_history("w1(x,1) c1 r2(x1) a2").unwrap();
        assert!(direct_conflicts(&h).is_empty());
    }

    #[test]
    fn rw_to_installer_of_next_version() {
        // T1 reads init, T2 overwrites: T1 -rw-> T2.
        let h = parse_history("r1(xinit,5) w2(x,9) c2 c1").unwrap();
        let cs = direct_conflicts(&h);
        assert_eq!(kinds_between(&cs, 1, 2), vec![DepKind::ItemAntiDep]);
    }

    #[test]
    fn rw_skips_reads_of_latest_version() {
        let h = parse_history("w1(x,1) c1 r2(x1) c2").unwrap();
        let cs = direct_conflicts(&h);
        assert!(cs.iter().all(|c| !c.kind.is_anti()));
    }

    #[test]
    fn intermediate_read_anchors_at_writers_final_version() {
        // T2 reads x1:1 (intermediate); T3 installs the next committed
        // version after x1 — anti-dependency T2 -rw-> T3.
        let h = parse_history("w1(x,1) w1(x,2) r2(x1:1) c1 c2 w3(x,7) c3").unwrap();
        let cs = direct_conflicts(&h);
        assert!(kinds_between(&cs, 2, 3).contains(&DepKind::ItemAntiDep));
        // and a read-dependency T1 -wr-> T2 still exists.
        assert!(kinds_between(&cs, 1, 2).contains(&DepKind::ItemReadDep));
    }

    #[test]
    fn own_write_read_makes_no_edge() {
        let h = parse_history("w1(x,1) r1(x1) c1").unwrap();
        assert!(direct_conflicts(&h).is_empty());
    }

    #[test]
    fn h_pred_read_minimal_conflicts() {
        // H_pred_read of §4.4.1: predicate-read-dependency from the
        // *latest match-changing* writer T1, not from T2 whose update
        // is irrelevant to the predicate.
        let mut b = HistoryBuilder::new();
        let (t0, t1, t2, t3) = (b.txn(0), b.txn(1), b.txn(2), b.txn(3));
        let rel = b.relation("Emp");
        let x = b.object_in("x", rel);
        let y = b.object_in("y", rel);
        let p = b.predicate("Dept=Sales", &[rel]);
        let _x0 = b.write(t0, x, Value::str("Sales"));
        let y0 = b.write(t0, y, Value::str("Sales-y"));
        b.commit(t0);
        b.write(t1, x, Value::str("Legal"));
        b.commit(t1);
        let x2 = b.write(t2, x, Value::str("Legal-newphone"));
        b.predicate_read_versions(t3, p, vec![(x, x2), (y, y0)]);
        b.write(t2, y, Value::str("Sales-y2"));
        b.commit(t2);
        b.commit(t3);
        // Sales-matching: x0 and both y versions.
        b.derive_matches(p, |v| matches!(v, Value::Str(s) if s.starts_with("Sales")));
        let h = b.build().unwrap();
        let cs = direct_conflicts(&h);
        // T1 -wr(pred)-> T3 (T1 changed x out of Sales).
        assert!(kinds_between(&cs, 1, 3).contains(&DepKind::PredReadDep));
        // No predicate edge from T2 to T3: T2's x-update didn't change
        // matches, and T2's y-update (Sales-y -> Sales-y2) doesn't
        // change y's match status either.
        assert!(!kinds_between(&cs, 2, 3).contains(&DepKind::PredReadDep));
        assert!(!kinds_between(&cs, 3, 2).contains(&DepKind::PredAntiDep));
    }

    #[test]
    fn predicate_anti_dependency_on_insert() {
        // T1 queries Sales; T2 inserts a new Sales employee afterwards:
        // T1 -rw(pred)-> T2 (the phantom conflict).
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let rel = b.relation("Emp");
        let x = b.object_in("x", rel);
        let z = b.object_in("z", rel);
        let p = b.predicate("Dept=Sales", &[rel]);
        let x1 = b.write(t1, x, Value::str("Sales"));
        b.commit(t1);
        // T3 reads the predicate, selecting x1 and (implicitly) z_init.
        let t3 = b.txn(3);
        b.predicate_read_versions(t3, p, vec![(x, x1)]);
        b.read(t3, x, t1);
        b.commit(t3);
        b.write(t2, z, Value::str("Sales"));
        b.commit(t2);
        b.derive_matches(p, |v| v == &Value::str("Sales"));
        let h = b.build().unwrap();
        let cs = direct_conflicts(&h);
        assert!(kinds_between(&cs, 3, 2).contains(&DepKind::PredAntiDep));
        // And the read-dependency on T1 via the predicate (x1 entered
        // Sales) plus the item read.
        assert!(kinds_between(&cs, 1, 3).contains(&DepKind::PredReadDep));
        assert!(kinds_between(&cs, 1, 3).contains(&DepKind::ItemReadDep));
    }

    #[test]
    fn predicate_anti_dependency_on_delete() {
        // T2 deletes the only Sales row after T1's query: overwrite.
        let mut b = HistoryBuilder::new();
        let (t0, t1, t2) = (b.txn(0), b.txn(1), b.txn(2));
        let rel = b.relation("Emp");
        let x = b.object_in("x", rel);
        let p = b.predicate("Dept=Sales", &[rel]);
        let x0 = b.write(t0, x, Value::str("Sales"));
        b.commit(t0);
        b.predicate_read_versions(t1, p, vec![(x, x0)]);
        b.commit(t1);
        b.delete(t2, x);
        b.commit(t2);
        b.derive_matches(p, |v| v == &Value::str("Sales"));
        let h = b.build().unwrap();
        let cs = direct_conflicts(&h);
        assert!(kinds_between(&cs, 1, 2).contains(&DepKind::PredAntiDep));
    }

    #[test]
    fn later_non_matching_update_is_no_overwrite() {
        // T2 updates a non-Sales row to another non-Sales value after
        // T1's Sales query: no predicate conflict at all (the paper's
        // flexibility over predicate locking).
        let mut b = HistoryBuilder::new();
        let (t0, t1, t2) = (b.txn(0), b.txn(1), b.txn(2));
        let rel = b.relation("Emp");
        let y = b.object_in("y", rel);
        let p = b.predicate("Dept=Sales", &[rel]);
        let y0 = b.write(t0, y, Value::str("Legal"));
        b.commit(t0);
        b.predicate_read_versions(t1, p, vec![(y, y0)]);
        b.commit(t1);
        b.write(t2, y, Value::str("Shipping"));
        b.commit(t2);
        b.derive_matches(p, |v| v == &Value::str("Sales"));
        let h = b.build().unwrap();
        let cs = direct_conflicts(&h);
        assert!(kinds_between(&cs, 1, 2).is_empty());
        assert!(kinds_between(&cs, 2, 1).is_empty());
    }

    #[test]
    fn flip_flop_match_changes_use_latest_change() {
        // x: Sales -> Legal -> Sales. A read selecting the final
        // version predicate-read-depends on the transaction that moved
        // it BACK to Sales (T2), not the original inserter (T0) or the
        // remover (T1) — those are reached transitively through ww.
        let mut b = HistoryBuilder::new();
        let (t0, t1, t2, t3) = (b.txn(0), b.txn(1), b.txn(2), b.txn(3));
        let rel = b.relation("Emp");
        let x = b.object_in("x", rel);
        let p = b.predicate("Dept=Sales", &[rel]);
        b.write(t0, x, Value::str("Sales"));
        b.commit(t0);
        b.write(t1, x, Value::str("Legal"));
        b.commit(t1);
        let x2 = b.write(t2, x, Value::str("Sales"));
        b.commit(t2);
        b.predicate_read_versions(t3, p, vec![(x, x2)]);
        b.commit(t3);
        b.derive_matches(p, |v| v == &Value::str("Sales"));
        let h = b.build().unwrap();
        let cs = direct_conflicts(&h);
        assert!(kinds_between(&cs, 2, 3).contains(&DepKind::PredReadDep));
        assert!(!kinds_between(&cs, 0, 3).contains(&DepKind::PredReadDep));
        assert!(!kinds_between(&cs, 1, 3).contains(&DepKind::PredReadDep));
    }

    #[test]
    fn selecting_an_old_version_sees_both_edge_directions() {
        // T3 selects the middle version (Legal): read-dep from the
        // remover T1 (latest change at-or-before), anti-dep to the
        // re-adder T2 (later change).
        let mut b = HistoryBuilder::new();
        let (t0, t1, t2, t3) = (b.txn(0), b.txn(1), b.txn(2), b.txn(3));
        let rel = b.relation("Emp");
        let x = b.object_in("x", rel);
        let p = b.predicate("Dept=Sales", &[rel]);
        b.write(t0, x, Value::str("Sales"));
        b.commit(t0);
        let x1 = b.write(t1, x, Value::str("Legal"));
        b.commit(t1);
        b.predicate_read_versions(t3, p, vec![(x, x1)]);
        b.commit(t3);
        b.write(t2, x, Value::str("Sales"));
        b.commit(t2);
        b.derive_matches(p, |v| v == &Value::str("Sales"));
        let h = b.build().unwrap();
        let cs = direct_conflicts(&h);
        assert!(kinds_between(&cs, 1, 3).contains(&DepKind::PredReadDep));
        assert!(kinds_between(&cs, 3, 2).contains(&DepKind::PredAntiDep));
    }

    #[test]
    fn dep_kind_classification() {
        assert!(DepKind::WriteDep.is_dependency());
        assert!(DepKind::ItemReadDep.is_dependency());
        assert!(DepKind::PredReadDep.is_dependency());
        assert!(!DepKind::ItemAntiDep.is_dependency());
        assert!(DepKind::ItemAntiDep.is_anti());
        assert!(DepKind::PredAntiDep.is_anti());
        assert!(DepKind::ItemAntiDep.is_item_anti());
        assert!(!DepKind::PredAntiDep.is_item_anti());
        assert!(!DepKind::StartDep.is_dependency());
        assert_eq!(DepKind::PredAntiDep.to_string(), "rw(pred)");
    }
}

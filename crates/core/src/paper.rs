//! Every named history from the paper, as ready-made values.
//!
//! These are the paper's worked examples, reconstructed exactly; the
//! figure-regeneration binaries in `adya-bench` and the integration
//! tests assert the properties the paper claims for each.

use adya_history::{parse_history, parse_history_completed, History, HistoryBuilder, Value};

/// H1 (§3): `r1(x,5) w1(x,1) r2(x,1) r2(y,5) c2 r1(y,5) w1(y,9) c1`.
///
/// T2 reads T1's new `x` but the old `y`, observing the invariant
/// `x + y = 10` violated. Non-serializable (G2); ruled out by P1 in
/// the preventative approach.
pub fn h1() -> History {
    parse_history("r1(xinit,5) w1(x,1) r2(x1,1) r2(yinit,5) c2 r1(yinit,5) w1(y,9) c1")
        .expect("H1 is well-formed")
}

/// H2 (§3): `r2(x,5) r1(x,5) w1(x,1) r1(y,5) w1(y,9) c1 r2(y,9) c2`.
///
/// Read skew: T2 reads the old `x` and the new `y`. Non-serializable
/// (G2); ruled out by P2 in the preventative approach.
pub fn h2() -> History {
    parse_history("r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9) c2")
        .expect("H2 is well-formed")
}

/// H1′ (§3): T2 reads *both* of T1's uncommitted writes and can be
/// serialized after T1.
///
/// Serializable — but forbidden by P1 (dirty reads), which is the
/// paper's demonstration that the preventative approach over-rejects.
pub fn h1_prime() -> History {
    parse_history("r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) r2(x1,1) r2(y1,9) c1 c2")
        .expect("H1' is well-formed")
}

/// H2′ (§3): T2 reads the *old* values of both `x` and `y` while T1
/// concurrently updates them; serializable as T2;T1.
///
/// Forbidden by P2 although perfectly serializable.
pub fn h2_prime() -> History {
    parse_history("r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) r2(yinit,5) w1(y,9) c2 c1")
        .expect("H2' is well-formed")
}

/// H_write_order (§4.2): the version order `x2 << x1` differs from
/// the commit order (`c1` before `c2`); T3 is uncommitted (completed
/// by an appended abort) and T4 aborted.
pub fn h_write_order() -> History {
    parse_history_completed("w1(x) w2(x) w2(y) c1 c2 r3(x1) w3(x) w4(y) a4 [x2 << x1]")
        .expect("H_write_order is well-formed")
}

/// H_serial (§4.4.4, Figure 3): serializable in the order T1; T2; T3.
pub fn h_serial() -> History {
    parse_history(
        "w1(z,1) w1(x,1) w1(y,1) w3(x,3) c1 r2(x1) w2(y,2) c2 r3(y2) w3(z,3) c3 \
         [x1 << x3, y1 << y2, z1 << z3]",
    )
    .expect("H_serial is well-formed")
}

/// H_wcycle (§5.1, Figure 4): updates of `x` and `y` in opposite
/// orders — a pure write-dependency cycle (G0), disallowed at PL-1.
pub fn h_wcycle() -> History {
    parse_history("w1(x,2) w2(x,5) w2(y,5) c2 w1(y,8) c1 [x1 << x2, y2 << y1]")
        .expect("H_wcycle is well-formed")
}

/// H_pred_read (§4.4.1): the predicate-read-dependency goes to the
/// **latest match-changing** transaction (T1, which moved `x` out of
/// Sales), not to T2 whose phone-number update is irrelevant.
///
/// Serializable in the order T0, T1, T3, T2.
pub fn h_pred_read() -> History {
    let mut b = HistoryBuilder::new();
    let (t0, t1, t2, t3) = (b.txn(0), b.txn(1), b.txn(2), b.txn(3));
    let rel = b.relation("Emp");
    let x = b.object_in("x", rel);
    let y = b.object_in("y", rel);
    let p = b.predicate("Dept=Sales", &[rel]);
    // w0(x0) c0 — T0 inserts x in Sales.
    let _x0 = b.write(t0, x, Value::str("Sales"));
    // give y an initial version outside Sales so its selection is
    // explicit, as in the paper's vset {x2, y0}.
    let y0 = b.write(t0, y, Value::str("Legal"));
    b.commit(t0);
    // w1(x1) c1 — T1 moves x to Legal.
    b.write(t1, x, Value::str("Legal"));
    b.commit(t1);
    // w2(x2) — T2 changes x's phone number (still Legal).
    let x2 = b.write(t2, x, Value::str("Legal#2"));
    // r3(Dept=Sales: x2, y0) — T3's query selects x2 and y0.
    b.predicate_read_versions(t3, p, vec![(x, x2), (y, y0)]);
    // w2(y2) — T2 updates y (still not Sales).
    b.write(t2, y, Value::str("Legal-y2"));
    b.commit(t2);
    b.commit(t3);
    b.derive_matches(p, |v| matches!(v, Value::Str(s) if s == "Sales"));
    b.build().expect("H_pred_read is well-formed")
}

/// H_pred_update (§5.1): T1 adds employees `x` and `y` to Sales while
/// T2 gives Sales a raise; the interleaving updates `x`'s salary but
/// not `y`'s. Allowed at PL-1 (no write-dependency cycle) — the
/// paper's illustration that PL-1 gives only weak predicate
/// guarantees.
pub fn h_pred_update() -> History {
    let mut b = HistoryBuilder::new();
    let (t1, t2) = (b.txn(1), b.txn(2));
    let rel = b.relation("Emp");
    let x = b.object_in("x", rel);
    let y = b.object_in("y", rel);
    let p = b.predicate("Dept=Sales", &[rel]);
    // w1(x1) — T1 inserts x into Sales (uncommitted).
    let x1 = b.write(t1, x, Value::str("Sales:100"));
    // r2(Dept=Sales: x1, y_init) — T2's predicate read sees x1 and
    // y's unborn version.
    b.predicate_read_versions(t2, p, vec![(x, x1)]);
    // w1(y1) — T1 inserts y into Sales.
    b.write(t1, y, Value::str("Sales:100"));
    // w2(x2) — T2 raises x's salary.
    b.write(t2, x, Value::str("Sales:110"));
    b.commit(t1);
    b.commit(t2);
    b.derive_matches(p, |v| matches!(v, Value::Str(s) if s.starts_with("Sales")));
    b.build().expect("H_pred_update is well-formed")
}

/// H_insert (§4.3.2): `INSERT INTO BONUS SELECT … FROM EMP WHERE
/// COMM > 0.25 * SAL` — a predicate read over EMP followed by a read
/// of the matching tuple and an insert into BONUS.
pub fn h_insert() -> History {
    let mut b = HistoryBuilder::new();
    let (t0, t1) = (b.txn(0), b.txn(1));
    let emp = b.relation("Emp");
    let bonus = b.relation("Bonus");
    let x = b.object_in("x", emp);
    let z = b.object_in("z", emp);
    let y = b.object_in("y", bonus);
    let p = b.predicate("comm>0.25*sal", &[emp]);
    // T0 loads the employees: x qualifies for a bonus, z does not.
    let x0 = b.write(t0, x, Value::Int(30)); // comm as % of sal
    let z0 = b.write(t0, z, Value::Int(10));
    b.commit(t0);
    // r1(P: x0, z0) r1(x0) w1(y1) c1
    b.predicate_read_versions(t1, p, vec![(x, x0), (z, z0)]);
    b.read(t1, x, t0);
    b.write(t1, y, Value::str("bonus-row"));
    b.commit(t1);
    b.derive_matches(p, |v| matches!(v, Value::Int(c) if *c > 25));
    b.build().expect("H_insert is well-formed")
}

/// H_phantom (§5.4, Figure 5): T1 sums the Sales salaries; T2 inserts
/// a new Sales employee `z` and updates the stored sum before T1
/// checks it. The only cycle goes through a **predicate**
/// anti-dependency, so PL-2.99 admits the history and PL-3 rejects
/// it.
pub fn h_phantom() -> History {
    let mut b = HistoryBuilder::new();
    let (t1, t2) = (b.txn(1), b.txn(2));
    let emp = b.relation("Emp");
    let sums = b.relation("Sums");
    let x = b.preloaded_object_in("x", emp, Value::Int(10));
    let y = b.preloaded_object_in("y", emp, Value::Int(10));
    let z = b.object_in("z", emp);
    let sum = b.preloaded_object_in("Sum", sums, Value::Int(20));
    let p = b.predicate("Dept=Sales", &[emp]);
    // r1(Dept=Sales: x0, 10; y0, 10) r1(x0, 10)
    b.predicate_read_versions(
        t1,
        p,
        vec![
            (x, adya_history::VersionId::INIT),
            (y, adya_history::VersionId::INIT),
        ],
    );
    b.read_init(t1, x);
    // r2(y0, 10) r2(Sum0, 20) w2(z2, 10) w2(Sum2, 30) c2
    b.read_init(t2, y);
    b.read_init(t2, sum);
    b.write(t2, z, Value::Int(10));
    b.write(t2, sum, Value::Int(30));
    b.commit(t2);
    // r1(Sum2, 30) c1
    b.read(t1, sum, t2);
    b.commit(t1);
    // Every visible Emp version is in Sales.
    b.derive_matches(p, |_| true);
    b.build().expect("H_phantom is well-formed")
}

/// All named histories, for table-driven harnesses.
pub fn all() -> Vec<(&'static str, History)> {
    vec![
        ("H1", h1()),
        ("H2", h2()),
        ("H1'", h1_prime()),
        ("H2'", h2_prime()),
        ("H_write_order", h_write_order()),
        ("H_serial", h_serial()),
        ("H_wcycle", h_wcycle()),
        ("H_pred_read", h_pred_read()),
        ("H_pred_update", h_pred_update()),
        ("H_insert", h_insert()),
        ("H_phantom", h_phantom()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflicts::DepKind;
    use crate::{check_mixing, classify, detect_all, Dsg, IsolationLevel, PhenomenonKind};
    use adya_history::TxnId;

    fn kinds(h: &History) -> Vec<PhenomenonKind> {
        detect_all(h).iter().map(|p| p.kind()).collect()
    }

    #[test]
    fn h1_h2_rejected_at_pl3() {
        for h in [h1(), h2()] {
            let r = classify(&h);
            assert!(!r.satisfies(IsolationLevel::PL3));
            assert!(r.satisfies(IsolationLevel::PL2), "dirty-read free");
        }
    }

    #[test]
    fn h1_prime_serializable_after_t1() {
        // H1' commits T1 before T2's commit is validated; the DSG has
        // only dependency edges T1 -> T2 and no cycle.
        let h = h1_prime();
        let r = classify(&h);
        assert!(r.satisfies(IsolationLevel::PL3), "{}", classify(&h));
        let dsg = Dsg::build(&h);
        assert_eq!(dsg.serial_order().unwrap(), vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn h2_prime_serializable_before_t1() {
        let h = h2_prime();
        let r = classify(&h);
        assert!(r.satisfies(IsolationLevel::PL3));
        let dsg = Dsg::build(&h);
        assert_eq!(dsg.serial_order().unwrap(), vec![TxnId(2), TxnId(1)]);
    }

    #[test]
    fn h_write_order_is_pl3() {
        // With the explicit order x2 << x1 the committed projection
        // serializes T2 before T1 (T3 reads x1 but aborts — not a DSG
        // node).
        let h = h_write_order();
        assert!(classify(&h).satisfies(IsolationLevel::PL3));
        let dsg = Dsg::build(&h);
        let order = dsg.serial_order().unwrap();
        let pos = |t: u32| order.iter().position(|&x| x == TxnId(t)).unwrap();
        assert!(pos(2) < pos(1));
    }

    #[test]
    fn h_serial_matches_figure3() {
        let h = h_serial();
        assert!(classify(&h).satisfies(IsolationLevel::PL3));
    }

    #[test]
    fn h_wcycle_exhibits_g0_only_level_zero() {
        let h = h_wcycle();
        let ks = kinds(&h);
        assert!(ks.contains(&PhenomenonKind::G0));
        assert!(!classify(&h).satisfies(IsolationLevel::PL1));
    }

    #[test]
    fn h_pred_read_edges_and_serial_order() {
        let h = h_pred_read();
        let dsg = Dsg::build(&h);
        // The paper: predicate-read-dependency from T1 (latest change)
        // to T3; none from T2 to T3.
        assert!(dsg.has_edge(TxnId(1), TxnId(3), DepKind::PredReadDep));
        assert!(!dsg.has_edge(TxnId(2), TxnId(3), DepKind::PredReadDep));
        assert!(classify(&h).satisfies(IsolationLevel::PL3));
        // The paper's serialization T0, T1, T3, T2 is valid.
        assert!(dsg.is_valid_serial_order(&[TxnId(0), TxnId(1), TxnId(3), TxnId(2)]));
    }

    #[test]
    fn h_pred_update_allowed_at_pl1() {
        let h = h_pred_update();
        let r = classify(&h);
        assert!(r.satisfies(IsolationLevel::PL1), "{r}");
        // But the interleaving is not serializable: T2 read x1 before
        // T1 finished inserting y — T2 predicate-read-depends on T1
        // and anti-depends… the paper only claims PL-1 admits it.
        assert!(!r.satisfies(IsolationLevel::PL3));
    }

    #[test]
    fn h_insert_is_serializable() {
        let h = h_insert();
        assert!(classify(&h).satisfies(IsolationLevel::PL3));
        let dsg = Dsg::build(&h);
        assert!(dsg.has_edge(TxnId(0), TxnId(1), DepKind::PredReadDep));
        assert!(dsg.has_edge(TxnId(0), TxnId(1), DepKind::ItemReadDep));
    }

    #[test]
    fn h_phantom_pl299_vs_pl3() {
        let h = h_phantom();
        let r = classify(&h);
        assert!(r.satisfies(IsolationLevel::PL299), "{r}");
        assert!(!r.satisfies(IsolationLevel::PL3), "{r}");
        // Figure 5's cycle: T1 -rw(pred)-> T2 -wr-> T1.
        let dsg = Dsg::build(&h);
        assert!(dsg.has_edge(TxnId(1), TxnId(2), DepKind::PredAntiDep));
        assert!(dsg.has_edge(TxnId(2), TxnId(1), DepKind::ItemReadDep));
        // The phenomenon is G2 but not G2-item.
        let ks = kinds(&h);
        assert!(ks.contains(&PhenomenonKind::G2));
        assert!(!ks.contains(&PhenomenonKind::G2Item));
    }

    #[test]
    fn all_histories_are_wellformed_and_unmixed_consistent() {
        for (name, h) in all() {
            // Mixing check must agree with PL-3… only for histories
            // that are PL-3; in general all-PL-3 mixing-correct ⇔
            // acyclic DSG + no G1a/G1b.
            let pl3 = classify(&h).satisfies(IsolationLevel::PL3);
            let mix = check_mixing(&h).is_correct();
            assert_eq!(pl3, mix, "{name}: PL-3 vs mixing disagree");
        }
    }
}

//! Generalized isolation level definitions (Adya, Liskov, O'Neil —
//! ICDE 2000), executable.
//!
//! This crate is the paper's primary contribution as a library:
//!
//! * **Direct conflicts** (§4.4, Definitions 2–6): read-dependencies,
//!   anti-dependencies and write-dependencies, in both item and
//!   predicate flavours — derived from a validated
//!   [`adya_history::History`] ([`direct_conflicts`]).
//! * **Serialization graphs**: the Direct Serialization Graph
//!   ([`Dsg`], Definition 7), the Start-ordered Serialization Graph
//!   ([`Ssg`], for Snapshot Isolation) and the Mixed Serialization
//!   Graph ([`Msg`], §5.5).
//! * **Phenomena** (§5): G0, G1a, G1b, G1c, G2-item and G2, plus the
//!   extension phenomena of Adya's thesis the paper points to —
//!   G-single (PL-2+), G-SIa/G-SIb (Snapshot Isolation) and G-cursor
//!   (Cursor Stability). Every detector returns a concrete witness.
//! * **Levels** ([`IsolationLevel`]): PL-1, PL-2, PL-CS, PL-2+,
//!   PL-2.99, PL-SI and PL-3, a [`check_level`] entry point, a
//!   [`classify`] routine computing the strongest satisfied levels,
//!   and [`check_mixing`] implementing Definition 9.
//! * **The paper's histories** ([`paper`]): every named history from
//!   the text (H1, H2, H1′, H2′, H_serial, H_wcycle, H_phantom, …) as
//!   ready-made values, used by the figure-regeneration harness.
//!
//! # Quick start
//!
//! ```
//! use adya_core::{classify, IsolationLevel};
//! use adya_history::parse_history;
//!
//! // H_wcycle (§5.1): writes of T1 and T2 interleave on x and y.
//! let h = parse_history(
//!     "w1(x,2) w2(x,5) w2(y,5) c2 w1(y,8) c1 [x1 << x2, y2 << y1]",
//! ).unwrap();
//! let report = classify(&h);
//! assert!(!report.satisfies(IsolationLevel::PL1)); // G0 cycle
//! ```

#![warn(missing_docs)]

mod analysis;
mod conflicts;
mod dsg;
mod executing;
mod levels;
mod mixing;
pub mod paper;
mod phenomena;
mod ssg;
pub mod usg;

pub use analysis::{analyze, analyze_in, Analysis};
pub use conflicts::{direct_conflicts, Conflict, DepKind};
pub use dsg::Dsg;
pub use executing::{check_running, is_doomed};
pub use levels::{check_level, classify, IsolationLevel, LevelCheck, LevelReport};
pub use mixing::{check_mixing, MixingReport, Msg};
pub use phenomena::{
    detect_all, g0, g1a, g1a_where, g1b, g1b_where, g1c, g2, g2_item, Phenomenon, PhenomenonKind,
};
pub use ssg::Ssg;

/// Re-export of the history model this crate analyzes.
pub use adya_history as history;

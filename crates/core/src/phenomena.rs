//! The proscribed phenomena (§5, plus thesis extensions), each
//! detector returning a concrete witness.

use std::fmt;

use adya_graph::{Cycle, DiGraph};
use adya_history::{History, ObjectId, TxnId, VersionId};

use crate::conflicts::DepKind;
use crate::dsg::Dsg;
use crate::ssg::Ssg;

/// Discriminants of the phenomena, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhenomenonKind {
    /// Write cycles (§5.1).
    G0,
    /// Aborted reads (§5.2).
    G1a,
    /// Intermediate reads (§5.2).
    G1b,
    /// Circular information flow (§5.2).
    G1c,
    /// Item anti-dependency cycles (§5.4).
    G2Item,
    /// Anti-dependency cycles (§5.3).
    G2,
    /// Single anti-dependency cycles (PL-2+, thesis §4.2).
    GSingle,
    /// Interference: dependency on a concurrent transaction (PL-SI,
    /// thesis §4.3).
    GSIa,
    /// Missed effects: SSG cycle with exactly one anti-dependency
    /// (PL-SI, thesis §4.3).
    GSIb,
    /// Labeled (cursor) anti-dependency cycles (PL-CS, thesis §4.2).
    GCursor,
    /// Non-monotonic atomic visibility: a USG cycle with exactly one
    /// read-rooted anti-dependency (PL-MAV, thesis §4.2).
    GMonotonic,
}

impl fmt::Display for PhenomenonKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhenomenonKind::G0 => write!(f, "G0"),
            PhenomenonKind::G1a => write!(f, "G1a"),
            PhenomenonKind::G1b => write!(f, "G1b"),
            PhenomenonKind::G1c => write!(f, "G1c"),
            PhenomenonKind::G2Item => write!(f, "G2-item"),
            PhenomenonKind::G2 => write!(f, "G2"),
            PhenomenonKind::GSingle => write!(f, "G-single"),
            PhenomenonKind::GSIa => write!(f, "G-SIa"),
            PhenomenonKind::GSIb => write!(f, "G-SIb"),
            PhenomenonKind::GCursor => write!(f, "G-cursor"),
            PhenomenonKind::GMonotonic => write!(f, "G-monotonic"),
        }
    }
}

/// A detected phenomenon with its witness.
#[derive(Debug, Clone)]
pub enum Phenomenon {
    /// A cycle of only write-dependency edges.
    G0(Cycle<TxnId, DepKind>),
    /// A committed transaction read a version written by an aborted
    /// transaction (directly or through a predicate's version set).
    G1a {
        /// The committed reader T2.
        reader: TxnId,
        /// The aborted writer T1.
        writer: TxnId,
        /// Object read.
        object: ObjectId,
        /// Version read.
        version: VersionId,
        /// True when the read was a version-set selection.
        via_predicate: bool,
    },
    /// A committed transaction read a non-final version.
    G1b {
        /// The committed reader T2.
        reader: TxnId,
        /// The writer T1 whose intermediate version leaked.
        writer: TxnId,
        /// Object read.
        object: ObjectId,
        /// The intermediate version.
        version: VersionId,
        /// T1's final modification of the object.
        final_version: VersionId,
        /// True when the read was a version-set selection.
        via_predicate: bool,
    },
    /// A cycle of only dependency (ww/wr) edges.
    G1c(Cycle<TxnId, DepKind>),
    /// A cycle with at least one item anti-dependency edge.
    G2Item(Cycle<TxnId, DepKind>),
    /// A cycle with at least one anti-dependency edge.
    G2(Cycle<TxnId, DepKind>),
    /// A cycle with exactly one anti-dependency edge.
    GSingle(Cycle<TxnId, DepKind>),
    /// A dependency edge between concurrent transactions (SSG has no
    /// matching start-dependency).
    GSIa {
        /// Depended-on transaction.
        from: TxnId,
        /// Depending transaction (began before `from` committed).
        to: TxnId,
        /// The dependency kind.
        kind: DepKind,
    },
    /// An SSG cycle with exactly one anti-dependency edge.
    GSIb(Cycle<TxnId, DepKind>),
    /// A DSG cycle through a cursor-labeled anti-dependency edge.
    GCursor(Cycle<TxnId, DepKind>),
    /// A USG cycle with exactly one read-rooted anti-dependency.
    GMonotonic {
        /// The transaction whose unfolded graph is cyclic.
        txn: TxnId,
        /// The witness cycle over unfolded nodes.
        cycle: Cycle<crate::usg::UsgNode, String>,
    },
}

impl Phenomenon {
    /// The discriminant.
    pub fn kind(&self) -> PhenomenonKind {
        match self {
            Phenomenon::G0(_) => PhenomenonKind::G0,
            Phenomenon::G1a { .. } => PhenomenonKind::G1a,
            Phenomenon::G1b { .. } => PhenomenonKind::G1b,
            Phenomenon::G1c(_) => PhenomenonKind::G1c,
            Phenomenon::G2Item(_) => PhenomenonKind::G2Item,
            Phenomenon::G2(_) => PhenomenonKind::G2,
            Phenomenon::GSingle(_) => PhenomenonKind::GSingle,
            Phenomenon::GSIa { .. } => PhenomenonKind::GSIa,
            Phenomenon::GSIb(_) => PhenomenonKind::GSIb,
            Phenomenon::GCursor(_) => PhenomenonKind::GCursor,
            Phenomenon::GMonotonic { .. } => PhenomenonKind::GMonotonic,
        }
    }

    /// The DSG witness cycle, for the cycle-shaped phenomena. `None`
    /// for G1a/G1b (read-of-bad-version shapes), G-SIa (a missing
    /// start-dependency, not a cycle) and G-monotonic (whose cycle
    /// lives in the per-transaction USG, not the DSG).
    pub fn cycle(&self) -> Option<&Cycle<TxnId, DepKind>> {
        match self {
            Phenomenon::G0(c)
            | Phenomenon::G1c(c)
            | Phenomenon::G2Item(c)
            | Phenomenon::G2(c)
            | Phenomenon::GSingle(c)
            | Phenomenon::GSIb(c)
            | Phenomenon::GCursor(c) => Some(c),
            Phenomenon::G1a { .. }
            | Phenomenon::G1b { .. }
            | Phenomenon::GSIa { .. }
            | Phenomenon::GMonotonic { .. } => None,
        }
    }
}

impl fmt::Display for Phenomenon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phenomenon::G0(c) => write!(f, "G0: write cycle {c}"),
            Phenomenon::G1a {
                reader,
                writer,
                object,
                version,
                via_predicate,
            } => write!(
                f,
                "G1a: {reader} read {object}[{version}] of aborted {writer}{}",
                if *via_predicate {
                    " (via predicate)"
                } else {
                    ""
                }
            ),
            Phenomenon::G1b {
                reader,
                writer,
                object,
                version,
                final_version,
                via_predicate,
            } => write!(
                f,
                "G1b: {reader} read intermediate {object}[{version}] of {writer} \
                 (final is [{final_version}]){}",
                if *via_predicate {
                    " (via predicate)"
                } else {
                    ""
                }
            ),
            Phenomenon::G1c(c) => write!(f, "G1c: dependency cycle {c}"),
            Phenomenon::G2Item(c) => write!(f, "G2-item: item anti-dependency cycle {c}"),
            Phenomenon::G2(c) => write!(f, "G2: anti-dependency cycle {c}"),
            Phenomenon::GSingle(c) => write!(f, "G-single: single anti-dependency cycle {c}"),
            Phenomenon::GSIa { from, to, kind } => write!(
                f,
                "G-SIa: {to} {kind}-depends on concurrent {from} (no start-dependency)"
            ),
            Phenomenon::GSIb(c) => write!(f, "G-SIb: missed-effects cycle {c}"),
            Phenomenon::GCursor(c) => write!(f, "G-cursor: cursor-labeled cycle {c}"),
            Phenomenon::GMonotonic { txn, cycle } => write!(
                f,
                "G-monotonic: non-monotonic reads of {txn}, USG cycle {cycle}"
            ),
        }
    }
}

/// G0 — *Write Cycles*: DSG cycle of only write-dependency edges.
pub fn g0(dsg: &Dsg) -> Option<Phenomenon> {
    dsg.write_cycle().map(Phenomenon::G0)
}

/// G1a — *Aborted Reads*: a committed transaction read (directly or
/// via a predicate's version set) a version written by an aborted
/// transaction.
pub fn g1a(h: &History) -> Option<Phenomenon> {
    g1a_where(h, |_| true)
}

/// [`g1a`] restricted to committed readers satisfying `readers` —
/// used by the mixed-level check, where only PL-2+ readers matter and
/// a PL-1 reader's dirty read must not mask a later violation.
pub fn g1a_where(h: &History, mut readers: impl FnMut(TxnId) -> bool) -> Option<Phenomenon> {
    for reader in h.committed_txns() {
        if !readers(reader) {
            continue;
        }
        for (_, r) in h.reads_of(reader) {
            if !r.version.is_init() && !h.is_committed(r.version.txn) {
                return Some(Phenomenon::G1a {
                    reader,
                    writer: r.version.txn,
                    object: r.object,
                    version: r.version,
                    via_predicate: false,
                });
            }
        }
        for (_, p) in h.predicate_reads_of(reader) {
            for &(object, version) in &p.vset {
                if !version.is_init() && !h.is_committed(version.txn) {
                    return Some(Phenomenon::G1a {
                        reader,
                        writer: version.txn,
                        object,
                        version,
                        via_predicate: true,
                    });
                }
            }
        }
    }
    None
}

/// G1b — *Intermediate Reads*: a committed transaction read a version
/// that was not its writer's final modification of the object.
pub fn g1b(h: &History) -> Option<Phenomenon> {
    g1b_where(h, |_| true)
}

/// [`g1b`] restricted to committed readers satisfying `readers`.
pub fn g1b_where(h: &History, mut readers: impl FnMut(TxnId) -> bool) -> Option<Phenomenon> {
    let check = |reader: TxnId, object: ObjectId, version: VersionId, via_predicate: bool| {
        let writer = version.txn;
        if writer == reader || writer.is_init() {
            return None;
        }
        let final_seq = h.final_seq(writer, object)?;
        if version.seq == final_seq {
            return None;
        }
        Some(Phenomenon::G1b {
            reader,
            writer,
            object,
            version,
            final_version: VersionId::new(writer, final_seq),
            via_predicate,
        })
    };
    for reader in h.committed_txns() {
        if !readers(reader) {
            continue;
        }
        for (_, r) in h.reads_of(reader) {
            if let Some(p) = check(reader, r.object, r.version, false) {
                return Some(p);
            }
        }
        for (_, pr) in h.predicate_reads_of(reader) {
            for &(object, version) in &pr.vset {
                if let Some(p) = check(reader, object, version, true) {
                    return Some(p);
                }
            }
        }
    }
    None
}

/// G1c — *Circular Information Flow*: DSG cycle of only dependency
/// edges (includes every G0 cycle).
pub fn g1c(dsg: &Dsg) -> Option<Phenomenon> {
    dsg.dependency_cycle().map(Phenomenon::G1c)
}

/// G2 — *Anti-dependency Cycles*: DSG cycle with at least one
/// (item or predicate) anti-dependency edge.
pub fn g2(dsg: &Dsg) -> Option<Phenomenon> {
    dsg.anti_cycle().map(Phenomenon::G2)
}

/// G2-item — *Item Anti-dependency Cycles*: DSG cycle with at least
/// one **item** anti-dependency edge.
pub fn g2_item(dsg: &Dsg) -> Option<Phenomenon> {
    dsg.item_anti_cycle().map(Phenomenon::G2Item)
}

/// G-single — *Single Anti-dependency Cycles* (PL-2+): DSG cycle with
/// exactly one anti-dependency edge.
pub fn g_single(dsg: &Dsg) -> Option<Phenomenon> {
    dsg.single_anti_cycle().map(Phenomenon::GSingle)
}

/// G-SIa — *Interference* (Snapshot Isolation): a read/write
/// dependency without the corresponding start-dependency.
pub fn g_sia(ssg: &Ssg) -> Option<Phenomenon> {
    ssg.interference_edge()
        .map(|(from, to, kind)| Phenomenon::GSIa { from, to, kind })
}

/// G-SIb — *Missed Effects* (Snapshot Isolation): SSG cycle with
/// exactly one anti-dependency edge.
pub fn g_sib(ssg: &Ssg) -> Option<Phenomenon> {
    ssg.missed_effects_cycle().map(Phenomenon::GSIb)
}

/// G-cursor — *Labeled Anti-dependency Cycles* (Cursor Stability).
///
/// An item anti-dependency `Ti → Tj` is **cursor-labeled** when Ti
/// read the object through a cursor and wrote it *while the cursor
/// was still positioned there* — no intervening cursor move (the
/// read-modify-write window the cursor lock protects in a locking
/// implementation, cf. Adya's thesis LDSG). A cursor read abandoned
/// by repositioning claims no protection, exactly like a plain READ
/// COMMITTED read. G-cursor is a DSG cycle containing at least one
/// labeled edge.
pub fn g_cursor(h: &History, dsg: &Dsg) -> Option<Phenomenon> {
    // Identify cursor-labeled reader→overwriter pairs.
    let mut labeled: Vec<(TxnId, TxnId)> = Vec::new();
    for ti in h.committed_txns() {
        for (read_ix, r) in h.reads_of(ti) {
            if !r.through_cursor {
                continue;
            }
            // Ti must write the object after the cursor read, before
            // moving its cursor elsewhere.
            let mut wrote_after = false;
            for e in &h.events()[read_ix + 1..] {
                if e.txn() != ti {
                    continue;
                }
                if let Some(w) = e.as_write() {
                    if w.object == r.object {
                        wrote_after = true;
                        break;
                    }
                    continue;
                }
                if let Some(next_read) = e.as_read() {
                    if next_read.through_cursor {
                        // The cursor repositioned (even onto the same
                        // row): this read's protection window ends and
                        // the newer read takes over.
                        break;
                    }
                }
            }
            if !wrote_after {
                continue;
            }
            let Some(anchor) = crate::conflicts::order_anchor(h, r.object, r.version) else {
                continue;
            };
            if let Some(next) = h.next_version(r.object, anchor) {
                if next.txn != ti {
                    labeled.push((ti, next.txn));
                }
            }
        }
    }
    if labeled.is_empty() {
        return None;
    }
    // Rebuild the DSG with labeled anti-edges distinguished so the
    // generic cycle search can require one.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum L {
        Plain(DepKind),
        LabeledAnti,
    }
    let mut g: DiGraph<TxnId, L> = DiGraph::with_capacity(dsg.graph().node_count());
    for n in dsg.graph().nodes() {
        g.add_node(*n);
    }
    for e in dsg.graph().edges() {
        let lab = if e.label.is_item_anti() && labeled.contains(&(*e.from, *e.to)) {
            L::LabeledAnti
        } else {
            L::Plain(*e.label)
        };
        g.add_edge_dedup(*e.from, *e.to, lab);
    }
    let cyc = g.find_cycle(|_| true, |l| *l == L::LabeledAnti)?;
    // Report with the original kinds.
    let mut rebuilt: DiGraph<TxnId, DepKind> = DiGraph::new();
    for e in cyc.edges() {
        let kind = match e.label {
            L::LabeledAnti => DepKind::ItemAntiDep,
            L::Plain(k) => k,
        };
        rebuilt.add_edge(e.from, e.to, kind);
    }
    rebuilt
        .find_cycle(|_| true, |_| true)
        .map(Phenomenon::GCursor)
}

/// G-monotonic — *Monotonic Atomic View* violations (PL-MAV): some
/// committed transaction's unfolded serialization graph has a cycle
/// with exactly one read-rooted anti-dependency edge.
pub fn g_mav(h: &History) -> Option<Phenomenon> {
    crate::usg::g_monotonic(h).map(|(txn, cycle)| Phenomenon::GMonotonic { txn, cycle })
}

/// Detects every phenomenon present in `h`, one witness per kind.
pub fn detect_all(h: &History) -> Vec<Phenomenon> {
    let dsg = Dsg::build(h);
    let ssg = Ssg::build(h, &dsg);
    [
        g0(&dsg),
        g1a(h),
        g1b(h),
        g1c(&dsg),
        g2_item(&dsg),
        g2(&dsg),
        g_single(&dsg),
        g_sia(&ssg),
        g_sib(&ssg),
        g_cursor(h, &dsg),
        g_mav(h),
    ]
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::parse_history;

    fn dsg_of(s: &str) -> (adya_history::History, Dsg) {
        let h = parse_history(s).unwrap();
        let d = Dsg::build(&h);
        (h, d)
    }

    #[test]
    fn g0_on_wcycle() {
        let (_, d) = dsg_of("w1(x,2) w2(x,5) w2(y,5) c2 w1(y,8) c1 [x1 << x2, y2 << y1]");
        assert!(g0(&d).is_some());
    }

    #[test]
    fn g0_absent_on_serial_writes() {
        let (_, d) = dsg_of("w1(x,2) w1(y,8) c1 w2(x,5) w2(y,5) c2");
        assert!(g0(&d).is_none());
    }

    #[test]
    fn g1a_on_aborted_read() {
        let h = parse_history("w1(x,1) r2(x1) a1 c2").unwrap();
        let p = g1a(&h).expect("G1a");
        assert!(matches!(
            p,
            Phenomenon::G1a { reader, writer, .. }
                if reader == TxnId(2) && writer == TxnId(1)
        ));
    }

    #[test]
    fn g1a_absent_when_reader_aborts_too() {
        // Cascaded abort averted the damage: no committed reader.
        let h = parse_history("w1(x,1) r2(x1) a1 a2").unwrap();
        assert!(g1a(&h).is_none());
    }

    #[test]
    fn g1b_on_intermediate_read() {
        let h = parse_history("w1(x,1) r2(x1:1) w1(x,2) c1 c2").unwrap();
        let p = g1b(&h).expect("G1b");
        assert!(matches!(p, Phenomenon::G1b { version, .. } if version.seq == 1));
    }

    #[test]
    fn g1b_absent_on_final_read() {
        let h = parse_history("w1(x,1) w1(x,2) c1 r2(x1:2) c2").unwrap();
        assert!(g1b(&h).is_none());
    }

    #[test]
    fn own_intermediate_read_is_not_g1b() {
        let h = parse_history("w1(x,1) r1(x1:1) w1(x,2) c1").unwrap();
        assert!(g1b(&h).is_none());
    }

    #[test]
    fn g1c_on_circular_information_flow() {
        // T1 reads T2's write, T2 reads T1's write.
        let h = parse_history("w1(x,1) w2(y,2) r1(y2) r2(x1) c1 c2").unwrap();
        let d = Dsg::build(&h);
        assert!(g1c(&d).is_some());
        assert!(g0(&d).is_none(), "no write cycle, only wr edges");
    }

    #[test]
    fn g2_on_h2_but_not_g1() {
        // H2 of §3: T2 observes violated invariant (read skew).
        let h = parse_history("r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9) c2")
            .unwrap();
        let d = Dsg::build(&h);
        assert!(g2(&d).is_some());
        assert!(g_single(&d).is_some(), "exactly one anti edge here");
        assert!(g1c(&d).is_none());
        assert!(g0(&d).is_none());
    }

    #[test]
    fn g2_item_distinguished_from_predicate_g2() {
        // Pure item anti cycle: G2-item and G2 both fire.
        let h = parse_history("r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9) c2")
            .unwrap();
        let d = Dsg::build(&h);
        assert!(g2_item(&d).is_some());
    }

    #[test]
    fn g_cursor_on_lost_update() {
        // Classic lost update through cursors:
        // rc1(x_init) rc2(x_init) w1(x) c1 w2(x) c2 — T2's write
        // clobbers T1's.
        let h = parse_history("rc1(xinit,0) rc2(xinit,0) w1(x,1) c1 w2(x,2) c2").unwrap();
        let d = Dsg::build(&h);
        assert!(g_cursor(&h, &d).is_some());
        // The same history with plain reads has no G-cursor…
        let h2 = parse_history("r1(xinit,0) r2(xinit,0) w1(x,1) c1 w2(x,2) c2").unwrap();
        let d2 = Dsg::build(&h2);
        assert!(g_cursor(&h2, &d2).is_none());
        // …but is still G2 (lost update is non-serializable).
        assert!(g2(&d2).is_some());
    }

    #[test]
    fn detect_all_collects_each_kind_once() {
        let h = parse_history("r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9) c2")
            .unwrap();
        let found = detect_all(&h);
        let kinds: Vec<PhenomenonKind> = found.iter().map(Phenomenon::kind).collect();
        assert!(kinds.contains(&PhenomenonKind::G2));
        assert!(kinds.contains(&PhenomenonKind::G2Item));
        assert!(!kinds.contains(&PhenomenonKind::G0));
        // One witness per kind.
        let mut dedup = kinds.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len());
    }

    #[test]
    fn g1a_via_predicate_version_set() {
        // The paper's fragment w1(x1:i) … r2(P: x1:i, …) … (a1, c2):
        // the aborted version sits in T2's version set.
        use adya_history::{HistoryBuilder, Value};
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let rel = b.relation("Emp");
        let x = b.object_in("x", rel);
        let p = b.predicate("any", &[rel]);
        let x1 = b.write(t1, x, Value::Int(1));
        b.predicate_read_versions(t2, p, vec![(x, x1)]);
        b.abort(t1);
        b.commit(t2);
        let h = b.build().unwrap();
        let ph = g1a(&h).expect("G1a via predicate");
        assert!(matches!(
            ph,
            Phenomenon::G1a {
                via_predicate: true,
                ..
            }
        ));
    }

    #[test]
    fn g1b_via_predicate_version_set() {
        // Version set selecting an intermediate version.
        use adya_history::{HistoryBuilder, Value};
        let mut b = HistoryBuilder::new();
        let (t1, t2) = (b.txn(1), b.txn(2));
        let rel = b.relation("Emp");
        let x = b.object_in("x", rel);
        let p = b.predicate("any", &[rel]);
        let x11 = b.write(t1, x, Value::Int(1));
        b.predicate_read_versions(t2, p, vec![(x, x11)]);
        b.write(t1, x, Value::Int(2));
        b.commit(t1);
        b.commit(t2);
        let h = b.build().unwrap();
        let ph = g1b(&h).expect("G1b via predicate");
        assert!(matches!(
            ph,
            Phenomenon::G1b {
                via_predicate: true,
                ..
            }
        ));
    }

    #[test]
    fn display_forms_mention_kind() {
        let h = parse_history("w1(x,1) r2(x1) a1 c2").unwrap();
        let p = g1a(&h).unwrap();
        let s = p.to_string();
        assert!(s.starts_with("G1a:"));
        assert!(s.contains("T2") && s.contains("T1"));
        assert_eq!(p.kind().to_string(), "G1a");
    }
}

//! Guarantees for *executing* transactions.
//!
//! §5.6 of the paper: "these levels … do not constrain transactions as
//! they run, although if something bad happens (e.g., a PL-3
//! transaction observes an inconsistency), they do force aborts.
//! Analogs of the levels that constrain executing transactions are
//! given in [1]; these definitions use slightly different graphs,
//! containing nodes for committed transactions plus a node for the
//! executing transaction."
//!
//! This module implements that graph by *promotion*: the executing
//! transaction (present in the complete history as aborted, per the
//! completion rule) is hypothetically committed and its versions
//! appended to the relevant version orders; the ordinary level checks
//! then apply to the promoted history. A scheduler can ask, at any
//! point, "could this transaction still commit at level L?" and force
//! an early abort when the answer is no — exactly what the SGT engine
//! does with its own incremental edge set.

use adya_history::{History, TxnId};

use crate::levels::{check_level, IsolationLevel, LevelCheck};

/// Checks whether the (aborted-in-`h`, i.e. still executing)
/// transaction `txn` could commit at `level`, given everything that
/// has happened in `h`.
///
/// Returns the level check of the promoted history; `ok()` means the
/// transaction is still viable at that level. Errors from promotion
/// (unknown transaction, already committed with `Ok(check)` semantics
/// handled upstream) surface as `None`.
pub fn check_running(h: &History, txn: TxnId, level: IsolationLevel) -> Option<LevelCheck> {
    let promoted = h.promote_to_committed(txn).ok()?;
    Some(check_level(&promoted, level))
}

/// True if `txn` is doomed at `level`: no continuation can make it
/// committable, because the phenomena already present among committed
/// transactions plus `txn`'s past operations violate the level.
///
/// (Sound but not complete as a death sentence for *other* levels:
/// future operations only ever add conflicts, never remove them, so a
/// violated check can never recover.)
pub fn is_doomed(h: &History, txn: TxnId, level: IsolationLevel) -> bool {
    check_running(h, txn, level)
        .map(|c| !c.ok())
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adya_history::parse_history_completed;

    #[test]
    fn clean_running_txn_is_viable() {
        // T2 is still executing (completed with an abort): reading
        // committed data keeps it viable at PL-3.
        let h = parse_history_completed("w1(x,1) c1 r2(x1)").unwrap();
        let check = check_running(&h, adya_history::TxnId(2), IsolationLevel::PL3).unwrap();
        assert!(check.ok(), "{check}");
    }

    #[test]
    fn read_skew_in_progress_dooms_pl3_but_not_pl2() {
        // T2 read old x and new y (both of T1's): the G2 cycle already
        // exists, so T2 can never commit at PL-3; PL-2 remains open.
        let h = parse_history_completed(
            "r2(xinit,5) r1(xinit,5) w1(x,1) r1(yinit,5) w1(y,9) c1 r2(y1,9)",
        )
        .unwrap();
        let t2 = adya_history::TxnId(2);
        assert!(is_doomed(&h, t2, IsolationLevel::PL3));
        assert!(!is_doomed(&h, t2, IsolationLevel::PL2));
    }

    #[test]
    fn dirty_reader_of_aborted_writer_is_doomed_at_pl2() {
        let h = parse_history_completed("w1(x,1) r2(x1) a1").unwrap();
        let t2 = adya_history::TxnId(2);
        assert!(
            is_doomed(&h, t2, IsolationLevel::PL2),
            "G1a is irreversible"
        );
        assert!(!is_doomed(&h, t2, IsolationLevel::PL1));
    }

    #[test]
    fn committed_txn_checks_apply_directly() {
        let h = parse_history_completed("w1(x,1) c1").unwrap();
        let check = check_running(&h, adya_history::TxnId(1), IsolationLevel::PL3).unwrap();
        assert!(check.ok());
    }

    #[test]
    fn unknown_txn_yields_none() {
        let h = parse_history_completed("w1(x,1) c1").unwrap();
        assert!(check_running(&h, adya_history::TxnId(42), IsolationLevel::PL3).is_none());
    }

    #[test]
    fn promotion_appends_version_order() {
        let h = parse_history_completed("w1(x,1) c1 w2(x,2)").unwrap();
        let t2 = adya_history::TxnId(2);
        let promoted = h.promote_to_committed(t2).unwrap();
        let x = promoted.object_by_name("x").unwrap();
        assert_eq!(promoted.version_order(x).len(), 3);
        assert!(promoted.is_committed(t2));
    }
}

//! Tap-side crash points for the online ingest path.
//!
//! [`FaultPlane`](crate::FaultPlane) schedules crashes at *engine*
//! commit attempts — the PR-4 scenario where the system of record dies
//! mid-commit. The tap (the process feeding events into an
//! [`OnlineChecker`](../../adya_online/struct.OnlineChecker.html) — the
//! `adya-check --stream` pipe or an `adya-serve` session) can die at a
//! different, strictly nastier set of points: between appending an
//! event to its durable log and applying it, on *any* event, not just
//! commits. [`TapCrashPlane`] schedules those points deterministically
//! so recovery tests can kill the ingest path exactly where they mean
//! to.
//!
//! Non-commit events only: a crash scheduled on a commit would overlap
//! the engine-side schedule and test the same code twice. The counter
//! advances once per non-commit event observed, and the decision for
//! the k-th such event is pure in the configuration — no seed needed,
//! because unlike the probabilistic plane this one is an exact
//! schedule (`crash_at` for one-shot test kill points, `crash_every`
//! for recurring soak pressure).

use std::sync::atomic::{AtomicU64, Ordering};

/// Crash schedule for a [`TapCrashPlane`]. `None` everywhere = never
/// crash.
#[derive(Debug, Clone, Copy, Default)]
pub struct TapCrashConfig {
    /// Crash immediately before applying the Nth non-commit event
    /// (1-based), once.
    pub crash_at: Option<u64>,
    /// Crash before every Nth non-commit event, repeatedly.
    pub crash_every: Option<u64>,
}

/// Counters for a [`TapCrashPlane`], for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TapCrashStats {
    /// Non-commit events observed (the crash clock).
    pub events: u64,
    /// Commit/abort events passed through without advancing the clock.
    pub terminals: u64,
    /// Crash points reached.
    pub crashes: u64,
}

/// A deterministic crash clock for the ingest tap. Shared (`Arc`)
/// between the server's sessions so the schedule covers the whole
/// fleet's interleaved ingest order.
#[derive(Debug, Default)]
pub struct TapCrashPlane {
    cfg: TapCrashConfig,
    events: AtomicU64,
    terminals: AtomicU64,
    crashes: AtomicU64,
}

impl TapCrashPlane {
    /// A plane following `cfg`'s schedule.
    pub fn new(cfg: TapCrashConfig) -> TapCrashPlane {
        TapCrashPlane {
            cfg,
            ..TapCrashPlane::default()
        }
    }

    /// The configuration this plane runs.
    pub fn config(&self) -> &TapCrashConfig {
        &self.cfg
    }

    /// Advances the crash clock for one ingested event; true when the
    /// tap must crash *before applying* it. `is_terminal` events
    /// (commit/abort — the engine-side plane's territory) never crash
    /// and do not advance the clock.
    pub fn crash_due(&self, is_terminal: bool) -> bool {
        if is_terminal {
            self.terminals.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let n = self.events.fetch_add(1, Ordering::Relaxed) + 1;
        let due = self.cfg.crash_at == Some(n)
            || self
                .cfg
                .crash_every
                .is_some_and(|every| every > 0 && n.is_multiple_of(every));
        if due {
            self.crashes.fetch_add(1, Ordering::Relaxed);
            adya_obs::counter!("faults.tap_crashes").inc();
        }
        due
    }

    /// Counter values so far.
    pub fn stats(&self) -> TapCrashStats {
        TapCrashStats {
            events: self.events.load(Ordering::Relaxed),
            terminals: self.terminals.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_crash_at_fires_exactly_once() {
        let p = TapCrashPlane::new(TapCrashConfig {
            crash_at: Some(3),
            crash_every: None,
        });
        let fired: Vec<bool> = (0..6).map(|_| p.crash_due(false)).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
        assert_eq!(p.stats().crashes, 1);
    }

    #[test]
    fn terminals_pass_through_without_advancing_the_clock() {
        let p = TapCrashPlane::new(TapCrashConfig {
            crash_at: Some(2),
            crash_every: None,
        });
        assert!(!p.crash_due(false)); // event 1
        assert!(!p.crash_due(true)); // commit: not counted
        assert!(!p.crash_due(true)); // abort: not counted
        assert!(p.crash_due(false)); // event 2: crash point
        let s = p.stats();
        assert_eq!((s.events, s.terminals, s.crashes), (2, 2, 1));
    }

    #[test]
    fn recurring_crash_every_matches_the_engine_clock_shape() {
        let p = TapCrashPlane::new(TapCrashConfig {
            crash_at: None,
            crash_every: Some(4),
        });
        let fired: Vec<bool> = (0..8).map(|_| p.crash_due(false)).collect();
        assert_eq!(
            fired,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn default_plane_never_crashes() {
        let p = TapCrashPlane::default();
        assert!((0..100).all(|_| !p.crash_due(false)));
        assert_eq!(p.stats().crashes, 0);
    }
}

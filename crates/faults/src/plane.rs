//! The deterministic fault schedule.

use std::sync::atomic::{AtomicU64, Ordering};

/// Where in the [`Engine`](adya_engine::Engine) trait a fault can be
/// injected. `begin` is infallible and `abort` must stay reliable (it
/// is the recovery path), so neither is a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Site {
    /// Item reads.
    Read,
    /// Writes (inserts/updates).
    Write,
    /// Deletes.
    Delete,
    /// Predicate reads.
    Select,
    /// Commit attempts.
    Commit,
}

/// All injection sites, in counter order.
pub const SITES: [Site; 5] = [
    Site::Read,
    Site::Write,
    Site::Delete,
    Site::Select,
    Site::Commit,
];

impl Site {
    fn ix(self) -> usize {
        match self {
            Site::Read => 0,
            Site::Write => 1,
            Site::Delete => 2,
            Site::Select => 3,
            Site::Commit => 4,
        }
    }

    /// Lower-case site name (for reports).
    pub fn name(self) -> &'static str {
        match self {
            Site::Read => "read",
            Site::Write => "write",
            Site::Delete => "delete",
            Site::Select => "select",
            Site::Commit => "commit",
        }
    }
}

/// What the plane tells the decorator to do with one call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Pass the call through untouched.
    Pass,
    /// Return an artificial `Blocked` (no holders) without touching
    /// the inner engine.
    Block,
    /// Abort the transaction with `AbortReason::Injected`.
    Abort,
    /// Busy-yield before passing through, perturbing interleavings.
    Delay,
}

/// Probabilities and crash schedule for a [`FaultPlane`].
///
/// Probabilities are per *operation*, drawn independently per site
/// from the seeded schedule; they are checked in the order block →
/// abort → delay, so e.g. `abort_prob` is conditional on not blocking.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed of the whole schedule.
    pub seed: u64,
    /// Probability of an artificial `Blocked` return.
    pub block_prob: f64,
    /// Probability of a forced `Aborted(Injected)`.
    pub abort_prob: f64,
    /// Probability of a pre-operation delay.
    pub delay_prob: f64,
    /// Yield iterations of one injected delay.
    pub delay_spins: u32,
    /// Crash at every Nth commit *attempt* reaching the crash check
    /// (attempts by already-poisoned transactions do not count).
    /// `None` disables crash points.
    pub crash_every: Option<u64>,
}

impl FaultConfig {
    /// A plane that never injects anything (faults off, passthrough).
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            block_prob: 0.0,
            abort_prob: 0.0,
            delay_prob: 0.0,
            delay_spins: 0,
            crash_every: None,
        }
    }
}

/// Counts of injected faults, for reports and bounded-amplification
/// assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Artificial `Blocked` returns.
    pub blocked: u64,
    /// Forced `Aborted(Injected)`.
    pub aborted: u64,
    /// Injected delays.
    pub delayed: u64,
    /// Crash points taken.
    pub crashes: u64,
}

/// The deterministic, seed-driven fault schedule.
///
/// Each site keeps its own call counter; the decision for the k-th
/// call at a site is a pure function of `(seed, site, k)`. The plane
/// is shared (`Arc`) between the decorator and the harness so the
/// harness can read [`stats`](FaultPlane::stats) afterwards.
#[derive(Debug)]
pub struct FaultPlane {
    cfg: FaultConfig,
    calls: [AtomicU64; 5],
    commit_attempts: AtomicU64,
    blocked: AtomicU64,
    aborted: AtomicU64,
    delayed: AtomicU64,
    crashes: AtomicU64,
}

/// `splitmix64` — the classic 64-bit finalizer; full avalanche, so
/// consecutive counter values give independent-looking draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlane {
    /// A plane following `cfg`'s schedule.
    pub fn new(cfg: FaultConfig) -> FaultPlane {
        FaultPlane {
            cfg,
            calls: Default::default(),
            commit_attempts: AtomicU64::new(0),
            blocked: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
        }
    }

    /// The configuration this plane runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decides the fate of the next call at `site`, advancing the
    /// site's counter. Pure in `(seed, site, k)`.
    pub fn decide(&self, site: Site) -> Decision {
        let k = self.calls[site.ix()].fetch_add(1, Ordering::Relaxed);
        // Three independent draws per call, one per fault kind, so the
        // probabilities compose the documented way.
        let base = self
            .cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((site.ix() as u64) << 56)
            .wrapping_add(k.wrapping_mul(3));
        if unit(splitmix64(base)) < self.cfg.block_prob {
            self.blocked.fetch_add(1, Ordering::Relaxed);
            adya_obs::counter!("faults.injected_blocked").inc();
            return Decision::Block;
        }
        if unit(splitmix64(base.wrapping_add(1))) < self.cfg.abort_prob {
            self.aborted.fetch_add(1, Ordering::Relaxed);
            adya_obs::counter!("faults.injected_aborts").inc();
            return Decision::Abort;
        }
        if unit(splitmix64(base.wrapping_add(2))) < self.cfg.delay_prob {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            adya_obs::counter!("faults.injected_delays").inc();
            return Decision::Delay;
        }
        Decision::Pass
    }

    /// Advances the crash clock by one commit attempt; true when this
    /// attempt is a scheduled crash point.
    pub fn crash_due(&self) -> bool {
        let Some(every) = self.cfg.crash_every else {
            return false;
        };
        let n = self.commit_attempts.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(every) {
            self.crashes.fetch_add(1, Ordering::Relaxed);
            adya_obs::counter!("faults.crashes").inc();
            true
        } else {
            false
        }
    }

    /// Executes one injected delay (busy yields).
    pub fn delay(&self) {
        for _ in 0..self.cfg.delay_spins {
            std::thread::yield_now();
        }
    }

    /// Injection counts so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            blocked: self.blocked.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            block_prob: 0.2,
            abort_prob: 0.1,
            delay_prob: 0.3,
            delay_spins: 1,
            crash_every: Some(5),
        }
    }

    #[test]
    fn schedules_are_reproducible_from_the_seed() {
        let a = FaultPlane::new(chaotic(42));
        let b = FaultPlane::new(chaotic(42));
        for site in SITES {
            for _ in 0..200 {
                assert_eq!(a.decide(site), b.decide(site), "{site:?}");
            }
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlane::new(chaotic(1));
        let b = FaultPlane::new(chaotic(2));
        let da: Vec<Decision> = (0..100).map(|_| a.decide(Site::Read)).collect();
        let db: Vec<Decision> = (0..100).map(|_| b.decide(Site::Read)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn quiet_plane_always_passes() {
        let p = FaultPlane::new(FaultConfig::quiet(7));
        for site in SITES {
            for _ in 0..100 {
                assert_eq!(p.decide(site), Decision::Pass);
            }
        }
        assert!(!p.crash_due());
        assert_eq!(p.stats(), FaultStats::default());
    }

    #[test]
    fn probabilities_land_in_the_right_ballpark() {
        let p = FaultPlane::new(FaultConfig {
            seed: 99,
            block_prob: 0.5,
            abort_prob: 0.0,
            delay_prob: 0.0,
            delay_spins: 0,
            crash_every: None,
        });
        let n = 2000;
        let blocked = (0..n)
            .filter(|_| p.decide(Site::Write) == Decision::Block)
            .count();
        assert!(
            (blocked as f64) > 0.4 * n as f64 && (blocked as f64) < 0.6 * n as f64,
            "blocked {blocked}/{n}"
        );
    }

    #[test]
    fn crash_clock_fires_every_nth_attempt() {
        let p = FaultPlane::new(chaotic(3));
        let fired: Vec<bool> = (0..10).map(|_| p.crash_due()).collect();
        assert_eq!(
            fired,
            vec![false, false, false, false, true, false, false, false, false, true]
        );
        assert_eq!(p.stats().crashes, 2);
    }
}

//! Deterministic fault injection for the transactional engines.
//!
//! The paper's phenomena (G0, G1a/b/c, G2) are defined over *whatever
//! history the system actually produced*, which makes them the right
//! oracle for fault testing: an engine that advertises PL-3 must keep
//! producing PL-3 histories under spurious blocks, forced aborts,
//! scheduling delays and mid-commit crashes — not just on clean runs.
//! (Lock-based level definitions cannot even be stated for such runs;
//! see §2 of the paper.)
//!
//! Two pieces:
//!
//! * [`FaultPlane`] — a seed-driven schedule deciding, for the k-th
//!   operation at each injection [`Site`], whether to inject a fault.
//!   Decisions are a pure function of `(seed, site, k)`, so a run is
//!   reproducible from its seed alone (under the threaded driver the
//!   *assignment* of k-values to threads follows the actual
//!   interleaving; the per-site schedule itself never changes).
//! * [`FaultyEngine`] — an [`Engine`](adya_engine::Engine) decorator
//!   wrapping any real engine and consulting the plane at every trait
//!   call site. Injected faults speak the engine's own error
//!   vocabulary: artificial [`Blocked`](adya_engine::EngineError::Blocked)
//!   returns (with no holders — transient, not a lock queue), forced
//!   [`Aborted`](adya_engine::EngineError::Aborted) with
//!   [`AbortReason::Injected`](adya_engine::AbortReason::Injected), busy
//!   delays that perturb thread interleavings, and *crash points*: at
//!   a scheduled commit the engine "loses" every in-flight transaction
//!   at once — committed data stays durable, live transactions are
//!   aborted and poisoned — and the driver must recover by retrying.
//!
//! The decorated engine still records a complete, well-formed history
//! through the inner engine's recorder, so the checkers (batch or
//! online) judge exactly what happened under the faults.

#![warn(missing_docs)]

mod engine;
mod plane;
mod tap;

pub use engine::FaultyEngine;
pub use plane::{Decision, FaultConfig, FaultPlane, FaultStats, Site, SITES};
pub use tap::{TapCrashConfig, TapCrashPlane, TapCrashStats};
